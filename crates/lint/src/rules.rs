//! The lint rules and the per-file engine that runs them.
//!
//! Every rule walks the token stream produced by [`crate::lexer`]; none of
//! them parse Rust properly, so each one is written to *miss* rather than
//! crash or false-positive when it meets grammar it does not model. The
//! escape hatch for deliberate violations is a
//! `// pvtm-lint: allow(rule-id) reason` comment on the offending line or
//! the line above; the reason is mandatory and stale allows are reported.

use crate::lexer::{self, Tok, TokKind};
use std::fmt;

/// Stable identifiers of the lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `HashMap`/`HashSet` in non-test code (nondeterministic iteration).
    NoHashmap,
    /// `Instant`/`SystemTime` outside the telemetry clock module.
    NoWallclock,
    /// `==`/`!=` against floating-point expressions.
    NoFloatEq,
    /// `panic!`/`unwrap()`/bare `expect` in library code of the core crates.
    PanicPolicy,
    /// Telemetry span/counter/gauge/histogram names outside the §5b taxonomy.
    TelemetryTaxonomy,
    /// `env::var` reads of undocumented knobs.
    NoEnvRead,
    /// Semantic: `substream(seed, stream)` collisions, RNGs captured across
    /// parallel-closure boundaries, stream-id reuse across chunk loops.
    RngStreamDiscipline,
    /// Semantic: panic sinks reachable on the call graph from the policy
    /// crates' public API.
    PanicReachability,
    /// Semantic: float accumulation in parallel chains not routed through
    /// an order-fixed merge.
    NondetReduction,
    /// Semantic: telemetry names resolved through consts and checked
    /// against the §5b/§5d registries.
    TaxonomyResolution,
    /// Semantic: two-way diff of `PVTM_*` reads against the documented
    /// registry.
    KnobCoverage,
    /// Malformed, unknown, reason-less or stale suppression comments.
    LintAllow,
}

/// All rules, in reporting order.
pub const ALL_RULES: &[RuleId] = &[
    RuleId::NoHashmap,
    RuleId::NoWallclock,
    RuleId::NoFloatEq,
    RuleId::PanicPolicy,
    RuleId::TelemetryTaxonomy,
    RuleId::NoEnvRead,
    RuleId::RngStreamDiscipline,
    RuleId::PanicReachability,
    RuleId::NondetReduction,
    RuleId::TaxonomyResolution,
    RuleId::KnobCoverage,
    RuleId::LintAllow,
];

impl RuleId {
    /// Stable kebab-case id used in diagnostics, allows and baselines.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::NoHashmap => "no-hashmap",
            RuleId::NoWallclock => "no-wallclock",
            RuleId::NoFloatEq => "no-float-eq",
            RuleId::PanicPolicy => "panic-policy",
            RuleId::TelemetryTaxonomy => "telemetry-taxonomy",
            RuleId::NoEnvRead => "no-env-read",
            RuleId::RngStreamDiscipline => "rng-stream-discipline",
            RuleId::PanicReachability => "panic-reachability",
            RuleId::NondetReduction => "nondet-reduction",
            RuleId::TaxonomyResolution => "taxonomy-by-resolution",
            RuleId::KnobCoverage => "knob-coverage",
            RuleId::LintAllow => "lint-allow",
        }
    }

    /// Parses a kebab-case rule id.
    pub fn parse(s: &str) -> Option<RuleId> {
        ALL_RULES.iter().copied().find(|r| r.as_str() == s)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: `file:line:col [rule-id] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The rule that fired.
    pub rule: RuleId,
    /// Human-readable description with a fix hint.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{} [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Environment knobs the workspace documents (README / DESIGN.md); the only
/// names `env::var` may read outside test code.
pub const DOCUMENTED_ENV_KNOBS: &[&str] = &[
    "PVTM_TELEMETRY",
    "PVTM_TELEMETRY_CLOCK",
    "PVTM_EVENTS",
    "PVTM_QUIET",
    "PVTM_EFFORT",
    "PVTM_RESULTS_DIR",
    "PVTM_FAULT_SEED",
    "PVTM_FAULT_RATE",
    "PVTM_MAX_QUARANTINE",
    "PVTM_METRICS_ADDR",
];

/// First path segments of valid span / trace-scope names (DESIGN.md §5b:
/// one span per reproduced figure or experiment, plus the component spans).
pub const SPAN_ROOTS: &[&str] = &[
    "fig2a",
    "fig2b",
    "fig2c",
    "fig3",
    "fig4b",
    "fig5a",
    "fig5b",
    "fig5c",
    "fig6",
    "fig8",
    "fig9",
    "fig10",
    "scaling",
    "ablation_monitor",
    "ablation_dac",
    "ablation_bias_levels",
    "ablation_march",
    "ablation_temperature",
    "analyzer",
    "optimizer",
    "eval",
    "dc",
    "mc",
    "headline",
];

/// First dotted segments of valid counter/gauge/histogram names
/// (DESIGN.md §5b: solver counters, Monte-Carlo estimator health, evaluator
/// and analyzer accounting, bench harness).
pub const METRIC_ROOTS: &[&str] = &["solver", "mc", "optimizer", "eval", "analyzer", "bench"];

/// First dotted segments of valid event-journal kinds (DESIGN.md §5d:
/// run lifecycle, figure milestones, Monte-Carlo estimator stream, solver
/// escalations).
pub const EVENT_ROOTS: &[&str] = &["run", "figure", "mc", "solver", "eval", "analyzer"];

/// The only file allowed to touch the wall clock directly.
const WALLCLOCK_ALLOWED: &[&str] = &["crates/telemetry/src/clock.rs"];

/// Library trees under the strict panic policy.
pub(crate) const PANIC_POLICY_PREFIXES: &[&str] = &[
    "crates/circuit/src/",
    "crates/stats/src/",
    "crates/sram/src/",
    "crates/core/src/",
    "crates/bist/src/",
];

/// Lints one file. `rel_path` is the repo-relative path (used for rule
/// scoping); `src` is its contents. Returns suppressed-and-sorted
/// diagnostics — the caller only has to aggregate.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let path = rel_path.replace('\\', "/");
    if is_test_path(&path) {
        return Vec::new();
    }
    let lexed = lexer::lex(src);
    let mut diags = token_diags(&path, &lexed);
    apply_allows(&path, &lexed.allows, &mut diags);
    diags.sort_by_key(|d| (d.line, d.col, d.rule));
    diags
}

/// Runs the token-stream rules only — no suppression, no sorting. The
/// semantic pass ([`crate::sema`]) calls this on its already-lexed files
/// and applies allows itself, after the semantic rules have contributed
/// their findings (so an allow covering a semantic finding is not reported
/// stale by the token pass).
pub(crate) fn token_diags(path: &str, lexed: &lexer::Lexed) -> Vec<Diagnostic> {
    let regions = test_regions(&lexed.tokens);
    let ctx = Ctx {
        path,
        toks: &lexed.tokens,
        regions: &regions,
    };
    let mut diags = Vec::new();
    rule_no_hashmap(&ctx, &mut diags);
    rule_no_wallclock(&ctx, &mut diags);
    rule_no_float_eq(&ctx, &mut diags);
    rule_panic_policy(&ctx, &mut diags);
    rule_telemetry_taxonomy(&ctx, &mut diags);
    rule_no_env_read(&ctx, &mut diags);
    diags
}

/// Whole directories that are test context: integration tests and benches.
pub(crate) fn is_test_path(path: &str) -> bool {
    path.split('/').any(|c| c == "tests" || c == "benches")
}

struct Ctx<'a> {
    path: &'a str,
    toks: &'a [Tok],
    /// Token-index ranges covered by `#[test]` / `#[cfg(test)]` items.
    regions: &'a [(usize, usize)],
}

impl Ctx<'_> {
    fn in_test(&self, i: usize) -> bool {
        self.regions.iter().any(|&(s, e)| s <= i && i <= e)
    }

    fn diag(&self, out: &mut Vec<Diagnostic>, i: usize, rule: RuleId, message: String) {
        out.push(Diagnostic {
            file: self.path.to_string(),
            line: self.toks[i].line,
            col: self.toks[i].col,
            rule,
            message,
        });
    }
}

/// Finds token ranges of items annotated with a test attribute:
/// `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`. An attribute
/// containing `not` (e.g. `#[cfg(not(test))]`) is conservatively treated as
/// non-test. The range runs from the attribute to the item's closing brace
/// (or terminating semicolon for brace-less items like `use`).
pub(crate) fn test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if !(toks[i].kind == TokKind::Punct
            && toks[i].text == "#"
            && toks[i + 1].kind == TokKind::Punct
            && toks[i + 1].text == "[")
        {
            i += 1;
            continue;
        }
        // Scan the attribute body to its matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let (mut has_test, mut has_not) = (false, false);
        while j < toks.len() && depth > 0 {
            match (&toks[j].kind, toks[j].text.as_str()) {
                (TokKind::Punct, "[") => depth += 1,
                (TokKind::Punct, "]") => depth -= 1,
                (TokKind::Ident, "test") => has_test = true,
                (TokKind::Ident, "not") => has_not = true,
                _ => {}
            }
            j += 1;
        }
        if !has_test || has_not {
            i = j;
            continue;
        }
        // Find the annotated item's extent: the first top-level `{…}`
        // group, or a `;` before any brace opens.
        let mut k = j;
        let mut nest = 0i64;
        let mut end = toks.len().saturating_sub(1);
        while k < toks.len() {
            match (&toks[k].kind, toks[k].text.as_str()) {
                (TokKind::Punct, "(") | (TokKind::Punct, "[") => nest += 1,
                (TokKind::Punct, ")") | (TokKind::Punct, "]") => nest -= 1,
                (TokKind::Punct, ";") if nest == 0 => {
                    end = k;
                    break;
                }
                (TokKind::Punct, "{") if nest == 0 => {
                    let mut braces = 1i64;
                    let mut m = k + 1;
                    while m < toks.len() && braces > 0 {
                        match toks[m].text.as_str() {
                            "{" => braces += 1,
                            "}" => braces -= 1,
                            _ => {}
                        }
                        m += 1;
                    }
                    end = m.saturating_sub(1);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        regions.push((i, end));
        i = end + 1;
    }
    regions
}

// ----------------------------------------------------------------- rules

fn rule_no_hashmap(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !ctx.in_test(i)
        {
            ctx.diag(
                out,
                i,
                RuleId::NoHashmap,
                format!(
                    "`{}` has nondeterministic iteration order; use `BTree{}` \
                     (bit-reproducibility contract, DESIGN.md)",
                    t.text,
                    &t.text[4..]
                ),
            );
        }
    }
}

fn rule_no_wallclock(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    if WALLCLOCK_ALLOWED.contains(&ctx.path) {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && (t.text == "Instant" || t.text == "SystemTime")
            && !ctx.in_test(i)
        {
            ctx.diag(
                out,
                i,
                RuleId::NoWallclock,
                format!(
                    "direct `{}` use; route timing through `pvtm_telemetry::clock` so \
                     `PVTM_TELEMETRY_CLOCK=off` keeps every output byte-identical",
                    t.text
                ),
            );
        }
    }
}

fn rule_no_float_eq(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        let op = &toks[i];
        if op.kind != TokKind::Punct || (op.text != "==" && op.text != "!=") {
            continue;
        }
        if ctx.in_test(i) {
            continue;
        }
        let float_lit = |k: usize| toks.get(k).is_some_and(|t| t.kind == TokKind::Float);
        // Right operand: `0.0`, `-0.0`, `f64::NAN`-style const.
        let rhs_lit = if float_lit(i + 1) {
            Some(i + 1)
        } else if toks.get(i + 1).is_some_and(|t| t.text == "-") && float_lit(i + 2) {
            Some(i + 2)
        } else {
            None
        };
        let rhs_const = toks
            .get(i + 1)
            .is_some_and(|t| t.text == "f64" || t.text == "f32")
            && toks.get(i + 2).is_some_and(|t| t.text == "::");
        // Left operand: a float literal, or `f64::CONST`.
        let lhs_lit = float_lit(i.wrapping_sub(1));
        let lhs_const = i >= 3
            && toks[i - 2].text == "::"
            && (toks[i - 3].text == "f64" || toks[i - 3].text == "f32")
            && toks[i - 1].kind == TokKind::Ident;
        if rhs_lit.is_none() && !rhs_const && !lhs_lit && !lhs_const {
            continue;
        }
        // Guard idiom: `x.fract() == 0.0` is an exactness test by design.
        let fract_guarded = i >= 4
            && toks[i - 1].text == ")"
            && toks[i - 2].text == "("
            && toks[i - 3].text == "fract"
            && toks[i - 4].text == ".";
        if fract_guarded {
            continue;
        }
        let lit_text = rhs_lit
            .map(|k| toks[k].text.as_str())
            .unwrap_or(if lhs_lit {
                toks[i - 1].text.as_str()
            } else {
                ""
            });
        let sentinel = matches!(lit_text, "0.0" | "0." | "1.0" | "1.");
        let message = if sentinel {
            format!(
                "exact float `{}` against `{lit_text}`; if the value is an assigned sentinel \
                 (never computed) keep it and add `// pvtm-lint: allow(no-float-eq) <why \
                 exact>`, otherwise compare with a tolerance",
                op.text
            )
        } else {
            format!(
                "exact float `{}` comparison; use a tolerance, or justify bit-exactness with \
                 `// pvtm-lint: allow(no-float-eq) <why>`",
                op.text
            )
        };
        ctx.diag(out, i, RuleId::NoFloatEq, message);
    }
}

fn rule_panic_policy(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    if !PANIC_POLICY_PREFIXES
        .iter()
        .any(|p| ctx.path.starts_with(p))
    {
        return;
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || ctx.in_test(i) {
            continue;
        }
        let next_is = |k: usize, s: &str| toks.get(k).is_some_and(|t| t.text == s);
        match t.text.as_str() {
            "panic" | "todo" | "unimplemented" if next_is(i + 1, "!") => {
                ctx.diag(
                    out,
                    i,
                    RuleId::PanicPolicy,
                    format!(
                        "`{}!` in library code; return an error, or document the caller \
                         contract with `// pvtm-lint: allow(panic-policy) <invariant>` or a \
                         baseline entry",
                        t.text
                    ),
                );
            }
            "unwrap"
                if i > 0
                    && toks[i - 1].text == "."
                    && next_is(i + 1, "(")
                    && next_is(i + 2, ")") =>
            {
                ctx.diag(
                    out,
                    i,
                    RuleId::PanicPolicy,
                    "`unwrap()` in library code; use `expect(\"<invariant>\")` stating why \
                     this cannot fail, or propagate the error"
                        .to_string(),
                );
            }
            "expect" if i > 0 && toks[i - 1].text == "." && next_is(i + 1, "(") => {
                // The message may be on the next line or wrapped
                // (`&format!("…")`): scan the whole argument list, to its
                // matching `)`, for the first string literal.
                let mut depth = 1i64;
                let mut j = i + 2;
                let mut msg: Option<&Tok> = None;
                while j < toks.len() && depth > 0 {
                    match (toks[j].kind, toks[j].text.as_str()) {
                        (TokKind::Punct, "(") => depth += 1,
                        (TokKind::Punct, ")") => depth -= 1,
                        (TokKind::Str, _) => {
                            msg = Some(&toks[j]);
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(msg) = msg {
                    if msg.text.split_whitespace().count() < 3 {
                        ctx.diag(
                            out,
                            i,
                            RuleId::PanicPolicy,
                            format!(
                                "bare `expect(\"{}\")`; the message must state the violated \
                                 invariant (at least three words on why this cannot fail)",
                                msg.text
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

/// Maps a telemetry API function name to the kind of name it registers;
/// shared with the semantic pass.
pub(crate) fn telemetry_kind(callee: &str) -> Option<&'static str> {
    match callee {
        "span" => Some("span"),
        "trace_scope" => Some("trace"),
        "counter_add" => Some("counter"),
        "gauge_set" => Some("gauge"),
        "hist_record" => Some("histogram"),
        "emit" => Some("event"),
        _ => None,
    }
}

/// Checks a telemetry name against the shape convention and the §5b/§5d
/// registries; returns the problem description if it violates either.
/// Shared between the lexical rule (literal names) and the semantic rule
/// (names resolved through consts).
pub(crate) fn taxonomy_problem(kind: &str, name: &str) -> Option<String> {
    let shape_ok = !name.is_empty()
        && name.split('.').all(|seg| {
            !seg.is_empty()
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        });
    if !shape_ok {
        return Some(format!(
            "telemetry {kind} name \"{name}\" is not dotted lowercase \
             (`[a-z0-9_]` segments separated by `.`)"
        ));
    }
    let root = name.split('.').next().unwrap_or_default();
    let (roots, section): (&[&str], &str) = match kind {
        "span" | "trace" => (SPAN_ROOTS, "5b"),
        "event" => (EVENT_ROOTS, "5d"),
        _ => (METRIC_ROOTS, "5b"),
    };
    if !roots.contains(&root) {
        return Some(format!(
            "telemetry {kind} name \"{name}\" is outside the DESIGN.md §{section} \
             taxonomy (unknown root \"{root}\"); extend the taxonomy and this registry \
             together"
        ));
    }
    None
}

fn rule_telemetry_taxonomy(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || ctx.in_test(i) {
            continue;
        }
        let Some(kind) = telemetry_kind(&t.text) else {
            continue;
        };
        // Only path-qualified calls (`pvtm_telemetry::span(…)`, `tm::span(…)`)
        // are telemetry call sites; method calls and locals are not.
        if i == 0 || toks[i - 1].text != "::" || toks.get(i + 1).is_none_or(|t| t.text != "(") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 2) else {
            continue;
        };
        if name_tok.kind != TokKind::Str {
            ctx.diag(
                out,
                i,
                RuleId::TelemetryTaxonomy,
                format!("non-literal {kind} name cannot be checked against the §5b taxonomy"),
            );
            continue;
        }
        if let Some(problem) = taxonomy_problem(kind, &name_tok.text) {
            ctx.diag(out, i, RuleId::TelemetryTaxonomy, problem);
        }
    }
}

fn rule_no_env_read(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    let toks = ctx.toks;
    for i in 2..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || (t.text != "var" && t.text != "var_os")
            || toks[i - 1].text != "::"
            || toks[i - 2].text != "env"
            || ctx.in_test(i)
        {
            continue;
        }
        match toks.get(i + 2) {
            Some(name) if name.kind == TokKind::Str => {
                if !DOCUMENTED_ENV_KNOBS.contains(&name.text.as_str()) {
                    ctx.diag(
                        out,
                        i,
                        RuleId::NoEnvRead,
                        format!(
                            "undocumented environment knob \"{}\"; the documented `PVTM_*` \
                             knobs are: {}",
                            name.text,
                            DOCUMENTED_ENV_KNOBS.join(", ")
                        ),
                    );
                }
            }
            _ => {
                ctx.diag(
                    out,
                    i,
                    RuleId::NoEnvRead,
                    "`env::var` with a non-literal name cannot be audited; read documented \
                     `PVTM_*` knobs by name"
                        .to_string(),
                );
            }
        }
    }
}

// ------------------------------------------------------------ suppression

/// Applies `// pvtm-lint: allow(rule) reason` comments: a well-formed allow
/// suppresses matching diagnostics on its own line and the next one.
/// Malformed, unknown-rule, reason-less and unused allows are themselves
/// reported under `lint-allow` so the suppression inventory stays honest.
pub(crate) fn apply_allows(path: &str, allows: &[lexer::Allow], diags: &mut Vec<Diagnostic>) {
    let mut used = vec![false; allows.len()];
    diags.retain(|d| {
        let mut keep = true;
        for (k, a) in allows.iter().enumerate() {
            if !a.rule.is_empty()
                && !a.reason.is_empty()
                && a.rule == d.rule.as_str()
                && (a.line == d.line || a.line + 1 == d.line)
            {
                used[k] = true;
                keep = false;
            }
        }
        keep
    });
    for (k, a) in allows.iter().enumerate() {
        let problem = if a.rule.is_empty() {
            Some("malformed suppression; expected `pvtm-lint: allow(rule-id) reason`".to_string())
        } else if RuleId::parse(&a.rule).is_none() {
            Some(format!(
                "allow names unknown rule \"{}\" (known: {})",
                a.rule,
                ALL_RULES
                    .iter()
                    .map(|r| r.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        } else if a.reason.is_empty() {
            Some(format!(
                "allow({}) without a reason; the justification is mandatory",
                a.rule
            ))
        } else if !used[k] {
            Some(format!(
                "stale allow({}): no matching diagnostic on this or the next line",
                a.rule
            ))
        } else {
            None
        };
        if let Some(message) = problem {
            diags.push(Diagnostic {
                file: path.to_string(),
                line: a.line,
                col: a.col,
                rule: RuleId::LintAllow,
                message,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(path: &str, src: &str) -> Vec<(RuleId, u32)> {
        lint_source(path, src)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn hashmap_flagged_outside_tests_only() {
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        assert_eq!(
            rules_of("crates/x/src/a.rs", src),
            vec![(RuleId::NoHashmap, 1)]
        );
    }

    #[test]
    fn test_fn_attribute_masks_its_body_only() {
        let src = "fn lib() { let _: HashMap<u8, u8>; }\n\
                   #[test]\nfn t() { let _: HashMap<u8, u8>; }\n\
                   fn lib2() { let _: HashSet<u8>; }\n";
        assert_eq!(
            rules_of("crates/x/src/a.rs", src),
            vec![(RuleId::NoHashmap, 1), (RuleId::NoHashmap, 4)]
        );
    }

    #[test]
    fn wallclock_allowed_only_in_clock_module() {
        let src = "use std::time::Instant;\n";
        assert_eq!(
            rules_of("crates/bench/src/lib.rs", src),
            vec![(RuleId::NoWallclock, 1)]
        );
        assert!(rules_of("crates/telemetry/src/clock.rs", src).is_empty());
    }

    #[test]
    fn float_eq_catches_literals_and_consts_but_not_fract() {
        assert_eq!(
            rules_of("crates/x/src/a.rs", "fn f(x: f64) -> bool { x == 0.5 }\n"),
            vec![(RuleId::NoFloatEq, 1)]
        );
        assert_eq!(
            rules_of(
                "crates/x/src/a.rs",
                "fn f(x: f64) -> bool { x == f64::INFINITY }\n"
            ),
            vec![(RuleId::NoFloatEq, 1)]
        );
        assert!(rules_of(
            "crates/x/src/a.rs",
            "fn f(x: f64) -> bool { x.fract() == 0.0 }\n"
        )
        .is_empty());
        // Integer comparisons never fire.
        assert!(rules_of("crates/x/src/a.rs", "fn f(x: u8) -> bool { x == 0 }\n").is_empty());
    }

    #[test]
    fn float_eq_sentinel_gets_dedicated_hint() {
        let d = lint_source("crates/x/src/a.rs", "fn f(s: f64) -> bool { s == 0.0 }\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("sentinel"), "{}", d[0].message);
    }

    #[test]
    fn panic_policy_scopes_to_core_crates() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(
            rules_of("crates/sram/src/a.rs", src),
            vec![(RuleId::PanicPolicy, 1)]
        );
        // The BIST crate joined the policy set when its controller grew a
        // structured error type.
        assert_eq!(
            rules_of("crates/bist/src/a.rs", src),
            vec![(RuleId::PanicPolicy, 1)]
        );
        // Outside the policy crates unwrap is tolerated.
        assert!(rules_of("examples/demo.rs", src).is_empty());
    }

    #[test]
    fn panic_policy_accepts_invariant_expect_only() {
        let bare = "pub fn f(x: Option<u8>) -> u8 { x.expect(\"bad\") }\n";
        let good =
            "pub fn f(x: Option<u8>) -> u8 { x.expect(\"slots are built by compile above\") }\n";
        assert_eq!(
            rules_of("crates/core/src/a.rs", bare),
            vec![(RuleId::PanicPolicy, 1)]
        );
        assert!(rules_of("crates/core/src/a.rs", good).is_empty());
    }

    #[test]
    fn taxonomy_checks_shape_and_roots() {
        let bad_root = "fn f() { pvtm_telemetry::counter_add(\"frobnicator.count\", 1); }\n";
        let bad_shape = "fn f() { let _s = pvtm_telemetry::span(\"Eval.Margins\"); }\n";
        let good = "fn f() { let _s = pvtm_telemetry::span(\"eval.margins\"); }\n";
        assert_eq!(
            rules_of("crates/sram/src/a.rs", bad_root),
            vec![(RuleId::TelemetryTaxonomy, 1)]
        );
        assert_eq!(
            rules_of("crates/sram/src/a.rs", bad_shape),
            vec![(RuleId::TelemetryTaxonomy, 1)]
        );
        assert!(rules_of("crates/sram/src/a.rs", good).is_empty());
    }

    #[test]
    fn taxonomy_covers_event_journal_kinds() {
        let good = "fn f() { pvtm_telemetry::events::emit(\"mc.chunk\", 0, 0, vec![]); }\n";
        let bad_root = "fn f() { pvtm_telemetry::events::emit(\"widget.spin\", 0, 0, vec![]); }\n";
        let bad_shape = "fn f() { pvtm_telemetry::events::emit(\"Mc.Chunk\", 0, 0, vec![]); }\n";
        assert!(rules_of("crates/sram/src/a.rs", good).is_empty());
        let d = lint_source("crates/sram/src/a.rs", bad_root);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("event"), "{}", d[0].message);
        assert!(d[0].message.contains("5d"), "{}", d[0].message);
        assert_eq!(
            rules_of("crates/sram/src/a.rs", bad_shape),
            vec![(RuleId::TelemetryTaxonomy, 1)]
        );
    }

    #[test]
    fn env_reads_must_use_documented_knobs() {
        let bad = "fn f() { let _ = std::env::var(\"PVTM_SECRET\"); }\n";
        let good = "fn f() { let _ = std::env::var(\"PVTM_TELEMETRY\"); }\n";
        let dynamic = "fn f(k: &str) { let _ = std::env::var(k); }\n";
        assert_eq!(rules_of("src/lib.rs", bad), vec![(RuleId::NoEnvRead, 1)]);
        assert!(rules_of("src/lib.rs", good).is_empty());
        assert_eq!(
            rules_of("src/lib.rs", dynamic),
            vec![(RuleId::NoEnvRead, 1)]
        );
    }

    #[test]
    fn allows_suppress_same_and_next_line() {
        let same = "fn f(x: f64) -> bool { x == 0.0 } // pvtm-lint: allow(no-float-eq) assigned sentinel\n";
        let above = "// pvtm-lint: allow(no-float-eq) assigned sentinel\nfn f(x: f64) -> bool { x == 0.0 }\n";
        assert!(rules_of("crates/x/src/a.rs", same).is_empty());
        assert!(rules_of("crates/x/src/a.rs", above).is_empty());
    }

    #[test]
    fn reasonless_unknown_and_stale_allows_are_reported() {
        let reasonless = "fn f(x: f64) -> bool { x == 0.0 } // pvtm-lint: allow(no-float-eq)\n";
        let d = lint_source("crates/x/src/a.rs", reasonless);
        // The violation stays AND the allow itself is reported.
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|d| d.rule == RuleId::LintAllow));

        let unknown = "// pvtm-lint: allow(no-such-rule) because\n";
        assert_eq!(rules_of("src/a.rs", unknown), vec![(RuleId::LintAllow, 1)]);

        let stale = "// pvtm-lint: allow(no-hashmap) nothing here\nfn f() {}\n";
        assert_eq!(rules_of("src/a.rs", stale), vec![(RuleId::LintAllow, 1)]);
    }

    #[test]
    fn tests_and_benches_directories_are_skipped() {
        let src = "use std::collections::HashMap;\n";
        assert!(rules_of("crates/sram/tests/x.rs", src).is_empty());
        assert!(rules_of("crates/bench/benches/x.rs", src).is_empty());
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let src = "/// doc: x.unwrap() and HashMap\n\
                   /* Instant::now() inside /* nested */ comment */\n\
                   pub fn f() -> &'static str { \"HashMap == 0.0 panic!\" }\n";
        assert!(rules_of("crates/sram/src/a.rs", src).is_empty());
    }
}
