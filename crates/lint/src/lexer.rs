//! Hand-rolled Rust lexer: just enough tokenization for the lint rules.
//!
//! The workspace is registry-free, so `syn`/`proc-macro2` are unavailable;
//! this lexer handles the full literal grammar the rules must not be fooled
//! by — strings with escapes, raw strings with arbitrary `#` fences, byte
//! and char literals (disambiguated from lifetimes), nested block comments,
//! doc comments — and produces a flat token stream with line/column
//! positions. It never fails: unexpected bytes become one-character punct
//! tokens, which at worst makes a rule miss, never crash.

/// Token classification. Only the distinctions the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `fn`, `r#type`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Floating-point literal (`0.0`, `1e-3`, `2f64`).
    Float,
    /// String, raw-string, byte-string or C-string literal. `text` holds
    /// the *contents* (fences and quotes stripped, escapes left as-is).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Operator or delimiter, longest-match (`==`, `::`, `->`, `{`).
    Punct,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what literals carry).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

/// A `// pvtm-lint: allow(rule-id) reason` suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Line the comment sits on; it suppresses matching diagnostics on this
    /// line and the next one (comment-above style).
    pub line: u32,
    /// Column of the comment marker.
    pub col: u32,
    /// The rule id inside `allow(...)`.
    pub rule: String,
    /// Justification text after the closing paren (mandatory; an empty
    /// reason is itself reported by the engine).
    pub reason: String,
}

/// Lexer output for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream, comments and whitespace stripped.
    pub tokens: Vec<Tok>,
    /// Suppression comments found anywhere in the file (including inside
    /// otherwise-skipped comments is impossible: allows *are* comments).
    pub allows: Vec<Allow>,
}

/// Multi-character operators, longest first so maximal munch works.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "==", "!=", "<=", ">=", "::", "->", "=>", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Tokenizes `src`. Infallible; see module docs.
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        out: Lexed::default(),
    };
    lx.run();
    lx.out
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Tok {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek() {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek_at(1) == Some('/') => self.line_comment(line, col),
                '/' if self.peek_at(1) == Some('*') => self.block_comment(),
                '"' => self.string(line, col),
                '\'' => self.char_or_lifetime(line, col),
                'r' | 'b' | 'c' if self.raw_or_byte_prefix() => self.prefixed_literal(line, col),
                c if c.is_alphabetic() || c == '_' => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                _ => self.punct(line, col),
            }
        }
    }

    /// Does the cursor sit on a literal prefix (`r"`, `r#"`, `br#"`, `b"`,
    /// `b'`, `cr#"` …) rather than a plain identifier starting with
    /// r/b/c? Raw *identifiers* (`r#match`) are handled by `ident`.
    fn raw_or_byte_prefix(&self) -> bool {
        let mut i = 1;
        // Optional second prefix letter: br / cr.
        if matches!(self.peek(), Some('b' | 'c')) && self.peek_at(1) == Some('r') {
            i = 2;
        }
        match self.peek_at(i) {
            Some('"') => true,
            Some('\'') => i == 1 && self.peek() == Some('b'), // byte literal b'x'
            Some('#') => {
                // Raw string fence — or a raw identifier r#name.
                let mut j = i;
                while self.peek_at(j) == Some('#') {
                    j += 1;
                }
                self.peek_at(j) == Some('"')
            }
            _ => false,
        }
    }

    fn prefixed_literal(&mut self, line: u32, col: u32) {
        // Consume prefix letters.
        let mut raw = false;
        while matches!(self.peek(), Some('r' | 'b' | 'c')) {
            raw |= self.peek() == Some('r');
            self.bump();
        }
        if self.peek() == Some('\'') {
            // b'x' byte literal: reuse char lexing (no lifetime ambiguity).
            self.bump();
            let mut text = String::new();
            while let Some(c) = self.peek() {
                if c == '\\' {
                    text.push(self.bump().unwrap_or_default());
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                } else if c == '\'' {
                    self.bump();
                    break;
                } else {
                    text.push(self.bump().unwrap_or_default());
                }
            }
            self.push(TokKind::Char, text, line, col);
            return;
        }
        if raw {
            let mut fence = 0usize;
            while self.peek() == Some('#') {
                fence += 1;
                self.bump();
            }
            self.bump(); // opening quote
            let mut text = String::new();
            'scan: while let Some(c) = self.bump() {
                if c == '"' {
                    // A closing quote counts only when followed by `fence` #s.
                    for k in 0..fence {
                        if self.peek_at(k) != Some('#') {
                            text.push(c);
                            continue 'scan;
                        }
                    }
                    for _ in 0..fence {
                        self.bump();
                    }
                    break;
                }
                text.push(c);
            }
            self.push(TokKind::Str, text, line, col);
        } else {
            // b"..." cooked byte string.
            self.string(line, col);
        }
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(self.bump().unwrap_or_default());
        }
        self.maybe_allow(&text, line, col);
    }

    fn block_comment(&mut self) {
        let (line, col) = (self.line, self.col);
        self.bump();
        self.bump(); // consume /*
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match self.peek() {
                Some('/') if self.peek_at(1) == Some('*') => {
                    depth += 1;
                    self.bump();
                    self.bump();
                    text.push_str("/*");
                }
                Some('*') if self.peek_at(1) == Some('/') => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                Some(_) => text.push(self.bump().unwrap_or_default()),
                None => break,
            }
        }
        self.maybe_allow(&text, line, col);
    }

    /// Parses `pvtm-lint: allow(rule-id) reason` out of a comment body.
    ///
    /// The directive must be the entire comment (the body starts with the
    /// marker): prose that merely *mentions* `pvtm-lint:` mid-sentence is
    /// not a directive, and doc comments are documentation, never
    /// directives.
    fn maybe_allow(&mut self, comment: &str, line: u32, col: u32) {
        let body = comment.strip_prefix("//").unwrap_or(comment);
        if body.starts_with(['/', '!', '*']) {
            return; // doc comment
        }
        let Some(rest) = body.trim_start().strip_prefix("pvtm-lint:") else {
            return;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            // `pvtm-lint:` followed by anything else is a malformed
            // suppression; surface it so typos don't silently no-op.
            self.out.allows.push(Allow {
                line,
                col,
                rule: String::new(),
                reason: String::new(),
            });
            return;
        };
        let Some(close) = rest.find(')') else {
            self.out.allows.push(Allow {
                line,
                col,
                rule: String::new(),
                reason: String::new(),
            });
            return;
        };
        self.out.allows.push(Allow {
            line,
            col,
            rule: rest[..close].trim().to_string(),
            reason: rest[close + 1..].trim().to_string(),
        });
    }

    fn string(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek() {
            match c {
                '"' => {
                    self.bump();
                    break;
                }
                '\\' => {
                    text.push(self.bump().unwrap_or_default());
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                _ => text.push(self.bump().unwrap_or_default()),
            }
        }
        self.push(TokKind::Str, text, line, col);
    }

    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        // `'` then: escape → char; ident-char + `'` → char; else lifetime.
        let next = self.peek_at(1);
        let after = self.peek_at(2);
        let is_char = match next {
            Some('\\') => true,
            Some(c) if c.is_alphanumeric() || c == '_' => after == Some('\''),
            Some(_) => true, // e.g. '(' — punctuation chars are char literals
            None => false,
        };
        if !is_char {
            self.bump(); // '
            let mut text = String::from("'");
            while let Some(c) = self.peek() {
                if c.is_alphanumeric() || c == '_' {
                    text.push(self.bump().unwrap_or_default());
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, text, line, col);
            return;
        }
        self.bump(); // opening '
        let mut text = String::new();
        match self.peek() {
            Some('\\') => {
                text.push(self.bump().unwrap_or_default());
                match self.peek() {
                    // \u{...} escape: consume through the closing brace.
                    Some('u') => {
                        text.push(self.bump().unwrap_or_default());
                        while let Some(c) = self.bump() {
                            text.push(c);
                            if c == '}' {
                                break;
                            }
                        }
                    }
                    // \x7f and single-char escapes: take up to two chars
                    // then fall through to the closing-quote scan below.
                    Some(_) => {
                        text.push(self.bump().unwrap_or_default());
                    }
                    None => {}
                }
                while let Some(c) = self.peek() {
                    if c == '\'' {
                        break;
                    }
                    text.push(self.bump().unwrap_or_default());
                }
            }
            Some(_) => text.push(self.bump().unwrap_or_default()),
            None => {}
        }
        if self.peek() == Some('\'') {
            self.bump(); // closing '
        }
        self.push(TokKind::Char, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        // Raw identifier r#name: strip the fence, keep the name.
        if self.peek() == Some('r') && self.peek_at(1) == Some('#') {
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                text.push(self.bump().unwrap_or_default());
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut float = false;
        if self.peek() == Some('0') && matches!(self.peek_at(1), Some('x' | 'o' | 'b' | 'X')) {
            // Radix literal: digits, underscores and hex letters; a type
            // suffix (u8, i64, usize) rides along harmlessly.
            text.push(self.bump().unwrap_or_default());
            text.push(self.bump().unwrap_or_default());
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(self.bump().unwrap_or_default());
                } else {
                    break;
                }
            }
            self.push(TokKind::Int, text, line, col);
            return;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                text.push(self.bump().unwrap_or_default());
            } else {
                break;
            }
        }
        // Decimal point: only when not a range (`0..n`), a field/method
        // access (`1.max(2)`) or a tuple index.
        if self.peek() == Some('.') {
            let after = self.peek_at(1);
            let take = match after {
                Some('.') => false,
                Some(c) if c.is_alphabetic() || c == '_' => false,
                _ => true, // digit, EOF, `)`, `,` … — `1.` is a float
            };
            if take {
                float = true;
                text.push(self.bump().unwrap_or_default());
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(self.bump().unwrap_or_default());
                    } else {
                        break;
                    }
                }
            }
        }
        // Exponent.
        if matches!(self.peek(), Some('e' | 'E')) {
            let (sign, first_digit) = (self.peek_at(1), self.peek_at(2));
            let has_exp = match sign {
                Some(c) if c.is_ascii_digit() => true,
                Some('+' | '-') => matches!(first_digit, Some(d) if d.is_ascii_digit()),
                _ => false,
            };
            if has_exp {
                float = true;
                text.push(self.bump().unwrap_or_default());
                if matches!(self.peek(), Some('+' | '-')) {
                    text.push(self.bump().unwrap_or_default());
                }
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(self.bump().unwrap_or_default());
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix (f64 makes it a float; u32 keeps it an int).
        if matches!(self.peek(), Some(c) if c.is_alphabetic()) {
            let mut suffix = String::new();
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    suffix.push(self.bump().unwrap_or_default());
                } else {
                    break;
                }
            }
            if suffix == "f32" || suffix == "f64" {
                float = true;
            }
            text.push_str(&suffix);
        }
        let kind = if float { TokKind::Float } else { TokKind::Int };
        self.push(kind, text, line, col);
    }

    fn punct(&mut self, line: u32, col: u32) {
        for op in OPERATORS {
            if self
                .chars
                .get(self.pos..self.pos + op.len())
                .is_some_and(|w| w.iter().collect::<String>() == **op)
            {
                for _ in 0..op.len() {
                    self.bump();
                }
                self.push(TokKind::Punct, (*op).to_string(), line, col);
                return;
            }
        }
        let c = self.bump().unwrap_or_default();
        self.push(TokKind::Punct, c.to_string(), line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn lexes_idents_and_operators() {
        let t = kinds("let x == y != z :: w;");
        assert_eq!(t[0], (TokKind::Ident, "let".into()));
        assert_eq!(t[2], (TokKind::Punct, "==".into()));
        assert_eq!(t[4], (TokKind::Punct, "!=".into()));
        assert_eq!(t[6], (TokKind::Punct, "::".into()));
    }

    #[test]
    fn distinguishes_floats_from_ints_and_ranges() {
        assert_eq!(kinds("1.0")[0].0, TokKind::Float);
        assert_eq!(kinds("1e-3")[0].0, TokKind::Float);
        assert_eq!(kinds("2f64")[0].0, TokKind::Float);
        assert_eq!(kinds("42")[0].0, TokKind::Int);
        assert_eq!(kinds("0xff")[0].0, TokKind::Int);
        assert_eq!(kinds("7u64")[0].0, TokKind::Int);
        // `0..10` is int, range, int — not a float.
        let t = kinds("0..10");
        assert_eq!(t[0].0, TokKind::Int);
        assert_eq!(t[1], (TokKind::Punct, "..".into()));
        // `1.max(2)` is a method call on an integer literal.
        assert_eq!(kinds("1.max(2)")[0].0, TokKind::Int);
        // `1.` really is a float.
        assert_eq!(kinds("(1., 2)")[1].0, TokKind::Float);
    }

    #[test]
    fn strings_swallow_fake_tokens() {
        let t = kinds(r#"let s = "HashMap == 0.0 // not a comment";"#);
        assert!(t
            .iter()
            .all(|(k, x)| *k != TokKind::Ident || x != "HashMap"));
        assert_eq!(t[3].0, TokKind::Str);
    }

    #[test]
    fn raw_strings_with_fences() {
        let t = kinds(r###"let s = r#"quote " inside"#; x"###);
        assert_eq!(t[3], (TokKind::Str, "quote \" inside".into()));
        assert_eq!(t[5], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let t = kinds("r#type r#match");
        assert_eq!(t[0], (TokKind::Ident, "type".into()));
        assert_eq!(t[1], (TokKind::Ident, "match".into()));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let t = kinds("'a' 'x 'static '\\n' '\\u{1F600}' b'q'");
        assert_eq!(t[0].0, TokKind::Char);
        assert_eq!(t[1], (TokKind::Lifetime, "'x".into()));
        assert_eq!(t[2], (TokKind::Lifetime, "'static".into()));
        assert_eq!(t[3].0, TokKind::Char);
        assert_eq!(t[4].0, TokKind::Char);
        assert_eq!(t[5].0, TokKind::Char);
    }

    #[test]
    fn nested_block_comments_are_skipped() {
        let t = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(t.len(), 2);
        assert_eq!(t[1], (TokKind::Ident, "b".into()));
    }

    #[test]
    fn doc_comments_are_skipped() {
        let t = kinds("/// x.unwrap()\n//! HashMap\nfn f() {}");
        assert_eq!(t[0], (TokKind::Ident, "fn".into()));
    }

    #[test]
    fn positions_are_one_based() {
        let lx = lex("a\n  bb");
        assert_eq!((lx.tokens[0].line, lx.tokens[0].col), (1, 1));
        assert_eq!((lx.tokens[1].line, lx.tokens[1].col), (2, 3));
    }

    #[test]
    fn allow_comments_are_parsed() {
        let lx = lex("x; // pvtm-lint: allow(no-float-eq) sentinel is assigned, not computed\n");
        assert_eq!(lx.allows.len(), 1);
        assert_eq!(lx.allows[0].rule, "no-float-eq");
        assert_eq!(lx.allows[0].reason, "sentinel is assigned, not computed");
        assert_eq!(lx.allows[0].line, 1);
    }

    #[test]
    fn malformed_allow_is_recorded_with_empty_rule() {
        let lx = lex("// pvtm-lint: allw(no-float-eq) typo\n");
        assert_eq!(lx.allows.len(), 1);
        assert!(lx.allows[0].rule.is_empty());
    }
}
