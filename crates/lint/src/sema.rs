//! The semantic analysis pass: five rules over the AST, symbol table and
//! call graph, layered on top of the token rules.
//!
//! [`analyze_tree`] is the full pipeline the CLI runs: lex + parse every
//! walked file once, run the token rules, build [`Symbols`] and the call
//! graph, run the semantic rules, then resolve supersessions (a lexical
//! "cannot be checked" finding is dropped when the semantic pass *did*
//! check it through const resolution) and suppression comments. The five
//! semantic rules:
//!
//! - `rng-stream-discipline` — literal `substream(seed, stream)` collisions,
//!   RNGs captured across parallel-closure boundaries, and stream-id reuse
//!   across chunk loops.
//! - `panic-reachability` — panic sinks outside the policy crates that are
//!   reachable on the call graph from the policy crates' public API.
//! - `nondet-reduction` — float accumulation inside parallel chains that is
//!   not routed through an order-insensitive merge.
//! - `taxonomy-by-resolution` — telemetry names routed through consts,
//!   resolved and checked against the §5b/§5d registries.
//! - `knob-coverage` — two-way diff of `PVTM_*` reads against the
//!   documented registry.

use crate::callgraph::{self, Graph};
use crate::lexer::TokKind;
use crate::parser::{split_args, Tree};
use crate::rules::{self, Diagnostic, RuleId};
use crate::symbols::{self, path_segments, FileUnit, FnId, Symbols};
use crate::TreeLint;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;
use std::path::Path;

/// Parallel-iterator sources: a chain containing one runs on rayon.
const PAR_SOURCES: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_bridge",
    "par_chunks",
    "par_windows",
];

/// Adaptors whose closure arguments execute on worker threads.
const PAR_ADAPTORS: &[&str] = &[
    "map",
    "map_init",
    "map_with",
    "for_each",
    "for_each_init",
    "for_each_with",
    "filter",
    "filter_map",
    "flat_map",
    "fold",
    "try_fold",
    "reduce",
    "try_reduce",
    "try_for_each",
    "inspect",
    "update",
    "all",
    "any",
    "find_any",
    "position_any",
];

/// Identifiers whose presence in a `let` initialiser marks the binding as
/// an RNG value (must not be shared across parallel work items).
const RNG_MAKERS: &[&str] = &[
    "substream",
    "seeded_rng",
    "seed_from_u64",
    "from_seed",
    "from_entropy",
    "StdRng",
    "SmallRng",
];

/// Runs the full pass — token rules plus semantic rules — over the tree.
///
/// # Errors
///
/// Propagates I/O failures from the walk and file reads.
pub fn analyze_tree(root: &Path) -> io::Result<TreeLint> {
    let units = symbols::load_workspace(root)?;
    let syms = Symbols::build(&units);
    let graph = callgraph::build(&units, &syms);

    let mut per: Vec<Vec<Diagnostic>> = units
        .iter()
        .map(|u| {
            if rules::is_test_path(&u.rel) {
                Vec::new()
            } else {
                rules::token_diags(&u.rel, &u.lexed)
            }
        })
        .collect();
    // Lexical findings proven auditable by const resolution: (line, col,
    // rule) per unit, removed before suppression handling.
    let mut superseded: Vec<Vec<(u32, u32, RuleId)>> = vec![Vec::new(); units.len()];

    rng_stream_discipline(&units, &syms, &mut per);
    panic_reachability(&units, &syms, &graph, &mut per);
    nondet_reduction(&units, &mut per);
    taxonomy_by_resolution(&units, &syms, &mut per, &mut superseded);
    prom_metric_map(&units, &mut per);
    knob_coverage(&units, &syms, &mut per, &mut superseded);

    let mut diagnostics = Vec::new();
    for (i, unit) in units.iter().enumerate() {
        let sup = &superseded[i];
        per[i].retain(|d| {
            !sup.iter()
                .any(|&(l, c, r)| d.line == l && d.col == c && d.rule == r)
        });
        rules::apply_allows(&unit.rel, &unit.lexed.allows, &mut per[i]);
        diagnostics.append(&mut per[i]);
    }
    diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(TreeLint {
        files_scanned: units.len(),
        diagnostics,
    })
}

fn diag(unit: &FileUnit, line: u32, col: u32, rule: RuleId, message: String) -> Diagnostic {
    Diagnostic {
        file: unit.rel.clone(),
        line,
        col,
        rule,
        message,
    }
}

fn flatten_trees(trees: &[Tree]) -> String {
    let mut s = String::new();
    for t in trees {
        match t {
            Tree::Leaf(tok) => {
                if !s.is_empty() {
                    s.push(' ');
                }
                s.push_str(&tok.text);
            }
            Tree::Group(g) => {
                s.push(g.delim);
                s.push_str(&flatten_trees(&g.children));
                s.push(match g.delim {
                    '(' => ')',
                    '[' => ']',
                    _ => '}',
                });
            }
        }
    }
    s
}

fn contains_ident(trees: &[Tree], name: &str) -> bool {
    trees.iter().any(|t| match t {
        Tree::Leaf(tok) => tok.kind == TokKind::Ident && tok.text == name,
        Tree::Group(g) => contains_ident(&g.children, name),
    })
}

fn contains_float(trees: &[Tree]) -> bool {
    trees.iter().any(|t| match t {
        Tree::Leaf(tok) => tok.kind == TokKind::Float,
        Tree::Group(g) => contains_float(&g.children),
    })
}

/// Skips a `::<…>` turbofish starting at `i`; returns the index after it.
fn skip_turbofish(trees: &[Tree], i: usize) -> usize {
    if !(trees.get(i).is_some_and(|t| t.is_punct("::"))
        && trees.get(i + 1).is_some_and(|t| t.is_punct("<")))
    {
        return i;
    }
    let mut depth = 0i64;
    let mut k = i + 1;
    while k < trees.len() {
        if let Some(tok) = trees[k].leaf() {
            match tok.text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
        }
        k += 1;
        if depth <= 0 {
            return k;
        }
    }
    i
}

/// True when `trees[..i]` ends with a method chain that contains a rayon
/// parallel source. Scans backwards over chain-shaped elements only, so a
/// statement boundary (`=`, `;`, `,`) stops the search.
fn chain_is_parallel(trees: &[Tree], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &trees[j] {
            Tree::Group(g) if g.delim == '(' || g.delim == '[' => {}
            Tree::Leaf(tok) if tok.kind == TokKind::Ident => {
                if PAR_SOURCES.contains(&tok.text.as_str()) {
                    return true;
                }
            }
            Tree::Leaf(tok)
                if tok.kind == TokKind::Punct
                    && matches!(tok.text.as_str(), "." | "?" | "::" | "<" | ">" | ">>" | "&") => {}
            Tree::Leaf(tok) if tok.kind == TokKind::Int => {}
            _ => return false,
        }
    }
    false
}

/// Matches a path call `a::b::f(…)` whose leading ident is at `i` (caller
/// must ensure `trees[i-1]` is not `.`). Returns (segments, position of the
/// last segment, index of the argument group).
fn path_call_at(trees: &[Tree], i: usize) -> Option<(Vec<String>, (u32, u32), usize)> {
    let first = trees[i].leaf().filter(|t| t.kind == TokKind::Ident)?;
    let mut segs = vec![first.text.clone()];
    let mut pos = (first.line, first.col);
    let mut k = i + 1;
    while trees.get(k).is_some_and(|t| t.is_punct("::")) {
        let Some(next) = trees
            .get(k + 1)
            .and_then(Tree::leaf)
            .filter(|t| t.kind == TokKind::Ident)
        else {
            break;
        };
        segs.push(next.text.clone());
        pos = (next.line, next.col);
        k += 2;
    }
    let after = skip_turbofish(trees, k);
    let g = trees.get(after).and_then(Tree::group)?;
    if g.delim != '(' {
        return None;
    }
    Some((segs, pos, after))
}

// ------------------------------------------------- rng-stream-discipline

struct SubSite {
    unit: usize,
    line: u32,
    col: u32,
    seed: Option<u128>,
    seed_text: String,
    stream: Option<u128>,
    fn_key: (usize, usize),
    /// (for-loop line, loop var) when the stream argument is the loop var.
    in_loop: Option<u32>,
}

struct RngWalk<'a> {
    units: &'a [FileUnit],
    syms: &'a Symbols,
    unit_idx: usize,
    mod_path: &'a [String],
    fn_key: (usize, usize),
    /// Scope stack of RNG-tainted binding names.
    frames: Vec<Vec<String>>,
    /// (frame depth, group position) at each parallel-closure entry.
    boundaries: Vec<(usize, (u32, u32))>,
    /// Enclosing `for` loops: (line of `for`, loop variable).
    loops: Vec<(u32, String)>,
    sites: &'a mut Vec<SubSite>,
    /// Capture findings: (line, col, name).
    captures: &'a mut Vec<(usize, u32, u32, String)>,
    /// Dedup: one capture finding per (parallel group, name).
    flagged: BTreeSet<((u32, u32), String)>,
}

impl RngWalk<'_> {
    fn unit(&self) -> &FileUnit {
        &self.units[self.unit_idx]
    }

    fn walk(&mut self, trees: &[Tree]) {
        let mut i = 0usize;
        while i < trees.len() {
            // `for <var> in <iter> { … }` with a simple ident pattern.
            if trees[i].is_ident("for") {
                if let Some(var) = trees
                    .get(i + 1)
                    .and_then(Tree::leaf)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
                {
                    let mut b = i + 2;
                    while b < trees.len()
                        && !trees[b].is_punct(";")
                        && trees[b].group().is_none_or(|g| g.delim != '{')
                    {
                        b += 1;
                    }
                    if let Some(body) = trees.get(b).and_then(Tree::group) {
                        let (line, _) = trees[i].pos();
                        self.walk(&trees[i + 2..b]);
                        self.loops.push((line, var));
                        self.frames.push(Vec::new());
                        self.walk(&body.children);
                        self.frames.pop();
                        self.loops.pop();
                        i = b + 1;
                        continue;
                    }
                }
            }
            // `let [mut] name = <rhs containing an RNG maker>;`
            if trees[i].is_ident("let") {
                let mut j = i + 1;
                if trees.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                if let Some(name) = trees
                    .get(j)
                    .and_then(Tree::leaf)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
                {
                    let mut eq = j + 1;
                    while eq < trees.len() && !trees[eq].is_punct("=") && !trees[eq].is_punct(";") {
                        eq += 1;
                    }
                    let mut end = eq;
                    while end < trees.len() && !trees[end].is_punct(";") {
                        end += 1;
                    }
                    if eq < end {
                        let rhs = &trees[eq + 1..end];
                        if RNG_MAKERS.iter().any(|m| contains_ident(rhs, m)) {
                            if let Some(frame) = self.frames.last_mut() {
                                frame.push(name);
                            }
                        }
                    }
                }
                i += 1; // rhs still gets scanned generically
                continue;
            }
            // Parallel-adaptor closure boundary: `.adaptor(…)` on a chain
            // that contains a rayon source.
            if trees[i].is_punct(".") {
                if let Some(m) = trees
                    .get(i + 1)
                    .and_then(Tree::leaf)
                    .filter(|t| t.kind == TokKind::Ident && PAR_ADAPTORS.contains(&t.text.as_str()))
                {
                    let _ = m;
                    let after = skip_turbofish(trees, i + 2);
                    let par = trees
                        .get(after)
                        .and_then(Tree::group)
                        .is_some_and(|g| g.delim == '(')
                        && chain_is_parallel(trees, i);
                    if par {
                        let g = trees[after].group().unwrap();
                        self.boundaries.push((self.frames.len(), (g.line, g.col)));
                        self.frames.push(Vec::new());
                        self.walk(&g.children);
                        self.frames.pop();
                        self.boundaries.pop();
                        i = after + 1;
                        continue;
                    }
                }
                // Other `.name` — skip the name so it is not read as a use.
                i += 2;
                continue;
            }
            // `…::substream(seed, stream)` sites.
            if trees[i].leaf().is_some_and(|t| t.kind == TokKind::Ident) {
                if let Some((segs, pos, gidx)) = path_call_at(trees, i) {
                    if segs.last().is_some_and(|s| s == "substream") {
                        let g = trees[gidx].group().unwrap();
                        let args = split_args(&g.children);
                        if args.len() == 2 {
                            self.record_site(pos, args[0], args[1]);
                        }
                        i = gidx; // args group is scanned generically below
                        continue;
                    }
                    // A path that is not substream: step past the segments
                    // (avoids reading path segments as local uses).
                    i += 2 * segs.len() - 1;
                    continue;
                }
                // Plain ident: a potential use of a captured RNG.
                self.check_use(trees, i);
                i += 1;
                continue;
            }
            if let Some(g) = trees[i].group() {
                self.frames.push(Vec::new());
                self.walk(&g.children);
                self.frames.pop();
            }
            i += 1;
        }
    }

    fn record_site(&mut self, pos: (u32, u32), seed_arg: &[Tree], stream_arg: &[Tree]) {
        let unit = self.unit();
        let seed = self
            .syms
            .resolve_int(self.units, unit, self.mod_path, seed_arg);
        let stream = self
            .syms
            .resolve_int(self.units, unit, self.mod_path, stream_arg);
        let in_loop = match stream_arg {
            [t] => t.leaf().filter(|t| t.kind == TokKind::Ident).and_then(|t| {
                self.loops
                    .iter()
                    .rev()
                    .find(|(_, v)| *v == t.text)
                    .map(|(l, _)| *l)
            }),
            _ => None,
        };
        self.sites.push(SubSite {
            unit: self.unit_idx,
            line: pos.0,
            col: pos.1,
            seed,
            seed_text: flatten_trees(seed_arg),
            stream,
            fn_key: self.fn_key,
            in_loop,
        });
    }

    fn check_use(&mut self, trees: &[Tree], i: usize) {
        let Some(&(boundary_depth, group_pos)) = self.boundaries.last() else {
            return;
        };
        // Path segments are not local uses.
        if trees.get(i + 1).is_some_and(|t| t.is_punct("::"))
            || (i > 0 && trees[i - 1].is_punct("::"))
        {
            return;
        }
        let name = &trees[i].leaf().unwrap().text;
        let bound_outside = self.frames[..boundary_depth]
            .iter()
            .any(|f| f.iter().any(|b| b == name));
        let bound_inside = self.frames[boundary_depth..]
            .iter()
            .any(|f| f.iter().any(|b| b == name));
        if bound_outside && !bound_inside {
            let (line, col) = trees[i].pos();
            if self.flagged.insert((group_pos, name.clone())) {
                self.captures.push((self.unit_idx, line, col, name.clone()));
            }
        }
    }
}

fn rng_stream_discipline(units: &[FileUnit], syms: &Symbols, per: &mut [Vec<Diagnostic>]) {
    let mut sites: Vec<SubSite> = Vec::new();
    let mut captures: Vec<(usize, u32, u32, String)> = Vec::new();
    for (u, unit) in units.iter().enumerate() {
        if rules::is_test_path(&unit.rel) {
            continue;
        }
        for (d, f) in unit.ast.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let Some(body) = &f.body else { continue };
            let mut walk = RngWalk {
                units,
                syms,
                unit_idx: u,
                mod_path: &f.mod_path,
                fn_key: (u, d),
                frames: vec![Vec::new()],
                boundaries: Vec::new(),
                loops: Vec::new(),
                sites: &mut sites,
                captures: &mut captures,
                flagged: BTreeSet::new(),
            };
            walk.walk(&body.children);
        }
    }

    // (b) RNGs captured across a parallel-closure boundary.
    for (u, line, col, name) in captures {
        per[u].push(diag(
            &units[u],
            line,
            col,
            RuleId::RngStreamDiscipline,
            format!(
                "RNG `{name}` is captured by a parallel closure; worker threads would share \
                 one stream nondeterministically — derive a per-item RNG with \
                 `substream(seed, item_index)` inside the closure"
            ),
        ));
    }

    // (a) Literal (seed, stream) collisions across the workspace.
    let mut by_pair: BTreeMap<(u128, u128), Vec<usize>> = BTreeMap::new();
    for (i, s) in sites.iter().enumerate() {
        if let (Some(seed), Some(stream)) = (s.seed, s.stream) {
            by_pair.entry((seed, stream)).or_default().push(i);
        }
    }
    for ((seed, stream), mut group) in by_pair {
        if group.len() < 2 {
            continue;
        }
        group.sort_by(|&a, &b| {
            (&units[sites[a].unit].rel, sites[a].line, sites[a].col).cmp(&(
                &units[sites[b].unit].rel,
                sites[b].line,
                sites[b].col,
            ))
        });
        let first = &sites[group[0]];
        let anchor = format!("{}:{}", units[first.unit].rel, first.line);
        for &i in &group[1..] {
            let s = &sites[i];
            per[s.unit].push(diag(
                &units[s.unit],
                s.line,
                s.col,
                RuleId::RngStreamDiscipline,
                format!(
                    "`substream` stream id {stream} for seed {seed} collides with {anchor}; \
                     every independent RNG consumer needs a distinct stream id within a seed \
                     scope"
                ),
            ));
        }
    }

    // (c) Stream-id ranges reused across multiple chunk loops.
    let mut by_seed: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, s) in sites.iter().enumerate() {
        if s.in_loop.is_some() {
            let key = match s.seed {
                Some(v) => format!("#{v}"),
                None => format!("{}:{}:{}", s.fn_key.0, s.fn_key.1, s.seed_text),
            };
            by_seed.entry(key).or_default().push(i);
        }
    }
    for (_, mut group) in by_seed {
        let loops: BTreeSet<u32> = group.iter().filter_map(|&i| sites[i].in_loop).collect();
        if loops.len() < 2 {
            continue;
        }
        group.sort_by(|&a, &b| {
            (&units[sites[a].unit].rel, sites[a].line, sites[a].col).cmp(&(
                &units[sites[b].unit].rel,
                sites[b].line,
                sites[b].col,
            ))
        });
        let first_loop = sites[group[0]].in_loop.unwrap();
        for &i in &group[1..] {
            let s = &sites[i];
            if s.in_loop == Some(first_loop) {
                continue;
            }
            per[s.unit].push(diag(
                &units[s.unit],
                s.line,
                s.col,
                RuleId::RngStreamDiscipline,
                format!(
                    "chunk loop re-derives the stream ids of seed `{}` already consumed by \
                     the loop at line {first_loop}; offset the stream id (e.g. \
                     `substream(seed, base + idx)`) so samples stay independent",
                    s.seed_text
                ),
            ));
        }
    }
}

// --------------------------------------------------- panic-reachability

fn panic_reachability(
    units: &[FileUnit],
    syms: &Symbols,
    graph: &Graph,
    per: &mut [Vec<Diagnostic>],
) {
    let policy = |rel: &str| {
        rules::PANIC_POLICY_PREFIXES
            .iter()
            .any(|p| rel.starts_with(p))
    };
    let n = syms.fns.len();
    let is_test_fn = |id: usize| units[syms.fns[id].unit].ast.fns[syms.fns[id].def].is_test;

    // Entry points: unrestricted-pub functions of the policy crates.
    let mut entries: Vec<usize> = (0..n)
        .filter(|&id| {
            let sym = &syms.fns[id];
            let def = &units[sym.unit].ast.fns[sym.def];
            def.is_pub && !def.is_test && policy(&units[sym.unit].rel)
        })
        .collect();
    entries.sort_by_key(|&id| syms.path_of(FnId(id)).to_string());

    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &e in &entries {
        if !seen[e] {
            seen[e] = true;
            queue.push_back(e);
        }
    }
    while let Some(f) = queue.pop_front() {
        for &FnId(g) in &graph.calls[f] {
            if !seen[g] && !is_test_fn(g) {
                seen[g] = true;
                parent[g] = Some(f);
                queue.push_back(g);
            }
        }
    }

    for (id, &reached) in seen.iter().enumerate() {
        if !reached {
            continue;
        }
        let sym = &syms.fns[id];
        let rel = &units[sym.unit].rel;
        // Sinks inside the policy crates are the lexical rule's job;
        // examples are leaf demo binaries, never linked under the API.
        if policy(rel) || rel.starts_with("examples/") {
            continue;
        }
        if graph.sinks[id].is_empty() {
            continue;
        }
        // Shortest example chain from an entry point, via BFS parents.
        let mut chain = vec![id];
        while let Some(p) = parent[*chain.last().unwrap()] {
            chain.push(p);
        }
        chain.reverse();
        let shown = chain
            .iter()
            .map(|&f| syms.path_of(FnId(f)))
            .collect::<Vec<_>>()
            .join(" -> ");
        for sink in &graph.sinks[id] {
            per[sym.unit].push(diag(
                &units[sym.unit],
                sink.line,
                sink.col,
                RuleId::PanicReachability,
                format!(
                    "`{}` is reachable from public API ({shown}); return an error, or \
                     justify with `// pvtm-lint: allow(panic-reachability) <invariant>` \
                     at this sink (one allow covers every caller)",
                    sink.what
                ),
            ));
        }
    }
}

// ---------------------------------------------------- nondet-reduction

fn nondet_reduction(units: &[FileUnit], per: &mut [Vec<Diagnostic>]) {
    for (u, unit) in units.iter().enumerate() {
        if rules::is_test_path(&unit.rel) {
            continue;
        }
        for f in &unit.ast.fns {
            if f.is_test {
                continue;
            }
            if let Some(body) = &f.body {
                let mut found = Vec::new();
                nondet_scan(&body.children, &mut found);
                for (line, col, msg) in found {
                    per[u].push(diag(unit, line, col, RuleId::NondetReduction, msg));
                }
            }
        }
    }
}

fn nondet_scan(trees: &[Tree], out: &mut Vec<(u32, u32, String)>) {
    let mut i = 0usize;
    while i < trees.len() {
        if trees[i].is_punct(".") {
            if let Some(m) = trees
                .get(i + 1)
                .and_then(Tree::leaf)
                .filter(|t| t.kind == TokKind::Ident)
            {
                let name = m.text.clone();
                let (line, col) = (m.line, m.col);
                let after = skip_turbofish(trees, i + 2);
                let has_args = trees
                    .get(after)
                    .and_then(Tree::group)
                    .is_some_and(|g| g.delim == '(');
                if has_args && chain_is_parallel(trees, i) {
                    match name.as_str() {
                        "sum" if float_sum(trees, i, after) => out.push((
                            line,
                            col,
                            "parallel float `sum()` adds in work-stealing order and is not \
                             bit-reproducible; accumulate per chunk and merge through \
                             `Summary::merge` (or an equivalent order-fixed reduction)"
                                .to_string(),
                        )),
                        "reduce" | "fold" => {
                            let g = trees[after].group().unwrap();
                            if contains_float(&g.children)
                                && !contains_ident(&g.children, "merge")
                                && !contains_ident(&g.children, "Summary")
                            {
                                out.push((
                                    line,
                                    col,
                                    format!(
                                        "parallel float `{name}` combines partial results in \
                                         scheduling order; route the accumulation through \
                                         `Summary::merge` (order-fixed) instead"
                                    ),
                                ));
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        if let Some(g) = trees[i].group() {
            nondet_scan(&g.children, out);
        }
        i += 1;
    }
}

/// Is this `.sum` a float sum? Either `::<f64>()` turbofish, or the chain
/// is bound by a float-annotated `let`.
fn float_sum(trees: &[Tree], dot: usize, group_idx: usize) -> bool {
    if group_idx > dot + 2 {
        // Turbofish present: `.sum :: < ty > (…)`.
        let ty = trees[dot + 4..group_idx].iter().find_map(|t| {
            t.leaf()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.as_str())
        });
        return matches!(ty, Some("f64" | "f32"));
    }
    // Walk back past the chain to the statement head: `let name : fNN =`.
    let mut j = dot;
    while j > 0 {
        let prev = &trees[j - 1];
        let chainish = match prev {
            Tree::Group(g) => g.delim == '(' || g.delim == '[',
            Tree::Leaf(tok) => {
                tok.kind == TokKind::Ident
                    || tok.kind == TokKind::Int
                    || matches!(tok.text.as_str(), "." | "?" | "::" | "<" | ">" | ">>" | "&")
            }
        };
        if !chainish {
            break;
        }
        j -= 1;
    }
    j >= 1
        && trees[j - 1].is_punct("=")
        && j >= 2
        && trees[j - 2]
            .leaf()
            .is_some_and(|t| t.text == "f64" || t.text == "f32")
}

// ----------------------------------------------- taxonomy-by-resolution

fn taxonomy_by_resolution(
    units: &[FileUnit],
    syms: &Symbols,
    per: &mut [Vec<Diagnostic>],
    superseded: &mut [Vec<(u32, u32, RuleId)>],
) {
    for (u, unit) in units.iter().enumerate() {
        if rules::is_test_path(&unit.rel) {
            continue;
        }
        for f in &unit.ast.fns {
            if f.is_test {
                continue;
            }
            if let Some(body) = &f.body {
                taxonomy_scan(
                    units,
                    syms,
                    u,
                    unit,
                    &f.mod_path,
                    &body.children,
                    per,
                    superseded,
                );
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn taxonomy_scan(
    units: &[FileUnit],
    syms: &Symbols,
    u: usize,
    unit: &FileUnit,
    mod_path: &[String],
    trees: &[Tree],
    per: &mut [Vec<Diagnostic>],
    superseded: &mut [Vec<(u32, u32, RuleId)>],
) {
    for (i, t) in trees.iter().enumerate() {
        if let Some(g) = t.group() {
            taxonomy_scan(units, syms, u, unit, mod_path, &g.children, per, superseded);
            continue;
        }
        // `…::<telemetry fn>(NAME_CONST, …)`.
        if !t.is_punct("::") {
            continue;
        }
        let Some(callee) = trees
            .get(i + 1)
            .and_then(Tree::leaf)
            .filter(|t| t.kind == TokKind::Ident)
        else {
            continue;
        };
        let Some(kind) = rules::telemetry_kind(&callee.text) else {
            continue;
        };
        let Some(g) = trees
            .get(i + 2)
            .and_then(Tree::group)
            .filter(|g| g.delim == '(')
        else {
            continue;
        };
        let args = split_args(&g.children);
        let Some(arg0) = args.first() else { continue };
        // Literal names are the lexical rule's territory.
        if let [one] = arg0 {
            if one.leaf().is_some_and(|t| t.kind == TokKind::Str) {
                continue;
            }
        }
        let Some(segs) = path_segments(arg0) else {
            continue;
        };
        let Some(name) = syms.resolve_str(units, unit, mod_path, arg0) else {
            continue;
        };
        // Resolution succeeded: the lexical "non-literal name cannot be
        // checked" finding at this call is superseded either way.
        superseded[u].push((callee.line, callee.col, RuleId::TelemetryTaxonomy));
        if let Some(problem) = rules::taxonomy_problem(kind, &name) {
            per[u].push(diag(
                unit,
                callee.line,
                callee.col,
                RuleId::TaxonomyResolution,
                format!(
                    "{problem} (name resolved through const `{}`)",
                    segs.join("::")
                ),
            ));
        }
    }
}

// ------------------------------------------------------- prom-name maps

/// Validates Prometheus name-mapping registries: every non-test const
/// named `PROM_METRIC_MAP` with a `&[(&str, &str)]` shape. The left side
/// of each pair must sit inside the §5b metric taxonomy, and the right
/// side must be its mechanical mangle (`pvtm_` + the name with `.` →
/// `_`) — the exposition format exports §5b names, it never invents new
/// ones.
fn prom_metric_map(units: &[FileUnit], per: &mut [Vec<Diagnostic>]) {
    for (u, unit) in units.iter().enumerate() {
        if rules::is_test_path(&unit.rel) {
            continue;
        }
        for c in &unit.ast.consts {
            if c.name != "PROM_METRIC_MAP" || c.is_test {
                continue;
            }
            let crate::ast::ConstValue::StrPairList(pairs) = &c.value else {
                continue;
            };
            for (metric, prom) in pairs {
                if let Some(problem) = rules::taxonomy_problem("metric", &metric.value) {
                    per[u].push(diag(
                        unit,
                        metric.line,
                        metric.col,
                        RuleId::TaxonomyResolution,
                        format!("{problem} (entry of `PROM_METRIC_MAP`)"),
                    ));
                }
                let expected = format!("pvtm_{}", metric.value.replace('.', "_"));
                if prom.value != expected {
                    per[u].push(diag(
                        unit,
                        prom.line,
                        prom.col,
                        RuleId::TaxonomyResolution,
                        format!(
                            "Prometheus name \"{}\" is not the mechanical mangle of \
                             \"{}\" (expected \"{expected}\"); `PROM_METRIC_MAP` must \
                             track §5b names, not invent new ones",
                            prom.value, metric.value
                        ),
                    ));
                }
            }
        }
    }
}

// --------------------------------------------------------- knob-coverage

fn is_knob_shape(s: &str) -> bool {
    s.strip_prefix("PVTM_").is_some_and(|rest| {
        !rest.is_empty()
            && rest
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
    })
}

fn knob_coverage(
    units: &[FileUnit],
    syms: &Symbols,
    per: &mut [Vec<Diagnostic>],
    superseded: &mut [Vec<(u32, u32, RuleId)>],
) {
    // The registry: every non-test `DOCUMENTED_ENV_KNOBS` string-list const
    // in the analyzed tree. Its entry positions anchor stale-doc findings;
    // a tree without one (minimal fixtures) falls back to the compiled-in
    // registry, losing only the stale direction.
    let mut entries: Vec<(usize, String, u32, u32)> = Vec::new();
    for (u, unit) in units.iter().enumerate() {
        for c in &unit.ast.consts {
            if c.name != "DOCUMENTED_ENV_KNOBS" || c.is_test {
                continue;
            }
            if let crate::ast::ConstValue::StrList(list) = &c.value {
                for e in list {
                    entries.push((u, e.value.clone(), e.line, e.col));
                }
            }
        }
    }
    let documented: BTreeSet<String> = if entries.is_empty() {
        rules::DOCUMENTED_ENV_KNOBS
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        entries.iter().map(|(_, v, _, _)| v.clone()).collect()
    };

    // Reads: every knob-shaped string in walked non-test code, except the
    // registry entries themselves.
    let mut reads: BTreeSet<String> = BTreeSet::new();
    let mut read_sites: Vec<(usize, u32, u32, String)> = Vec::new();
    for (u, unit) in units.iter().enumerate() {
        if rules::is_test_path(&unit.rel) {
            continue;
        }
        let regions = rules::test_regions(&unit.lexed.tokens);
        let in_test = |idx: usize| regions.iter().any(|&(s, e)| s <= idx && idx <= e);
        for (idx, tok) in unit.lexed.tokens.iter().enumerate() {
            if tok.kind != TokKind::Str || !is_knob_shape(&tok.text) || in_test(idx) {
                continue;
            }
            if entries
                .iter()
                .any(|&(eu, _, l, c)| eu == u && l == tok.line && c == tok.col)
            {
                continue;
            }
            reads.insert(tok.text.clone());
            read_sites.push((u, tok.line, tok.col, tok.text.clone()));
        }
    }

    // `env::var(CONST)` sites: resolving the const supersedes the lexical
    // "non-literal name cannot be audited" finding and counts as a read.
    for (u, unit) in units.iter().enumerate() {
        if rules::is_test_path(&unit.rel) {
            continue;
        }
        for f in &unit.ast.fns {
            if f.is_test {
                continue;
            }
            if let Some(body) = &f.body {
                env_const_scan(
                    units,
                    syms,
                    u,
                    unit,
                    &f.mod_path,
                    &body.children,
                    &mut reads,
                    superseded,
                );
            }
        }
    }

    // Direction 1: reads of undocumented knobs.
    for (u, line, col, name) in read_sites {
        if !documented.contains(&name) {
            per[u].push(diag(
                &units[u],
                line,
                col,
                RuleId::KnobCoverage,
                format!(
                    "environment knob `{name}` is used but not in `DOCUMENTED_ENV_KNOBS`; \
                     document it (README knob table) and register it, or drop the read"
                ),
            ));
        }
    }

    // Direction 2: documented knobs nothing reads.
    for (u, name, line, col) in entries {
        if !reads.contains(&name) {
            per[u].push(diag(
                &units[u],
                line,
                col,
                RuleId::KnobCoverage,
                format!(
                    "documented knob `{name}` is never read by walked code; delete the \
                     registry entry or wire the read it promises"
                ),
            ));
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn env_const_scan(
    units: &[FileUnit],
    syms: &Symbols,
    u: usize,
    unit: &FileUnit,
    mod_path: &[String],
    trees: &[Tree],
    reads: &mut BTreeSet<String>,
    superseded: &mut [Vec<(u32, u32, RuleId)>],
) {
    for (i, t) in trees.iter().enumerate() {
        if let Some(g) = t.group() {
            env_const_scan(
                units,
                syms,
                u,
                unit,
                mod_path,
                &g.children,
                reads,
                superseded,
            );
            continue;
        }
        // `env :: var|var_os ( ARG )`.
        if !t.is_ident("env") || !trees.get(i + 1).is_some_and(|t| t.is_punct("::")) {
            continue;
        }
        let Some(callee) = trees
            .get(i + 2)
            .and_then(Tree::leaf)
            .filter(|t| t.kind == TokKind::Ident && (t.text == "var" || t.text == "var_os"))
        else {
            continue;
        };
        let Some(g) = trees
            .get(i + 3)
            .and_then(Tree::group)
            .filter(|g| g.delim == '(')
        else {
            continue;
        };
        let args = split_args(&g.children);
        let Some(arg0) = args.first() else { continue };
        if let [one] = arg0 {
            if one.leaf().is_some_and(|t| t.kind == TokKind::Str) {
                continue; // literal: lexical rule audits it
            }
        }
        if let Some(name) = syms.resolve_str(units, unit, mod_path, arg0) {
            superseded[u].push((callee.line, callee.col, RuleId::NoEnvRead));
            reads.insert(name);
        }
    }
}
