//! Item extraction: a lightweight AST over the token tree.
//!
//! The semantic rules need three things the token tree does not name:
//! which functions exist (with visibility and test status), which consts
//! hold literal values that call sites route names through, and what the
//! `use` declarations alias. This module walks the top level of each
//! module — it deliberately does not descend into function bodies, struct
//! fields or macro definitions — and records exactly those items. Like the
//! lexer and the parser it is infallible: grammar it does not model is
//! skipped, never mis-extracted.

use crate::lexer::TokKind;
use crate::parser::{int_value, split_args, Group, Tree};

/// Extracted items of one file.
#[derive(Debug, Default)]
pub struct FileAst {
    /// Free functions, inherent/trait methods and trait default methods.
    pub fns: Vec<FnDef>,
    /// `const` and `static` items with their literal values when resolvable.
    pub consts: Vec<ConstDef>,
    /// Fully expanded `use` declarations (one entry per bound name).
    pub uses: Vec<UseDef>,
}

/// One function definition.
#[derive(Debug)]
pub struct FnDef {
    /// In-file module path (`mod a { mod b { … } }` → `["a", "b"]`).
    pub mod_path: Vec<String>,
    /// Enclosing `impl`/`trait` type name, if this is a method.
    pub self_type: Option<String>,
    /// Function name.
    pub name: String,
    /// True only for unrestricted `pub` (not `pub(crate)` etc.).
    pub is_pub: bool,
    /// True inside `#[test]` / `#[cfg(test)]` context.
    pub is_test: bool,
    /// 1-based position of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Body block; `None` for trait signatures and extern decls.
    pub body: Option<Group>,
}

/// Literal value of a const, as far as the extractor resolves it.
#[derive(Debug)]
pub enum ConstValue {
    /// Integer literal.
    Int(u128),
    /// String literal.
    Str(String),
    /// `&[&str]`-shaped list; each entry keeps its own position so rules
    /// can anchor diagnostics at individual registry entries.
    StrList(Vec<StrEntry>),
    /// `&[(&str, &str)]`-shaped list of string pairs (name-mapping
    /// registries like `PROM_METRIC_MAP`); both sides keep positions.
    StrPairList(Vec<(StrEntry, StrEntry)>),
    /// Anything else (expressions, non-literal initialisers).
    Other,
}

/// One string entry of a [`ConstValue::StrList`].
#[derive(Debug)]
pub struct StrEntry {
    /// The string contents.
    pub value: String,
    /// 1-based line of the literal.
    pub line: u32,
    /// 1-based column of the literal.
    pub col: u32,
}

/// One `const`/`static` item.
#[derive(Debug)]
pub struct ConstDef {
    /// In-file module path.
    pub mod_path: Vec<String>,
    /// Item name.
    pub name: String,
    /// Literal value when the initialiser is one.
    pub value: ConstValue,
    /// 1-based line of the name.
    pub line: u32,
    /// 1-based column of the name.
    pub col: u32,
    /// True inside test context.
    pub is_test: bool,
}

/// One name bound by a `use` declaration.
#[derive(Debug)]
pub struct UseDef {
    /// In-file module path of the declaration.
    pub mod_path: Vec<String>,
    /// The name visible in this module (the alias after `as`, else the
    /// last path segment).
    pub alias: String,
    /// Full target path segments (first may be `crate`/`self`/`super` or
    /// an extern crate name).
    pub target: Vec<String>,
}

/// Extracts the items of one file from its token trees.
pub fn extract(trees: &[Tree]) -> FileAst {
    let mut out = FileAst::default();
    walk_items(trees, &mut Scope::default(), &mut out);
    out
}

#[derive(Default, Clone)]
struct Scope {
    mod_path: Vec<String>,
    self_type: Option<String>,
    in_test: bool,
}

/// Flattens a group to compact text (`cfg(test)`), for attribute matching.
fn flatten(g: &Group) -> String {
    let mut s = String::new();
    flatten_into(&g.children, &mut s);
    s
}

fn flatten_into(trees: &[Tree], s: &mut String) {
    for t in trees {
        match t {
            Tree::Leaf(tok) => s.push_str(&tok.text),
            Tree::Group(g) => {
                s.push(g.delim);
                flatten_into(&g.children, s);
                s.push(match g.delim {
                    '(' => ')',
                    '[' => ']',
                    _ => '}',
                });
            }
        }
    }
}

/// Mirrors `rules::test_regions` semantics on a flattened attribute:
/// `test`, `cfg(test)`, `cfg(all(test, …))` are test context; anything
/// mentioning `not` is conservatively not.
fn attr_is_test(attr: &str) -> bool {
    attr.contains("test") && !attr.contains("not")
}

fn ident_text(t: &Tree) -> Option<&str> {
    t.leaf()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
}

fn walk_items(trees: &[Tree], scope: &mut Scope, out: &mut FileAst) {
    let mut i = 0usize;
    let mut attrs: Vec<String> = Vec::new();
    let mut is_pub = false;
    while i < trees.len() {
        // Attributes: `#[…]` / `#![…]`.
        if trees[i].is_punct("#") {
            let mut j = i + 1;
            if trees.get(j).is_some_and(|t| t.is_punct("!")) {
                j += 1;
            }
            if let Some(g) = trees
                .get(j)
                .and_then(Tree::group)
                .filter(|g| g.delim == '[')
            {
                attrs.push(flatten(g));
                i = j + 1;
                continue;
            }
        }
        let word = ident_text(&trees[i]);
        match word {
            Some("pub") => {
                is_pub = true;
                if trees
                    .get(i + 1)
                    .and_then(Tree::group)
                    .is_some_and(|g| g.delim == '(')
                {
                    is_pub = false; // pub(crate) and friends are not public API
                    i += 1;
                }
                i += 1;
                continue;
            }
            // Qualifiers that may precede an item keyword.
            Some("unsafe" | "async" | "default" | "extern") => {
                i += 1;
                continue;
            }
            Some("fn") => {
                i = take_fn(trees, i, scope, is_pub, &attrs, out);
            }
            Some("const" | "static")
                if ident_text(trees.get(i + 1).unwrap_or(&trees[i])) != Some("fn") =>
            {
                i = take_const(trees, i, scope, &attrs, out);
            }
            Some("use") => {
                i = take_use(trees, i, scope, out);
            }
            Some("mod") => {
                i = take_mod(trees, i, scope, &attrs, out);
            }
            Some("impl" | "trait") => {
                i = take_impl(trees, i, scope, &attrs, out);
            }
            _ => {
                // `const fn` reaches here via the guard above: `const` is a
                // qualifier then, handled by falling through to `fn` next.
                if word == Some("const") {
                    i += 1;
                    continue;
                }
                attrs.clear();
                is_pub = false;
                i += 1;
                continue;
            }
        }
        attrs.clear();
        is_pub = false;
    }
}

/// Scans forward from `i` for the item's first top-level `{…}` body group,
/// stopping at a `;`. Returns (body, index after the item).
fn find_body(trees: &[Tree], i: usize) -> (Option<Group>, usize) {
    let mut k = i;
    while k < trees.len() {
        if trees[k].is_punct(";") {
            return (None, k + 1);
        }
        if let Some(g) = trees[k].group() {
            if g.delim == '{' {
                return (Some(g.clone()), k + 1);
            }
        }
        k += 1;
    }
    (None, k)
}

fn take_fn(
    trees: &[Tree],
    i: usize,
    scope: &Scope,
    is_pub: bool,
    attrs: &[String],
    out: &mut FileAst,
) -> usize {
    let (line, col) = trees[i].pos();
    let Some(name) = trees.get(i + 1).and_then(ident_text) else {
        return i + 1;
    };
    let (body, next) = find_body(trees, i + 2);
    out.fns.push(FnDef {
        mod_path: scope.mod_path.clone(),
        self_type: scope.self_type.clone(),
        name: name.to_string(),
        is_pub,
        is_test: scope.in_test || attrs.iter().any(|a| attr_is_test(a)),
        line,
        col,
        body,
    });
    next
}

fn take_const(
    trees: &[Tree],
    i: usize,
    scope: &Scope,
    attrs: &[String],
    out: &mut FileAst,
) -> usize {
    let mut j = i + 1;
    if trees.get(j).and_then(ident_text) == Some("mut") {
        j += 1;
    }
    let Some(name_tree) = trees.get(j) else {
        return i + 1;
    };
    let Some(name) = ident_text(name_tree) else {
        return i + 1;
    };
    let (line, col) = name_tree.pos();
    // Find `= value ;`.
    let mut eq = j + 1;
    while eq < trees.len() && !trees[eq].is_punct("=") && !trees[eq].is_punct(";") {
        eq += 1;
    }
    let mut end = eq;
    while end < trees.len() && !trees[end].is_punct(";") {
        end += 1;
    }
    let value = if eq < end {
        parse_const_value(&trees[eq + 1..end])
    } else {
        ConstValue::Other
    };
    out.consts.push(ConstDef {
        mod_path: scope.mod_path.clone(),
        name: name.to_string(),
        value,
        line,
        col,
        is_test: scope.in_test || attrs.iter().any(|a| attr_is_test(a)),
    });
    end + 1
}

fn parse_const_value(v: &[Tree]) -> ConstValue {
    match v {
        [t] if t.leaf().is_some_and(|t| t.kind == TokKind::Int) => {
            match int_value(&t.leaf().unwrap().text) {
                Some(n) => ConstValue::Int(n),
                None => ConstValue::Other,
            }
        }
        [t] if t.leaf().is_some_and(|t| t.kind == TokKind::Str) => {
            ConstValue::Str(t.leaf().unwrap().text.clone())
        }
        _ => {
            // `&[…]` or `[…]` of string literals or `("…", "…")` pairs.
            let list = v.iter().find_map(|t| t.group().filter(|g| g.delim == '['));
            let Some(list) = list else {
                return ConstValue::Other;
            };
            let str_entry = |t: &Tree| {
                t.leaf()
                    .filter(|t| t.kind == TokKind::Str)
                    .map(|tok| StrEntry {
                        value: tok.text.clone(),
                        line: tok.line,
                        col: tok.col,
                    })
            };
            let mut entries = Vec::new();
            let mut pairs = Vec::new();
            for arg in split_args(&list.children) {
                let [t] = arg else { continue };
                if let Some(e) = str_entry(t) {
                    entries.push(e);
                } else if let Some(g) = t.group().filter(|g| g.delim == '(') {
                    let members: Vec<StrEntry> = split_args(&g.children)
                        .iter()
                        .filter_map(|a| match a {
                            [x] => str_entry(x),
                            _ => None,
                        })
                        .collect();
                    if let Ok([a, b]) = <[StrEntry; 2]>::try_from(members) {
                        pairs.push((a, b));
                    }
                }
            }
            match (entries.is_empty(), pairs.is_empty()) {
                (false, true) => ConstValue::StrList(entries),
                (true, false) => ConstValue::StrPairList(pairs),
                _ => ConstValue::Other,
            }
        }
    }
}

fn take_use(trees: &[Tree], i: usize, scope: &Scope, out: &mut FileAst) -> usize {
    let mut end = i + 1;
    while end < trees.len() && !trees[end].is_punct(";") {
        end += 1;
    }
    expand_use(&trees[i + 1..end], Vec::new(), scope, out);
    end + 1
}

/// Recursively expands one `use` tree (`a::{b, c as d, e::*}`) into flat
/// [`UseDef`] bindings. Globs are skipped (nothing nameable to bind).
fn expand_use(trees: &[Tree], prefix: Vec<String>, scope: &Scope, out: &mut FileAst) {
    let mut segs = prefix;
    let mut k = 0usize;
    while k < trees.len() {
        match &trees[k] {
            t if t.is_punct("::") => k += 1,
            t if t.is_punct("*") => return, // glob: skip
            Tree::Group(g) if g.delim == '{' => {
                for arg in split_args(&g.children) {
                    expand_use(arg, segs.clone(), scope, out);
                }
                return;
            }
            t => {
                let Some(word) = ident_text(t) else {
                    return;
                };
                if word == "as" {
                    if let Some(alias) = trees.get(k + 1).and_then(ident_text) {
                        out.uses.push(UseDef {
                            mod_path: scope.mod_path.clone(),
                            alias: alias.to_string(),
                            target: segs,
                        });
                    }
                    return;
                }
                // `self` inside braces rebinds the prefix itself.
                if word != "self" || segs.is_empty() {
                    segs.push(word.to_string());
                }
                k += 1;
            }
        }
    }
    if let Some(last) = segs.last().cloned() {
        out.uses.push(UseDef {
            mod_path: scope.mod_path.clone(),
            alias: last,
            target: segs,
        });
    }
}

fn take_mod(trees: &[Tree], i: usize, scope: &Scope, attrs: &[String], out: &mut FileAst) -> usize {
    let Some(name) = trees.get(i + 1).and_then(ident_text) else {
        return i + 1;
    };
    match trees.get(i + 2) {
        Some(Tree::Group(g)) if g.delim == '{' => {
            let mut inner = scope.clone();
            inner.mod_path.push(name.to_string());
            inner.in_test = inner.in_test || attrs.iter().any(|a| attr_is_test(a));
            walk_items(&g.children, &mut inner, out);
            i + 3
        }
        _ => i + 2, // `mod name;` — the file-module path mapping covers it
    }
}

fn take_impl(
    trees: &[Tree],
    i: usize,
    scope: &Scope,
    attrs: &[String],
    out: &mut FileAst,
) -> usize {
    // Collect path idents at angle-bracket depth 0 between the keyword and
    // the body; `for` resets the collection so `impl Trait for Type` names
    // `Type`.
    let mut depth = 0i64;
    let mut names: Vec<String> = Vec::new();
    let mut k = i + 1;
    let mut body: Option<&Group> = None;
    while k < trees.len() {
        match &trees[k] {
            Tree::Group(g) if g.delim == '{' && depth <= 0 => {
                body = Some(g);
                break;
            }
            t if t.is_punct("<") => depth += 1,
            t if t.is_punct(">") => depth -= 1,
            t if t.is_punct(">>") => depth -= 2,
            t if t.is_punct(";") => return k + 1,
            t => {
                if let Some(word) = ident_text(t) {
                    if word == "for" {
                        names.clear();
                    } else if word == "where" {
                        depth = 0; // bounds follow; keep scanning for the body
                    } else if depth == 0 {
                        names.push(word.to_string());
                    }
                }
            }
        }
        k += 1;
    }
    let Some(body) = body else {
        return k + 1;
    };
    let mut inner = scope.clone();
    inner.self_type = names.last().cloned();
    inner.in_test = inner.in_test || attrs.iter().any(|a| attr_is_test(a));
    walk_items(&body.children, &mut inner, out);
    k + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::build_trees;

    fn ast_of(src: &str) -> FileAst {
        extract(&build_trees(&lex(src).tokens))
    }

    #[test]
    fn extracts_fns_with_visibility_and_impl_type() {
        let src = "pub fn free() {}\n\
                   pub(crate) fn internal() {}\n\
                   impl Foo { pub fn method(&self) -> u8 { 0 } }\n\
                   impl fmt::Display for Foo { fn fmt(&self) {} }\n";
        let ast = ast_of(src);
        let names: Vec<(&str, bool, Option<&str>)> = ast
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.is_pub, f.self_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", true, None),
                ("internal", false, None),
                ("method", true, Some("Foo")),
                ("fmt", false, Some("Foo")),
            ]
        );
    }

    #[test]
    fn test_context_marks_fns() {
        let src = "#[test]\nfn t() {}\n\
                   #[cfg(test)]\nmod tests { fn helper() {} }\n\
                   fn lib() {}\n";
        let ast = ast_of(src);
        let flags: Vec<(&str, bool)> = ast
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.is_test))
            .collect();
        assert_eq!(flags, vec![("t", true), ("helper", true), ("lib", false)]);
    }

    #[test]
    fn const_values_parse_int_str_and_str_list() {
        let src = "const SEED: u64 = 0x5EED;\n\
                   pub const NAME: &str = \"mc.chunk\";\n\
                   pub const KNOBS: &[&str] = &[\n    \"PVTM_A\",\n    \"PVTM_B\",\n];\n\
                   const F: f64 = 1.0 + 2.0;\n";
        let ast = ast_of(src);
        assert!(matches!(ast.consts[0].value, ConstValue::Int(0x5EED)));
        assert!(matches!(&ast.consts[1].value, ConstValue::Str(s) if s == "mc.chunk"));
        match &ast.consts[2].value {
            ConstValue::StrList(es) => {
                assert_eq!(es.len(), 2);
                assert_eq!(es[0].value, "PVTM_A");
                assert_eq!((es[0].line, es[1].line), (4, 5));
            }
            other => panic!("expected StrList, got {other:?}"),
        }
        assert!(matches!(ast.consts[3].value, ConstValue::Other));
    }

    #[test]
    fn use_decls_expand_braces_aliases_and_self() {
        let src = "use crate::rng::substream;\n\
                   use std::collections::{BTreeMap, BTreeSet as Set};\n\
                   use pvtm_stats::rng::{self, substream as sub};\n";
        let ast = ast_of(src);
        let binds: Vec<(String, String)> = ast
            .uses
            .iter()
            .map(|u| (u.alias.clone(), u.target.join("::")))
            .collect();
        assert!(binds.contains(&("substream".into(), "crate::rng::substream".into())));
        assert!(binds.contains(&("Set".into(), "std::collections::BTreeSet".into())));
        assert!(binds.contains(&("rng".into(), "pvtm_stats::rng".into())));
        assert!(binds.contains(&("sub".into(), "pvtm_stats::rng::substream".into())));
    }

    #[test]
    fn nested_mods_build_paths() {
        let src = "mod a { mod b { pub fn deep() {} } }\n";
        let ast = ast_of(src);
        assert_eq!(ast.fns[0].mod_path, vec!["a", "b"]);
    }

    #[test]
    fn const_fn_is_a_function_not_a_const() {
        let ast = ast_of("pub const fn k() -> u8 { 1 }\n");
        assert_eq!(ast.fns.len(), 1);
        assert!(ast.fns[0].is_pub);
        assert!(ast.consts.is_empty());
    }
}
