//! Workspace loading and the cross-file symbol table.
//!
//! Each walked `.rs` file becomes a [`FileUnit`] (source, tokens, token
//! trees, extracted items, canonical crate/module identity). [`Symbols`]
//! indexes every function and const under its canonical path
//! (`pvtm_stats::rng::substream`, `pvtm_circuit::template::Template::bake`)
//! and resolves the path expressions the semantic rules meet at call sites:
//! `crate::`/`self::`/`super::` prefixes, `use` aliases, sibling modules,
//! and — as a last resort — a unique-suffix match, so a rename in one layer
//! degrades to a miss rather than a wrong edge.

use crate::ast::{self, ConstDef, ConstValue, FileAst};
use crate::lexer::{self, Lexed, TokKind};
use crate::parser::{self, Tree};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// One analyzed file with everything the semantic rules need.
pub struct FileUnit {
    /// Repo-relative path with `/` separators.
    pub rel: String,
    /// Lexer output (tokens + suppression comments).
    pub lexed: Lexed,
    /// Token trees of the whole file.
    pub trees: Vec<Tree>,
    /// Extracted items.
    pub ast: FileAst,
    /// Extern-style crate name (`pvtm`, `pvtm_stats`, `pvtm_repro`,
    /// `example_<stem>`).
    pub crate_name: String,
    /// Module path induced by the file's location within its crate.
    pub file_mods: Vec<String>,
}

/// Loads every walked `.rs` file under `root` as a [`FileUnit`], sorted by
/// path so downstream output is deterministic.
///
/// # Errors
///
/// Propagates I/O failures from the walk and file reads.
pub fn load_workspace(root: &Path) -> io::Result<Vec<FileUnit>> {
    let mut units = Vec::new();
    for path in crate::walk_tree(root)? {
        let src = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let lexed = lexer::lex(&src);
        let trees = parser::build_trees(&lexed.tokens);
        let ast = ast::extract(&trees);
        let (crate_name, file_mods) = crate_identity(&rel);
        units.push(FileUnit {
            rel,
            lexed,
            trees,
            ast,
            crate_name,
            file_mods,
        });
    }
    Ok(units)
}

/// Maps a repo-relative path to (extern crate name, file module path).
/// Mirrors the workspace's `Cargo.toml` layout: `crates/core` is the `pvtm`
/// crate, every other `crates/<d>` is `pvtm_<d>`, the root package is
/// `pvtm-repro`, and each example is its own target.
pub fn crate_identity(rel: &str) -> (String, Vec<String>) {
    let parts: Vec<&str> = rel.split('/').collect();
    let (name, tail) = match parts.as_slice() {
        ["crates", d, "src", rest @ ..] => {
            let name = if *d == "core" {
                "pvtm".to_string()
            } else {
                format!("pvtm_{}", d.replace('-', "_"))
            };
            (name, rest)
        }
        ["src", rest @ ..] => ("pvtm_repro".to_string(), rest),
        ["examples", rest @ ..] => {
            let stem = rest
                .last()
                .map_or("", |f| f.strip_suffix(".rs").unwrap_or(f));
            (format!("example_{}", stem.replace('-', "_")), &rest[..0])
        }
        _ => (rel.replace(['/', '.', '-'], "_"), &parts[..0]),
    };
    let mut mods: Vec<String> = tail.iter().map(|s| s.to_string()).collect();
    if let Some(last) = mods.last_mut() {
        if let Some(stem) = last.strip_suffix(".rs") {
            *last = stem.to_string();
        }
        if matches!(last.as_str(), "lib" | "main" | "mod") {
            mods.pop();
        }
    }
    (name, mods)
}

/// Index of one function in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnId(pub usize);

/// One indexed function: where it lives and its canonical path.
pub struct FnSym {
    /// Canonical path (`pvtm_sram::evaluator::Evaluator::eval`).
    pub path: String,
    /// Index into the unit list.
    pub unit: usize,
    /// Index into that unit's `ast.fns`.
    pub def: usize,
}

/// The workspace symbol table.
pub struct Symbols {
    /// All functions, in (unit, def) order — stable across runs.
    pub fns: Vec<FnSym>,
    fn_by_path: BTreeMap<String, Vec<FnId>>,
    fn_by_name: BTreeMap<String, Vec<FnId>>,
    /// Method name → functions defined with a `self_type`.
    method_by_name: BTreeMap<String, Vec<FnId>>,
    const_by_path: BTreeMap<String, (usize, usize)>,
}

impl Symbols {
    /// Builds the table over loaded units.
    pub fn build(units: &[FileUnit]) -> Symbols {
        let mut fns = Vec::new();
        let mut fn_by_path: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut fn_by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut method_by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut const_by_path = BTreeMap::new();
        for (u, unit) in units.iter().enumerate() {
            for (d, f) in unit.ast.fns.iter().enumerate() {
                let id = FnId(fns.len());
                let path = join_path(unit, &f.mod_path, f.self_type.as_deref(), &f.name);
                fn_by_path.entry(path.clone()).or_default().push(id);
                fn_by_name.entry(f.name.clone()).or_default().push(id);
                if f.self_type.is_some() {
                    method_by_name.entry(f.name.clone()).or_default().push(id);
                }
                fns.push(FnSym {
                    path,
                    unit: u,
                    def: d,
                });
            }
            for (c, k) in unit.ast.consts.iter().enumerate() {
                let path = join_path(unit, &k.mod_path, None, &k.name);
                const_by_path.entry(path).or_insert((u, c));
            }
        }
        Symbols {
            fns,
            fn_by_path,
            fn_by_name,
            method_by_name,
            const_by_path,
        }
    }

    /// All functions sharing a method name (defined in some `impl`/`trait`).
    pub fn methods_named(&self, name: &str) -> &[FnId] {
        self.method_by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Resolves a path expression at a call site to function ids.
    pub fn resolve_fn(&self, unit: &FileUnit, mod_path: &[String], segs: &[String]) -> Vec<FnId> {
        for cand in candidate_paths(unit, mod_path, segs) {
            if let Some(ids) = self.fn_by_path.get(&cand) {
                return ids.clone();
            }
        }
        // Unique-suffix fallback: `evaluator::eval` matches
        // `pvtm_sram::evaluator::eval` iff no other path ends the same way.
        let suffix = format!("::{}", segs.join("::"));
        let mut hits: Vec<FnId> = Vec::new();
        let mut matched_paths = 0usize;
        for (path, ids) in &self.fn_by_path {
            if path.ends_with(&suffix) {
                matched_paths += 1;
                hits.extend_from_slice(ids);
            }
        }
        if matched_paths == 1 {
            hits
        } else if segs.len() == 1 {
            // A bare name used as a value: only a unique free fn matches.
            match self.fn_by_name.get(&segs[0]) {
                Some(ids) if ids.len() == 1 => ids.clone(),
                _ => Vec::new(),
            }
        } else {
            Vec::new()
        }
    }

    /// Resolves a path expression to a const definition.
    pub fn resolve_const<'a>(
        &self,
        units: &'a [FileUnit],
        unit: &FileUnit,
        mod_path: &[String],
        segs: &[String],
    ) -> Option<&'a ConstDef> {
        for cand in candidate_paths(unit, mod_path, segs) {
            if let Some(&(u, c)) = self.const_by_path.get(&cand) {
                return Some(&units[u].ast.consts[c]);
            }
        }
        let suffix = format!("::{}", segs.join("::"));
        let mut hit = None;
        for (path, &(u, c)) in &self.const_by_path {
            if path.ends_with(&suffix) {
                if hit.is_some() {
                    return None; // ambiguous
                }
                hit = Some(&units[u].ast.consts[c]);
            }
        }
        hit
    }

    /// Resolves an argument expression (token-tree slice) to an integer:
    /// a literal, or a path to an integer const.
    pub fn resolve_int(
        &self,
        units: &[FileUnit],
        unit: &FileUnit,
        mod_path: &[String],
        arg: &[Tree],
    ) -> Option<u128> {
        if let [t] = arg {
            if let Some(tok) = t.leaf().filter(|t| t.kind == TokKind::Int) {
                return parser::int_value(&tok.text);
            }
        }
        let segs = path_segments(arg)?;
        match self.resolve_const(units, unit, mod_path, &segs)?.value {
            ConstValue::Int(n) => Some(n),
            _ => None,
        }
    }

    /// Resolves an argument expression to a string: a literal, or a path to
    /// a string const.
    pub fn resolve_str(
        &self,
        units: &[FileUnit],
        unit: &FileUnit,
        mod_path: &[String],
        arg: &[Tree],
    ) -> Option<String> {
        if let [t] = arg {
            if let Some(tok) = t.leaf().filter(|t| t.kind == TokKind::Str) {
                return Some(tok.text.clone());
            }
        }
        let segs = path_segments(arg)?;
        match &self.resolve_const(units, unit, mod_path, &segs)?.value {
            ConstValue::Str(s) => Some(s.clone()),
            _ => None,
        }
    }

    /// Canonical display path of a function.
    pub fn path_of(&self, id: FnId) -> &str {
        &self.fns[id.0].path
    }
}

/// Interprets a token-tree slice as a plain `a::b::C` path (idents and `::`
/// only, ignoring a leading `&`).
pub fn path_segments(arg: &[Tree]) -> Option<Vec<String>> {
    let mut segs = Vec::new();
    let mut expect_ident = true;
    for t in arg {
        if segs.is_empty() && t.is_punct("&") {
            continue;
        }
        match t.leaf() {
            Some(tok) if tok.kind == TokKind::Ident && expect_ident => {
                segs.push(tok.text.clone());
                expect_ident = false;
            }
            Some(tok) if tok.kind == TokKind::Punct && tok.text == "::" && !expect_ident => {
                expect_ident = true;
            }
            _ => return None,
        }
    }
    if segs.is_empty() || expect_ident {
        None
    } else {
        Some(segs)
    }
}

fn join_path(unit: &FileUnit, mod_path: &[String], self_type: Option<&str>, name: &str) -> String {
    let mut parts: Vec<&str> = vec![unit.crate_name.as_str()];
    parts.extend(unit.file_mods.iter().map(String::as_str));
    parts.extend(mod_path.iter().map(String::as_str));
    if let Some(t) = self_type {
        parts.push(t);
    }
    parts.push(name);
    parts.join("::")
}

/// Absolute-path candidates for a path expression written in `unit` inside
/// `mod_path`, most specific first.
fn candidate_paths(unit: &FileUnit, mod_path: &[String], segs: &[String]) -> Vec<String> {
    let mut here: Vec<String> = vec![unit.crate_name.clone()];
    here.extend(unit.file_mods.iter().cloned());
    here.extend(mod_path.iter().cloned());

    fn joined(mut base: Vec<String>, rest: &[String]) -> String {
        base.extend(rest.iter().cloned());
        base.join("::")
    }

    let mut out = Vec::new();
    match segs[0].as_str() {
        "crate" => out.push(joined(vec![unit.crate_name.clone()], &segs[1..])),
        "self" => out.push(joined(here.clone(), &segs[1..])),
        "super" => {
            let mut base = here.clone();
            let mut rest = segs;
            while rest.first().map(String::as_str) == Some("super") {
                base.pop();
                rest = &rest[1..];
            }
            out.push(joined(base, rest));
        }
        _ => {
            // A `use` alias in scope for the first segment?
            for u in &unit.ast.uses {
                if u.mod_path.len() <= mod_path.len()
                    && u.mod_path[..] == mod_path[..u.mod_path.len()]
                    && u.alias == segs[0]
                {
                    let mut spliced = u.target.clone();
                    spliced.extend(segs[1..].iter().cloned());
                    match spliced[0].as_str() {
                        "crate" => {
                            out.push(joined(vec![unit.crate_name.clone()], &spliced[1..]));
                        }
                        "self" => out.push(joined(here.clone(), &spliced[1..])),
                        "super" => {
                            let mut base = here.clone();
                            base.pop();
                            out.push(joined(base, &spliced[1..]));
                        }
                        _ => out.push(spliced.join("::")),
                    }
                }
            }
            // As written (extern-crate-qualified), from the current module,
            // and from the crate root.
            out.push(segs.join("::"));
            out.push(joined(here.clone(), segs));
            out.push(joined(vec![unit.crate_name.clone()], segs));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_identity_maps_the_workspace_layout() {
        let cases = [
            ("crates/core/src/lib.rs", "pvtm", vec![]),
            ("crates/stats/src/rng.rs", "pvtm_stats", vec!["rng"]),
            ("crates/sram/src/mc/run.rs", "pvtm_sram", vec!["mc", "run"]),
            ("crates/trace/src/span/mod.rs", "pvtm_trace", vec!["span"]),
            ("src/main.rs", "pvtm_repro", vec![]),
            ("examples/headline.rs", "example_headline", vec![]),
        ];
        for (rel, name, mods) in cases {
            let (n, m) = crate_identity(rel);
            assert_eq!(n, name, "{rel}");
            assert_eq!(m, mods, "{rel}");
        }
    }

    fn unit_of(rel: &str, src: &str) -> FileUnit {
        let lexed = lexer::lex(src);
        let trees = parser::build_trees(&lexed.tokens);
        let ast = ast::extract(&trees);
        let (crate_name, file_mods) = crate_identity(rel);
        FileUnit {
            rel: rel.to_string(),
            lexed,
            trees,
            ast,
            crate_name,
            file_mods,
        }
    }

    #[test]
    fn resolves_crate_use_and_suffix_paths() {
        let units = vec![
            unit_of(
                "crates/stats/src/rng.rs",
                "pub fn substream(seed: u64, stream: u64) -> u64 { seed ^ stream }\n",
            ),
            unit_of(
                "crates/stats/src/montecarlo.rs",
                "pub fn run() { crate::rng::substream(1, 2); }\n",
            ),
            unit_of(
                "crates/sram/src/evaluator.rs",
                "use pvtm_stats::rng::substream;\npub fn eval() { substream(1, 2); }\n",
            ),
        ];
        let syms = Symbols::build(&units);
        let target = "pvtm_stats::rng::substream";

        let via_crate = syms.resolve_fn(
            &units[1],
            &[],
            &["crate".into(), "rng".into(), "substream".into()],
        );
        assert_eq!(via_crate.len(), 1);
        assert_eq!(syms.path_of(via_crate[0]), target);

        let via_use = syms.resolve_fn(&units[2], &[], &["substream".into()]);
        assert_eq!(via_use.len(), 1);
        assert_eq!(syms.path_of(via_use[0]), target);

        let via_suffix = syms.resolve_fn(&units[2], &[], &["rng".into(), "substream".into()]);
        assert_eq!(via_suffix.len(), 1);
    }

    #[test]
    fn resolves_int_and_str_consts_through_paths() {
        let units = vec![
            unit_of(
                "crates/stats/src/config.rs",
                "pub const SEED: u64 = 0xF163;\npub const SPAN: &str = \"mc.chunk\";\n",
            ),
            unit_of(
                "crates/stats/src/montecarlo.rs",
                "use crate::config::SEED;\n",
            ),
        ];
        let syms = Symbols::build(&units);
        let seed_trees = parser::build_trees(&lexer::lex("SEED").tokens);
        assert_eq!(
            syms.resolve_int(&units, &units[1], &[], &seed_trees),
            Some(0xF163)
        );
        let lit_trees = parser::build_trees(&lexer::lex("42u64").tokens);
        assert_eq!(
            syms.resolve_int(&units, &units[1], &[], &lit_trees),
            Some(42)
        );
        let span_trees = parser::build_trees(&lexer::lex("crate::config::SPAN").tokens);
        assert_eq!(
            syms.resolve_str(&units, &units[0], &[], &span_trees)
                .as_deref(),
            Some("mc.chunk")
        );
    }

    #[test]
    fn method_index_covers_impl_fns() {
        let units = vec![unit_of(
            "crates/circuit/src/template.rs",
            "impl Template { pub fn bake(&self) {} }\nimpl Other { fn bake(&self) {} }\n",
        )];
        let syms = Symbols::build(&units);
        assert_eq!(syms.methods_named("bake").len(), 2);
        assert!(syms.methods_named("missing").is_empty());
    }
}
