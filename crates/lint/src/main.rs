//! CLI entry point: `cargo run -p pvtm-lint [--release] -- [options]`.
//!
//! Exit codes: `0` clean (every finding baselined or none), `1` new
//! violations, `2` usage or I/O error.

use pvtm_lint::analyze_tree;
use pvtm_lint::baseline::{self, Baseline};
use pvtm_telemetry::json::{obj, Value};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    baseline: PathBuf,
    json: Option<PathBuf>,
    update_baseline: bool,
}

const USAGE: &str =
    "usage: pvtm-lint [--root DIR] [--baseline FILE] [--json FILE] [--update-baseline]

  --root DIR          tree to lint (default: .); its crates/, src/ and
                      examples/ subtrees are walked
  --baseline FILE     ratchet file (default: <root>/lint-baseline.json;
                      a missing file means an empty baseline)
  --json FILE         also write a machine-readable report
  --update-baseline   rewrite the baseline to exactly cover today's
                      findings (reasons are preserved; new entries are
                      stamped unreviewed) and exit 0";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut path_flag = |name: &str| {
            it.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--root" => root = Some(path_flag("--root")?),
            "--baseline" => baseline = Some(path_flag("--baseline")?),
            "--json" => json = Some(path_flag("--json")?),
            "--update-baseline" => update_baseline = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let baseline = baseline.unwrap_or_else(|| root.join("lint-baseline.json"));
    Ok(Options {
        root,
        baseline,
        json,
        update_baseline,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("pvtm-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(opts: &Options) -> Result<bool, String> {
    let tree = analyze_tree(&opts.root).map_err(|e| format!("walking {:?}: {e}", opts.root))?;

    let base = if opts.baseline.is_file() {
        let text = std::fs::read_to_string(&opts.baseline)
            .map_err(|e| format!("reading {:?}: {e}", opts.baseline))?;
        Baseline::from_json(&text).map_err(|e| format!("{:?}: {e}", opts.baseline))?
    } else {
        Baseline::default()
    };

    if opts.update_baseline {
        let next = base.ratcheted(&tree.diagnostics);
        std::fs::write(&opts.baseline, next.to_json())
            .map_err(|e| format!("writing {:?}: {e}", opts.baseline))?;
        println!(
            "pvtm-lint: baseline {:?} rewritten with {} entries covering {} findings",
            opts.baseline,
            next.entries.len(),
            tree.diagnostics.len()
        );
        return Ok(true);
    }

    let verdict = baseline::compare(&base, &tree.diagnostics);
    for d in &verdict.new {
        println!("{d}");
    }
    for (file, rule, found, allowed) in &verdict.improvements {
        println!(
            "pvtm-lint: note: {file} [{rule}] improved to {found} finding(s) but the baseline \
             allows {allowed}; run --update-baseline to ratchet down"
        );
    }
    println!(
        "pvtm-lint: {} file(s), {} new violation(s), {} baselined, {} baseline entr(ies)",
        tree.files_scanned,
        verdict.new.len(),
        verdict.baselined.len(),
        base.entries.len()
    );

    if let Some(json_path) = &opts.json {
        let report = json_report(&tree.files_scanned, &verdict);
        std::fs::write(json_path, report.to_json_pretty() + "\n")
            .map_err(|e| format!("writing {json_path:?}: {e}"))?;
    }

    Ok(verdict.new.is_empty())
}

fn json_report(files_scanned: &usize, verdict: &baseline::Verdict) -> Value {
    let diag_value = |d: &pvtm_lint::Diagnostic, status: &str| {
        obj(vec![
            ("file", Value::Str(d.file.clone())),
            ("line", Value::Num(f64::from(d.line))),
            ("col", Value::Num(f64::from(d.col))),
            ("rule", Value::Str(d.rule.as_str().to_string())),
            ("message", Value::Str(d.message.clone())),
            ("status", Value::Str(status.to_string())),
        ])
    };
    let mut diags: Vec<Value> = Vec::new();
    diags.extend(verdict.new.iter().map(|d| diag_value(d, "new")));
    diags.extend(verdict.baselined.iter().map(|d| diag_value(d, "baselined")));
    let improvements = verdict
        .improvements
        .iter()
        .map(|(file, rule, found, allowed)| {
            obj(vec![
                ("file", Value::Str(file.clone())),
                ("rule", Value::Str(rule.clone())),
                ("found", Value::Num(*found as f64)),
                ("allowed", Value::Num(*allowed as f64)),
            ])
        })
        .collect();
    obj(vec![
        ("schema", Value::Str("pvtm-lint/1".to_string())),
        ("files_scanned", Value::Num(*files_scanned as f64)),
        ("new_violations", Value::Num(verdict.new.len() as f64)),
        ("baselined", Value::Num(verdict.baselined.len() as f64)),
        ("diagnostics", Value::Arr(diags)),
        ("improvements", Value::Arr(improvements)),
    ])
}
