//! `pvtm-lint`: a registry-free static-analysis pass over the workspace.
//!
//! The workspace's core contract — bit-reproducible Monte-Carlo yield
//! estimates and byte-identical telemetry reports — cannot be enforced by
//! clippy plugins or `syn`-based tools (no registry access, vendored shims
//! only), so this crate carries its own Rust lexer ([`lexer`]), a token-
//! tree parser ([`parser`]), an item extractor ([`ast`]), a workspace
//! symbol table ([`symbols`]), a call graph ([`callgraph`]), a token-stream
//! rule engine ([`rules`]), a semantic rule engine ([`sema`]), and a
//! `(file, rule)`-count baseline ratchet ([`baseline`]). The binary
//! (`cargo run -p pvtm-lint`) walks `crates/`, `src/` and `examples/`,
//! runs both passes via [`sema::analyze_tree`], prints `file:line:col
//! [rule-id] message` diagnostics, and exits non-zero on any violation not
//! covered by `lint-baseline.json`. See DESIGN.md §7 for the rule
//! catalogue and the analysis pipeline.

pub mod ast;
pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sema;
pub mod symbols;

pub use rules::{lint_source, Diagnostic, RuleId};
pub use sema::analyze_tree;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Subdirectories of the root that are linted (when present).
pub const LINT_ROOTS: &[&str] = &["crates", "src", "examples"];

/// Directory names skipped during the walk: build output, test and bench
/// trees (whole-directory test context) and lint fixtures (deliberate
/// violations).
const SKIP_DIRS: &[&str] = &["target", "tests", "benches", "fixtures"];

/// Result of linting a source tree.
#[derive(Debug, Default)]
pub struct TreeLint {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All diagnostics, ordered by (file, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
}

/// Lints every `.rs` file under `root`'s [`LINT_ROOTS`], skipping
/// [`SKIP_DIRS`]. File order (and therefore output order) is sorted, so
/// two runs over the same tree are byte-identical.
///
/// # Errors
///
/// Propagates I/O failures from directory walks and file reads.
pub fn lint_tree(root: &Path) -> io::Result<TreeLint> {
    let mut out = TreeLint::default();
    for path in walk_tree(root)? {
        let src = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.diagnostics.extend(lint_source(&rel, &src));
        out.files_scanned += 1;
    }
    out.diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(out)
}

/// Collects every walked `.rs` file under `root`'s [`LINT_ROOTS`], sorted,
/// skipping [`SKIP_DIRS`]. Shared by the token-only [`lint_tree`] and the
/// semantic [`sema::analyze_tree`], so both passes see the same files.
///
/// # Errors
///
/// Propagates I/O failures from directory walks.
pub fn walk_tree(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for sub in LINT_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
