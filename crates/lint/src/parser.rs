//! Token-tree parser: nests the flat lexer stream by `()`/`[]`/`{}`.
//!
//! The semantic rules need structure the flat token stream cannot give —
//! which tokens are a call's arguments, where a closure body ends, what a
//! `for` loop encloses. Full Rust expression parsing is out of reach for a
//! registry-free tool, but Rust's delimiters alone already induce the tree
//! the rules need: every call, block, array and attribute is a delimited
//! group. This module turns `Vec<Tok>` into that tree, infallibly — stray
//! closers become leaves and unclosed groups end at EOF, so the parser can
//! never fail on code the lexer accepted (there is a proptest asserting
//! exactly that).

use crate::lexer::{Tok, TokKind};

/// One node of the token tree: a plain token or a delimited group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tree {
    /// A non-delimiter token.
    Leaf(Tok),
    /// A `(…)`, `[…]` or `{…}` group.
    Group(Group),
}

/// A delimited group with the position of its opening delimiter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Opening delimiter: `'('`, `'['` or `'{'`.
    pub delim: char,
    /// 1-based line of the opening delimiter.
    pub line: u32,
    /// 1-based column of the opening delimiter.
    pub col: u32,
    /// Nested children in source order.
    pub children: Vec<Tree>,
}

impl Tree {
    /// The leaf token, if this node is one.
    pub fn leaf(&self) -> Option<&Tok> {
        match self {
            Tree::Leaf(t) => Some(t),
            Tree::Group(_) => None,
        }
    }

    /// The group, if this node is one.
    pub fn group(&self) -> Option<&Group> {
        match self {
            Tree::Leaf(_) => None,
            Tree::Group(g) => Some(g),
        }
    }

    /// True when the node is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.leaf()
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
    }

    /// True when the node is a punct token with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.leaf()
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
    }

    /// Source position of the node (opening delimiter for groups).
    pub fn pos(&self) -> (u32, u32) {
        match self {
            Tree::Leaf(t) => (t.line, t.col),
            Tree::Group(g) => (g.line, g.col),
        }
    }
}

/// Closing delimiter matching an opener.
fn closer(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

/// Builds the token tree. Infallible; see the module docs.
pub fn build_trees(toks: &[Tok]) -> Vec<Tree> {
    let mut pos = 0usize;
    parse_group_body(toks, &mut pos, None)
}

/// Parses children until `until` (exclusive) or EOF. A closer that does not
/// match any open group is kept as a leaf so positions stay faithful.
fn parse_group_body(toks: &[Tok], pos: &mut usize, until: Option<char>) -> Vec<Tree> {
    let mut out = Vec::new();
    while *pos < toks.len() {
        let t = &toks[*pos];
        if t.kind == TokKind::Punct && t.text.len() == 1 {
            let c = t.text.as_bytes()[0] as char;
            if matches!(c, '(' | '[' | '{') {
                let (line, col) = (t.line, t.col);
                *pos += 1;
                let children = parse_group_body(toks, pos, Some(closer(c)));
                out.push(Tree::Group(Group {
                    delim: c,
                    line,
                    col,
                    children,
                }));
                continue;
            }
            if matches!(c, ')' | ']' | '}') {
                if until == Some(c) {
                    *pos += 1; // consume the closer
                    return out;
                }
                // Mismatched closer: with an open group, let the outer
                // level handle it (the group closes implicitly); at the
                // top level keep it as a leaf and move on.
                if until.is_some() {
                    return out;
                }
                out.push(Tree::Leaf(t.clone()));
                *pos += 1;
                continue;
            }
        }
        out.push(Tree::Leaf(t.clone()));
        *pos += 1;
    }
    out
}

/// Splits a group's children at top-level commas — the argument list of a
/// call-site group. Empty segments (trailing commas) are dropped.
pub fn split_args(children: &[Tree]) -> Vec<&[Tree]> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for (i, c) in children.iter().enumerate() {
        if c.is_punct(",") {
            if i > start {
                out.push(&children[start..i]);
            }
            start = i + 1;
        }
    }
    if start < children.len() {
        out.push(&children[start..]);
    }
    out
}

/// Parses an integer literal token (decimal, hex/octal/binary, underscores,
/// type suffix) to its value.
pub fn int_value(text: &str) -> Option<u128> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    let (radix, digits) = if let Some(d) = clean.strip_prefix("0x").or(clean.strip_prefix("0X")) {
        (16, d)
    } else if let Some(d) = clean.strip_prefix("0o") {
        (8, d)
    } else if let Some(d) = clean.strip_prefix("0b") {
        (2, d)
    } else {
        (10, clean.as_str())
    };
    // Strip a type suffix (u8…usize / i8…isize) by truncating at the first
    // char that is not a digit of the radix.
    let end = digits
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map_or(digits.len(), |(i, _)| i);
    if end == 0 {
        return None;
    }
    u128::from_str_radix(&digits[..end], radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn trees(src: &str) -> Vec<Tree> {
        build_trees(&lex(src).tokens)
    }

    #[test]
    fn nests_groups() {
        let t = trees("f(a, (b))[0] { x }");
        // f, (…), […], {…}
        assert_eq!(t.len(), 4);
        let call = t[1].group().unwrap();
        assert_eq!(call.delim, '(');
        assert_eq!(call.children.len(), 3); // a , (b)
        assert!(t[3].group().unwrap().delim == '{');
    }

    #[test]
    fn positions_point_at_openers() {
        let t = trees("fn f() {\n    g();\n}");
        let body = t.last().unwrap().group().unwrap();
        assert_eq!((body.line, body.col), (1, 8));
        let inner_call = body.children[1].group().unwrap();
        assert_eq!((inner_call.line, inner_call.col), (2, 6));
    }

    #[test]
    fn unbalanced_input_does_not_panic() {
        for src in ["(", ")", "((]", "} } {", "fn f( {", "]"] {
            let _ = trees(src);
        }
    }

    #[test]
    fn split_args_at_top_level_commas() {
        let t = trees("(a, b(c, d), e)");
        let g = t[0].group().unwrap();
        let args = split_args(&g.children);
        assert_eq!(args.len(), 3);
        assert_eq!(args[1].len(), 2); // b (c, d)
    }

    #[test]
    fn int_values_parse_all_radices() {
        assert_eq!(int_value("42"), Some(42));
        assert_eq!(int_value("0xF163"), Some(0xF163));
        assert_eq!(int_value("0b1010"), Some(10));
        assert_eq!(int_value("1_000u64"), Some(1000));
        assert_eq!(int_value("0o17"), Some(15));
        assert_eq!(int_value("x"), None);
    }
}
