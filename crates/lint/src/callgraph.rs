//! Call-site extraction and the workspace call graph.
//!
//! Walks every function body's token trees for the three call shapes the
//! rules care about — `path::to::f(…)`, `.method(…)` and `name!(…)` — and
//! links them through [`Symbols`] into a function-level graph. Method calls
//! cannot be type-resolved without full inference, so a `.m(…)` site edges
//! to *every* in-workspace method named `m`: reachability over-approximates
//! (a safe direction for a panic audit) and never silently under-reports.
//! Panic sinks (`panic!`-family macros, `.unwrap()`, `.expect` with a
//! non-invariant message) are recorded per function alongside the edges.

use crate::lexer::TokKind;
use crate::parser::{Group, Tree};
use crate::symbols::{FileUnit, FnId, Symbols};

/// The shape of one call site.
#[derive(Debug)]
pub enum CallKind {
    /// `a::b::f(…)` or bare `f(…)`.
    Path(Vec<String>),
    /// `.m(…)`.
    Method(String),
    /// `name!(…)` / `name![…]` / `name!{…}`.
    Macro(String),
}

/// One call site inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// What is being called.
    pub kind: CallKind,
    /// 1-based line of the callee name.
    pub line: u32,
    /// 1-based column of the callee name.
    pub col: u32,
    /// True when the argument list has no arguments.
    pub args_empty: bool,
    /// First string literal anywhere in the argument list, if any.
    pub first_str: Option<String>,
}

/// Extracts every call site in a token-tree slice, recursing into groups
/// (so closures and nested blocks are covered).
pub fn call_sites(trees: &[Tree]) -> Vec<CallSite> {
    let mut out = Vec::new();
    scan(trees, &mut out);
    out
}

fn first_str_in(g: &Group) -> Option<String> {
    for t in &g.children {
        match t {
            Tree::Leaf(tok) if tok.kind == TokKind::Str => return Some(tok.text.clone()),
            Tree::Group(inner) => {
                if let Some(s) = first_str_in(inner) {
                    return Some(s);
                }
            }
            _ => {}
        }
    }
    None
}

fn site(kind: CallKind, line: u32, col: u32, args: &Group) -> CallSite {
    CallSite {
        kind,
        line,
        col,
        args_empty: args.children.is_empty(),
        first_str: first_str_in(args),
    }
}

/// Skips a `::<…>` turbofish starting at `i` (pointing at `::`); returns
/// the index after the closing `>`, or `i` unchanged if there is none.
fn skip_turbofish(trees: &[Tree], i: usize) -> usize {
    if !(trees.get(i).is_some_and(|t| t.is_punct("::"))
        && trees.get(i + 1).is_some_and(|t| t.is_punct("<")))
    {
        return i;
    }
    let mut depth = 0i64;
    let mut k = i + 1;
    while k < trees.len() {
        if let Some(tok) = trees[k].leaf() {
            match tok.text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
        }
        k += 1;
        if depth <= 0 {
            return k;
        }
    }
    i
}

fn scan(trees: &[Tree], out: &mut Vec<CallSite>) {
    let mut i = 0usize;
    while i < trees.len() {
        // `.method(…)`, with optional turbofish.
        if trees[i].is_punct(".") {
            if let Some(m) = trees.get(i + 1).and_then(|t| {
                t.leaf()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| (t.text.clone(), t.line, t.col))
            }) {
                let after = skip_turbofish(trees, i + 2);
                if let Some(g) = trees
                    .get(after)
                    .and_then(Tree::group)
                    .filter(|g| g.delim == '(')
                {
                    out.push(site(CallKind::Method(m.0), m.1, m.2, g));
                    // Jump to the argument group (scanned generically by the
                    // main loop) so the method name is not re-read as a path
                    // call.
                    i = after;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        // Identifier: macro, path call, or nothing interesting.
        if let Some(first) = trees[i].leaf().filter(|t| t.kind == TokKind::Ident) {
            // `name!(…)`.
            if trees.get(i + 1).is_some_and(|t| t.is_punct("!")) {
                if let Some(g) = trees.get(i + 2).and_then(Tree::group) {
                    out.push(site(
                        CallKind::Macro(first.text.clone()),
                        first.line,
                        first.col,
                        g,
                    ));
                    i += 2; // the group itself is scanned by the main loop
                    continue;
                }
            }
            // `a::b::f(…)`: collect the path, then an optional turbofish,
            // then require the argument group.
            let (line, col) = (first.line, first.col);
            let mut segs = vec![first.text.clone()];
            let mut k = i + 1;
            while trees.get(k).is_some_and(|t| t.is_punct("::"))
                && trees
                    .get(k + 1)
                    .and_then(Tree::leaf)
                    .is_some_and(|t| t.kind == TokKind::Ident)
            {
                segs.push(trees[k + 1].leaf().unwrap().text.clone());
                k += 2;
            }
            let after = skip_turbofish(trees, k);
            if let Some(g) = trees
                .get(after)
                .and_then(Tree::group)
                .filter(|g| g.delim == '(')
            {
                out.push(site(CallKind::Path(segs), line, col, g));
            }
            // Step past the whole path so `b::f` is not re-scanned as its
            // own call; the argument group is reached by the main loop.
            i = k.max(i + 1);
            continue;
        }
        if let Some(g) = trees[i].group() {
            scan(&g.children, out);
        }
        i += 1;
    }
}

/// One panic site inside a function body.
#[derive(Debug, Clone)]
pub struct Sink {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Display form (`panic!`, `unwrap()`, `expect("msg")`).
    pub what: String,
}

/// The function-level call graph with per-function panic sinks.
pub struct Graph {
    /// Outgoing edges per function, sorted and deduplicated.
    pub calls: Vec<Vec<FnId>>,
    /// Panic sinks per function.
    pub sinks: Vec<Vec<Sink>>,
}

/// Classifies a call site as a panic sink. `.expect` counts only with a
/// sub-invariant string message — a non-string argument (e.g. the byte the
/// JSON reader's own `expect` method takes) is a different function.
fn sink_of(c: &CallSite) -> Option<Sink> {
    let what = match &c.kind {
        CallKind::Macro(m) if matches!(m.as_str(), "panic" | "todo" | "unimplemented") => {
            format!("{m}!")
        }
        CallKind::Method(m) if m == "unwrap" && c.args_empty => "unwrap()".to_string(),
        CallKind::Method(m) if m == "expect" => {
            let msg = c.first_str.as_deref()?;
            if msg.split_whitespace().count() >= 3 {
                return None;
            }
            format!("expect(\"{msg}\")")
        }
        _ => return None,
    };
    Some(Sink {
        line: c.line,
        col: c.col,
        what,
    })
}

/// Builds the graph over every function with a body.
pub fn build(units: &[FileUnit], syms: &Symbols) -> Graph {
    let n = syms.fns.len();
    let mut calls: Vec<Vec<FnId>> = vec![Vec::new(); n];
    let mut sinks: Vec<Vec<Sink>> = vec![Vec::new(); n];
    for (id, sym) in syms.fns.iter().enumerate() {
        let unit = &units[sym.unit];
        let def = &unit.ast.fns[sym.def];
        let Some(body) = &def.body else { continue };
        for c in call_sites(&body.children) {
            if let Some(s) = sink_of(&c) {
                sinks[id].push(s);
            }
            match &c.kind {
                CallKind::Path(segs) => {
                    calls[id].extend(syms.resolve_fn(unit, &def.mod_path, segs));
                }
                CallKind::Method(m) => {
                    calls[id].extend_from_slice(syms.methods_named(m));
                }
                CallKind::Macro(_) => {}
            }
        }
        calls[id].sort_by_key(|f| f.0);
        calls[id].dedup();
    }
    Graph { calls, sinks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::build_trees;

    fn sites(src: &str) -> Vec<CallSite> {
        call_sites(&build_trees(&lex(src).tokens))
    }

    #[test]
    fn extracts_path_method_and_macro_calls() {
        let got = sites("crate::rng::substream(seed, 1); x.unwrap(); panic!(\"boom\");");
        let kinds: Vec<String> = got
            .iter()
            .map(|c| match &c.kind {
                CallKind::Path(p) => format!("path:{}", p.join("::")),
                CallKind::Method(m) => format!("method:{m}"),
                CallKind::Macro(m) => format!("macro:{m}"),
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["path:crate::rng::substream", "method:unwrap", "macro:panic"]
        );
    }

    #[test]
    fn turbofish_and_nesting_are_handled() {
        let got = sites("xs.iter().sum::<f64>(); f(g(h()));");
        let names: Vec<&str> = got
            .iter()
            .map(|c| match &c.kind {
                CallKind::Path(p) => p.last().unwrap().as_str(),
                CallKind::Method(m) => m.as_str(),
                CallKind::Macro(m) => m.as_str(),
            })
            .collect();
        assert_eq!(names, vec!["iter", "sum", "f", "g", "h"]);
    }

    #[test]
    fn sink_classification() {
        let s = |src: &str| sites(src).iter().filter_map(sink_of).count();
        assert_eq!(s("x.unwrap();"), 1);
        assert_eq!(s("x.unwrap_or(0);"), 0);
        assert_eq!(s("x.expect(\"bad\");"), 1);
        assert_eq!(s("x.expect(\n    \"bad\"\n);"), 1); // multi-line message
        assert_eq!(s("x.expect(\"slots minted by compile above\");"), 0);
        assert_eq!(s("self.expect(b'{')?;"), 0); // non-string argument
        assert_eq!(s("todo!();"), 1);
    }
}
