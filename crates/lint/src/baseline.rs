//! The `lint-baseline.json` ratchet.
//!
//! Pre-existing violations are grandfathered per `(file, rule)` pair with a
//! count and a mandatory reason; line numbers are deliberately excluded so
//! unrelated edits above a baselined site do not churn the file. The count
//! only ratchets down: fewer findings than the baseline allows is reported
//! as an improvement (tighten the baseline), more is a hard failure.

use crate::rules::Diagnostic;
use pvtm_telemetry::json::{self, obj, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Schema tag written into (and required from) every baseline file.
pub const SCHEMA: &str = "pvtm-lint-baseline/1";

/// Reason stamped onto entries created by `--update-baseline`, so a human
/// reviewer can grep for suppressions nobody has justified yet.
pub const UNREVIEWED_REASON: &str = "unreviewed (added by --update-baseline)";

/// A grandfathered `(file, rule)` allowance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Allowed number of findings.
    pub count: u64,
    /// Why these findings are acceptable.
    pub reason: String,
}

/// The parsed baseline: `(file, rule-id)` → allowance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Deterministically ordered entries.
    pub entries: BTreeMap<(String, String), Entry>,
}

/// Baseline file problems: unreadable JSON or a shape we do not recognise.
#[derive(Debug)]
pub struct BaselineError(pub String);

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid baseline: {}", self.0)
    }
}

impl std::error::Error for BaselineError {}

impl Baseline {
    /// Parses baseline JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError`] on malformed JSON, a wrong schema tag, or
    /// entries missing `file`/`rule`/`count`/`reason`.
    pub fn from_json(text: &str) -> Result<Baseline, BaselineError> {
        let doc = json::parse(text).map_err(|e| BaselineError(e.to_string()))?;
        if doc.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
            return Err(BaselineError(format!("schema must be \"{SCHEMA}\"")));
        }
        let items = doc
            .get("entries")
            .and_then(Value::as_array)
            .ok_or_else(|| BaselineError("missing \"entries\" array".to_string()))?;
        let mut entries = BTreeMap::new();
        for item in items {
            let field = |k: &str| {
                item.get(k)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| BaselineError(format!("entry missing string \"{k}\"")))
            };
            let file = field("file")?;
            let rule = field("rule")?;
            let reason = field("reason")?;
            let count = item
                .get("count")
                .and_then(Value::as_u64)
                .ok_or_else(|| BaselineError("entry missing integer \"count\"".to_string()))?;
            if reason.trim().is_empty() {
                return Err(BaselineError(format!(
                    "entry {file} [{rule}] has an empty reason; justification is mandatory"
                )));
            }
            entries.insert((file, rule), Entry { count, reason });
        }
        Ok(Baseline { entries })
    }

    /// Renders the baseline as pretty JSON (trailing newline included).
    pub fn to_json(&self) -> String {
        let items = self
            .entries
            .iter()
            .map(|((file, rule), e)| {
                obj(vec![
                    ("file", Value::Str(file.clone())),
                    ("rule", Value::Str(rule.clone())),
                    ("count", Value::Num(e.count as f64)),
                    ("reason", Value::Str(e.reason.clone())),
                ])
            })
            .collect();
        let doc = obj(vec![
            ("schema", Value::Str(SCHEMA.to_string())),
            ("entries", Value::Arr(items)),
        ]);
        let mut text = doc.to_json_pretty();
        text.push('\n');
        text
    }

    /// Builds the tightest baseline covering `diags`, keeping reasons from
    /// `self` where the `(file, rule)` pair already existed and stamping
    /// [`UNREVIEWED_REASON`] on new pairs.
    pub fn ratcheted(&self, diags: &[Diagnostic]) -> Baseline {
        let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
        for d in diags {
            *counts
                .entry((d.file.clone(), d.rule.as_str().to_string()))
                .or_insert(0) += 1;
        }
        let entries = counts
            .into_iter()
            .map(|(key, count)| {
                let reason = self
                    .entries
                    .get(&key)
                    .map(|e| e.reason.clone())
                    .unwrap_or_else(|| UNREVIEWED_REASON.to_string());
                (key, Entry { count, reason })
            })
            .collect();
        Baseline { entries }
    }
}

/// One diagnostic group's standing relative to the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Standing {
    /// Not covered (or over the allowed count): a hard failure.
    New,
    /// Covered by a baseline allowance.
    Baselined,
}

/// The verdict of comparing a lint run against a baseline.
#[derive(Debug, Default)]
pub struct Verdict {
    /// Diagnostics that must fail the run, in report order.
    pub new: Vec<Diagnostic>,
    /// Diagnostics absorbed by the baseline, in report order.
    pub baselined: Vec<Diagnostic>,
    /// `(file, rule, found, allowed)` where found < allowed — the baseline
    /// can be tightened (run `--update-baseline`).
    pub improvements: Vec<(String, String, u64, u64)>,
}

/// Splits `diags` into new vs baselined findings. A `(file, rule)` group
/// whose count exceeds its allowance fails *wholesale*: line-level blame is
/// meaningless without line-keyed baselines, so the user sees every site.
pub fn compare(baseline: &Baseline, diags: &[Diagnostic]) -> Verdict {
    let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
    for d in diags {
        *counts
            .entry((d.file.clone(), d.rule.as_str().to_string()))
            .or_insert(0) += 1;
    }
    let mut verdict = Verdict::default();
    for d in diags {
        let key = (d.file.clone(), d.rule.as_str().to_string());
        let allowed = baseline.entries.get(&key).map_or(0, |e| e.count);
        if counts[&key] <= allowed {
            verdict.baselined.push(d.clone());
        } else {
            verdict.new.push(d.clone());
        }
    }
    for ((file, rule), entry) in &baseline.entries {
        let found = counts
            .get(&(file.clone(), rule.clone()))
            .copied()
            .unwrap_or(0);
        if found < entry.count {
            verdict
                .improvements
                .push((file.clone(), rule.clone(), found, entry.count));
        }
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    fn diag(file: &str, rule: RuleId, line: u32) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line,
            col: 1,
            rule,
            message: "m".to_string(),
        }
    }

    fn baseline_with(file: &str, rule: &str, count: u64) -> Baseline {
        let mut b = Baseline::default();
        b.entries.insert(
            (file.to_string(), rule.to_string()),
            Entry {
                count,
                reason: "documented caller contract".to_string(),
            },
        );
        b
    }

    #[test]
    fn round_trips_through_json() {
        let b = baseline_with("crates/x/src/a.rs", "panic-policy", 4);
        let text = b.to_json();
        assert_eq!(Baseline::from_json(&text).unwrap(), b);
    }

    #[test]
    fn rejects_wrong_schema_and_empty_reasons() {
        assert!(Baseline::from_json("{\"schema\":\"other\",\"entries\":[]}").is_err());
        let text = "{\"schema\":\"pvtm-lint-baseline/1\",\"entries\":[{\"file\":\"f\",\
                    \"rule\":\"no-hashmap\",\"count\":1,\"reason\":\" \"}]}";
        assert!(Baseline::from_json(text).is_err());
    }

    #[test]
    fn within_allowance_is_baselined_over_is_new() {
        let b = baseline_with("f.rs", "panic-policy", 2);
        let two = vec![
            diag("f.rs", RuleId::PanicPolicy, 1),
            diag("f.rs", RuleId::PanicPolicy, 2),
        ];
        let v = compare(&b, &two);
        assert_eq!(v.new.len(), 0);
        assert_eq!(v.baselined.len(), 2);
        assert!(v.improvements.is_empty());

        let mut three = two.clone();
        three.push(diag("f.rs", RuleId::PanicPolicy, 3));
        let v = compare(&b, &three);
        // Over the allowance: the whole group fails so all sites are shown.
        assert_eq!(v.new.len(), 3);
        assert_eq!(v.baselined.len(), 0);
    }

    #[test]
    fn improvement_is_reported_when_count_drops() {
        let b = baseline_with("f.rs", "panic-policy", 2);
        let one = vec![diag("f.rs", RuleId::PanicPolicy, 1)];
        let v = compare(&b, &one);
        assert_eq!(v.baselined.len(), 1);
        assert_eq!(
            v.improvements,
            vec![("f.rs".to_string(), "panic-policy".to_string(), 1, 2)]
        );
    }

    #[test]
    fn ratchet_preserves_reasons_and_stamps_new_entries() {
        let b = baseline_with("f.rs", "panic-policy", 5);
        let diags = vec![
            diag("f.rs", RuleId::PanicPolicy, 1),
            diag("g.rs", RuleId::NoHashmap, 2),
        ];
        let next = b.ratcheted(&diags);
        let old = &next.entries[&("f.rs".to_string(), "panic-policy".to_string())];
        assert_eq!(old.count, 1);
        assert_eq!(old.reason, "documented caller contract");
        let fresh = &next.entries[&("g.rs".to_string(), "no-hashmap".to_string())];
        assert_eq!(fresh.count, 1);
        assert_eq!(fresh.reason, UNREVIEWED_REASON);
        // A pair with zero findings drops out entirely.
        assert_eq!(next.entries.len(), 2);
    }
}
