//! Golden tests for the semantic pass: `analyze_tree` over the committed
//! fixture trees finds exactly the seeded violations (position-exact), the
//! interprocedural finding names its call chain, const resolution
//! supersedes the lexical "cannot be checked" findings, output is
//! deterministic across runs, and one sink-side allow silences a
//! reachability finding for every caller at once.

use pvtm_lint::{analyze_tree, RuleId, TreeLint};
use std::path::Path;

fn sema_tree() -> &'static Path {
    Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/sema_tree"
    ))
}

fn allow_tree() -> &'static Path {
    Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/sema_allow_tree"
    ))
}

/// 1-based column of `needle` on 1-based `line` of `src`.
fn col_of(src: &str, line: u32, needle: &str) -> u32 {
    let text = src
        .lines()
        .nth(line as usize - 1)
        .unwrap_or_else(|| panic!("fixture has no line {line}"));
    text.find(needle)
        .unwrap_or_else(|| panic!("{needle:?} not on line {line}: {text:?}")) as u32
        + 1
}

#[test]
fn semantic_rules_fire_position_exact_on_the_fixture_tree() {
    let tree = analyze_tree(sema_tree()).expect("fixture tree is committed and readable");
    assert_eq!(tree.files_scanned, 8);

    let knobs = include_str!("fixtures/sema_tree/crates/mcplan/src/knobs.rs");
    let lib = include_str!("fixtures/sema_tree/crates/mcplan/src/lib.rs");
    let prom = include_str!("fixtures/sema_tree/crates/mcplan/src/prom_map.rs");
    let reduce = include_str!("fixtures/sema_tree/crates/mcplan/src/reduce.rs");
    let streams = include_str!("fixtures/sema_tree/crates/mcplan/src/streams.rs");
    let telem = include_str!("fixtures/sema_tree/crates/mcplan/src/telemetry_names.rs");
    let want: Vec<(&str, u32, u32, RuleId)> = vec![
        // Two-way knob diff: a documented-but-never-read ghost entry...
        (
            "crates/mcplan/src/knobs.rs",
            8,
            col_of(knobs, 8, "\"PVTM_FIXTURE_GHOST"),
            RuleId::KnobCoverage,
        ),
        // ...and a read-but-undocumented rogue knob.
        (
            "crates/mcplan/src/knobs.rs",
            17,
            col_of(knobs, 17, "\"PVTM_FIXTURE_ROGUE"),
            RuleId::KnobCoverage,
        ),
        // Interprocedural unwrap chain, anchored at the sink.
        (
            "crates/mcplan/src/lib.rs",
            13,
            col_of(lib, 13, "unwrap"),
            RuleId::PanicReachability,
        ),
        // Prometheus map: a metric outside the §5b taxonomy...
        (
            "crates/mcplan/src/prom_map.rs",
            10,
            col_of(prom, 10, "\"custom.latency"),
            RuleId::TaxonomyResolution,
        ),
        // ...and an exposition name that is not the mechanical mangle.
        (
            "crates/mcplan/src/prom_map.rs",
            11,
            col_of(prom, 11, "\"pvtm_mc_essfrac"),
            RuleId::TaxonomyResolution,
        ),
        // Parallel float sum and reduce outside the Summary::merge idiom.
        (
            "crates/mcplan/src/reduce.rs",
            8,
            col_of(reduce, 8, "sum"),
            RuleId::NondetReduction,
        ),
        (
            "crates/mcplan/src/reduce.rs",
            13,
            col_of(reduce, 13, "reduce"),
            RuleId::NondetReduction,
        ),
        // Literal (seed, stream) collision: the second site is flagged.
        (
            "crates/mcplan/src/streams.rs",
            10,
            col_of(streams, 10, "substream"),
            RuleId::RngStreamDiscipline,
        ),
        // RNG captured across a parallel-closure boundary.
        (
            "crates/mcplan/src/streams.rs",
            17,
            col_of(streams, 17, "rng"),
            RuleId::RngStreamDiscipline,
        ),
        // Chunk-loop stream-id reuse: the second loop's site is flagged.
        (
            "crates/mcplan/src/streams.rs",
            27,
            col_of(streams, 27, "substream"),
            RuleId::RngStreamDiscipline,
        ),
        // Const-routed telemetry name, resolved and rejected.
        (
            "crates/mcplan/src/telemetry_names.rs",
            9,
            col_of(telem, 9, "span"),
            RuleId::TaxonomyResolution,
        ),
    ];
    let got: Vec<(&str, u32, u32, RuleId)> = tree
        .diagnostics
        .iter()
        .map(|d| (d.file.as_str(), d.line, d.col, d.rule))
        .collect();
    assert_eq!(got, want, "diagnostics: {:#?}", tree.diagnostics);

    let msg = |i: usize| tree.diagnostics[i].message.as_str();
    // The reachability finding names the shortest route from the policy API.
    assert!(
        msg(2).contains("pvtm_sram::margin_estimate -> pvtm_mcplan::robust_mean"),
        "{}",
        msg(2)
    );
    // The prom-map findings name the registry and the expected mangle.
    assert!(msg(3).contains("entry of `PROM_METRIC_MAP`"), "{}", msg(3));
    assert!(
        msg(4).contains("expected \"pvtm_mc_ess_fraction\""),
        "{}",
        msg(4)
    );
    // The collision cites its anchor site; the loop reuse cites the first
    // loop; the taxonomy finding attributes the resolved const.
    assert!(
        msg(7).contains("crates/mcplan/src/streams.rs:9"),
        "{}",
        msg(7)
    );
    assert!(msg(9).contains("the loop at line 23"), "{}", msg(9));
    assert!(
        msg(10).contains("resolved through const `STAGE_SPAN`"),
        "{}",
        msg(10)
    );
}

#[test]
fn const_resolution_supersedes_lexical_cannot_check_findings() {
    // The fixture routes a telemetry name and an `env::var` argument
    // through consts; because the semantic pass resolved both, the lexical
    // "non-literal name cannot be checked/audited" findings must be gone.
    let tree = analyze_tree(sema_tree()).expect("fixture tree is committed and readable");
    assert!(
        tree.diagnostics
            .iter()
            .all(|d| d.rule != RuleId::TelemetryTaxonomy && d.rule != RuleId::NoEnvRead),
        "superseded lexical findings leaked: {:#?}",
        tree.diagnostics
    );
}

#[test]
fn analysis_is_deterministic_across_runs() {
    let render = |t: &TreeLint| {
        t.diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    };
    let a = analyze_tree(sema_tree()).expect("fixture tree is committed and readable");
    let b = analyze_tree(sema_tree()).expect("fixture tree is committed and readable");
    assert_eq!(render(&a), render(&b));
}

#[test]
fn a_sink_side_allow_covers_every_caller() {
    // The allow tree has a policy entry point reaching an `unwrap` in a
    // helper crate; the single allow at the sink suppresses the finding
    // (and is counted as used, so no stale-allow report either).
    let tree = analyze_tree(allow_tree()).expect("fixture tree is committed and readable");
    assert_eq!(tree.files_scanned, 2);
    assert_eq!(tree.diagnostics, vec![], "expected a clean allow tree");
}
