//! Seeded violations for the `no-float-eq` rule.

pub fn sentinel(x: f64) -> bool {
    x == 0.0
}

pub fn literal(x: f64) -> bool {
    x != 0.25
}

pub fn infinity(x: f64) -> bool {
    x == f64::INFINITY
}

pub fn fract_guard_is_fine(x: f64) -> bool {
    x.fract() == 0.0
}

pub fn integers_are_fine(n: u32) -> bool {
    n == 0
}
