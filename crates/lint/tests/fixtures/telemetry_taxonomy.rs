//! Seeded violations for the `telemetry-taxonomy` rule.

pub fn unknown_root() {
    pvtm_telemetry::counter_add("frobnicator.count", 1);
}

pub fn bad_shape() {
    let _s = pvtm_telemetry::span("Eval.Margins");
}

pub fn dynamic_name(name: &'static str) {
    pvtm_telemetry::gauge_set(name, 1.0);
}

pub fn known_names_are_fine() {
    let _s = pvtm_telemetry::span("eval.margins");
    pvtm_telemetry::counter_add("solver.newton_iterations", 1);
    pvtm_telemetry::hist_record("mc.is_weight", 0.5);
}
