//! Seeded violations for the walker / CI negative test: this file sits in
//! a panic-policy crate of the fixture tree.

use std::collections::HashMap;

pub fn lookup(m: &HashMap<u32, u32>, k: u32) -> u32 {
    *m.get(&k).unwrap()
}
