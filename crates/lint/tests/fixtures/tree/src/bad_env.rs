//! Seeded violations outside the panic-policy crates: wall clock, float
//! equality, undocumented env knob, off-taxonomy telemetry name.

use std::time::Instant;

pub fn timed_eq(x: f64) -> bool {
    let t = Instant::now();
    pvtm_telemetry::gauge_set("wrong_root.reading", 1.0);
    std::env::var("NOT_A_KNOB").is_ok() && x == 0.0 && t.elapsed().as_secs() == 0
}
