//! Seeded violations for the `no-env-read` rule.

pub fn undocumented() -> Option<String> {
    std::env::var("PVTM_SECRET_KNOB").ok()
}

pub fn dynamic(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

pub fn documented_knob_is_fine() -> Option<String> {
    std::env::var("PVTM_TELEMETRY").ok()
}
