//! The sink justifies itself once, at the sink — not at every caller.

/// Picks the first element; callers guarantee non-empty input.
pub fn pick(v: &[u64]) -> u64 {
    // pvtm-lint: allow(panic-reachability) callers pass non-empty slices by construction
    *v.first().unwrap()
}
