//! Policy entry point whose reachable sink carries a sink-side allow.

/// Public API delegating to the helper crate.
pub fn lookup(v: &[u64]) -> u64 {
    pvtm_helper::pick(v)
}
