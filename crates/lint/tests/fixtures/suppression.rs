//! Suppression-comment behaviour: reasoned allows silence a diagnostic on
//! the same line or the next; everything else is itself reported.

pub fn allowed_same_line(x: f64) -> bool {
    x == 0.0 // pvtm-lint: allow(no-float-eq) assigned sentinel, never computed
}

pub fn allowed_line_above(x: f64) -> bool {
    // pvtm-lint: allow(no-float-eq) assigned sentinel, never computed
    x == 0.0
}

pub fn reasonless_allow_does_not_suppress(x: f64) -> bool {
    x == 0.0 // pvtm-lint: allow(no-float-eq)
}

// pvtm-lint: allow(no-such-rule) rule id typo
pub fn unknown_rule() {}

// pvtm-lint: allow(no-hashmap) nothing here matches
pub fn stale_allow() {}

// pvtm-lint: allw(no-float-eq) malformed directive
pub fn malformed_allow() {}
