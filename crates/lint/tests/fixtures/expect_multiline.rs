//! Regression: a panic-policy `.expect(` whose message sits on a later
//! line (rustfmt splits long chains) must still be checked.

pub fn short_msg(x: Option<u32>) -> u32 {
    x.expect(
        "boom",
    )
}

pub fn nested_then_msg(x: Option<u32>) -> u32 {
    x.expect(
        concat!("bad"),
    )
}

pub fn invariant_msg(x: Option<u32>) -> u32 {
    x.expect(
        "callers validated the index above",
    )
}
