//! Lexer edge cases: nothing in this file may produce a diagnostic. Every
//! forbidden name below is fenced inside a string, raw string, char
//! sequence, or comment.

/// Doc comments mentioning HashMap, Instant::now() and x.unwrap() are prose.
pub fn strings() -> &'static str {
    "HashMap::new() and panic!(\"boom\") and x == 0.0"
}

pub fn raw_strings() -> &'static str {
    r#"Instant::now() "quoted" std::env::var("NOT_A_KNOB")"#
}

pub fn raw_string_long_fence() -> &'static str {
    r##"a "# fence with HashSet inside"##
}

pub fn chars() -> (char, char) {
    ('"', '\'')
}

/* Block comments nest in Rust: /* HashMap inside a nested comment */ and
   the outer one keeps going with Instant::now() until here. */
pub fn lifetimes<'a>(s: &'a str) -> &'a str {
    s
}
