//! A Prometheus name-mapping registry: the semantic pass must check the
//! metric side of every pair against the §5b taxonomy and the exposition
//! side against the mechanical mangle (`pvtm_` + `.` → `_`).

/// Two seeded violations: `custom.latency` has a root outside the §5b
/// metric taxonomy, and `pvtm_mc_essfrac` is not the mechanical mangle
/// of `mc.ess_fraction`. The first pair is clean.
pub const PROM_METRIC_MAP: &[(&str, &str)] = &[
    ("mc.ess", "pvtm_mc_ess"),
    ("custom.latency", "pvtm_custom_latency"),
    ("mc.ess_fraction", "pvtm_mc_essfrac"),
];
