//! Deterministic stream derivation (fixture stand-in for the workspace's
//! real `substream`).

/// Derives RNG stream `stream` of `seed`.
pub fn substream(seed: u64, stream: u64) -> u64 {
    seed.rotate_left(17) ^ stream.wrapping_mul(0x9E37_79B9)
}
