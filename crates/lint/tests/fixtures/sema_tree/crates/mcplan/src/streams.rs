//! Seeded rng-stream-discipline violations: a literal stream-id collision,
//! an RNG captured by a parallel closure, and a chunk loop re-deriving a
//! stream range.

use rayon::prelude::*;

/// The second `substream(42, 7)` collides with the first.
pub fn colliding_pair() -> (u64, u64) {
    let a = crate::rng::substream(42, 7);
    let b = crate::rng::substream(42, 7);
    (a, b)
}

/// One RNG value shared by every worker thread.
pub fn captured_rng(xs: &[u64]) -> Vec<u64> {
    let rng = crate::rng::substream(9, 1);
    xs.par_iter().map(|x| x ^ rng).collect()
}

/// The second loop re-derives the stream ids the first already consumed.
pub fn chunked_runs(chunks: u64) -> u64 {
    let mut acc = 0;
    for c in 0..chunks {
        acc ^= crate::rng::substream(1000, c);
    }
    for c in 0..chunks {
        acc ^= crate::rng::substream(1000, c);
    }
    acc
}
