//! A telemetry span name routed through a const: the semantic pass must
//! resolve it and check it against the §5b registry.

/// Not a §5b root — the resolved check must flag the call site.
const STAGE_SPAN: &str = "mcplan.chunk_sweep";

/// Opens the stage span with a const name.
pub fn record_stage() {
    let _guard = pvtm_telemetry::span(STAGE_SPAN);
}
