//! Non-policy helper crate reached from the policy API: the lexical
//! panic rule does not apply here, only reachability does.

pub mod knobs;
pub mod prom_map;
pub mod reduce;
pub mod rng;
pub mod streams;
pub mod telemetry_names;

/// Seeded violation: panics on empty input, and `pvtm_sram` exposes it.
pub fn robust_mean(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}
