//! Seeded nondet-reduction violations: parallel float accumulation that
//! bypasses the order-fixed `Summary::merge` idiom.

use rayon::prelude::*;

/// Adds in work-stealing order.
pub fn wild_sum(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * 2.0).sum::<f64>()
}

/// Combines partial results in scheduling order.
pub fn wild_reduce(xs: &[f64]) -> f64 {
    xs.par_iter().copied().reduce(|| 0.0, |a, b| a + b)
}
