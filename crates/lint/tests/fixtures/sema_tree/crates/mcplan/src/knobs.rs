//! The fixture tree's documented-knob registry plus seeded coverage gaps:
//! a ghost entry nothing reads and a rogue read nothing documents.

/// Environment knobs this fixture documents (stands in for the README
/// knob table).
pub const DOCUMENTED_ENV_KNOBS: &[&str] = &[
    "PVTM_FIXTURE_THREADS",
    "PVTM_FIXTURE_GHOST",
];

/// Name of the documented thread-count override.
const THREADS_KNOB: &str = "PVTM_FIXTURE_THREADS";

/// Reads the documented knob through a const and a rogue knob by shape.
pub fn thread_override() -> Option<usize> {
    let raw = std::env::var(THREADS_KNOB).ok()?;
    let fallback = lookup("PVTM_FIXTURE_ROGUE");
    raw.parse().ok().or(fallback)
}

fn lookup(_name: &str) -> Option<usize> {
    None
}
