//! Policy-crate entry point: the interprocedural panic audit starts from
//! this public API.

/// Delegates to the helper crate; the `unwrap` it reaches over there is
/// the seeded violation.
pub fn margin_estimate(samples: &[f64]) -> f64 {
    pvtm_mcplan::robust_mean(samples)
}
