//! Seeded violations for the `panic-policy` rule. Linted under the
//! pretend path `crates/sram/src/seeded.rs` so the crate scoping applies.

pub fn boom(flag: bool) {
    if flag {
        panic!("library code must not panic");
    }
}

pub fn yank(v: Option<u8>) -> u8 {
    v.unwrap()
}

pub fn terse(v: Option<u8>) -> u8 {
    v.expect("bad value")
}

pub fn invariant_expect_is_fine(v: Option<u8>) -> u8 {
    v.expect("caller guarantees the slot was filled above")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(3u8).unwrap(), 3);
    }
}
