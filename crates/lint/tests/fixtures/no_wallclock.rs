//! Seeded violations for the `no-wallclock` rule.

use std::time::Instant;

pub fn stamp() -> f64 {
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}

pub fn wall() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_a_test_is_fine() {
        let _ = std::time::Instant::now();
    }
}
