//! Seeded violations for the `no-hashmap` rule.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn build() -> HashMap<u32, u32> {
    HashMap::new()
}

#[cfg(test)]
mod tests {
    // Test code may hash: iteration order cannot leak into shipped results.
    use std::collections::HashSet;

    #[test]
    fn hashset_in_tests_is_fine() {
        let _ = HashSet::<u8>::new();
    }
}
