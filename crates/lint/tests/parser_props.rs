//! Property test: the token-tree parser is total over lexer output — no
//! panic on any token soup — and its delimiter accounting is exact: every
//! opener starts exactly one group, and every token ends up as a leaf, a
//! group opener, or a consumed closer.

use proptest::prelude::*;
use pvtm_lint::lexer::{lex, TokKind};
use pvtm_lint::parser::{build_trees, Tree};

/// Fragment vocabulary covering every token kind, unbalanced delimiters,
/// comments, raw strings, and an unterminated string.
const FRAGS: &[&str] = &[
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    "fn",
    "x",
    "self",
    "42",
    "0xF1",
    "1.5e3",
    "\"s\"",
    "'c'",
    "'a",
    "::",
    ".",
    ",",
    ";",
    "->",
    "=>",
    "==",
    "<",
    ">",
    ">>",
    "!",
    "#",
    "&",
    "|",
    "let",
    "for",
    "// note\n",
    "/* block */",
    "r#\"raw\"#",
    "\"open",
];

fn counts(trees: &[Tree]) -> (usize, usize) {
    let (mut leaves, mut groups) = (0usize, 0usize);
    for t in trees {
        match t {
            Tree::Leaf(_) => leaves += 1,
            Tree::Group(g) => {
                groups += 1;
                let (l, r) = counts(&g.children);
                leaves += l;
                groups += r;
            }
        }
    }
    (leaves, groups)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_is_total_over_lexer_output(
        picks in prop::collection::vec(0usize..FRAGS.len(), 0..64),
    ) {
        let src = picks
            .iter()
            .map(|&i| FRAGS[i])
            .collect::<Vec<_>>()
            .join(" ");
        let toks = lex(&src).tokens;
        let trees = build_trees(&toks);
        let openers = toks
            .iter()
            .filter(|t| {
                t.kind == TokKind::Punct && matches!(t.text.as_str(), "(" | "[" | "{")
            })
            .count();
        let (leaves, groups) = counts(&trees);
        // Every opener starts exactly one group; closers are either
        // consumed by their group or kept as leaves — nothing vanishes.
        prop_assert_eq!(groups, openers);
        prop_assert!(leaves + groups <= toks.len());
        prop_assert!(leaves + 2 * groups >= toks.len());
    }
}
