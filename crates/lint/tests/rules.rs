//! Golden fixture tests: every rule fires on its seeded-violation fixture
//! with exact positions, the suppression machinery behaves, the lexer edge
//! cases stay silent, and the walker + baseline ratchet work end to end on
//! the committed fixture tree.

use pvtm_lint::baseline::{self, Baseline, Entry};
use pvtm_lint::{lint_source, lint_tree, Diagnostic, RuleId};
use std::path::Path;

/// 1-based column of `needle` on 1-based `line` of `src`.
fn col_of(src: &str, line: u32, needle: &str) -> u32 {
    let text = src
        .lines()
        .nth(line as usize - 1)
        .unwrap_or_else(|| panic!("fixture has no line {line}"));
    text.find(needle)
        .unwrap_or_else(|| panic!("{needle:?} not on line {line}: {text:?}")) as u32
        + 1
}

/// Asserts `diags` matches `expected` — (line, col-needle, rule) triples —
/// exactly and in order.
fn assert_diags(src: &str, diags: &[Diagnostic], expected: &[(u32, &str, RuleId)]) {
    let got: Vec<(u32, u32, RuleId)> = diags.iter().map(|d| (d.line, d.col, d.rule)).collect();
    let want: Vec<(u32, u32, RuleId)> = expected
        .iter()
        .map(|&(line, needle, rule)| (line, col_of(src, line, needle), rule))
        .collect();
    assert_eq!(got, want, "diagnostics: {diags:#?}");
}

#[test]
fn no_hashmap_fires_on_fixture() {
    let src = include_str!("fixtures/no_hashmap.rs");
    let diags = lint_source("crates/x/src/seeded.rs", src);
    assert_diags(
        src,
        &diags,
        &[
            (3, "HashMap", RuleId::NoHashmap),
            (4, "HashSet", RuleId::NoHashmap),
            (6, "HashMap", RuleId::NoHashmap),
            (7, "HashMap", RuleId::NoHashmap),
        ],
    );
    assert!(
        diags[0].message.contains("BTreeMap"),
        "{}",
        diags[0].message
    );
}

#[test]
fn no_wallclock_fires_on_fixture() {
    let src = include_str!("fixtures/no_wallclock.rs");
    let diags = lint_source("crates/x/src/seeded.rs", src);
    assert_diags(
        src,
        &diags,
        &[
            (3, "Instant", RuleId::NoWallclock),
            (6, "Instant", RuleId::NoWallclock),
            (10, "SystemTime", RuleId::NoWallclock),
            (11, "SystemTime", RuleId::NoWallclock),
        ],
    );
    assert!(
        diags[0].message.contains("pvtm_telemetry::clock"),
        "{}",
        diags[0].message
    );
}

#[test]
fn no_float_eq_fires_on_fixture() {
    let src = include_str!("fixtures/no_float_eq.rs");
    let diags = lint_source("crates/x/src/seeded.rs", src);
    assert_diags(
        src,
        &diags,
        &[
            (4, "==", RuleId::NoFloatEq),
            (8, "!=", RuleId::NoFloatEq),
            (12, "==", RuleId::NoFloatEq),
        ],
    );
    // `== 0.0` gets the dedicated sentinel fix-hint; the others do not.
    assert!(
        diags[0].message.contains("sentinel"),
        "{}",
        diags[0].message
    );
    assert!(
        !diags[1].message.contains("sentinel"),
        "{}",
        diags[1].message
    );
}

#[test]
fn panic_policy_fires_on_fixture() {
    let src = include_str!("fixtures/panic_policy.rs");
    let diags = lint_source("crates/sram/src/seeded.rs", src);
    assert_diags(
        src,
        &diags,
        &[
            (6, "panic", RuleId::PanicPolicy),
            (11, "unwrap", RuleId::PanicPolicy),
            (15, "expect", RuleId::PanicPolicy),
        ],
    );
    // Outside the policy crates the same file is quiet.
    assert!(lint_source("crates/bench/src/seeded.rs", src).is_empty());
}

#[test]
fn panic_policy_sees_multiline_expect_messages() {
    let src = include_str!("fixtures/expect_multiline.rs");
    let diags = lint_source("crates/sram/src/seeded.rs", src);
    assert_diags(
        src,
        &diags,
        &[
            (5, "expect", RuleId::PanicPolicy),
            (11, "expect", RuleId::PanicPolicy),
        ],
    );
    // The ≥3-word invariant message stays allowed even when split across
    // lines, and the same file outside the policy crates is quiet.
    assert!(lint_source("crates/bench/src/seeded.rs", src).is_empty());
}

#[test]
fn telemetry_taxonomy_fires_on_fixture() {
    let src = include_str!("fixtures/telemetry_taxonomy.rs");
    let diags = lint_source("crates/x/src/seeded.rs", src);
    assert_diags(
        src,
        &diags,
        &[
            (4, "counter_add", RuleId::TelemetryTaxonomy),
            (8, "span", RuleId::TelemetryTaxonomy),
            (12, "gauge_set", RuleId::TelemetryTaxonomy),
        ],
    );
    assert!(
        diags[0].message.contains("frobnicator"),
        "{}",
        diags[0].message
    );
    assert!(
        diags[1].message.contains("dotted lowercase"),
        "{}",
        diags[1].message
    );
    assert!(
        diags[2].message.contains("non-literal"),
        "{}",
        diags[2].message
    );
}

#[test]
fn no_env_read_fires_on_fixture() {
    let src = include_str!("fixtures/no_env_read.rs");
    let diags = lint_source("crates/x/src/seeded.rs", src);
    assert_diags(
        src,
        &diags,
        &[(4, "var", RuleId::NoEnvRead), (8, "var", RuleId::NoEnvRead)],
    );
    assert!(
        diags[0].message.contains("PVTM_SECRET_KNOB"),
        "{}",
        diags[0].message
    );
}

#[test]
fn suppression_fixture_behaves() {
    let src = include_str!("fixtures/suppression.rs");
    let diags = lint_source("crates/x/src/seeded.rs", src);
    assert_diags(
        src,
        &diags,
        &[
            // Reason-less allow: the violation stays...
            (14, "==", RuleId::NoFloatEq),
            // ...and the allow itself is flagged.
            (14, "// pvtm-lint", RuleId::LintAllow),
            (17, "// pvtm-lint", RuleId::LintAllow),
            (20, "// pvtm-lint", RuleId::LintAllow),
            (23, "// pvtm-lint", RuleId::LintAllow),
        ],
    );
    assert!(
        diags[1].message.contains("without a reason"),
        "{}",
        diags[1].message
    );
    assert!(
        diags[2].message.contains("unknown rule"),
        "{}",
        diags[2].message
    );
    assert!(diags[3].message.contains("stale"), "{}", diags[3].message);
    assert!(
        diags[4].message.contains("malformed"),
        "{}",
        diags[4].message
    );
}

#[test]
fn lexer_edge_cases_stay_silent() {
    let src = include_str!("fixtures/lexer_edges.rs");
    let diags = lint_source("crates/sram/src/seeded.rs", src);
    assert_eq!(diags, vec![], "strings/comments must not produce findings");
}

fn fixture_tree() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/tree"))
}

#[test]
fn walker_lints_the_fixture_tree() {
    let tree = lint_tree(fixture_tree()).expect("fixture tree is committed and readable");
    assert_eq!(tree.files_scanned, 2);
    let pairs: Vec<(&str, RuleId)> = tree
        .diagnostics
        .iter()
        .map(|d| (d.file.as_str(), d.rule))
        .collect();
    assert_eq!(
        pairs,
        vec![
            ("crates/sram/src/bad.rs", RuleId::NoHashmap),
            ("crates/sram/src/bad.rs", RuleId::NoHashmap),
            ("crates/sram/src/bad.rs", RuleId::PanicPolicy),
            ("src/bad_env.rs", RuleId::NoWallclock),
            ("src/bad_env.rs", RuleId::NoWallclock),
            ("src/bad_env.rs", RuleId::TelemetryTaxonomy),
            ("src/bad_env.rs", RuleId::NoEnvRead),
            ("src/bad_env.rs", RuleId::NoFloatEq),
        ],
    );
}

#[test]
fn baseline_ratchet_round_trips_on_the_fixture_tree() {
    let tree = lint_tree(fixture_tree()).expect("fixture tree is committed and readable");

    // An empty baseline fails everything.
    let verdict = baseline::compare(&Baseline::default(), &tree.diagnostics);
    assert_eq!(verdict.new.len(), tree.diagnostics.len());
    assert!(verdict.baselined.is_empty());

    // Ratcheting to today's findings absorbs them all...
    let ratcheted = Baseline::default().ratcheted(&tree.diagnostics);
    let verdict = baseline::compare(&ratcheted, &tree.diagnostics);
    assert!(verdict.new.is_empty());
    assert_eq!(verdict.baselined.len(), tree.diagnostics.len());
    assert!(verdict.improvements.is_empty());

    // ...and survives a JSON round trip.
    let reloaded = Baseline::from_json(&ratcheted.to_json()).expect("own output parses");
    assert_eq!(reloaded, ratcheted);

    // A new finding beyond the allowance fails its whole (file, rule) group.
    let mut extra = tree.diagnostics.clone();
    extra.push(Diagnostic {
        file: "src/bad_env.rs".to_string(),
        line: 99,
        col: 1,
        rule: RuleId::NoFloatEq,
        message: "seeded regression".to_string(),
    });
    let verdict = baseline::compare(&reloaded, &extra);
    assert_eq!(verdict.new.len(), 2); // the old site and the new one
    assert!(verdict.improvements.is_empty());

    // Fixing a finding shows up as an improvement to ratchet down.
    let fewer: Vec<Diagnostic> = tree
        .diagnostics
        .iter()
        .filter(|d| d.rule != RuleId::NoEnvRead)
        .cloned()
        .collect();
    let verdict = baseline::compare(&reloaded, &fewer);
    assert!(verdict.new.is_empty());
    assert_eq!(
        verdict.improvements,
        vec![(
            "src/bad_env.rs".to_string(),
            "no-env-read".to_string(),
            0,
            1
        )]
    );
}

#[test]
fn baseline_reasons_are_mandatory_and_preserved() {
    let mut base = Baseline::default();
    base.entries.insert(
        (
            "crates/sram/src/bad.rs".to_string(),
            "panic-policy".to_string(),
        ),
        Entry {
            count: 9,
            reason: "documented caller contract".to_string(),
        },
    );
    let tree = lint_tree(fixture_tree()).expect("fixture tree is committed and readable");
    let next = base.ratcheted(&tree.diagnostics);
    let kept = &next.entries[&(
        "crates/sram/src/bad.rs".to_string(),
        "panic-policy".to_string(),
    )];
    assert_eq!(kept.count, 1, "count ratchets down to today's findings");
    assert_eq!(kept.reason, "documented caller contract");
    let fresh = &next.entries[&("src/bad_env.rs".to_string(), "no-env-read".to_string())];
    assert_eq!(fresh.reason, baseline::UNREVIEWED_REASON);
}
