//! Warm-started vs cold DC solves on randomized 6T cells, plus the
//! fig2a-style regression guard for the compiled-template evaluator.
//!
//! Contract under test (see `pvtm_sram::evaluator`):
//!
//! - with warm starts **disabled**, the evaluator replays the reference
//!   `CellAnalysis` netlists, guesses, and solver strategy bit for bit;
//! - with warm starts **enabled**, every voltage-domain margin agrees to
//!   solver tolerance, and the log-domain hold margin to a few percent
//!   (the droop is exponentially small, so the same voltage tolerance is
//!   amplified in log units);
//! - warm starting actually hits: adjacent Monte-Carlo-style samples reuse
//!   the previous solution far more often than not.

use proptest::prelude::*;

use pvtm_device::Technology;
use pvtm_sram::analysis::{AnalysisConfig, CellAnalysis};
use pvtm_sram::evaluator::CellEvaluator;
use pvtm_sram::{Conditions, FailureAnalyzer, SramCell};

fn setup() -> (Technology, CellAnalysis, SramCell) {
    let tech = Technology::predictive_70nm();
    let analysis = CellAnalysis::new(&tech, AnalysisConfig::default());
    let cell = SramCell::nominal(&tech);
    (tech, analysis, cell)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Warm and cold solves agree on randomized cells: cold is
    /// bit-identical to the reference analysis, warm within tolerance.
    #[test]
    fn warm_and_cold_margins_agree(
        d0 in -0.05f64..0.05,
        d1 in -0.05f64..0.05,
        d2 in -0.05f64..0.05,
        d3 in -0.05f64..0.05,
        d4 in -0.05f64..0.05,
        d5 in -0.05f64..0.05,
        vsb in 0.0f64..0.45,
    ) {
        let (tech, analysis, cell) = setup();
        let cond = Conditions::standby(&tech, vsb);
        let dvt = [d0, d1, d2, d3, d4, d5];

        let mut shifted = cell.clone();
        shifted.set_deviations(dvt);
        let reference = analysis.margins(&shifted, &cond).unwrap();

        let mut cold = CellEvaluator::new(&analysis, &cell);
        cold.set_warm_start(false);
        cold.set_deviations(dvt);
        let cold_m = cold.margins(&cond).unwrap();
        prop_assert_eq!(cold_m.as_array(), reference.as_array());

        let mut warm = CellEvaluator::new(&analysis, &cell);
        warm.set_deviations(dvt);
        // Solve twice so the second pass runs fully warm.
        warm.margins(&cond).unwrap();
        let warm_m = warm.margins(&cond).unwrap();
        let tol = [1e-5, 1e-5, 1e-5, 0.05];
        for ((w, r), t) in warm_m
            .as_array()
            .iter()
            .zip(reference.as_array())
            .zip(tol)
        {
            prop_assert!(
                (w - r).abs() < t,
                "warm {} vs reference {} (tol {}, dvt {:?}, vsb {})",
                w, r, t, dvt, vsb
            );
        }
    }
}

/// Fig. 2a-style regression: the raw failure metrics over the inter-die
/// corner sweep are unchanged (to 1e-9; in fact bit-identical) between the
/// pre-template reference path and the cold evaluator path that now backs
/// `FailureAnalyzer::linearize`.
#[test]
fn fig2a_corner_metrics_regression() {
    let (tech, analysis, cell) = setup();
    let cond = Conditions::standby(&tech, 0.3);
    for vt_inter in [-0.08, 0.0, 0.08] {
        let shifted = cell.clone().with_inter_die_shift(vt_inter);
        // Reference: the metric vector exactly as the pre-refactor
        // FailureAnalyzer::metrics_at computed it, one netlist per solve.
        let active = Conditions { vsb: 0.0, ..cond };
        let reference = [
            analysis.read_margin(&shifted, &active).unwrap(),
            analysis.write_margin(&shifted, &active).unwrap(),
            analysis.access_margin(&shifted, &active).unwrap(),
            analysis.hold_metrics(&shifted, &cond).unwrap().droop.ln(),
            analysis.hold_metrics(&shifted, &cond).unwrap().allowed,
        ];
        let mut ev = CellEvaluator::new(&analysis, &cell);
        ev.set_warm_start(false);
        ev.set_deviations(*shifted.deviations());
        let fast = ev.metrics(&cond).unwrap();
        for (k, (f, r)) in fast.iter().zip(reference).enumerate() {
            assert!(
                (f - r).abs() < 1e-9,
                "metric {k} at corner {vt_inter}: {f} vs {r}"
            );
        }
    }
}

/// The warm-start hit rate over a Monte-Carlo-style loop of adjacent
/// samples must clear 90 % — the premise of the whole optimization.
#[test]
fn warm_hit_rate_over_mc_loop() {
    let (tech, analysis, cell) = setup();
    let cond = Conditions::standby(&tech, 0.3);
    let mut ev = CellEvaluator::new(&analysis, &cell);
    // Deterministic cheap LCG for sample-to-sample jitter.
    let mut state = 0x2545f4914f6cdd1du64;
    let mut unit = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..20 {
        let dvt = std::array::from_fn(|_| (unit() - 0.5) * 0.06);
        ev.set_deviations(dvt);
        ev.margins(&cond).unwrap();
    }
    let stats = ev.stats();
    eprintln!(
        "warm-start stats over MC loop: {stats:?} (hit rate {:.3})",
        stats.warm_hit_rate()
    );
    assert!(stats.warm_attempts > 100, "warm path unused: {stats:?}");
    assert!(
        stats.warm_hit_rate() >= 0.9,
        "hit rate {:.3} below target ({} hits / {} attempts)",
        stats.warm_hit_rate(),
        stats.warm_hits,
        stats.warm_attempts
    );
}

/// The importance-sampled MC estimator (now running on per-chunk warm
/// evaluators) still agrees with the linearized estimate at a stressed
/// corner — the cross-check that guards the whole refactor end to end.
#[test]
fn failure_prob_mc_cross_checks_linearized() {
    let tech = Technology::predictive_70nm();
    let fa = FailureAnalyzer::new(
        &tech,
        pvtm_sram::CellSizing::default_for(&tech),
        AnalysisConfig::default(),
    );
    let cond = Conditions::active(&tech);
    let lin = fa.failure_probs(-0.12, &cond).unwrap().overall();
    let mc = fa.failure_prob_mc(-0.12, &cond, 2000, 7).unwrap();
    assert!(
        mc.value < lin * 4.0 + 4.0 * mc.std_err && lin < mc.value * 4.0 + 4.0 * mc.std_err,
        "linearized {lin:.3e} vs MC {:.3e} ± {:.1e}",
        mc.value,
        mc.std_err
    );
}
