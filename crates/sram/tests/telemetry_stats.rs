//! End-to-end telemetry checks for the SRAM analysis stack.
//!
//! Telemetry state is process-global, so these tests live in their own
//! integration binary (one process, serialized via a local mutex) rather
//! than inside the unit-test binary where unrelated tests also drive the
//! solver.

use std::sync::Mutex;

use pvtm_device::Technology;
use pvtm_sram::analysis::AnalysisConfig;
use pvtm_sram::cell::{CellSizing, Conditions};
use pvtm_sram::failure::FailureAnalyzer;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn analyzer() -> FailureAnalyzer {
    let tech = Technology::predictive_70nm();
    FailureAnalyzer::new(
        &tech,
        CellSizing::default_for(&tech),
        AnalysisConfig::default(),
    )
}

/// The headline claim of the compiled-template PR, re-verified through the
/// telemetry pipeline instead of by poking `SolverStats` directly: a
/// linearization sweep warm-starts almost every solve.
#[test]
fn warm_hit_rate_through_telemetry_is_high() {
    let _g = lock();
    pvtm_telemetry::set_mode(pvtm_telemetry::Mode::Full);
    pvtm_telemetry::reset();

    let fa = analyzer();
    let cond = Conditions::active(&Technology::predictive_70nm());
    let mut ev = fa.evaluator();
    for k in 0..3 {
        fa.linearize_with(&mut ev, 0.01 * k as f64, &cond).unwrap();
    }

    let report = pvtm_telemetry::snapshot();
    let s = &report.solver;
    assert!(
        s.solves > 100,
        "expected hundreds of solves, got {}",
        s.solves
    );
    assert_eq!(s.solves, s.warm_attempts + s.cold_solves);
    assert!(
        s.warm_hit_rate >= 0.90,
        "warm-hit rate {:.3} below floor ({} hits / {} attempts)",
        s.warm_hit_rate,
        s.warm_hits,
        s.warm_attempts,
    );
    assert!(s.lu_factorizations >= s.newton_iterations);

    // The span tree covers the stack: linearize → margins/metrics → dc.
    for path in ["analyzer.linearize", "dc.solve"] {
        assert!(
            report
                .spans
                .iter()
                .any(|r| r.path.split('/').any(|p| p == path)),
            "span {path:?} missing from {:?}",
            report
                .spans
                .iter()
                .map(|r| r.path.clone())
                .collect::<Vec<_>>(),
        );
    }

    // Newton iteration histogram carries every solve.
    let h = report
        .histograms
        .iter()
        .find(|h| h.name == "solver.newton_per_solve")
        .expect("newton histogram missing");
    assert_eq!(
        h.underflow + h.buckets.iter().map(|b| b.count).sum::<u64>(),
        s.solves
    );

    pvtm_telemetry::set_mode(pvtm_telemetry::Mode::Off);
    pvtm_telemetry::reset();
}

/// `failure_prob_mc` opens a default trace scope; its chunk trace must
/// reconstruct to the returned estimate.
#[test]
fn failure_prob_mc_records_default_trace() {
    let _g = lock();
    pvtm_telemetry::set_mode(pvtm_telemetry::Mode::Summary);
    pvtm_telemetry::reset();

    let fa = analyzer();
    let cond = Conditions::active(&Technology::predictive_70nm());
    let est = fa.failure_prob_mc(0.0, &cond, 600, 7).unwrap();

    let report = pvtm_telemetry::snapshot();
    let t = report.trace("analyzer.mc").expect("default trace missing");
    let last = t.points.last().unwrap();
    assert_eq!(last.samples, est.samples);
    assert_eq!(last.value, est.value);

    // Importance-sampling weights were histogrammed whenever a failure hit.
    if est.value > 0.0 {
        assert!(report
            .histograms
            .iter()
            .any(|h| h.name == "mc.is_weight" && h.count > 0));
    }

    pvtm_telemetry::set_mode(pvtm_telemetry::Mode::Off);
    pvtm_telemetry::reset();
}

/// With telemetry off (the default), instrumented code records nothing and
/// results are unchanged.
#[test]
fn disabled_mode_records_nothing_and_preserves_results() {
    let _g = lock();
    pvtm_telemetry::set_mode(pvtm_telemetry::Mode::Off);
    pvtm_telemetry::reset();

    let fa = analyzer();
    let cond = Conditions::active(&Technology::predictive_70nm());
    let on = {
        pvtm_telemetry::set_mode(pvtm_telemetry::Mode::Full);
        let m = fa.linearize(0.0, &cond).unwrap();
        pvtm_telemetry::set_mode(pvtm_telemetry::Mode::Off);
        pvtm_telemetry::reset();
        m
    };
    let off = fa.linearize(0.0, &cond).unwrap();
    assert_eq!(on.probs().as_array(), off.probs().as_array());

    let report = pvtm_telemetry::snapshot();
    assert_eq!(report.solver.solves, 0);
    assert!(report.spans.is_empty());
    assert!(report.histograms.is_empty());
    assert!(report.traces.is_empty());
}
