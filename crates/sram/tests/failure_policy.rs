//! Fail-stop policy checks: pathological inputs and injected solver
//! faults must surface as `CircuitError` (or quarantine) — never as a
//! panic and never as a silent abort of a whole run.
//!
//! Fault-injection state is process-global, so these tests live in their
//! own integration binary and serialize through a local mutex.

use std::sync::Mutex;

use proptest::prelude::*;

use pvtm_circuit::CircuitError;
use pvtm_device::Technology;
use pvtm_sram::analysis::AnalysisConfig;
use pvtm_sram::cell::{CellSizing, Conditions};
use pvtm_sram::failure::FailureAnalyzer;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn analyzer() -> FailureAnalyzer {
    let tech = Technology::predictive_70nm();
    FailureAnalyzer::new(
        &tech,
        CellSizing::default_for(&tech),
        AnalysisConfig::default(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pathological cells — threshold shifts far beyond any physical
    /// process spread, deep source bias — flow through the evaluator's
    /// margins/metrics as a `Result`, never as a panic. Whether a given
    /// monster converges is not the contract; not crashing is.
    #[test]
    fn pathological_cells_error_instead_of_panicking(
        d0 in -0.6f64..0.6,
        d1 in -0.6f64..0.6,
        d2 in -0.6f64..0.6,
        d3 in -0.6f64..0.6,
        d4 in -0.6f64..0.6,
        d5 in -0.6f64..0.6,
        vt_inter in -0.4f64..0.4,
        vsb in 0.0f64..0.74,
    ) {
        let _g = lock();
        let fa = analyzer();
        let tech = Technology::predictive_70nm();
        let cond = Conditions::standby(&tech, vsb);
        let mut ev = fa.evaluator();
        ev.set_deviations([d0, d1, d2, d3, d4, d5]);
        // Either outcome is acceptable; a panic is not.
        let _ = ev.margins(&cond);
        let _ = ev.metrics(&cond);
        let _ = fa.linearize(vt_inter, &cond);
    }
}

/// A solve forced to fail at every rung of the rescue ladder surfaces as
/// `CircuitError::NoConvergence` through the analysis stack.
#[test]
fn exhausted_rescue_ladder_surfaces_circuit_error() {
    let _g = lock();
    let fa = analyzer();
    let tech = Technology::predictive_70nm();
    let cond = Conditions::active(&tech);
    // Depth 10 outlives every trip point of both the warm and the cold
    // strategy chains, so the solve is unrescuable by construction.
    let _f = pvtm_telemetry::fault::force_depth(10);
    let err = fa
        .linearize(0.0, &cond)
        .expect_err("an unrescuable injected fault must propagate as an error");
    assert!(
        matches!(err, CircuitError::NoConvergence { .. }),
        "unexpected error kind: {err:?}"
    );
}

/// Injected faults quarantine Monte-Carlo samples instead of aborting the
/// estimator, and the records are identical across two runs (clock-free
/// determinism of the quarantine path).
#[test]
fn injected_faults_quarantine_deterministically() {
    let _g = lock();
    pvtm_telemetry::set_mode(pvtm_telemetry::Mode::Summary);

    let fa = analyzer();
    let tech = Technology::predictive_70nm();
    let cond = Conditions::active(&tech);

    let run = || {
        pvtm_telemetry::reset();
        pvtm_telemetry::fault::force(0xFA57, 0.05);
        let est = fa
            .failure_prob_mc_quarantined(0.0, &cond, 2000, 7)
            .expect("quarantine-aware estimator never fails below the rate gate");
        pvtm_telemetry::fault::disable();
        let report = pvtm_telemetry::snapshot();
        (est, report.counter("mc.quarantined"), report.quarantine)
    };
    let (est_a, count_a, recs_a) = run();
    let (est_b, count_b, recs_b) = run();

    assert!(
        est_a.quarantined > 0,
        "a 5% injection rate over 2000 samples must quarantine something"
    );
    assert_eq!(
        est_a.quarantined, count_a,
        "counter disagrees with estimate"
    );
    assert!(!recs_a.is_empty(), "sidecar quarantine section empty");
    // Both-sided bias bounds bracket the quarantined mass.
    assert!(est_a.pass_bound.value <= est_a.fail_bound.value);

    assert_eq!(est_a.fail_bound.value, est_b.fail_bound.value);
    assert_eq!(est_a.pass_bound.value, est_b.pass_bound.value);
    assert_eq!(count_a, count_b, "quarantine counts differ across runs");
    assert_eq!(recs_a, recs_b, "quarantine records differ across runs");

    pvtm_telemetry::set_mode(pvtm_telemetry::Mode::Off);
    pvtm_telemetry::reset();
}
