//! Array organization, redundancy yield model, and array-leakage
//! statistics.
//!
//! Implements the memory-level math of the paper:
//!
//! - a cell failure makes its column faulty; a chip fails when the number
//!   of faulty columns exceeds the redundant columns (§II),
//! - array leakage is Gaussian by the CLT with `µ_MEM = N·µ_cell` and
//!   `σ_MEM = √N·σ_cell` (Eq. (2)), and the probability of meeting a
//!   leakage bound is `Φ((L_MAX − µ)/σ)` (Eq. (3)).

use serde::{Deserialize, Serialize};

use crate::leakage::LeakageStats;
use pvtm_stats::special::{binomial_sf, norm_cdf};

/// Physical organization of a memory array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayOrganization {
    /// Rows (cells per column).
    pub rows: usize,
    /// Data columns.
    pub cols: usize,
    /// Redundant (spare) columns available for repair.
    pub redundant_cols: usize,
}

impl ArrayOrganization {
    /// Creates an organization.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize, redundant_cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array must have rows and columns");
        Self {
            rows,
            cols,
            redundant_cols,
        }
    }

    /// Conventional organization for a capacity in KiB: 256 rows, the
    /// column count set by the capacity, and a redundancy *fraction* of
    /// the columns (the paper's §IV assumes 5 %).
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero or the fraction is not in `[0, 1)`.
    ///
    /// # Example
    ///
    /// ```
    /// use pvtm_sram::ArrayOrganization;
    /// let org = ArrayOrganization::with_capacity_kib(64, 0.05);
    /// assert_eq!(org.cells(), 64 * 1024 * 8);
    /// assert_eq!(org.rows, 256);
    /// ```
    pub fn with_capacity_kib(kib: usize, redundancy_frac: f64) -> Self {
        assert!(kib > 0, "capacity must be positive");
        assert!(
            (0.0..1.0).contains(&redundancy_frac),
            "redundancy fraction out of range"
        );
        let cells = kib * 1024 * 8;
        let rows = 256;
        let cols = cells / rows;
        let redundant = (cols as f64 * redundancy_frac).round() as usize;
        Self::new(rows, cols, redundant)
    }

    /// Like [`Self::with_capacity_kib`] but with a fixed number of spare
    /// columns instead of a fraction — the configuration used when
    /// comparing memory sizes at equal repair budget (paper Fig. 2c, where
    /// the larger memory yields worse).
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero.
    pub fn with_capacity_kib_spares(kib: usize, spares: usize) -> Self {
        assert!(kib > 0, "capacity must be positive");
        let cells = kib * 1024 * 8;
        let rows = 256;
        Self::new(rows, cells / rows, spares)
    }

    /// Total number of data cells.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Capacity in KiB (8 cells per byte).
    pub fn capacity_kib(&self) -> f64 {
        self.cells() as f64 / 8192.0
    }

    /// Probability that one column is faulty given a per-cell failure
    /// probability: `1 − (1 − p)^rows`, evaluated stably for tiny `p`.
    pub fn column_failure_prob(&self, p_cell: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p_cell),
            "invalid probability {p_cell}"
        );
        // pvtm-lint: allow(no-float-eq) degenerate probability endpoint has an exact closed form
        if p_cell == 0.0 {
            return 0.0;
        }
        // pvtm-lint: allow(no-float-eq) degenerate probability endpoint has an exact closed form
        if p_cell == 1.0 {
            return 1.0;
        }
        -(self.rows as f64 * (-p_cell).ln_1p()).exp_m1()
    }

    /// Memory failure probability: more faulty columns than spares
    /// (paper's yield model; the complement feeds Eq. (1)).
    pub fn memory_failure_prob(&self, p_cell: f64) -> f64 {
        let p_col = self.column_failure_prob(p_cell);
        binomial_sf(self.cols as u64, self.redundant_cols as u64, p_col)
    }

    /// Expected number of faulty columns.
    pub fn expected_faulty_columns(&self, p_cell: f64) -> f64 {
        self.cols as f64 * self.column_failure_prob(p_cell)
    }

    /// Expected number of faulty cells in the array.
    pub fn expected_faulty_cells(&self, p_cell: f64) -> f64 {
        self.cells() as f64 * p_cell
    }

    /// Array leakage statistics from per-cell statistics via the CLT
    /// (paper Eq. (2)): mean scales with `N`, sigma with `√N`.
    pub fn leakage_stats(&self, cell: LeakageStats) -> LeakageStats {
        let n = self.cells() as f64;
        LeakageStats {
            mean: n * cell.mean,
            std_dev: n.sqrt() * cell.std_dev,
        }
    }

    /// Probability that the array leakage meets the bound `l_max`
    /// (paper Eq. (3)): `Φ((L_MAX − µ_MEM)/σ_MEM)`.
    pub fn leakage_bound_prob(&self, cell: LeakageStats, l_max: f64) -> f64 {
        let stats = self.leakage_stats(cell);
        // pvtm-lint: allow(no-float-eq) zero spread collapses the bound to a step function
        if stats.std_dev == 0.0 {
            return if stats.mean <= l_max { 1.0 } else { 0.0 };
        }
        norm_cdf((l_max - stats.mean) / stats.std_dev)
    }
}

/// Yield summary of an array evaluated across inter-die corners.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayYield {
    /// Fraction of dies whose memory is functional (parametric yield).
    pub parametric: f64,
    /// Fraction of dies meeting the leakage bound (`L_Yield`, Eq. (4)).
    pub leakage: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_math() {
        let org = ArrayOrganization::with_capacity_kib(256, 0.05);
        assert_eq!(org.cells(), 256 * 1024 * 8);
        assert!((org.capacity_kib() - 256.0).abs() < 1e-12);
        assert_eq!(
            org.redundant_cols,
            (org.cols as f64 * 0.05).round() as usize
        );
    }

    #[test]
    fn column_failure_prob_limits() {
        let org = ArrayOrganization::new(256, 100, 5);
        assert_eq!(org.column_failure_prob(0.0), 0.0);
        assert_eq!(org.column_failure_prob(1.0), 1.0);
        // Tiny p: p_col ≈ rows·p.
        let p = 1e-9;
        let pc = org.column_failure_prob(p);
        assert!((pc / (256.0 * p) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn memory_failure_monotone_in_cell_prob() {
        let org = ArrayOrganization::with_capacity_kib(64, 0.05);
        let mut prev = -1.0;
        for &p in &[0.0, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3] {
            let pm = org.memory_failure_prob(p);
            assert!(pm >= prev, "non-monotone at p={p}");
            assert!((0.0..=1.0).contains(&pm));
            prev = pm;
        }
    }

    #[test]
    fn redundancy_improves_survival() {
        let p_cell = 2e-5;
        let none = ArrayOrganization::new(256, 2048, 0).memory_failure_prob(p_cell);
        let some = ArrayOrganization::new(256, 2048, 16).memory_failure_prob(p_cell);
        let more = ArrayOrganization::new(256, 2048, 64).memory_failure_prob(p_cell);
        assert!(some < none);
        assert!(more < some);
    }

    #[test]
    fn bigger_memories_fail_more_at_equal_spares() {
        // Fig. 2c shows 256 KB below 64 KB in yield at equal sigma: at a
        // fixed spare-column budget, the larger array accumulates more
        // faulty columns.
        let p_cell = 1e-6;
        let small = ArrayOrganization::with_capacity_kib_spares(64, 8).memory_failure_prob(p_cell);
        let big = ArrayOrganization::with_capacity_kib_spares(256, 8).memory_failure_prob(p_cell);
        assert!(big > small, "256KB {big:.3e} vs 64KB {small:.3e}");
    }

    #[test]
    fn leakage_stats_scale_by_clt() {
        let org = ArrayOrganization::new(256, 4, 0); // 1024 cells
        let cell = LeakageStats {
            mean: 1e-9,
            std_dev: 5e-10,
        };
        let arr = org.leakage_stats(cell);
        assert!((arr.mean - 1024e-9).abs() < 1e-15);
        assert!((arr.std_dev - 32.0 * 5e-10).abs() < 1e-15);
    }

    #[test]
    fn leakage_bound_prob_behaviour() {
        let org = ArrayOrganization::new(256, 4, 0);
        let cell = LeakageStats {
            mean: 1e-9,
            std_dev: 5e-10,
        };
        let stats = org.leakage_stats(cell);
        // Bound at the mean: 50 %.
        assert!((org.leakage_bound_prob(cell, stats.mean) - 0.5).abs() < 1e-12);
        // Generous bound: ~1; stingy bound: ~0.
        assert!(org.leakage_bound_prob(cell, stats.mean * 2.0) > 0.999);
        assert!(org.leakage_bound_prob(cell, stats.mean * 0.5) < 1e-3);
    }

    #[test]
    fn expected_counts() {
        let org = ArrayOrganization::new(256, 1000, 10);
        let p = 1e-6;
        assert!((org.expected_faulty_cells(p) - 0.256).abs() < 1e-9);
        let efc = org.expected_faulty_columns(p);
        assert!(efc > 0.25 && efc < 0.26);
    }

    #[test]
    #[should_panic(expected = "rows and columns")]
    fn rejects_empty_array() {
        let _ = ArrayOrganization::new(0, 10, 1);
    }
}
