//! 6T SRAM cell and array analysis under process variation.
//!
//! This crate implements the statistical SRAM methodology of the paper's
//! §II (following its refs \[3\] and \[4\]):
//!
//! - [`cell`] — the 6T cell: sizing, per-transistor threshold deviations
//!   (inter-die shift + RDF), and netlist construction on `pvtm-circuit`.
//! - [`analysis`] — the four parametric-failure metrics: read margin
//!   (`V_TRIPRD − V_READ`), static write margin, access-time margin, and
//!   hold margin at a raised source bias; plus butterfly static-noise-margin
//!   extraction.
//! - [`failure`] — failure-probability estimation per mechanism: a fast
//!   linearized (sensitivity) estimator and an importance-sampled
//!   Monte-Carlo cross-check.
//! - [`leakage`] — standby cell leakage decomposition vs. body bias and
//!   source bias; lognormal cell-population statistics.
//! - `array` — array organization, column-redundancy memory-failure model
//!   (paper Eq. (1) machinery) and CLT array-leakage statistics (Eq. (2)).
//! - [`optimizer`] — cell sizing search that equalizes the four failure
//!   probabilities at zero body bias (the premise of the paper's Fig. 2b).
//!
//! # Example
//!
//! ```
//! use pvtm_device::Technology;
//! use pvtm_sram::{SramCell, analysis::{CellAnalysis, AnalysisConfig}, Conditions};
//!
//! let tech = Technology::predictive_70nm();
//! let cell = SramCell::nominal(&tech);
//! let analysis = CellAnalysis::new(&tech, AnalysisConfig::default());
//! let m = analysis.margins(&cell, &Conditions::active(&tech))?;
//! // A nominal cell has healthy margins on every mechanism.
//! assert!(m.read > 0.0 && m.write > 0.0 && m.access > 0.0 && m.hold > 0.0);
//! # Ok::<(), pvtm_circuit::CircuitError>(())
//! ```

pub mod analysis;
pub mod array;
pub mod cell;
pub mod evaluator;
pub mod failure;
pub mod leakage;
pub mod optimizer;

pub use analysis::{AnalysisConfig, CellAnalysis, Margins};
pub use array::{ArrayOrganization, ArrayYield};
pub use cell::{CellSizing, Conditions, SramCell, Xtor};
pub use evaluator::CellEvaluator;
pub use failure::{FailureAnalyzer, FailureProbs};
pub use leakage::CellLeakageModel;
pub use optimizer::SizeOptimizer;
