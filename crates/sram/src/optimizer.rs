//! Cell sizing optimizer.
//!
//! The paper's Fig. 2b notes the cell is "sized to have equal probabilities
//! for different failure events at ZBB" — that balance is what makes
//! adaptive body bias a pure win (it trades a dominant mechanism against a
//! negligible one at each corner). This module searches the width space to
//! find that balance, and also supports minimizing the overall failure
//! probability under an area budget.

use pvtm_circuit::CircuitError;

use crate::analysis::AnalysisConfig;
use crate::cell::{CellSizing, Conditions};
use crate::evaluator::CellEvaluator;
use crate::failure::FailureAnalyzer;
use pvtm_device::Technology;

/// Result of a sizing search.
#[derive(Debug, Clone, PartialEq)]
pub struct SizingResult {
    /// The selected sizing.
    pub sizing: CellSizing,
    /// Objective value at the optimum (lower is better).
    pub objective: f64,
    /// Number of objective evaluations spent.
    pub evaluations: usize,
}

/// Coordinate-descent sizing search over `(wpd, wax, wpu)`.
#[derive(Debug, Clone)]
pub struct SizeOptimizer {
    tech: Technology,
    config: AnalysisConfig,
    cond: Conditions,
    max_evaluations: usize,
}

impl SizeOptimizer {
    /// Creates an optimizer that evaluates candidates at the given
    /// conditions (typically nominal corner, zero body bias).
    pub fn new(tech: &Technology, config: AnalysisConfig, cond: Conditions) -> Self {
        Self {
            tech: tech.clone(),
            config,
            cond,
            max_evaluations: 60,
        }
    }

    /// Caps the number of objective evaluations (each costs a full
    /// linearized failure analysis).
    pub fn with_max_evaluations(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one evaluation");
        self.max_evaluations = n;
        self
    }

    /// One compiled evaluator for the whole search: candidate sizings only
    /// change device geometry, which the templates re-patch per solve.
    fn evaluator(&self, start: CellSizing) -> CellEvaluator {
        FailureAnalyzer::new(&self.tech, start, self.config).evaluator()
    }

    /// Log-domain failure probabilities of a candidate sizing, evaluated
    /// through a caller-held (retargeted) evaluator.
    fn log_probs(
        &self,
        ev: &mut CellEvaluator,
        sizing: CellSizing,
    ) -> Result<[f64; 4], CircuitError> {
        let _span = pvtm_telemetry::span("optimizer.candidate");
        pvtm_telemetry::counter_add("optimizer.candidates", 1);
        let fa = FailureAnalyzer::new(&self.tech, sizing, self.config);
        ev.set_cell(fa.base());
        let p = fa.failure_probs_with(ev, 0.0, &self.cond)?.as_array();
        // Floor avoids -inf for mechanisms that are effectively impossible.
        Ok(p.map(|x| x.max(1e-30).ln()))
    }

    /// Spread of the four log-probabilities (the balance objective).
    fn balance_objective(
        &self,
        ev: &mut CellEvaluator,
        sizing: CellSizing,
    ) -> Result<f64, CircuitError> {
        let lp = self.log_probs(ev, sizing)?;
        let mean = lp.iter().sum::<f64>() / 4.0;
        Ok(lp.iter().map(|x| (x - mean).powi(2)).sum::<f64>().sqrt())
    }

    /// Searches for widths that equalize the four failure probabilities at
    /// the evaluation conditions, starting from `start`.
    ///
    /// Coordinate descent with multiplicative steps on each width, bounds
    /// `[0.5×, 2×]` of the starting value, shrinking the step when no move
    /// improves.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures encountered during evaluation.
    pub fn equalize_failures(&self, start: CellSizing) -> Result<SizingResult, CircuitError> {
        let mut ev = self.evaluator(start);
        self.search(start, |s| self.balance_objective(&mut ev, s))
    }

    /// Searches for widths minimizing the overall failure probability with
    /// total gate area constrained to at most `area_budget` (candidates
    /// over budget are rejected).
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures encountered during evaluation.
    pub fn minimize_failure(
        &self,
        start: CellSizing,
        area_budget: f64,
    ) -> Result<SizingResult, CircuitError> {
        let mut ev = self.evaluator(start);
        self.search(start, |s| {
            if s.area() > area_budget {
                return Ok(f64::INFINITY);
            }
            let lp = self.log_probs(&mut ev, s)?;
            // Overall failure is dominated by the worst mechanism.
            Ok(lp.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x)))
        })
    }

    fn search(
        &self,
        start: CellSizing,
        mut objective: impl FnMut(CellSizing) -> Result<f64, CircuitError>,
    ) -> Result<SizingResult, CircuitError> {
        let mut best = start;
        let mut best_obj = objective(best)?;
        let mut evals = 1usize;
        let mut step = 1.18f64;
        let bounds = [
            (start.wpd * 0.5, start.wpd * 2.0),
            (start.wax * 0.5, start.wax * 2.0),
            (start.wpu * 0.5, start.wpu * 2.0),
        ];

        while evals < self.max_evaluations && step > 1.02 {
            let mut improved = false;
            for coord in 0..3 {
                for &factor in &[step, 1.0 / step] {
                    if evals >= self.max_evaluations {
                        break;
                    }
                    let mut cand = best;
                    let (w, (lo, hi)) = match coord {
                        0 => (&mut cand.wpd, bounds[0]),
                        1 => (&mut cand.wax, bounds[1]),
                        _ => (&mut cand.wpu, bounds[2]),
                    };
                    *w = (*w * factor).clamp(lo, hi);
                    if cand == best {
                        continue;
                    }
                    let obj = objective(cand)?;
                    evals += 1;
                    if obj < best_obj {
                        best = cand;
                        best_obj = obj;
                        improved = true;
                    }
                }
            }
            if !improved {
                step = step.sqrt();
            }
        }
        Ok(SizingResult {
            sizing: best,
            objective: best_obj,
            evaluations: evals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equalize_reduces_spread() {
        let tech = Technology::predictive_70nm();
        let cond = Conditions::active(&tech);
        let opt =
            SizeOptimizer::new(&tech, AnalysisConfig::default(), cond).with_max_evaluations(18);
        let start = CellSizing::default_for(&tech);
        let start_obj = opt
            .balance_objective(&mut opt.evaluator(start), start)
            .unwrap();
        let result = opt.equalize_failures(start).unwrap();
        assert!(
            result.objective <= start_obj,
            "optimizer must not regress: {} -> {}",
            start_obj,
            result.objective
        );
        result.sizing.validate().unwrap();
        assert!(result.evaluations <= 18);
    }

    #[test]
    fn minimize_respects_area_budget() {
        let tech = Technology::predictive_70nm();
        let cond = Conditions::active(&tech);
        let opt =
            SizeOptimizer::new(&tech, AnalysisConfig::default(), cond).with_max_evaluations(14);
        let start = CellSizing::default_for(&tech);
        let budget = start.area() * 1.2;
        let result = opt.minimize_failure(start, budget).unwrap();
        assert!(result.sizing.area() <= budget * (1.0 + 1e-12));
    }

    #[test]
    fn bounds_clamp_widths() {
        let tech = Technology::predictive_70nm();
        let cond = Conditions::active(&tech);
        let opt =
            SizeOptimizer::new(&tech, AnalysisConfig::default(), cond).with_max_evaluations(30);
        let start = CellSizing::default_for(&tech);
        let result = opt.equalize_failures(start).unwrap();
        assert!(result.sizing.wpd >= start.wpd * 0.5 - 1e-15);
        assert!(result.sizing.wpd <= start.wpd * 2.0 + 1e-15);
        assert!(result.sizing.wax >= start.wax * 0.5 - 1e-15);
        assert!(result.sizing.wpu <= start.wpu * 2.0 + 1e-15);
    }
}
