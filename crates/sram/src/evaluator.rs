//! Compiled-template cell evaluator: the allocation-free Monte-Carlo hot
//! path.
//!
//! [`CellAnalysis`](crate::analysis::CellAnalysis) builds a fresh netlist
//! for every DC question it asks — ~80 netlists (and as many solver scratch
//! allocations) per full [`Margins`] evaluation once the trip-point
//! bisections are counted. That is fine for one-off analyses and is kept as
//! the reference implementation, but it dominates the runtime of the
//! importance-sampled failure estimator, which evaluates tens of thousands
//! of perturbed cells on the *same four topologies*.
//!
//! [`CellEvaluator`] compiles those topologies once into
//! [`CircuitTemplate`]s — the read divider, the write level, the full 6T
//! hold state, and the loaded inverter used by every trip-point bisection —
//! and re-solves them per sample by patching typed parameter slots. Solves
//! are warm-started from the previous solution (adjacent Monte-Carlo
//! samples and adjacent bisection points are a few millivolts apart), with
//! cold Gmin continuation only as the fallback.
//!
//! The numbers are the `CellAnalysis` numbers: with warm starts disabled
//! the evaluator replays the identical netlists, guesses and solver
//! strategy, bit for bit. Warm starts change only the Newton iteration
//! path, so voltage-domain metrics agree to solver tolerance (≲10 µV).
//! The one delicate quantity — the exponentially small hold droop, whose
//! logarithm amplifies any within-tolerance drift to percent level — is
//! excluded from warm starting: the bistable hold state always solves
//! cold, so the droop is bit-identical to the reference regardless of
//! warm-start mode (see the proptest suite in
//! `tests/warm_cold_agreement.rs`).
//!
//! # Example
//!
//! ```
//! use pvtm_device::Technology;
//! use pvtm_sram::analysis::{AnalysisConfig, CellAnalysis};
//! use pvtm_sram::evaluator::CellEvaluator;
//! use pvtm_sram::{Conditions, SramCell};
//!
//! let tech = Technology::predictive_70nm();
//! let analysis = CellAnalysis::new(&tech, AnalysisConfig::default());
//! let cell = SramCell::nominal(&tech);
//! let mut ev = CellEvaluator::new(&analysis, &cell);
//! let cond = Conditions::active(&tech);
//! let reference = analysis.margins(&cell, &cond)?;
//! let fast = ev.margins(&cond)?;
//! assert!((fast.read - reference.read).abs() < 1e-6);
//! # Ok::<(), pvtm_circuit::CircuitError>(())
//! ```

use pvtm_circuit::{
    CircuitError, CircuitTemplate, DcOptions, MosfetSlot, Netlist, NodeId, SolverStats, VsourceSlot,
};

use crate::analysis::{CellAnalysis, HoldMetrics, Margins, Side};
use crate::cell::{Conditions, SramCell, Xtor};

/// The compiled read divider: `AXR` against `NR` with the word line high.
struct ReadTpl {
    tpl: CircuitTemplate,
    n_vr: NodeId,
    vbr: VsourceSlot,
    vvl: VsourceSlot,
    vwl: VsourceSlot,
    vsl: VsourceSlot,
    vbn: VsourceSlot,
    axr: MosfetSlot,
    nr: MosfetSlot,
}

/// The compiled write level: `AXL` (bit line low) against `PL`.
struct WriteTpl {
    tpl: CircuitTemplate,
    n_vl: NodeId,
    n_vdd: NodeId,
    vdd: VsourceSlot,
    vvr: VsourceSlot,
    vbl: VsourceSlot,
    vwl: VsourceSlot,
    vsl: VsourceSlot,
    vbn: VsourceSlot,
    pl: MosfetSlot,
    nl: MosfetSlot,
    axl: MosfetSlot,
}

/// The compiled full 6T cell in standby (word line low).
struct HoldTpl {
    tpl: CircuitTemplate,
    n_vl: NodeId,
    n_vr: NodeId,
    n_vdd: NodeId,
    n_bl: NodeId,
    n_br: NodeId,
    n_sl: NodeId,
    vdd: VsourceSlot,
    vbl: VsourceSlot,
    vbr: VsourceSlot,
    vwl: VsourceSlot,
    vsl: VsourceSlot,
    vbn: VsourceSlot,
    devices: [MosfetSlot; 6],
}

/// The compiled loaded inverter used by every trip-point bisection. One
/// template serves both sides: the three devices are patched per side.
struct InvTpl {
    tpl: CircuitTemplate,
    n_out: NodeId,
    n_vdd: NodeId,
    vdd: VsourceSlot,
    vin: VsourceSlot,
    vbit: VsourceSlot,
    vwl: VsourceSlot,
    vsl: VsourceSlot,
    vbn: VsourceSlot,
    pu: MosfetSlot,
    pd: MosfetSlot,
    ax: MosfetSlot,
}

/// Reusable evaluator of the four failure metrics over one cell topology.
///
/// Holds the four compiled templates plus a scratch cell whose
/// per-transistor deviations are patched per sample via
/// [`Self::set_deviations`]. See the [module documentation](self).
pub struct CellEvaluator {
    analysis: CellAnalysis,
    cell: SramCell,
    read: ReadTpl,
    write: WriteTpl,
    hold: HoldTpl,
    inv: InvTpl,
}

impl CellEvaluator {
    /// Compiles the four analysis topologies for `base`'s technology and
    /// sizing. The base deviations are the starting point of
    /// [`Self::set_deviations`].
    pub fn new(analysis: &CellAnalysis, base: &SramCell) -> Self {
        Self {
            analysis: analysis.clone(),
            cell: base.clone(),
            read: Self::compile_read(base),
            write: Self::compile_write(base),
            hold: Self::compile_hold(base),
            inv: Self::compile_inverter(base),
        }
    }

    /// Slot lookup for a vsource that the netlist built in the same
    /// function is guaranteed to declare.
    fn vslot(tpl: &CircuitTemplate, name: &str) -> VsourceSlot {
        tpl.vsource_slot(name)
            .expect("netlist constructed above declares every named vsource")
    }

    /// Slot lookup for a mosfet that the netlist built in the same
    /// function is guaranteed to declare.
    fn mslot(tpl: &CircuitTemplate, name: &str) -> MosfetSlot {
        tpl.mosfet_slot(name)
            .expect("netlist constructed above declares every named mosfet")
    }

    fn compile_read(cell: &SramCell) -> ReadTpl {
        let mut ckt = Netlist::new();
        let br = ckt.node("br");
        let vr = ckt.node("vr");
        let vl = ckt.node("vl");
        let wl = ckt.node("wl");
        let sl = ckt.node("sl");
        let bn = ckt.node("bn");
        ckt.vsource("VBR", br, Netlist::GROUND, 0.0);
        ckt.vsource("VVL", vl, Netlist::GROUND, 0.0);
        ckt.vsource("VWL", wl, Netlist::GROUND, 0.0);
        ckt.vsource("VSL", sl, Netlist::GROUND, 0.0);
        ckt.vsource("VBN", bn, Netlist::GROUND, 0.0);
        ckt.mosfet("AXR", br, wl, vr, bn, cell.device(Xtor::Axr));
        ckt.mosfet("NR", vr, vl, sl, bn, cell.device(Xtor::Nr));
        let opts = DcOptions::default().guess(vr, 0.15);
        let tpl = CircuitTemplate::compile(ckt, opts).expect("read divider compiles");
        ReadTpl {
            n_vr: vr,
            vbr: Self::vslot(&tpl, "VBR"),
            vvl: Self::vslot(&tpl, "VVL"),
            vwl: Self::vslot(&tpl, "VWL"),
            vsl: Self::vslot(&tpl, "VSL"),
            vbn: Self::vslot(&tpl, "VBN"),
            axr: Self::mslot(&tpl, "AXR"),
            nr: Self::mslot(&tpl, "NR"),
            tpl,
        }
    }

    fn compile_write(cell: &SramCell) -> WriteTpl {
        let mut ckt = Netlist::new();
        let vdd = ckt.node("vdd");
        let vl = ckt.node("vl");
        let vr = ckt.node("vr");
        let bl = ckt.node("bl");
        let wl = ckt.node("wl");
        let sl = ckt.node("sl");
        let bn = ckt.node("bn");
        ckt.vsource("VDD", vdd, Netlist::GROUND, 0.0);
        ckt.vsource("VVR", vr, Netlist::GROUND, 0.0);
        ckt.vsource("VBL", bl, Netlist::GROUND, 0.0);
        ckt.vsource("VWL", wl, Netlist::GROUND, 0.0);
        ckt.vsource("VSL", sl, Netlist::GROUND, 0.0);
        ckt.vsource("VBN", bn, Netlist::GROUND, 0.0);
        ckt.mosfet("PL", vl, vr, vdd, vdd, cell.device(Xtor::Pl));
        ckt.mosfet("NL", vl, vr, sl, bn, cell.device(Xtor::Nl));
        ckt.mosfet("AXL", vl, wl, bl, bn, cell.device(Xtor::Axl));
        let opts = DcOptions::default().guess(vl, 0.1).guess(vdd, 0.0);
        let tpl = CircuitTemplate::compile(ckt, opts).expect("write level compiles");
        WriteTpl {
            n_vl: vl,
            n_vdd: vdd,
            vdd: Self::vslot(&tpl, "VDD"),
            vvr: Self::vslot(&tpl, "VVR"),
            vbl: Self::vslot(&tpl, "VBL"),
            vwl: Self::vslot(&tpl, "VWL"),
            vsl: Self::vslot(&tpl, "VSL"),
            vbn: Self::vslot(&tpl, "VBN"),
            pl: Self::mslot(&tpl, "PL"),
            nl: Self::mslot(&tpl, "NL"),
            axl: Self::mslot(&tpl, "AXL"),
            tpl,
        }
    }

    fn compile_hold(cell: &SramCell) -> HoldTpl {
        let mut ckt = Netlist::new();
        let vdd = ckt.node("vdd");
        let vl = ckt.node("vl");
        let vr = ckt.node("vr");
        let bl = ckt.node("bl");
        let br = ckt.node("br");
        let wl = ckt.node("wl");
        let sl = ckt.node("sl");
        let bn = ckt.node("bn");
        ckt.vsource("VDD", vdd, Netlist::GROUND, 0.0);
        ckt.vsource("VBL", bl, Netlist::GROUND, 0.0);
        ckt.vsource("VBR", br, Netlist::GROUND, 0.0);
        ckt.vsource("VWL", wl, Netlist::GROUND, 0.0);
        ckt.vsource("VSL", sl, Netlist::GROUND, 0.0);
        ckt.vsource("VBN", bn, Netlist::GROUND, 0.0);
        ckt.mosfet("PL", vl, vr, vdd, vdd, cell.device(Xtor::Pl));
        ckt.mosfet("NL", vl, vr, sl, bn, cell.device(Xtor::Nl));
        ckt.mosfet("PR", vr, vl, vdd, vdd, cell.device(Xtor::Pr));
        ckt.mosfet("NR", vr, vl, sl, bn, cell.device(Xtor::Nr));
        ckt.mosfet("AXL", bl, wl, vl, bn, cell.device(Xtor::Axl));
        ckt.mosfet("AXR", br, wl, vr, bn, cell.device(Xtor::Axr));
        let opts = DcOptions {
            // Mirrors `CellAnalysis::hold_state`: start from the stored
            // state, with a gentler starting Gmin to stay in its basin.
            gmin_start: 1e-6,
            initial: vec![
                (vl, 0.0),
                (vr, 0.0),
                (vdd, 0.0),
                (bl, 0.0),
                (br, 0.0),
                (sl, 0.0),
            ],
            ..DcOptions::default()
        };
        let tpl = CircuitTemplate::compile(ckt, opts).expect("hold cell compiles");
        HoldTpl {
            n_vl: vl,
            n_vr: vr,
            n_vdd: vdd,
            n_bl: bl,
            n_br: br,
            n_sl: sl,
            vdd: Self::vslot(&tpl, "VDD"),
            vbl: Self::vslot(&tpl, "VBL"),
            vbr: Self::vslot(&tpl, "VBR"),
            vwl: Self::vslot(&tpl, "VWL"),
            vsl: Self::vslot(&tpl, "VSL"),
            vbn: Self::vslot(&tpl, "VBN"),
            devices: [
                Self::mslot(&tpl, "PL"),
                Self::mslot(&tpl, "NL"),
                Self::mslot(&tpl, "PR"),
                Self::mslot(&tpl, "NR"),
                Self::mslot(&tpl, "AXL"),
                Self::mslot(&tpl, "AXR"),
            ],
            tpl,
        }
    }

    fn compile_inverter(cell: &SramCell) -> InvTpl {
        let mut ckt = Netlist::new();
        let vdd = ckt.node("vdd");
        let input = ckt.node("in");
        let out = ckt.node("out");
        let bit = ckt.node("bit");
        let wl = ckt.node("wl");
        let sl = ckt.node("sl");
        let bn = ckt.node("bn");
        ckt.vsource("VDD", vdd, Netlist::GROUND, 0.0);
        ckt.vsource("VIN", input, Netlist::GROUND, 0.0);
        ckt.vsource("VBIT", bit, Netlist::GROUND, 0.0);
        ckt.vsource("VWL", wl, Netlist::GROUND, 0.0);
        ckt.vsource("VSL", sl, Netlist::GROUND, 0.0);
        ckt.vsource("VBN", bn, Netlist::GROUND, 0.0);
        ckt.mosfet("PU", out, input, vdd, vdd, cell.device(Xtor::Pl));
        ckt.mosfet("PD", out, input, sl, bn, cell.device(Xtor::Nl));
        ckt.mosfet("AX", bit, wl, out, bn, cell.device(Xtor::Axl));
        let opts = DcOptions::default().guess(out, 0.0).guess(vdd, 0.0);
        let tpl = CircuitTemplate::compile(ckt, opts)
            .expect("inverter netlist always compiles by construction");
        InvTpl {
            n_out: out,
            n_vdd: vdd,
            vdd: Self::vslot(&tpl, "VDD"),
            vin: Self::vslot(&tpl, "VIN"),
            vbit: Self::vslot(&tpl, "VBIT"),
            vwl: Self::vslot(&tpl, "VWL"),
            vsl: Self::vslot(&tpl, "VSL"),
            vbn: Self::vslot(&tpl, "VBN"),
            pu: Self::mslot(&tpl, "PU"),
            pd: Self::mslot(&tpl, "PD"),
            ax: Self::mslot(&tpl, "AX"),
            tpl,
        }
    }

    /// The scratch cell at its current deviations.
    pub fn cell(&self) -> &SramCell {
        &self.cell
    }

    /// The metric analyzer whose configuration this evaluator replays.
    pub fn analysis(&self) -> &CellAnalysis {
        &self.analysis
    }

    /// Patches the per-transistor threshold deviations for the next
    /// evaluations (canonical [`Xtor`] order).
    pub fn set_deviations(&mut self, dvt: [f64; 6]) {
        self.cell.set_deviations(dvt);
    }

    /// Retargets the evaluator to a different base cell — e.g. the next
    /// candidate sizing in an optimizer sweep. Cheap: the templates
    /// re-patch every device from the scratch cell on each solve, so only
    /// the cell is replaced; warm seeds survive (Newton falls back to a
    /// cold start if the new cell's operating points moved too far).
    ///
    /// The cell must target the same technology/analysis setup this
    /// evaluator was compiled with.
    pub fn set_cell(&mut self, cell: &SramCell) {
        self.cell = cell.clone();
    }

    /// Enables or disables warm starting on all four templates. Disabled,
    /// every solve replays the reference `CellAnalysis` strategy
    /// bit-identically.
    pub fn set_warm_start(&mut self, enabled: bool) {
        self.read.tpl.set_warm_start(enabled);
        self.write.tpl.set_warm_start(enabled);
        self.hold.tpl.set_warm_start(enabled);
        self.inv.tpl.set_warm_start(enabled);
    }

    /// Drops the warm seeds on all four templates; the next solve of each
    /// runs cold.
    ///
    /// Parallel sweeps call this at work-item boundaries so the solver
    /// work spent on an item is a function of the item alone, not of which
    /// items the same worker happened to process before it — that
    /// schedule-independence is what makes the telemetry work counters
    /// (and the margins themselves, at the Newton-tolerance level)
    /// byte-reproducible across runs, which the perf-budget CI gate
    /// relies on. Warm reuse *within* an item is untouched and carries
    /// the hot-path speedup.
    pub fn invalidate_warm(&mut self) {
        self.read.tpl.invalidate_warm();
        self.write.tpl.invalidate_warm();
        self.hold.tpl.invalidate_warm();
        self.inv.tpl.invalidate_warm();
    }

    /// Solver statistics merged across the four templates.
    pub fn stats(&self) -> SolverStats {
        let mut s = SolverStats::default();
        s.merge(self.read.tpl.stats());
        s.merge(self.write.tpl.stats());
        s.merge(self.hold.tpl.stats());
        s.merge(self.inv.tpl.stats());
        s
    }

    /// Resets the solver statistics on all four templates.
    pub fn reset_stats(&mut self) {
        self.read.tpl.reset_stats();
        self.write.tpl.reset_stats();
        self.hold.tpl.reset_stats();
        self.inv.tpl.reset_stats();
    }

    /// Read divider solution `(V_READ, I_read)`.
    fn read_solution(&mut self, cond: &Conditions) -> Result<(f64, f64), CircuitError> {
        let t = &mut self.read;
        t.tpl.set_temperature(cond.temp_k);
        t.tpl.set_vsource(t.vbr, cond.vdd)?;
        t.tpl.set_vsource(t.vvl, cond.vdd)?;
        t.tpl.set_vsource(t.vwl, cond.vdd)?;
        t.tpl.set_vsource(t.vsl, cond.vsb)?;
        t.tpl.set_vsource(t.vbn, cond.body_bias)?;
        t.tpl.set_device(t.axr, self.cell.device(Xtor::Axr))?;
        t.tpl.set_device(t.nr, self.cell.device(Xtor::Nr))?;
        t.tpl.solve()?;
        Ok((t.tpl.voltage(t.n_vr), t.tpl.branch_current(t.vbr)))
    }

    /// Write level: the voltage `AXL` pulls the 1 node down to.
    fn write_level(&mut self, cond: &Conditions) -> Result<f64, CircuitError> {
        let t = &mut self.write;
        t.tpl.set_temperature(cond.temp_k);
        t.tpl.set_vsource(t.vdd, cond.vdd)?;
        t.tpl.set_vsource(t.vvr, 0.0)?;
        t.tpl.set_vsource(t.vbl, 0.0)?;
        t.tpl.set_vsource(t.vwl, cond.vdd)?;
        t.tpl.set_vsource(t.vsl, cond.vsb)?;
        t.tpl.set_vsource(t.vbn, cond.body_bias)?;
        t.tpl.set_device(t.pl, self.cell.device(Xtor::Pl))?;
        t.tpl.set_device(t.nl, self.cell.device(Xtor::Nl))?;
        t.tpl.set_device(t.axl, self.cell.device(Xtor::Axl))?;
        t.tpl.options_mut().set_guess(t.n_vdd, cond.vdd);
        t.tpl.solve()?;
        Ok(t.tpl.voltage(t.n_vl))
    }

    /// Standby state `(VL, VR)` of the full cell.
    ///
    /// This solve always runs cold, for two reasons. The 6T hold circuit is
    /// bistable, so a warm seed inherited from a collapsed or flipped
    /// previous sample could converge into the wrong basin. And the droop
    /// `VDD − VL` read off this solution is exponentially small: any point
    /// inside the Newton tolerance ball is "converged", but warm and cold
    /// iterations stop at different points in that ball, which `ln(droop)`
    /// amplifies to percent-level drift — enough to distort the hold
    /// sensitivities behind the Fig. 6 source-bias ceilings. A cold solve
    /// replays the reference `CellAnalysis::hold_state` strategy exactly,
    /// so the droop is bit-identical; it costs one Gmin continuation out of
    /// the ~20 solves of a full margin evaluation.
    fn hold_state(&mut self, cond: &Conditions) -> Result<(f64, f64), CircuitError> {
        let t = &mut self.hold;
        t.tpl.invalidate_warm();
        t.tpl.set_temperature(cond.temp_k);
        t.tpl.set_vsource(t.vdd, cond.vdd)?;
        t.tpl.set_vsource(t.vbl, cond.vdd)?;
        t.tpl.set_vsource(t.vbr, cond.vdd)?;
        t.tpl.set_vsource(t.vwl, 0.0)?;
        t.tpl.set_vsource(t.vsl, cond.vsb)?;
        t.tpl.set_vsource(t.vbn, cond.body_bias)?;
        for (slot, x) in
            t.devices
                .iter()
                .zip([Xtor::Pl, Xtor::Nl, Xtor::Pr, Xtor::Nr, Xtor::Axl, Xtor::Axr])
        {
            t.tpl.set_device(*slot, self.cell.device(x))?;
        }
        let opts = t.tpl.options_mut();
        opts.set_guess(t.n_vl, cond.vdd);
        opts.set_guess(t.n_vr, cond.vsb);
        opts.set_guess(t.n_vdd, cond.vdd);
        opts.set_guess(t.n_bl, cond.vdd);
        opts.set_guess(t.n_br, cond.vdd);
        opts.set_guess(t.n_sl, cond.vsb);
        t.tpl.solve()?;
        Ok((t.tpl.voltage(t.n_vl), t.tpl.voltage(t.n_vr)))
    }

    /// Loaded-inverter output for a forced input (see
    /// `CellAnalysis::inverter_output`).
    fn inverter_output(
        &mut self,
        cond: &Conditions,
        side: Side,
        wordline_high: bool,
        vin: f64,
    ) -> Result<f64, CircuitError> {
        let (pu, pd, ax) = match side {
            Side::Left => (Xtor::Pl, Xtor::Nl, Xtor::Axl),
            Side::Right => (Xtor::Pr, Xtor::Nr, Xtor::Axr),
        };
        let t = &mut self.inv;
        t.tpl.set_temperature(cond.temp_k);
        t.tpl.set_vsource(t.vdd, cond.vdd)?;
        t.tpl.set_vsource(t.vin, vin)?;
        t.tpl.set_vsource(t.vbit, cond.vdd)?;
        t.tpl
            .set_vsource(t.vwl, if wordline_high { cond.vdd } else { 0.0 })?;
        t.tpl.set_vsource(t.vsl, cond.vsb)?;
        t.tpl.set_vsource(t.vbn, cond.body_bias)?;
        t.tpl.set_device(t.pu, self.cell.device(pu))?;
        t.tpl.set_device(t.pd, self.cell.device(pd))?;
        t.tpl.set_device(t.ax, self.cell.device(ax))?;
        let guess = if vin > cond.vdd * 0.5 {
            cond.vsb
        } else {
            cond.vdd
        };
        let opts = t.tpl.options_mut();
        opts.set_guess(t.n_out, guess);
        opts.set_guess(t.n_vdd, cond.vdd);
        t.tpl.solve()?;
        Ok(t.tpl.voltage(t.n_out))
    }

    /// Trip-point bisection, identical to `CellAnalysis::inverter_trip`.
    fn inverter_trip(
        &mut self,
        cond: &Conditions,
        side: Side,
        wordline_high: bool,
        level: f64,
    ) -> Result<f64, CircuitError> {
        let mut lo = 0.0f64;
        let mut hi = cond.vdd;
        let out_lo = self.inverter_output(cond, side, wordline_high, lo)?;
        let out_hi = self.inverter_output(cond, side, wordline_high, hi)?;
        if out_lo <= level {
            return Ok(lo);
        }
        if out_hi >= level {
            return Ok(hi);
        }
        for _ in 0..self.analysis.config().bisection_iters {
            let mid = 0.5 * (lo + hi);
            let out = self.inverter_output(cond, side, wordline_high, mid)?;
            if out > level {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    /// Read trip point `V_TRIPRD` (see `CellAnalysis::v_trip_rd`).
    fn v_trip_rd(&mut self, cond: &Conditions) -> Result<f64, CircuitError> {
        let level = cond.vdd * self.analysis.config().trip_level_frac;
        self.inverter_trip(cond, Side::Left, true, level)
    }

    /// Write trip point `V_TRIPWR` (see `CellAnalysis::v_trip_wr`).
    fn v_trip_wr(&mut self, cond: &Conditions) -> Result<f64, CircuitError> {
        let level = cond.vdd * self.analysis.config().trip_level_frac;
        self.inverter_trip(cond, Side::Right, true, level)
    }

    /// Retention trip point `V_TRIPHD` (see `CellAnalysis::v_trip_hold`).
    fn v_trip_hold(&mut self, cond: &Conditions) -> Result<f64, CircuitError> {
        let level = cond.vsb + (cond.vdd - cond.vsb) * self.analysis.config().trip_level_frac;
        self.inverter_trip(cond, Side::Right, false, level)
    }

    /// Hold droop and allowed droop (see `CellAnalysis::hold_metrics`).
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures (a non-convergent hold state itself is
    /// mapped to full retention collapse, as in the reference).
    pub fn hold_metrics(&mut self, cond: &Conditions) -> Result<HoldMetrics, CircuitError> {
        let _span = pvtm_telemetry::span("eval.hold");
        let droop = match self.hold_state(cond) {
            Ok((vl, _)) => (cond.vdd - vl).max(1e-9),
            Err(CircuitError::NoConvergence { .. }) => {
                // The solve has already been through the full rescue
                // ladder by the time this arm is reached; mapping the
                // exhausted ladder to a full-droop retention collapse is
                // the reference behavior, but it must never happen
                // silently — the floor masks the solve failure and biases
                // the hold tail, so every occurrence is counted.
                pvtm_telemetry::counter_add("eval.hold_droop_floor", 1);
                cond.vdd - cond.vsb
            }
            Err(e) => return Err(e),
        };
        let trip = self.v_trip_hold(cond)?;
        Ok(HoldMetrics {
            droop,
            allowed: (cond.vdd - trip).max(1e-9),
        })
    }

    /// All four margins at the current deviations, matching
    /// [`CellAnalysis::margins`]: read/write/access in active mode (`vsb`
    /// forced to 0), hold under the conditions as given.
    ///
    /// The read divider is solved once and serves both the read and the
    /// access margin (the reference solves it twice with identical inputs).
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn margins(&mut self, cond: &Conditions) -> Result<Margins, CircuitError> {
        let _span = pvtm_telemetry::span("eval.margins");
        let active = Conditions { vsb: 0.0, ..*cond };
        let trip_rd = self.v_trip_rd(&active)?;
        let (v_read, i_read) = self.read_solution(&active)?;
        let trip_wr = self.v_trip_wr(&active)?;
        let t_write = self
            .analysis
            .write_time_from_trip(&self.cell, &active, trip_wr);
        let hold = self.hold_metrics(cond)?;
        Ok(Margins {
            read: trip_rd - v_read,
            write: self.analysis.write_margin_from_time(t_write),
            access: self.analysis.access_margin_from_current(i_read),
            hold: (hold.allowed / hold.droop).ln(),
        })
    }

    /// The five raw metrics used by the linearized failure model:
    /// `[read, write, access, ln(droop), allowed]`.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn metrics(&mut self, cond: &Conditions) -> Result<[f64; 5], CircuitError> {
        let _span = pvtm_telemetry::span("eval.metrics");
        let active = Conditions { vsb: 0.0, ..*cond };
        let trip_rd = self.v_trip_rd(&active)?;
        let (v_read, i_read) = self.read_solution(&active)?;
        let trip_wr = self.v_trip_wr(&active)?;
        let t_write = self
            .analysis
            .write_time_from_trip(&self.cell, &active, trip_wr);
        let hold = self.hold_metrics(cond)?;
        Ok([
            trip_rd - v_read,
            self.analysis.write_margin_from_time(t_write),
            self.analysis.access_margin_from_current(i_read),
            hold.droop.ln(),
            hold.allowed,
        ])
    }

    /// Static write margin `V_TRIPWR − V_WRITE`, matching
    /// [`CellAnalysis::static_write_margin`].
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn static_write_margin(&mut self, cond: &Conditions) -> Result<f64, CircuitError> {
        let _span = pvtm_telemetry::span("eval.swm");
        Ok(self.v_trip_wr(cond)? - self.write_level(cond)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisConfig;
    use pvtm_device::Technology;

    fn setup() -> (Technology, CellAnalysis, SramCell) {
        let tech = Technology::predictive_70nm();
        let analysis = CellAnalysis::new(&tech, AnalysisConfig::default());
        let cell = SramCell::nominal(&tech);
        (tech, analysis, cell)
    }

    #[test]
    fn cold_evaluator_is_bit_identical_to_reference() {
        let (tech, analysis, cell) = setup();
        let cond = Conditions::standby(&tech, 0.3);
        let mut ev = CellEvaluator::new(&analysis, &cell);
        ev.set_warm_start(false);
        let fast = ev.margins(&cond).unwrap();
        let reference = analysis.margins(&cell, &cond).unwrap();
        assert_eq!(fast.read, reference.read);
        assert_eq!(fast.write, reference.write);
        assert_eq!(fast.access, reference.access);
        assert_eq!(fast.hold, reference.hold);
        assert_eq!(ev.stats().warm_attempts, 0);
    }

    #[test]
    fn warm_evaluator_matches_reference_within_tolerance() {
        let (tech, analysis, cell) = setup();
        let cond = Conditions::standby(&tech, 0.2);
        let mut ev = CellEvaluator::new(&analysis, &cell);
        // Two rounds with different deviations to exercise warm reuse.
        for dvt in [
            [0.0; 6],
            [0.02, -0.01, 0.015, -0.02, 0.01, -0.015],
            [-0.02, 0.02, -0.01, 0.01, -0.02, 0.02],
        ] {
            ev.set_deviations(dvt);
            let fast = ev.margins(&cond).unwrap();
            let mut shifted = cell.clone();
            shifted.set_deviations(dvt);
            let reference = analysis.margins(&shifted, &cond).unwrap();
            // Voltage-domain margins agree to solver tolerance; the hold
            // margin is the log of an exponentially small droop, where the
            // same voltage tolerance is amplified to a few percent.
            let tol = [1e-5, 1e-5, 1e-5, 0.05];
            for ((a, b), t) in fast.as_array().iter().zip(reference.as_array()).zip(tol) {
                assert!((a - b).abs() < t, "warm {a} vs reference {b} (tol {t})");
            }
        }
    }

    #[test]
    fn warm_hit_rate_is_high_over_perturbed_samples() {
        let (tech, analysis, cell) = setup();
        let cond = Conditions::active(&tech);
        let mut ev = CellEvaluator::new(&analysis, &cell);
        for k in 0..8 {
            let s = 0.01 * k as f64;
            ev.set_deviations([s, -s, s, -s, s, -s]);
            ev.margins(&cond).unwrap();
        }
        let stats = ev.stats();
        assert!(
            stats.warm_hit_rate() > 0.9,
            "hit rate {:.3} ({} / {} warm attempts, {} cold)",
            stats.warm_hit_rate(),
            stats.warm_hits,
            stats.warm_attempts,
            stats.cold_solves,
        );
    }

    #[test]
    fn metrics_agree_with_margins() {
        let (tech, analysis, cell) = setup();
        let cond = Conditions::standby(&tech, 0.25);
        let mut ev = CellEvaluator::new(&analysis, &cell);
        let m = ev.margins(&cond).unwrap();
        ev.set_warm_start(false);
        let raw = ev.metrics(&cond).unwrap();
        assert!((raw[0] - m.read).abs() < 1e-6);
        assert!((raw[1] - m.write).abs() < 1e-6);
        assert!((raw[2] - m.access).abs() < 1e-6);
        // hold = ln(allowed) − ln(droop).
        assert!((raw[4].ln() - raw[3] - m.hold).abs() < 1e-5);
    }

    #[test]
    fn static_write_margin_matches_reference() {
        let (tech, analysis, cell) = setup();
        let cond = Conditions::active(&tech);
        let mut ev = CellEvaluator::new(&analysis, &cell);
        ev.set_warm_start(false);
        let fast = ev.static_write_margin(&cond).unwrap();
        let reference = analysis.static_write_margin(&cell, &cond).unwrap();
        assert_eq!(fast, reference);
    }

    #[test]
    fn hold_metrics_match_reference() {
        let (tech, analysis, cell) = setup();
        let cond = Conditions::standby(&tech, 0.4);
        let mut ev = CellEvaluator::new(&analysis, &cell);
        ev.set_warm_start(false);
        let fast = ev.hold_metrics(&cond).unwrap();
        let reference = analysis.hold_metrics(&cell, &cond).unwrap();
        assert_eq!(fast.droop, reference.droop);
        assert_eq!(fast.allowed, reference.allowed);
    }
}
