//! Standby leakage of a 6T cell and its population statistics.
//!
//! The cell is evaluated in the paper's standby state: word line low, bit
//! lines precharged to VDD, the stored 1 at `VL`, the source line at
//! `vsb`, and the NMOS body at `body_bias`. Node voltages are taken at
//! their asymptotic values (`VL = VDD`, `VR = vsb`) — the error of that
//! approximation is second-order in leakage ratios and it makes sampling a
//! million-cell array practical.
//!
//! Per the paper's §III.F, the leakage of a cell under RDF is approximately
//! lognormal (subthreshold leakage is exponential in the Gaussian ΔVt), and
//! the array total is Gaussian by the central limit theorem (Eq. (2)).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::cell::{CellSizing, Conditions, SramCell, Xtor};
use pvtm_device::{thermal_voltage, Bias, LeakageComponents, Technology};
use pvtm_stats::Summary;

/// Standby-leakage evaluator for a cell design.
#[derive(Debug, Clone)]
pub struct CellLeakageModel {
    tech: Technology,
    sizing: CellSizing,
}

/// Population mean and standard deviation of per-cell leakage \[A\].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageStats {
    /// Mean cell leakage.
    pub mean: f64,
    /// Standard deviation across cells (intra-die RDF only).
    pub std_dev: f64,
}

impl CellLeakageModel {
    /// Creates a model for the given technology and sizing.
    pub fn new(tech: &Technology, sizing: CellSizing) -> Self {
        sizing.validate().expect("invalid cell sizing");
        Self {
            tech: tech.clone(),
            sizing,
        }
    }

    /// Standby leakage decomposition of one cell sample.
    ///
    /// `cond.body_bias` applies to the NMOS devices only (as in the paper);
    /// `cond.vsb` is the raised source-line voltage.
    pub fn standby(&self, cell: &SramCell, cond: &Conditions) -> LeakageComponents {
        let vdd = cond.vdd;
        let vsb = cond.vsb;
        let vbb = cond.body_bias;
        let t = cond.temp_k;

        // Asymptotic standby node voltages.
        let vl = vdd; // stored 1
        let vr = vsb; // stored 0 rides on the source line
        let vbl = vdd; // precharged bit lines
        let vwl = 0.0;

        let nl = cell.device(Xtor::Nl);
        let nr = cell.device(Xtor::Nr);
        let pl = cell.device(Xtor::Pl);
        let pr = cell.device(Xtor::Pr);
        let axl = cell.device(Xtor::Axl);
        let axr = cell.device(Xtor::Axr);

        // --- Subthreshold (channel) components of the off devices.
        // NL: gate at VR=vsb, drain at VL=vdd, source at vsb, body at vbb.
        let sub_nl = nl.ids(Bias::new(vr, vl, vsb, vbb), t).max(0.0);
        // PR: gate at VL=vdd (off), source at vdd, drain at VR=vsb.
        let sub_pr = (-pr.ids(Bias::new(vl, vr, vdd, vdd), t)).max(0.0);
        // AXR: gate at WL=0, drain at BR=vdd, source at VR=vsb.
        let sub_axr = axr.ids(Bias::new(vwl, vbl, vr, vbb), t).max(0.0);
        // AXL: both ends at vdd — no channel leakage; NR and PL are on with
        // zero Vds — no channel leakage.
        let subthreshold = sub_nl + sub_pr + sub_axr;

        // --- Gate tunnelling.
        // On devices with full oxide drive: NR (gate vdd, channel at vsb)
        // and PL (source vdd, gate at vsb).
        let gate_on = nr.gate_leak(vdd - vsb) + pl.gate_leak(vdd - vsb);
        // Off devices: edge tunnelling at the drain overlap (30 % weight,
        // consistent with `Mosfet::off_leakage`).
        let gate_off = 0.3 * (nl.gate_leak(vdd - vr) + axr.gate_leak(vbl - vwl));
        let gate = gate_on + gate_off;

        // --- Junction band-to-band tunnelling at reverse-biased drains.
        // NMOS junctions see (node − body); PMOS see (body − node).
        let junction = nl.junction_btbt(vl - vbb)
            + nr.junction_btbt(vr - vbb)
            + axl.junction_btbt(vbl - vbb)
            + axr.junction_btbt(vbl - vbb)
            + pr.junction_btbt(vdd - vr)
            + pl.junction_btbt(vdd - vl);

        // --- Forward body diodes of the NMOS devices under FBB.
        let diode = nl.body_diode(vbb - vsb, t)
            + nr.body_diode(vbb - vsb, t)
            + axl.body_diode(vbb - vsb, t)
            + axr.body_diode(vbb - vsb, t);

        LeakageComponents {
            subthreshold,
            gate,
            junction,
            diode,
        }
    }

    /// Analytic lognormal sigma of the dominant (subthreshold) leakage of a
    /// single pull-down transistor: `σ_ln = σ_Vt / (n·vT)`.
    pub fn sigma_ln(&self, cond: &Conditions) -> f64 {
        let dev = SramCell::with_sizing(&self.tech, self.sizing).device(Xtor::Nl);
        dev.sigma_vt() / (dev.params().n_sub * thermal_voltage(cond.temp_k))
    }

    /// Samples one cell's total standby leakage with RDF deviations drawn
    /// from `rng` on top of an inter-die shift.
    pub fn sample_cell(&self, vt_inter: f64, cond: &Conditions, rng: &mut impl Rng) -> f64 {
        let mut cell = SramCell::with_sizing(&self.tech, self.sizing);
        let vm = pvtm_device::VariationModel::new(0.0);
        let dvt: [f64; 6] =
            std::array::from_fn(|i| vm.sample_device(&cell.device(Xtor::ALL[i]), rng));
        cell.set_deviations(dvt);
        let cell = cell.with_inter_die_shift(vt_inter);
        self.standby(&cell, cond).total()
    }

    /// Population statistics of per-cell leakage at a corner, by sampling
    /// `n` cells.
    pub fn population_stats(
        &self,
        vt_inter: f64,
        cond: &Conditions,
        n: usize,
        rng: &mut impl Rng,
    ) -> LeakageStats {
        let s: Summary = (0..n)
            .map(|_| self.sample_cell(vt_inter, cond, rng))
            .collect();
        LeakageStats {
            mean: s.mean(),
            std_dev: s.std_dev(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (Technology, CellLeakageModel) {
        let tech = Technology::predictive_70nm();
        let m = CellLeakageModel::new(&tech, CellSizing::default_for(&tech));
        (tech, m)
    }

    #[test]
    fn nominal_cell_leakage_in_nanoamp_regime() {
        let (tech, m) = model();
        let cell = SramCell::nominal(&tech);
        let l = m.standby(&cell, &Conditions::active(&tech)).total();
        assert!(
            l > 1e-9 && l < 100e-9,
            "cell leakage should be nA-scale, got {l:.3e}"
        );
    }

    #[test]
    fn low_vt_cells_leak_more() {
        let (tech, m) = model();
        let cond = Conditions::active(&tech);
        let low = m.standby(&SramCell::nominal(&tech).with_inter_die_shift(-0.1), &cond);
        let nom = m.standby(&SramCell::nominal(&tech), &cond);
        let high = m.standby(&SramCell::nominal(&tech).with_inter_die_shift(0.1), &cond);
        assert!(low.total() > 3.0 * nom.total());
        assert!(high.total() < nom.total() / 3.0);
    }

    #[test]
    fn rbb_cuts_subthreshold_but_grows_junction() {
        let (tech, m) = model();
        let cell = SramCell::nominal(&tech);
        let zbb = m.standby(&cell, &Conditions::active(&tech));
        let rbb = m.standby(&cell, &Conditions::active(&tech).with_body_bias(-0.4));
        assert!(rbb.subthreshold < zbb.subthreshold);
        assert!(rbb.junction > zbb.junction);
    }

    #[test]
    fn fbb_grows_subthreshold() {
        let (tech, m) = model();
        let cell = SramCell::nominal(&tech);
        let zbb = m.standby(&cell, &Conditions::active(&tech));
        let fbb = m.standby(&cell, &Conditions::active(&tech).with_body_bias(0.4));
        assert!(fbb.subthreshold > zbb.subthreshold);
        assert!(fbb.junction < zbb.junction);
    }

    #[test]
    fn source_bias_cuts_total_leakage_strongly() {
        let (tech, m) = model();
        let cell = SramCell::nominal(&tech);
        let l0 = m.standby(&cell, &Conditions::standby(&tech, 0.0)).total();
        let l3 = m.standby(&cell, &Conditions::standby(&tech, 0.3)).total();
        assert!(
            l3 < 0.5 * l0,
            "VSB = 0.3 V must cut leakage substantially: {l3:.3e} vs {l0:.3e}"
        );
    }

    #[test]
    fn population_is_skewed_like_a_lognormal() {
        let (tech, m) = model();
        let cond = Conditions::active(&tech);
        let mut rng = pvtm_stats::rng::substream(41, 0);
        let samples: Vec<f64> = (0..4000)
            .map(|_| m.sample_cell(0.0, &cond, &mut rng))
            .collect();
        let s = Summary::from_slice(&samples);
        // Positive skew: mean above median.
        let median = pvtm_stats::histogram::quantile(&samples, 0.5);
        assert!(
            s.mean() > median,
            "mean {:.3e} vs median {median:.3e}",
            s.mean()
        );
        // Coefficient of variation should be substantial (RDF-driven).
        assert!(s.std_dev() / s.mean() > 0.1);
    }

    #[test]
    fn sigma_ln_is_order_one() {
        let (tech, m) = model();
        let s = m.sigma_ln(&Conditions::active(&tech));
        assert!(s > 0.4 && s < 1.5, "sigma_ln = {s}");
    }

    #[test]
    fn population_stats_match_direct_summary() {
        let (tech, m) = model();
        let cond = Conditions::active(&tech);
        let mut rng = pvtm_stats::rng::substream(42, 0);
        let stats = m.population_stats(0.0, &cond, 2000, &mut rng);
        assert!(stats.mean > 0.0 && stats.std_dev > 0.0);
        assert!(stats.std_dev < stats.mean * 2.0);
    }
}
