//! Cell failure-probability estimation under random intra-die variation.
//!
//! The paper (via its ref \[3\]) estimates each failure probability with a
//! sensitivity-based method: the margin is linearized in the six transistor
//! threshold deviations, whose RDF statistics are known, giving
//! `P_fail = Φ(−M₀ / ‖∇M·σ‖)`. An importance-sampled Monte-Carlo estimator
//! on the exact (nonlinear, circuit-solved) margins cross-checks it.

use pvtm_circuit::CircuitError;
use pvtm_stats::special::norm_cdf;
use pvtm_stats::{ImportanceSampler, McEstimate, QuarantinedEstimate, SampleOutcome};
use serde::{Deserialize, Serialize};

use crate::analysis::{AnalysisConfig, CellAnalysis, Margins};
use crate::cell::{CellSizing, Conditions, SramCell, Xtor};
use crate::evaluator::CellEvaluator;
use pvtm_device::Technology;

/// Probability of each failure mechanism for one cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureProbs {
    /// Read (disturb) failure probability.
    pub read: f64,
    /// Write failure probability.
    pub write: f64,
    /// Access-time failure probability.
    pub access: f64,
    /// Hold (retention) failure probability.
    pub hold: f64,
}

impl FailureProbs {
    /// Overall cell failure probability assuming mechanism independence:
    /// `1 − Π(1 − pᵢ)`.
    pub fn overall(&self) -> f64 {
        1.0 - (1.0 - self.read) * (1.0 - self.write) * (1.0 - self.access) * (1.0 - self.hold)
    }

    /// The probabilities as an array ordered `[read, write, access, hold]`.
    pub fn as_array(&self) -> [f64; 4] {
        [self.read, self.write, self.access, self.hold]
    }

    /// The dominant (largest-probability) mechanism name.
    pub fn dominant(&self) -> &'static str {
        let arr = self.as_array();
        let names = ["read", "write", "access", "hold"];
        let mut best = 0;
        for i in 1..4 {
            if arr[i] > arr[best] {
                best = i;
            }
        }
        names[best]
    }
}

/// Margin linearization of one mechanism: nominal value plus per-transistor
/// sensitivities (in units of margin per 1σ of that transistor's RDF).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarginModel {
    /// Margin at zero intra-die deviation.
    pub nominal: f64,
    /// Sensitivities to a +1σ deviation of each transistor (canonical
    /// [`Xtor`] order).
    pub sensitivity: [f64; 6],
}

impl MarginModel {
    /// Effective sigma of the margin under iid standard-normal `z`.
    pub fn sigma(&self) -> f64 {
        self.sensitivity.iter().map(|s| s * s).sum::<f64>().sqrt()
    }

    /// Failure probability `P[margin < 0]` from the linearization.
    pub fn failure_prob(&self) -> f64 {
        let s = self.sigma();
        // pvtm-lint: allow(no-float-eq) zero sigma collapses the Gaussian to a step at the nominal
        if s == 0.0 {
            return if self.nominal < 0.0 { 1.0 } else { 0.0 };
        }
        norm_cdf(-self.nominal / s)
    }

    /// Predicted margin at a given standardized deviation vector.
    pub fn margin_at(&self, z: &[f64; 6]) -> f64 {
        self.nominal
            + self
                .sensitivity
                .iter()
                .zip(z)
                .map(|(s, zi)| s * zi)
                .sum::<f64>()
    }
}

/// Hold-failure model: the 1-node droop is *exponential* in the threshold
/// deviations (it is a leakage ratio) while the allowed droop (distance to
/// the retention trip point) is linear, so neither a volts-linear nor a
/// log-linear single model captures both tails. This mixed model keeps
/// `ln(droop)` and `allowed` as separate linear models and integrates the
/// failure probability `P[exp(ln droop) > allowed]` exactly under them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoldFailureModel {
    /// Linear model of `ln(droop)` (dimensionless log-volts).
    pub ln_droop: MarginModel,
    /// Linear model of the allowed droop `VDD − V_TRIPHD` \[V\].
    pub allowed: MarginModel,
}

impl HoldFailureModel {
    /// Hold-failure probability `P[droop > allowed]` by quadrature along
    /// the dominant (exponential) direction, with the orthogonal remainder
    /// of the allowed-droop model integrated in closed form.
    pub fn failure_prob(&self) -> f64 {
        let a = &self.ln_droop.sensitivity;
        let b = &self.allowed.sensitivity;
        let norm_a = self.ln_droop.sigma();
        let d0 = self.ln_droop.nominal;
        let b0 = self.allowed.nominal;
        if norm_a < 1e-12 {
            // Droop is deterministic: failure is a linear event in b.
            let droop = d0.exp();
            let sb = self.allowed.sigma();
            return if sb < 1e-15 {
                if droop > b0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                norm_cdf((droop - b0) / sb)
            };
        }
        let ahat: [f64; 6] = std::array::from_fn(|i| a[i] / norm_a);
        let b_par: f64 = b.iter().zip(&ahat).map(|(bi, ai)| bi * ai).sum();
        let b_norm2: f64 = b.iter().map(|x| x * x).sum();
        let b_perp = (b_norm2 - b_par * b_par).max(0.0).sqrt();
        let gh = pvtm_stats::GaussHermite::new(40);
        gh.expect_gaussian(0.0, 1.0, |u| {
            let droop = (d0 + norm_a * u).exp();
            let allowed_mean = b0 + b_par * u;
            if b_perp < 1e-15 {
                if droop > allowed_mean {
                    1.0
                } else {
                    0.0
                }
            } else {
                norm_cdf((droop - allowed_mean) / b_perp)
            }
        })
        .clamp(0.0, 1.0)
    }

    /// Whether a specific cell (standardized deviation vector `z`) fails
    /// to hold under this model: its droop exceeds its allowed droop.
    pub fn fails_at(&self, z: &[f64; 6]) -> bool {
        self.ln_droop.margin_at(z).exp() > self.allowed.margin_at(z)
    }

    /// Signed hold slack \[V\] of a specific cell under this model
    /// (`allowed − droop`; negative = retention lost).
    pub fn slack_at(&self, z: &[f64; 6]) -> f64 {
        self.allowed.margin_at(z) - self.ln_droop.margin_at(z).exp()
    }

    /// An approximate single linear model of the combined hold margin
    /// `ln(allowed) − ln(droop)`, used to aim the importance sampler.
    pub fn combined_margin(&self) -> MarginModel {
        let b0 = self.allowed.nominal.max(1e-9);
        MarginModel {
            nominal: b0.ln() - self.ln_droop.nominal,
            sensitivity: std::array::from_fn(|i| {
                self.allowed.sensitivity[i] / b0 - self.ln_droop.sensitivity[i]
            }),
        }
    }
}

/// Linearized models of all four mechanisms at one corner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellFailureModel {
    /// Read-margin linearization.
    pub read: MarginModel,
    /// Write-margin linearization.
    pub write: MarginModel,
    /// Access-margin linearization.
    pub access: MarginModel,
    /// Hold mixed exponential-linear model.
    pub hold: HoldFailureModel,
}

impl CellFailureModel {
    /// Per-mechanism failure probabilities.
    pub fn probs(&self) -> FailureProbs {
        FailureProbs {
            read: self.read.failure_prob(),
            write: self.write.failure_prob(),
            access: self.access.failure_prob(),
            hold: self.hold.failure_prob(),
        }
    }

    /// Linear(ized) margin models ordered `[read, write, access, hold]`
    /// (hold is the approximate combined model).
    pub fn as_array(&self) -> [MarginModel; 4] {
        [
            self.read,
            self.write,
            self.access,
            self.hold.combined_margin(),
        ]
    }
}

/// Failure-probability estimator for a cell design.
#[derive(Debug, Clone)]
pub struct FailureAnalyzer {
    analysis: CellAnalysis,
    base: SramCell,
    sigmas: [f64; 6],
}

impl FailureAnalyzer {
    /// Creates an analyzer for the given technology / sizing / metric
    /// configuration.
    pub fn new(tech: &Technology, sizing: CellSizing, config: AnalysisConfig) -> Self {
        let base = SramCell::with_sizing(tech, sizing);
        let sigmas = std::array::from_fn(|i| base.sigma_vt(Xtor::ALL[i]));
        Self {
            analysis: CellAnalysis::new(tech, config),
            base,
            sigmas,
        }
    }

    /// The underlying metric analyzer.
    pub fn analysis(&self) -> &CellAnalysis {
        &self.analysis
    }

    /// Calibrates the timing thresholds (`t_max`, `t_wl_max`) so the
    /// access and write mechanisms sit at `beta_target` sigmas of margin at
    /// the nominal corner — the designer's guard-band choice. Read and hold
    /// margins are physical and are left untouched.
    ///
    /// The log-domain margins make this exact: `ln(T/t)` has a sigma that
    /// does not depend on the threshold `T`, so one linearization gives the
    /// sigma and the threshold follows as `t_nominal · exp(beta·sigma)`.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn calibrate_timing(
        tech: &Technology,
        sizing: CellSizing,
        mut config: AnalysisConfig,
        beta_target: f64,
    ) -> Result<Self, CircuitError> {
        assert!(
            beta_target > 0.0 && beta_target.is_finite(),
            "invalid beta target {beta_target}"
        );
        let provisional = Self::new(tech, sizing, config);
        let cond = Conditions::active(tech);
        let model = provisional.linearize(0.0, &cond)?;
        let cell = SramCell::with_sizing(tech, sizing);
        let t_acc = provisional.analysis.access_time(&cell, &cond)?;
        let t_wr = provisional.analysis.write_time(&cell, &cond)?;
        config.t_max = t_acc * (beta_target * model.access.sigma()).exp();
        config.t_wl_max = t_wr * (beta_target * model.write.sigma()).exp();
        Ok(Self::new(tech, sizing, config))
    }

    /// Per-transistor RDF sigmas \[V\] in canonical order.
    pub fn sigmas(&self) -> &[f64; 6] {
        &self.sigmas
    }

    /// The analyzer's base cell (nominal deviations, this sizing).
    pub fn base(&self) -> &SramCell {
        &self.base
    }

    /// Builds a reusable compiled-template evaluator for this analyzer's
    /// cell — the hot path for repeated margin evaluations (linearization,
    /// Monte Carlo). See [`CellEvaluator`].
    pub fn evaluator(&self) -> CellEvaluator {
        CellEvaluator::new(&self.analysis, &self.base)
    }

    /// Patches `ev`'s deviations to the standardized vector `z` on top of
    /// an inter-die shift: `dvtᵢ = base + vt_inter·[NMOSᵢ] + σᵢ·zᵢ`.
    fn apply_deviation(&self, ev: &mut CellEvaluator, z: &[f64; 6], vt_inter: f64) {
        let mut dvt = *self.base.deviations();
        for i in 0..6 {
            if Xtor::ALL[i].is_nmos() {
                dvt[i] += vt_inter;
            }
            dvt[i] += self.sigmas[i] * z[i];
        }
        ev.set_deviations(dvt);
    }

    /// Exact (circuit-solved) margins at a standardized deviation vector
    /// `z` (per-transistor deviation `σᵢ·zᵢ`) on top of an inter-die shift.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn margins_at(
        &self,
        z: &[f64; 6],
        vt_inter: f64,
        cond: &Conditions,
    ) -> Result<Margins, CircuitError> {
        let mut ev = self.evaluator();
        self.margins_at_with(&mut ev, z, vt_inter, cond)
    }

    /// [`Self::margins_at`] against a caller-held evaluator, so repeated
    /// evaluations reuse the compiled templates and warm-started solver
    /// state.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn margins_at_with(
        &self,
        ev: &mut CellEvaluator,
        z: &[f64; 6],
        vt_inter: f64,
        cond: &Conditions,
    ) -> Result<Margins, CircuitError> {
        self.apply_deviation(ev, z, vt_inter);
        ev.margins(cond)
    }

    /// One evaluation of every raw metric at a standardized deviation
    /// vector: `[read, write, access]` margins plus `ln(droop)` and
    /// `allowed` for the hold model.
    fn metrics_at_with(
        &self,
        ev: &mut CellEvaluator,
        z: &[f64; 6],
        vt_inter: f64,
        cond: &Conditions,
    ) -> Result<[f64; 5], CircuitError> {
        self.apply_deviation(ev, z, vt_inter);
        ev.metrics(cond)
    }

    /// Builds the linearized failure model at a corner by central
    /// differences at ±1σ per transistor (13 metric evaluations, all
    /// through one warm-started evaluator).
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn linearize(
        &self,
        vt_inter: f64,
        cond: &Conditions,
    ) -> Result<CellFailureModel, CircuitError> {
        self.linearize_with(&mut self.evaluator(), vt_inter, cond)
    }

    /// [`Self::linearize`] against a caller-held evaluator: sweeps and
    /// per-thread loops (corner grids, optimizer candidates) keep the
    /// compiled templates and warm-started solver state alive across
    /// calls. The evaluator must come from this analyzer's
    /// [`Self::evaluator`] (or be retargeted to [`Self::base`] via
    /// [`CellEvaluator::set_cell`]).
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn linearize_with(
        &self,
        ev: &mut CellEvaluator,
        vt_inter: f64,
        cond: &Conditions,
    ) -> Result<CellFailureModel, CircuitError> {
        let _span = pvtm_telemetry::span("analyzer.linearize");
        let zero = [0.0; 6];
        let m0 = self.metrics_at_with(ev, &zero, vt_inter, cond)?;
        let mut sens = [[0.0f64; 6]; 5];
        for i in 0..6 {
            let mut zp = zero;
            let mut zm = zero;
            zp[i] = 1.0;
            zm[i] = -1.0;
            let mp = self.metrics_at_with(ev, &zp, vt_inter, cond)?;
            let mm = self.metrics_at_with(ev, &zm, vt_inter, cond)?;
            for k in 0..5 {
                sens[k][i] = 0.5 * (mp[k] - mm[k]);
            }
        }
        let model = |k: usize| MarginModel {
            nominal: m0[k],
            sensitivity: sens[k],
        };
        Ok(CellFailureModel {
            read: model(0),
            write: model(1),
            access: model(2),
            hold: HoldFailureModel {
                ln_droop: model(3),
                allowed: model(4),
            },
        })
    }

    /// Builds only the hold model at a corner — an order of magnitude
    /// cheaper than [`Self::linearize`] (no read/write/access circuits),
    /// which matters when the source-bias calibration sweeps a
    /// corner × VSB grid.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn linearize_hold(
        &self,
        vt_inter: f64,
        cond: &Conditions,
    ) -> Result<HoldFailureModel, CircuitError> {
        self.linearize_hold_with(&mut self.evaluator(), vt_inter, cond)
    }

    /// [`Self::linearize_hold`] against a caller-held evaluator (see
    /// [`Self::linearize_with`] for the contract) — the hot path of the
    /// corner × VSB grid sweeps behind the Fig. 6 calibration.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn linearize_hold_with(
        &self,
        ev: &mut CellEvaluator,
        vt_inter: f64,
        cond: &Conditions,
    ) -> Result<HoldFailureModel, CircuitError> {
        let _span = pvtm_telemetry::span("analyzer.linearize_hold");
        let mut eval = |z: &[f64; 6]| -> Result<(f64, f64), CircuitError> {
            self.apply_deviation(ev, z, vt_inter);
            let h = ev.hold_metrics(cond)?;
            Ok((h.droop.ln(), h.allowed))
        };
        let zero = [0.0; 6];
        let (d0, b0) = eval(&zero)?;
        let mut a = [0.0f64; 6];
        let mut b = [0.0f64; 6];
        for i in 0..6 {
            let mut zp = zero;
            let mut zm = zero;
            zp[i] = 1.0;
            zm[i] = -1.0;
            let (dp, bp) = eval(&zp)?;
            let (dm, bm) = eval(&zm)?;
            a[i] = 0.5 * (dp - dm);
            b[i] = 0.5 * (bp - bm);
        }
        Ok(HoldFailureModel {
            ln_droop: MarginModel {
                nominal: d0,
                sensitivity: a,
            },
            allowed: MarginModel {
                nominal: b0,
                sensitivity: b,
            },
        })
    }

    /// Linearized per-mechanism failure probabilities at a corner.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn failure_probs(
        &self,
        vt_inter: f64,
        cond: &Conditions,
    ) -> Result<FailureProbs, CircuitError> {
        Ok(self.linearize(vt_inter, cond)?.probs())
    }

    /// [`Self::failure_probs`] against a caller-held evaluator (see
    /// [`Self::linearize_with`] for the contract).
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn failure_probs_with(
        &self,
        ev: &mut CellEvaluator,
        vt_inter: f64,
        cond: &Conditions,
    ) -> Result<FailureProbs, CircuitError> {
        Ok(self.linearize_with(ev, vt_inter, cond)?.probs())
    }

    /// Importance-sampled Monte-Carlo estimate of the *overall* cell
    /// failure probability (exact margins; any mechanism failing counts).
    ///
    /// The sampling mean is shifted onto the most-likely failure boundary
    /// found by the linearization. Cells whose circuit solution does not
    /// converge — after the solver's full rescue ladder — are quarantined
    /// rather than aborting the estimation; the returned estimate is the
    /// conservative fail bound (quarantined samples counted as failures,
    /// matching the historical behavior of this method). Use
    /// [`Self::failure_prob_mc_quarantined`] for the full both-sided
    /// accounting.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures from the linearization step, and
    /// returns [`CircuitError::QuarantineExceeded`] when the quarantine
    /// rate exceeds the documented `PVTM_MAX_QUARANTINE` threshold.
    pub fn failure_prob_mc(
        &self,
        vt_inter: f64,
        cond: &Conditions,
        samples: u64,
        seed: u64,
    ) -> Result<McEstimate, CircuitError> {
        let est = self.failure_prob_mc_quarantined(vt_inter, cond, samples, seed)?;
        if est.quarantine_rate() > pvtm_telemetry::fault::max_quarantine() {
            return Err(CircuitError::QuarantineExceeded {
                quarantined: est.quarantined,
                total: est.fail_bound.samples,
            });
        }
        Ok(est.fail_bound)
    }

    /// [`Self::failure_prob_mc`] with full quarantine accounting: both-sided
    /// bias bounds plus the quarantined-sample count, with no threshold
    /// check applied.
    ///
    /// Each unresolved sample is recorded in the telemetry quarantine
    /// sidecar (seed, sample stream index, corner, error kind), counted
    /// under the `mc.quarantined` counter, and the two bias bounds are
    /// published as gauges when any sample was quarantined.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures from the linearization step.
    pub fn failure_prob_mc_quarantined(
        &self,
        vt_inter: f64,
        cond: &Conditions,
        samples: u64,
        seed: u64,
    ) -> Result<QuarantinedEstimate, CircuitError> {
        let _span = pvtm_telemetry::span("analyzer.mc");
        // Record a convergence trace under a default name unless the caller
        // already opened a scope (e.g. an experiment naming its own figure).
        let _trace = match pvtm_telemetry::active_trace() {
            Some(_) => None,
            None => Some(pvtm_telemetry::trace_scope("analyzer.mc")),
        };
        let model = self.linearize(vt_inter, cond)?;
        // Shift toward the dominant mechanism's boundary: distance
        // m0/sigma along the normalized sensitivity direction (margin
        // *decreases* along +sensitivity... flip to the failing side).
        let models = model.as_array();
        let mut dominant = 0usize;
        for k in 1..4 {
            if models[k].failure_prob() > models[dominant].failure_prob() {
                dominant = k;
            }
        }
        let m = &models[dominant];
        let sigma = m.sigma().max(1e-12);
        let beta = (m.nominal / sigma).clamp(-4.0, 4.0);
        let shift: Vec<f64> = m.sensitivity.iter().map(|s| -s / sigma * beta).collect();
        let sampler = ImportanceSampler::new(shift);
        // One compiled evaluator per parallel chunk: templates and
        // warm-started solver state are reused across that chunk's samples.
        let est = sampler.probability_init_quarantined(
            samples,
            seed,
            || self.evaluator(),
            |ev, zs, idx| {
                let z: [f64; 6] = std::array::from_fn(|i| zs[i]);
                match self.margins_at_with(ev, &z, vt_inter, cond) {
                    Ok(m) if m.any_failure() => SampleOutcome::Fail,
                    Ok(_) => SampleOutcome::Pass,
                    Err(e) => {
                        pvtm_telemetry::record_quarantine(pvtm_telemetry::QuarantineRecord {
                            seed,
                            stream: idx,
                            corner: vt_inter,
                            kind: e.kind(),
                        });
                        SampleOutcome::Unresolved
                    }
                }
            },
        );
        if est.quarantined > 0 {
            pvtm_telemetry::counter_add("mc.quarantined", est.quarantined);
            pvtm_telemetry::gauge_set("mc.quarantine_fail_bound", est.fail_bound.value);
            pvtm_telemetry::gauge_set("mc.quarantine_pass_bound", est.pass_bound.value);
            // Worst-case quarantine bias as a share of the CI width: when
            // the fail/pass gap rivals the sampling error, the quarantined
            // tail — not noise — limits what the estimate can claim.
            let ci = est.fail_bound.ci95();
            if ci > 0.0 {
                pvtm_telemetry::gauge_set(
                    "mc.quarantine_ci_share",
                    (est.fail_bound.value - est.pass_bound.value) / (2.0 * ci),
                );
            }
        }
        {
            use pvtm_telemetry::json::Value;
            pvtm_telemetry::events::emit(
                "mc.estimate",
                vt_inter.to_bits(),
                seed,
                vec![
                    ("corner", Value::Num(vt_inter)),
                    ("samples", Value::Num(est.fail_bound.samples as f64)),
                    ("value", Value::Num(est.fail_bound.value)),
                    ("std_err", Value::Num(est.fail_bound.std_err)),
                    ("pass_bound", Value::Num(est.pass_bound.value)),
                    ("quarantined", Value::Num(est.quarantined as f64)),
                ],
            );
        }
        Ok(est)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzer() -> FailureAnalyzer {
        let tech = Technology::predictive_70nm();
        FailureAnalyzer::new(
            &tech,
            CellSizing::default_for(&tech),
            AnalysisConfig::default(),
        )
    }

    fn active() -> Conditions {
        Conditions::active(&Technology::predictive_70nm())
    }

    #[test]
    fn margin_model_probability_limits() {
        let healthy = MarginModel {
            nominal: 1.0,
            sensitivity: [0.01; 6],
        };
        assert!(healthy.failure_prob() < 1e-10);
        let dead = MarginModel {
            nominal: -1.0,
            sensitivity: [0.01; 6],
        };
        assert!(dead.failure_prob() > 1.0 - 1e-10);
        let deterministic = MarginModel {
            nominal: 0.5,
            sensitivity: [0.0; 6],
        };
        assert_eq!(deterministic.failure_prob(), 0.0);
    }

    #[test]
    fn margin_model_linear_prediction() {
        let m = MarginModel {
            nominal: 0.2,
            sensitivity: [0.1, 0.0, 0.0, 0.0, 0.0, -0.05],
        };
        let z = [1.0, 0.0, 0.0, 0.0, 0.0, 2.0];
        assert!((m.margin_at(&z) - (0.2 + 0.1 - 0.1)).abs() < 1e-12);
        assert!((m.sigma() - (0.1f64.powi(2) + 0.05f64.powi(2)).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn overall_combines_mechanisms() {
        let p = FailureProbs {
            read: 0.1,
            write: 0.2,
            access: 0.0,
            hold: 0.0,
        };
        assert!((p.overall() - (1.0 - 0.9 * 0.8)).abs() < 1e-12);
        assert_eq!(p.dominant(), "write");
    }

    #[test]
    fn nominal_cell_failure_probs_are_small() {
        let fa = analyzer();
        let p = fa.failure_probs(0.0, &active()).unwrap();
        for (name, v) in [
            ("read", p.read),
            ("write", p.write),
            ("access", p.access),
            ("hold", p.hold),
        ] {
            assert!(v < 0.02, "{name} failure prob too high at nominal: {v:.3e}");
        }
    }

    #[test]
    fn low_vt_corner_raises_read_failures() {
        let fa = analyzer();
        let cond = active();
        let nom = fa.failure_probs(0.0, &cond).unwrap();
        let low = fa.failure_probs(-0.10, &cond).unwrap();
        assert!(
            low.read > nom.read * 2.0 || low.read > 1e-3,
            "read fail must grow at the low-Vt corner: {:.3e} -> {:.3e}",
            nom.read,
            low.read
        );
    }

    #[test]
    fn high_vt_corner_raises_access_and_write_failures() {
        let fa = analyzer();
        let cond = active();
        let nom = fa.failure_probs(0.0, &cond).unwrap();
        let high = fa.failure_probs(0.10, &cond).unwrap();
        assert!(
            high.access > nom.access,
            "access fail must grow at the high-Vt corner"
        );
        assert!(
            high.write > nom.write,
            "write fail must grow at the high-Vt corner"
        );
    }

    #[test]
    fn linearized_matches_exact_margins_nearby() {
        // The linearization must predict the exact margin well within ±1σ.
        let fa = analyzer();
        let cond = active();
        let model = fa.linearize(0.0, &cond).unwrap();
        let z = [0.5, -0.5, 0.25, -0.25, 0.5, -0.5];
        let exact = fa.margins_at(&z, 0.0, &cond).unwrap();
        let pred = model.read.margin_at(&z);
        assert!(
            (pred - exact.read).abs() < 0.02,
            "read: predicted {pred:.4} vs exact {:.4}",
            exact.read
        );
        let pred_h = model.hold.combined_margin().margin_at(&z);
        assert!(
            (pred_h - exact.hold).abs() < 0.5,
            "hold: predicted {pred_h:.4} vs exact {:.4}",
            exact.hold
        );
    }

    #[test]
    #[ignore = "expensive Monte-Carlo cross-validation; run with --ignored"]
    fn mc_cross_validates_linearized_estimate() {
        let fa = analyzer();
        // A corner with a non-negligible failure probability.
        let cond = active();
        let lin = fa.failure_probs(-0.12, &cond).unwrap().overall();
        let mc = fa.failure_prob_mc(-0.12, &cond, 4000, 7).unwrap();
        // Within a factor of 3 (the linearization is approximate and the
        // mechanisms overlap).
        assert!(
            mc.value < lin * 3.0 + 3.0 * mc.std_err && lin < mc.value * 3.0 + 3.0 * mc.std_err,
            "linearized {lin:.3e} vs MC {:.3e} ± {:.1e}",
            mc.value,
            mc.std_err
        );
    }
}
