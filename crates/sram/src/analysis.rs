//! Cell-level parametric-failure metrics.
//!
//! Implements the static metrics of the paper's §II (after its refs \[3\],
//! \[4\]) on top of the `pvtm-circuit` DC solver:
//!
//! - **read margin** `V_TRIPRD − V_READ`: the read-disturb voltage at the
//!   node storing 0 versus the trip point of the opposite inverter under
//!   read load — negative margin means the cell flips when read;
//! - **write margin** `V_TRIPWR − V_WRITE`: how far below the opposite trip
//!   point the access transistor can pull the 1 node — negative margin
//!   means the write cannot flip the cell;
//! - **access margin** `ln(T_MAX / t_access)`: log ratio of the allowed to
//!   the achieved bit-line discharge time — negative means a sensing
//!   failure;
//! - **hold margin**: sag of the 1 node in standby (raised source bias)
//!   versus the data-retention trip point — negative means the stored bit
//!   dies in standby.
//!
//! Butterfly static-noise-margin extraction (Seevinck's rotated-coordinate
//! method) is provided as a cross-check metric.

use pvtm_circuit::{dc, CircuitError, DcOptions, Netlist};
use serde::{Deserialize, Serialize};

use crate::cell::{Conditions, SramCell, Xtor};
use pvtm_device::Technology;

/// Configuration of the failure metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Bit-line capacitance \[F\].
    pub cbl: f64,
    /// Bit-line differential required by the sense amplifier \[V\].
    pub dv_sense: f64,
    /// Maximum allowed access (bit-line discharge) time \[s\].
    pub t_max: f64,
    /// Storage-node capacitance \[F\] (sets the write flip time).
    pub c_node: f64,
    /// Word-line pulse width available to complete a write \[s\].
    pub t_wl_max: f64,
    /// Output crossing level for trip-point extraction, as a fraction of
    /// the rail span (0.5 = midpoint).
    pub trip_level_frac: f64,
    /// Bisection iterations for trip points (each halves the interval).
    pub bisection_iters: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        Self {
            // Timing thresholds match `FailureAnalyzer::calibrate_timing`
            // at the default 70 nm sizing with a 4.7σ nominal guard band,
            // so the default configuration is a balanced design out of the
            // box (the paper's "equal failure probabilities at ZBB").
            cbl: 60e-15,
            dv_sense: 0.10,
            t_max: 89.3e-12,
            c_node: 1.2e-15,
            t_wl_max: 12.6e-12,
            trip_level_frac: 0.5,
            bisection_iters: 24,
        }
    }
}

/// Hold-analysis raw quantities (see [`CellAnalysis::hold_metrics`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoldMetrics {
    /// Actual droop of the 1 node below VDD \[V\].
    pub droop: f64,
    /// Allowed droop before the retention trip point is reached \[V\].
    pub allowed: f64,
}

/// The four failure-metric margins; positive is healthy, negative failed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Margins {
    /// Read-stability margin \[V\].
    pub read: f64,
    /// Write-ability margin \[V\].
    pub write: f64,
    /// Access margin `ln(T_MAX / t_access)` (dimensionless).
    pub access: f64,
    /// Hold (data-retention) margin \[V\].
    pub hold: f64,
}

impl Margins {
    /// True when any mechanism fails.
    pub fn any_failure(&self) -> bool {
        self.read < 0.0 || self.write < 0.0 || self.access < 0.0 || self.hold < 0.0
    }

    /// The margins as an array ordered `[read, write, access, hold]`.
    pub fn as_array(&self) -> [f64; 4] {
        [self.read, self.write, self.access, self.hold]
    }
}

/// Cell metric analyzer for one technology/configuration.
#[derive(Debug, Clone)]
pub struct CellAnalysis {
    tech: Technology,
    config: AnalysisConfig,
}

impl CellAnalysis {
    /// Creates an analyzer.
    pub fn new(tech: &Technology, config: AnalysisConfig) -> Self {
        assert!(config.cbl > 0.0 && config.dv_sense > 0.0 && config.t_max > 0.0);
        assert!((0.0..1.0).contains(&config.trip_level_frac) && config.trip_level_frac > 0.0);
        Self {
            tech: tech.clone(),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// The technology card this analyzer was built for.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// Read-disturb voltage `V_READ` at the node storing 0 (`VR`) with the
    /// word line high and bit lines precharged.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn v_read(&self, cell: &SramCell, cond: &Conditions) -> Result<f64, CircuitError> {
        Ok(self.read_solution(cell, cond)?.0)
    }

    /// Bit-line discharge current during a read \[A\].
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn read_current(&self, cell: &SramCell, cond: &Conditions) -> Result<f64, CircuitError> {
        Ok(self.read_solution(cell, cond)?.1)
    }

    /// Solves the read divider: `AXR` (from `BR` = vdd) against `NR`
    /// (gate held at vdd by the 1 node). Returns `(V_READ, I_read)`.
    fn read_solution(
        &self,
        cell: &SramCell,
        cond: &Conditions,
    ) -> Result<(f64, f64), CircuitError> {
        let mut ckt = Netlist::new();
        ckt.set_temperature(cond.temp_k);
        let br = ckt.node("br");
        let vr = ckt.node("vr");
        let vl = ckt.node("vl");
        let wl = ckt.node("wl");
        let sl = ckt.node("sl");
        let bn = ckt.node("bn");
        ckt.vsource("VBR", br, Netlist::GROUND, cond.vdd);
        ckt.vsource("VVL", vl, Netlist::GROUND, cond.vdd);
        ckt.vsource("VWL", wl, Netlist::GROUND, cond.vdd);
        ckt.vsource("VSL", sl, Netlist::GROUND, cond.vsb);
        ckt.vsource("VBN", bn, Netlist::GROUND, cond.body_bias);
        ckt.mosfet("AXR", br, wl, vr, bn, cell.device(Xtor::Axr));
        ckt.mosfet("NR", vr, vl, sl, bn, cell.device(Xtor::Nr));
        let opts = DcOptions::default().guess(vr, 0.15);
        let sol = dc::solve(&ckt, &opts)?;
        let i_read = sol
            .branch_current("VBR")
            .expect("VBR branch current must exist");
        Ok((sol.voltage(vr), i_read))
    }

    /// Read trip point `V_TRIPRD`: input level at which the left inverter
    /// (`PL`/`NL`, loaded by `AXL` pulling up from `BL` = vdd) output falls
    /// through the trip level.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn v_trip_rd(&self, cell: &SramCell, cond: &Conditions) -> Result<f64, CircuitError> {
        let level = cond.vdd * self.config.trip_level_frac;
        self.inverter_trip(cell, cond, Side::Left, true, level)
    }

    /// Read-stability margin `V_TRIPRD − V_READ` \[V\].
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn read_margin(&self, cell: &SramCell, cond: &Conditions) -> Result<f64, CircuitError> {
        Ok(self.v_trip_rd(cell, cond)? - self.v_read(cell, cond)?)
    }

    /// Write level: the voltage the 1 node (`VL`) is pulled to through
    /// `AXL` (bit line at 0) against `PL`, with the far node held at 0.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn write_level(&self, cell: &SramCell, cond: &Conditions) -> Result<f64, CircuitError> {
        let mut ckt = Netlist::new();
        ckt.set_temperature(cond.temp_k);
        let vdd = ckt.node("vdd");
        let vl = ckt.node("vl");
        let vr = ckt.node("vr");
        let bl = ckt.node("bl");
        let wl = ckt.node("wl");
        let sl = ckt.node("sl");
        let bn = ckt.node("bn");
        ckt.vsource("VDD", vdd, Netlist::GROUND, cond.vdd);
        ckt.vsource("VVR", vr, Netlist::GROUND, 0.0);
        ckt.vsource("VBL", bl, Netlist::GROUND, 0.0);
        ckt.vsource("VWL", wl, Netlist::GROUND, cond.vdd);
        ckt.vsource("VSL", sl, Netlist::GROUND, cond.vsb);
        ckt.vsource("VBN", bn, Netlist::GROUND, cond.body_bias);
        ckt.mosfet("PL", vl, vr, vdd, vdd, cell.device(Xtor::Pl));
        ckt.mosfet("NL", vl, vr, sl, bn, cell.device(Xtor::Nl));
        ckt.mosfet("AXL", vl, wl, bl, bn, cell.device(Xtor::Axl));
        let opts = DcOptions::default().guess(vl, 0.1).guess(vdd, cond.vdd);
        let sol = dc::solve(&ckt, &opts)?;
        Ok(sol.voltage(vl))
    }

    /// Write trip point `V_TRIPWR`: trip of the right inverter (`PR`/`NR`,
    /// loaded by `AXR` pulling up from `BR` = vdd).
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn v_trip_wr(&self, cell: &SramCell, cond: &Conditions) -> Result<f64, CircuitError> {
        let level = cond.vdd * self.config.trip_level_frac;
        self.inverter_trip(cell, cond, Side::Right, true, level)
    }

    /// Static write margin `V_TRIPWR − V_WRITE` \[V\]: positive when the
    /// access transistor can statically pull the 1 node below the opposite
    /// trip point. A necessary condition for writability, but blind to the
    /// word-line timing — use [`Self::write_margin`] for the failure metric.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn static_write_margin(
        &self,
        cell: &SramCell,
        cond: &Conditions,
    ) -> Result<f64, CircuitError> {
        Ok(self.v_trip_wr(cell, cond)? - self.write_level(cell, cond)?)
    }

    /// Write (flip) time \[s\]: the time for `AXL` (bit line at 0) to pull
    /// the 1 node from VDD down to the flip threshold `V_TRIPWR`, fighting
    /// `PL` (held fully on — the far node is still low). Evaluated by
    /// integrating `C_node·dV / I_net(V)` over the trajectory.
    ///
    /// Returns infinity when the static pull never reaches the threshold
    /// (net current reverses) — a static write failure.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures from the trip-point extraction.
    pub fn write_time(&self, cell: &SramCell, cond: &Conditions) -> Result<f64, CircuitError> {
        let trip = self.v_trip_wr(cell, cond)?;
        Ok(self.write_time_from_trip(cell, cond, trip))
    }

    /// Pure-math tail of [`Self::write_time`]: the charge integration for a
    /// known flip threshold. Shared with the compiled-template evaluator so
    /// both paths compute the identical trajectory.
    pub(crate) fn write_time_from_trip(
        &self,
        cell: &SramCell,
        cond: &Conditions,
        trip: f64,
    ) -> f64 {
        if trip >= cond.vdd {
            return 0.0;
        }
        let axl = cell.device(Xtor::Axl);
        let pl = cell.device(Xtor::Pl);
        const STEPS: usize = 12;
        let mut t = 0.0;
        for k in 0..STEPS {
            let v0 = cond.vdd - (cond.vdd - trip) * k as f64 / STEPS as f64;
            let v1 = cond.vdd - (cond.vdd - trip) * (k + 1) as f64 / STEPS as f64;
            let vm = 0.5 * (v0 + v1);
            // AXL discharges the node toward BL = 0.
            let i_ax = axl.ids(
                pvtm_device::Bias::new(cond.vdd, vm, 0.0, cond.body_bias),
                cond.temp_k,
            );
            // PL (gate still at the low far node) feeds the node; its drain
            // current is negative by convention, so the delivered current
            // is its negation.
            let i_pl = -pl.ids(
                pvtm_device::Bias::new(0.0, vm, cond.vdd, cond.vdd),
                cond.temp_k,
            );
            let i_net = i_ax - i_pl;
            if i_net <= 0.0 {
                return f64::INFINITY;
            }
            t += self.config.c_node * (v0 - v1) / i_net;
        }
        t
    }

    /// Write-ability margin `ln(T_WL / t_write)` (dimensionless): negative
    /// when the cell cannot flip within the word-line pulse. This is the
    /// paper's write-failure criterion — a *timing* failure, which is why
    /// reverse body bias (weaker access NMOS) degrades it while forward
    /// body bias helps.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn write_margin(&self, cell: &SramCell, cond: &Conditions) -> Result<f64, CircuitError> {
        Ok(self.write_margin_from_time(self.write_time(cell, cond)?))
    }

    /// Maps a write (flip) time to the margin `ln(T_WL / t)`. A static
    /// write failure (infinite time) maps to a deeply negative but finite
    /// margin so the linearized model stays usable.
    pub(crate) fn write_margin_from_time(&self, t: f64) -> f64 {
        if !t.is_finite() {
            return -10.0;
        }
        (self.config.t_wl_max / t.max(1e-15)).ln()
    }

    /// Access (bit-line discharge) time \[s\]: `C_BL · ΔV_sense / I_read`.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn access_time(&self, cell: &SramCell, cond: &Conditions) -> Result<f64, CircuitError> {
        let i = self.read_current(cell, cond)?.max(1e-12);
        Ok(self.config.cbl * self.config.dv_sense / i)
    }

    /// Access margin `ln(T_MAX / t_access)` (dimensionless).
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn access_margin(&self, cell: &SramCell, cond: &Conditions) -> Result<f64, CircuitError> {
        Ok(self.access_margin_from_current(self.read_current(cell, cond)?))
    }

    /// Maps a read current to the access margin
    /// `ln(T_MAX / (C_BL · ΔV_sense / I))`.
    pub(crate) fn access_margin_from_current(&self, i_read: f64) -> f64 {
        let t_access = self.config.cbl * self.config.dv_sense / i_read.max(1e-12);
        (self.config.t_max / t_access).ln()
    }

    /// Standby state of the full cell: returns `(VL, VR)` with the cell
    /// initialized storing 1 at `VL`, word line low, source line at
    /// `cond.vsb`.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn hold_state(
        &self,
        cell: &SramCell,
        cond: &Conditions,
    ) -> Result<(f64, f64), CircuitError> {
        let mut ckt = Netlist::new();
        ckt.set_temperature(cond.temp_k);
        let vdd = ckt.node("vdd");
        let vl = ckt.node("vl");
        let vr = ckt.node("vr");
        let bl = ckt.node("bl");
        let br = ckt.node("br");
        let wl = ckt.node("wl");
        let sl = ckt.node("sl");
        let bn = ckt.node("bn");
        ckt.vsource("VDD", vdd, Netlist::GROUND, cond.vdd);
        ckt.vsource("VBL", bl, Netlist::GROUND, cond.vdd);
        ckt.vsource("VBR", br, Netlist::GROUND, cond.vdd);
        ckt.vsource("VWL", wl, Netlist::GROUND, 0.0);
        ckt.vsource("VSL", sl, Netlist::GROUND, cond.vsb);
        ckt.vsource("VBN", bn, Netlist::GROUND, cond.body_bias);
        ckt.mosfet("PL", vl, vr, vdd, vdd, cell.device(Xtor::Pl));
        ckt.mosfet("NL", vl, vr, sl, bn, cell.device(Xtor::Nl));
        ckt.mosfet("PR", vr, vl, vdd, vdd, cell.device(Xtor::Pr));
        ckt.mosfet("NR", vr, vl, sl, bn, cell.device(Xtor::Nr));
        ckt.mosfet("AXL", bl, wl, vl, bn, cell.device(Xtor::Axl));
        ckt.mosfet("AXR", br, wl, vr, bn, cell.device(Xtor::Axr));
        let opts = DcOptions {
            // Start from the stored state; a gentler starting Gmin keeps
            // Newton in this basin of attraction.
            gmin_start: 1e-6,
            initial: vec![
                (vl, cond.vdd),
                (vr, cond.vsb),
                (vdd, cond.vdd),
                (bl, cond.vdd),
                (br, cond.vdd),
                (sl, cond.vsb),
            ],
            ..DcOptions::default()
        };
        let sol = dc::solve(&ckt, &opts)?;
        Ok((sol.voltage(vl), sol.voltage(vr)))
    }

    /// Data-retention trip point of the right inverter in standby: input
    /// level below which it releases the stored 0.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn v_trip_hold(&self, cell: &SramCell, cond: &Conditions) -> Result<f64, CircuitError> {
        let level = cond.vsb + (cond.vdd - cond.vsb) * self.config.trip_level_frac;
        self.inverter_trip(cell, cond, Side::Right, false, level)
    }

    /// Data-retention trip point of the left inverter in standby: input
    /// level above which it drops the stored 1.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn v_trip_hold_left(
        &self,
        cell: &SramCell,
        cond: &Conditions,
    ) -> Result<f64, CircuitError> {
        let level = cond.vsb + (cond.vdd - cond.vsb) * self.config.trip_level_frac;
        self.inverter_trip(cell, cond, Side::Left, false, level)
    }

    /// Hold (data-retention) margin `ln(droop_allowed / droop_actual)`
    /// (dimensionless): the 1 node sags below VDD by the leakage through
    /// `NL` flowing against the source-bias-weakened `PL`; retention is
    /// lost when the sag reaches the right inverter's release point
    /// `V_TRIPHD`.
    ///
    /// The log form keeps the metric near-linear in the threshold
    /// deviations: the actual droop is exponential in `ΔVt(NL)` (leakage),
    /// while the allowed droop `VDD − V_TRIPHD` shrinks as the trip point
    /// climbs at high-Vt corners — reproducing the paper's observation that
    /// hold failures grow at *both* inter-die tails (Fig. 2a) and cap the
    /// usable source bias (Fig. 6).
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn hold_margin(&self, cell: &SramCell, cond: &Conditions) -> Result<f64, CircuitError> {
        let h = self.hold_metrics(cell, cond)?;
        Ok((h.allowed / h.droop).ln())
    }

    /// The two ingredients of the hold margin: the actual 1-node droop and
    /// the allowed droop (distance from VDD down to the retention trip
    /// point), both floored at 1 nV to keep logs finite.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn hold_metrics(
        &self,
        cell: &SramCell,
        cond: &Conditions,
    ) -> Result<HoldMetrics, CircuitError> {
        // A cell on the verge of losing bistability can defeat the DC
        // solver (fold point): physically that is full retention collapse,
        // so report the droop as the whole rail rather than failing.
        let droop = match self.hold_state(cell, cond) {
            Ok((vl, _)) => (cond.vdd - vl).max(1e-9),
            Err(CircuitError::NoConvergence { .. }) => cond.vdd - cond.vsb,
            Err(e) => return Err(e),
        };
        let trip = self.v_trip_hold(cell, cond)?;
        Ok(HoldMetrics {
            droop,
            allowed: (cond.vdd - trip).max(1e-9),
        })
    }

    /// All four margins. Read/write/access are evaluated in active mode
    /// (`vsb` forced to 0); hold uses the conditions as given (standby
    /// source bias applies).
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn margins(&self, cell: &SramCell, cond: &Conditions) -> Result<Margins, CircuitError> {
        let active = Conditions { vsb: 0.0, ..*cond };
        Ok(Margins {
            read: self.read_margin(cell, &active)?,
            write: self.write_margin(cell, &active)?,
            access: self.access_margin(cell, &active)?,
            hold: self.hold_margin(cell, cond)?,
        })
    }

    /// Retention ceiling of one specific cell \[V\]: the largest standby
    /// source bias at which the cell still holds its data (hold margin
    /// crosses zero), found by bisection. Returns the cap when the cell
    /// holds everywhere in `[0, cap]`, and 0 when it cannot hold at all.
    ///
    /// This is the deterministic per-cell analogue of the statistical
    /// `max VSB` of the paper's Fig. 6, and the quantity the BIST
    /// calibration discovers empirically per die.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < cap < vdd`.
    pub fn retention_ceiling(
        &self,
        cell: &SramCell,
        cond: &Conditions,
        cap: f64,
    ) -> Result<f64, CircuitError> {
        assert!(cap > 0.0 && cap < cond.vdd, "cap must lie in (0, vdd)");
        let margin = |vsb: f64| -> Result<f64, CircuitError> {
            self.hold_margin(cell, &Conditions { vsb, ..*cond })
        };
        if margin(0.0)? <= 0.0 {
            return Ok(0.0);
        }
        if margin(cap)? > 0.0 {
            return Ok(cap);
        }
        let (mut lo, mut hi) = (0.0f64, cap);
        for _ in 0..20 {
            let mid = 0.5 * (lo + hi);
            if margin(mid)? > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    /// Output voltage of one cross-coupled inverter for a forced input,
    /// including the access transistor load.
    ///
    /// `side` selects the inverter; `wordline_high` enables the access
    /// pull-up (read/write condition) or leaves it off (hold condition).
    fn inverter_output(
        &self,
        cell: &SramCell,
        cond: &Conditions,
        side: Side,
        wordline_high: bool,
        vin: f64,
    ) -> Result<f64, CircuitError> {
        let (pu, pd, ax) = match side {
            Side::Left => (Xtor::Pl, Xtor::Nl, Xtor::Axl),
            Side::Right => (Xtor::Pr, Xtor::Nr, Xtor::Axr),
        };
        let mut ckt = Netlist::new();
        ckt.set_temperature(cond.temp_k);
        let vdd = ckt.node("vdd");
        let input = ckt.node("in");
        let out = ckt.node("out");
        let bit = ckt.node("bit");
        let wl = ckt.node("wl");
        let sl = ckt.node("sl");
        let bn = ckt.node("bn");
        ckt.vsource("VDD", vdd, Netlist::GROUND, cond.vdd);
        ckt.vsource("VIN", input, Netlist::GROUND, vin);
        ckt.vsource("VBIT", bit, Netlist::GROUND, cond.vdd);
        ckt.vsource(
            "VWL",
            wl,
            Netlist::GROUND,
            if wordline_high { cond.vdd } else { 0.0 },
        );
        ckt.vsource("VSL", sl, Netlist::GROUND, cond.vsb);
        ckt.vsource("VBN", bn, Netlist::GROUND, cond.body_bias);
        ckt.mosfet("PU", out, input, vdd, vdd, cell.device(pu));
        ckt.mosfet("PD", out, input, sl, bn, cell.device(pd));
        ckt.mosfet("AX", bit, wl, out, bn, cell.device(ax));
        // Warm-start near the expected branch of the VTC.
        let guess = if vin > cond.vdd * 0.5 {
            cond.vsb
        } else {
            cond.vdd
        };
        let opts = DcOptions::default().guess(out, guess).guess(vdd, cond.vdd);
        let sol = dc::solve(&ckt, &opts)?;
        Ok(sol.voltage(out))
    }

    /// Finds the input level at which the inverter output crosses `level`
    /// (output is monotone decreasing in the input), by bisection.
    fn inverter_trip(
        &self,
        cell: &SramCell,
        cond: &Conditions,
        side: Side,
        wordline_high: bool,
        level: f64,
    ) -> Result<f64, CircuitError> {
        let mut lo = 0.0f64;
        let mut hi = cond.vdd;
        let out_lo = self.inverter_output(cell, cond, side, wordline_high, lo)?;
        let out_hi = self.inverter_output(cell, cond, side, wordline_high, hi)?;
        // Degenerate inverters (extreme deviations): clamp to the bounds.
        if out_lo <= level {
            return Ok(lo);
        }
        if out_hi >= level {
            return Ok(hi);
        }
        for _ in 0..self.config.bisection_iters {
            let mid = 0.5 * (lo + hi);
            let out = self.inverter_output(cell, cond, side, wordline_high, mid)?;
            if out > level {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    /// Butterfly static noise margin \[V\] via Seevinck's rotated-coordinate
    /// construction, in read mode (`wordline_high = true`) or hold mode.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn butterfly_snm(
        &self,
        cell: &SramCell,
        cond: &Conditions,
        wordline_high: bool,
    ) -> Result<f64, CircuitError> {
        const POINTS: usize = 61;
        let vmax = cond.vdd;
        let xs: Vec<f64> = (0..POINTS)
            .map(|i| i as f64 * vmax / (POINTS - 1) as f64)
            .collect();
        let mut vtc_l = Vec::with_capacity(POINTS);
        let mut vtc_r = Vec::with_capacity(POINTS);
        for &x in &xs {
            vtc_l.push(self.inverter_output(cell, cond, Side::Left, wordline_high, x)?);
            vtc_r.push(self.inverter_output(cell, cond, Side::Right, wordline_high, x)?);
        }
        // Seevinck construction: slide 45° lines y = x + c across the
        // butterfly. For each offset, intersect the line with the left VTC
        // (y = f1(x), monotone decreasing ⇒ unique root of f1(x) − x − c)
        // and with the mirrored right VTC (x = f2(y) ⇒ unique root of
        // y − f2(y) − c). The inscribed-square side at that offset is the
        // horizontal separation of the two intersection points; each lobe's
        // SNM is the maximum over its offsets, and the cell SNM is the
        // smaller lobe. A negative value means that lobe has collapsed —
        // the cell is no longer bistable under this condition.
        let root = |g: &dyn Fn(usize) -> f64| -> Option<f64> {
            // Finds the zero crossing of g over grid indices, interpolated
            // to a fractional x position on `xs`.
            for i in 1..POINTS {
                let (a, b) = (g(i - 1), g(i));
                // pvtm-lint: allow(no-float-eq) an exactly zero bracket endpoint is itself the root
                if a == 0.0 {
                    return Some(xs[i - 1]);
                }
                if a * b < 0.0 {
                    let frac = a / (a - b);
                    return Some(xs[i - 1] + frac * (xs[i] - xs[i - 1]));
                }
            }
            None
        };
        let mut lobe_upper = f64::NEG_INFINITY; // offsets c > 0
        let mut lobe_lower = f64::NEG_INFINITY; // offsets c < 0
        const OFFSETS: usize = 81;
        for k in 0..OFFSETS {
            let c = -vmax + 2.0 * vmax * k as f64 / (OFFSETS - 1) as f64;
            // Intersection with the left VTC: f1(x) = x + c.
            let xa = root(&|i| vtc_l[i] - xs[i] - c);
            // Intersection with the mirrored right VTC: y = f2(y) + c,
            // parameterized by y on the same grid; x-coordinate = y − c.
            let yb = root(&|i| xs[i] - vtc_r[i] - c);
            if let (Some(xa), Some(yb)) = (xa, yb) {
                let xb = yb - c;
                if c > 0.0 {
                    lobe_upper = lobe_upper.max(xa - xb);
                } else if c < 0.0 {
                    lobe_lower = lobe_lower.max(xb - xa);
                }
            }
        }
        Ok(lobe_upper.min(lobe_lower))
    }

    /// Access time measured by a full transient simulation of the cell with
    /// explicit bit-line capacitors: the time for `BR` to discharge by the
    /// sense differential. Used in tests to validate [`Self::access_time`].
    ///
    /// # Errors
    ///
    /// Propagates solver failures; returns `NoConvergence` if the bit line
    /// never develops the differential within `8 × T_MAX`.
    pub fn access_time_transient(
        &self,
        cell: &SramCell,
        cond: &Conditions,
    ) -> Result<f64, CircuitError> {
        let mut ckt = Netlist::new();
        ckt.set_temperature(cond.temp_k);
        let vdd = ckt.node("vdd");
        let vl = ckt.node("vl");
        let vr = ckt.node("vr");
        let bl = ckt.node("bl");
        let br = ckt.node("br");
        let wl = ckt.node("wl");
        let sl = ckt.node("sl");
        let bn = ckt.node("bn");
        ckt.vsource("VDD", vdd, Netlist::GROUND, cond.vdd);
        ckt.vsource("VWL", wl, Netlist::GROUND, cond.vdd);
        ckt.vsource("VSL", sl, Netlist::GROUND, cond.vsb);
        ckt.vsource("VBN", bn, Netlist::GROUND, cond.body_bias);
        ckt.capacitor("CBL", bl, Netlist::GROUND, self.config.cbl);
        ckt.capacitor("CBR", br, Netlist::GROUND, self.config.cbl);
        ckt.mosfet("PL", vl, vr, vdd, vdd, cell.device(Xtor::Pl));
        ckt.mosfet("NL", vl, vr, sl, bn, cell.device(Xtor::Nl));
        ckt.mosfet("PR", vr, vl, vdd, vdd, cell.device(Xtor::Pr));
        ckt.mosfet("NR", vr, vl, sl, bn, cell.device(Xtor::Nr));
        ckt.mosfet("AXL", bl, wl, vl, bn, cell.device(Xtor::Axl));
        ckt.mosfet("AXR", br, wl, vr, bn, cell.device(Xtor::Axr));

        // Initial state: bit lines precharged, cell storing 1 at VL, word
        // line already high (time zero is the WL edge).
        let sys_nodes = ckt.num_nodes() - 1; // free nodes
        let mut state = vec![0.0; sys_nodes + 4]; // + 4 vsource branches
        let set = |node: pvtm_circuit::NodeId, v: f64, state: &mut Vec<f64>| {
            state[node.index() - 1] = v;
        };
        set(vdd, cond.vdd, &mut state);
        set(vl, cond.vdd, &mut state);
        set(vr, 0.0, &mut state);
        set(bl, cond.vdd, &mut state);
        set(br, cond.vdd, &mut state);
        set(wl, cond.vdd, &mut state);
        set(sl, cond.vsb, &mut state);
        set(bn, cond.body_bias, &mut state);

        let t_stop = self.config.t_max * 8.0;
        let opts =
            pvtm_circuit::TransientOptions::new(t_stop / 400.0, t_stop).with_initial_state(state);
        let res = pvtm_circuit::transient::solve(&ckt, &opts)?;
        res.crossing_time(br, cond.vdd - self.config.dv_sense, true)
            .ok_or(CircuitError::NoConvergence {
                residual: f64::NAN,
                iterations: 400,
            })
    }
}

/// Which inverter of the cross-coupled pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Side {
    /// The `PL`/`NL` inverter (output at `VL`, access device `AXL`).
    Left,
    /// The `PR`/`NR` inverter (output at `VR`, access device `AXR`).
    Right,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellSizing;

    fn setup() -> (Technology, CellAnalysis, SramCell) {
        let tech = Technology::predictive_70nm();
        let analysis = CellAnalysis::new(&tech, AnalysisConfig::default());
        let cell = SramCell::nominal(&tech);
        (tech, analysis, cell)
    }

    #[test]
    fn nominal_margins_are_healthy() {
        let (tech, analysis, cell) = setup();
        let m = analysis.margins(&cell, &Conditions::active(&tech)).unwrap();
        assert!(m.read > 0.05, "read margin {:.3}", m.read);
        assert!(m.write > 0.05, "write margin {:.3}", m.write);
        assert!(m.access > 0.1, "access margin {:.3}", m.access);
        assert!(m.hold > 0.1, "hold margin {:.3}", m.hold);
        assert!(!m.any_failure());
    }

    #[test]
    fn v_read_is_a_small_positive_disturb() {
        let (tech, analysis, cell) = setup();
        let v = analysis.v_read(&cell, &Conditions::active(&tech)).unwrap();
        assert!(v > 0.01 && v < 0.4, "V_READ = {v:.3}");
    }

    #[test]
    fn weaker_pulldown_raises_v_read() {
        let (tech, analysis, mut cell) = setup();
        let cond = Conditions::active(&tech);
        let base = analysis.v_read(&cell, &cond).unwrap();
        // Raise NR's Vt: the pull-down fights the disturb less well.
        cell.set_deviations([0.0, 0.06, 0.0, 0.0, 0.0, 0.0]);
        let worse = analysis.v_read(&cell, &cond).unwrap();
        assert!(worse > base, "{worse} vs {base}");
    }

    #[test]
    fn rbb_improves_read_margin() {
        let (tech, analysis, cell) = setup();
        let zbb = analysis
            .read_margin(&cell, &Conditions::active(&tech))
            .unwrap();
        let rbb = analysis
            .read_margin(&cell, &Conditions::active(&tech).with_body_bias(-0.4))
            .unwrap();
        assert!(rbb > zbb, "RBB must improve read stability: {rbb} vs {zbb}");
    }

    #[test]
    fn rbb_degrades_write_and_access() {
        let (tech, analysis, cell) = setup();
        let cond0 = Conditions::active(&tech);
        let cond_rbb = cond0.with_body_bias(-0.4);
        let w0 = analysis.write_margin(&cell, &cond0).unwrap();
        let w1 = analysis.write_margin(&cell, &cond_rbb).unwrap();
        assert!(w1 < w0, "RBB must hurt writability: {w1} vs {w0}");
        let a0 = analysis.access_margin(&cell, &cond0).unwrap();
        let a1 = analysis.access_margin(&cell, &cond_rbb).unwrap();
        assert!(a1 < a0, "RBB must slow the read: {a1} vs {a0}");
    }

    #[test]
    fn fbb_improves_write_and_access() {
        let (tech, analysis, cell) = setup();
        let cond0 = Conditions::active(&tech);
        let cond_fbb = cond0.with_body_bias(0.4);
        assert!(
            analysis.write_margin(&cell, &cond_fbb).unwrap()
                > analysis.write_margin(&cell, &cond0).unwrap()
        );
        assert!(
            analysis.access_margin(&cell, &cond_fbb).unwrap()
                > analysis.access_margin(&cell, &cond0).unwrap()
        );
    }

    #[test]
    fn deep_source_bias_erodes_hold_margin() {
        // At small VSB the margin can even improve (DIBL cuts NL leakage
        // faster than PL weakens); past the knee the weakening PL and the
        // collapsing retention window must dominate.
        let (tech, analysis, cell) = setup();
        let m_mid = analysis
            .hold_margin(&cell, &Conditions::standby(&tech, 0.30))
            .unwrap();
        let m_deep = analysis
            .hold_margin(&cell, &Conditions::standby(&tech, 0.65))
            .unwrap();
        assert!(
            m_deep < m_mid,
            "deep VSB must erode hold margin: {m_deep} vs {m_mid}"
        );
        assert!(m_mid > 0.0);
    }

    #[test]
    fn hold_state_retains_data_at_nominal() {
        let (tech, analysis, cell) = setup();
        let (vl, vr) = analysis
            .hold_state(&cell, &Conditions::standby(&tech, 0.2))
            .unwrap();
        assert!(vl > 0.9, "the 1 node must stay high: {vl}");
        assert!(vr < 0.3, "the 0 node must stay near the source line: {vr}");
    }

    #[test]
    fn access_estimate_matches_transient_within_factor_two() {
        let (tech, analysis, cell) = setup();
        let cond = Conditions::active(&tech);
        let est = analysis.access_time(&cell, &cond).unwrap();
        let tran = analysis.access_time_transient(&cell, &cond).unwrap();
        let ratio = tran / est;
        assert!(
            (0.5..2.0).contains(&ratio),
            "estimate {est:.3e} vs transient {tran:.3e} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn hold_snm_exceeds_read_snm() {
        // Classic result: read condition always degrades the butterfly.
        let (tech, analysis, cell) = setup();
        let cond = Conditions::active(&tech);
        let hold = analysis.butterfly_snm(&cell, &cond, false).unwrap();
        let read = analysis.butterfly_snm(&cell, &cond, true).unwrap();
        assert!(hold > read, "hold SNM {hold:.3} vs read SNM {read:.3}");
        assert!(read > 0.0, "nominal cell must be read-stable");
    }

    #[test]
    fn bigger_pulldown_improves_read_snm() {
        let (tech, analysis, _) = setup();
        let cond = Conditions::active(&tech);
        let mut sizing = CellSizing::default_for(&tech);
        sizing.wpd *= 1.6;
        let big = SramCell::with_sizing(&tech, sizing);
        let small = SramCell::nominal(&tech);
        let snm_big = analysis.butterfly_snm(&big, &cond, true).unwrap();
        let snm_small = analysis.butterfly_snm(&small, &cond, true).unwrap();
        assert!(
            snm_big > snm_small,
            "β-ratio must improve read SNM: {snm_big:.4} vs {snm_small:.4}"
        );
    }

    #[test]
    fn snm_is_physically_sized() {
        let (tech, analysis, cell) = setup();
        let cond = Conditions::active(&tech);
        let snm = analysis.butterfly_snm(&cell, &cond, false).unwrap();
        // Hold SNM of a healthy 6T cell sits well inside (0, vdd/2).
        assert!(snm > 0.05 && snm < 0.5, "hold SNM = {snm:.4}");
    }

    #[test]
    fn static_write_margin_is_positive_at_nominal() {
        let (tech, analysis, cell) = setup();
        let m = analysis
            .static_write_margin(&cell, &Conditions::active(&tech))
            .unwrap();
        assert!(m > 0.1, "static write margin {m:.3}");
    }

    #[test]
    fn write_time_is_picoseconds_at_nominal() {
        let (tech, analysis, cell) = setup();
        let t = analysis
            .write_time(&cell, &Conditions::active(&tech))
            .unwrap();
        assert!(
            t > 1e-12 && t < 1e-9,
            "write time should be ps-scale, got {t:.3e}"
        );
    }

    #[test]
    fn retention_ceiling_orders_cells_by_weakness() {
        let (tech, analysis, cell) = setup();
        let cond = Conditions::standby(&tech, 0.0);
        let nominal = analysis.retention_ceiling(&cell, &cond, 0.9).unwrap();
        // A cell with a leaky NL and weak PL must give up earlier.
        let mut weak = SramCell::nominal(&tech);
        weak.set_deviations([-0.15, 0.0, 0.20, 0.0, 0.0, 0.0]);
        let weak_ceiling = analysis.retention_ceiling(&weak, &cond, 0.9).unwrap();
        assert!(
            weak_ceiling < nominal,
            "weak {weak_ceiling:.3} vs nominal {nominal:.3}"
        );
        assert!(nominal > 0.3, "nominal ceiling too low: {nominal:.3}");
    }

    #[test]
    fn retention_ceiling_endpoints() {
        let (tech, analysis, _) = setup();
        let cond = Conditions::standby(&tech, 0.0);
        // A hopeless cell: depletion-mode NL against a dead PL.
        let mut dead = SramCell::nominal(&tech);
        dead.set_deviations([-0.35, 0.0, 0.45, 0.0, 0.0, 0.0]);
        let c = analysis.retention_ceiling(&dead, &cond, 0.9).unwrap();
        assert!(c < 0.25, "dead cell ceiling {c:.3}");
    }

    #[test]
    fn margins_as_array_order() {
        let m = Margins {
            read: 1.0,
            write: 2.0,
            access: 3.0,
            hold: 4.0,
        };
        assert_eq!(m.as_array(), [1.0, 2.0, 3.0, 4.0]);
        assert!(!m.any_failure());
        let bad = Margins { hold: -0.1, ..m };
        assert!(bad.any_failure());
    }
}
