//! The 6T SRAM cell: sizing, deviations, operating conditions and netlist
//! construction.
//!
//! Node/transistor convention (paper Fig. 1): the left inverter `PL`/`NL`
//! drives node `VL` and is driven by `VR`; the right inverter `PR`/`NR`
//! drives `VR` from `VL`. Access transistors `AXL` (`BL`↔`VL`) and `AXR`
//! (`BR`↔`VR`) are gated by the word line. All analyses assume the cell
//! stores a **1 at `VL`** (so `VR` holds the 0 and is the read-disturbed
//! node); use [`SramCell::mirrored`] for the opposite orientation.

use pvtm_device::{Mosfet, Technology};
use serde::{Deserialize, Serialize};

/// The six transistors of the cell, in canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Xtor {
    /// Left pull-down NMOS (gate at `VR`, drain at `VL`).
    Nl,
    /// Right pull-down NMOS (gate at `VL`, drain at `VR`).
    Nr,
    /// Left pull-up PMOS (gate at `VR`, drain at `VL`).
    Pl,
    /// Right pull-up PMOS (gate at `VL`, drain at `VR`).
    Pr,
    /// Left access NMOS (`BL` ↔ `VL`, gate at `WL`).
    Axl,
    /// Right access NMOS (`BR` ↔ `VR`, gate at `WL`).
    Axr,
}

impl Xtor {
    /// All six transistors in canonical order.
    pub const ALL: [Xtor; 6] = [Xtor::Nl, Xtor::Nr, Xtor::Pl, Xtor::Pr, Xtor::Axl, Xtor::Axr];

    /// Index of this transistor in the canonical order.
    pub fn index(self) -> usize {
        match self {
            Xtor::Nl => 0,
            Xtor::Nr => 1,
            Xtor::Pl => 2,
            Xtor::Pr => 3,
            Xtor::Axl => 4,
            Xtor::Axr => 5,
        }
    }

    /// True for the NMOS devices (pull-downs and access transistors).
    pub fn is_nmos(self) -> bool {
        !matches!(self, Xtor::Pl | Xtor::Pr)
    }
}

/// Transistor widths and lengths of the cell \[m\].
///
/// The default sizing follows the usual 6T ratios: pull-down strongest
/// (cell β ≈ 1.4 for read stability), access in between, pull-up weakest
/// (for writability).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellSizing {
    /// Pull-down NMOS width.
    pub wpd: f64,
    /// Pull-up PMOS width.
    pub wpu: f64,
    /// Access NMOS width.
    pub wax: f64,
    /// Pull-down channel length.
    pub lpd: f64,
    /// Pull-up channel length.
    pub lpu: f64,
    /// Access channel length.
    pub lax: f64,
}

impl CellSizing {
    /// Default sizing for a technology (minimum lengths, conventional
    /// width ratios).
    pub fn default_for(tech: &Technology) -> Self {
        let l = tech.lmin();
        Self {
            wpd: 200e-9,
            wpu: 100e-9,
            wax: 140e-9,
            lpd: l,
            lpu: l,
            lax: l,
        }
    }

    /// Cell β ratio (pull-down strength / access strength).
    pub fn beta(&self) -> f64 {
        (self.wpd / self.lpd) / (self.wax / self.lax)
    }

    /// Total active gate area of the six transistors \[m²\] — the area cost
    /// used by the sizing optimizer.
    pub fn area(&self) -> f64 {
        2.0 * (self.wpd * self.lpd + self.wpu * self.lpu + self.wax * self.lax)
    }

    /// Validates that every dimension is positive and finite.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending dimension.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("wpd", self.wpd),
            ("wpu", self.wpu),
            ("wax", self.wax),
            ("lpd", self.lpd),
            ("lpu", self.lpu),
            ("lax", self.lax),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(format!("cell dimension {name} must be positive, got {v}"));
            }
        }
        Ok(())
    }
}

/// Operating conditions for a cell analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Conditions {
    /// Cell supply \[V\].
    pub vdd: f64,
    /// NMOS body voltage \[V\]: negative = reverse body bias, positive =
    /// forward body bias (the paper applies body bias to NMOS only).
    pub body_bias: f64,
    /// Source-line voltage \[V\] (raised in standby by the self-adaptive
    /// source-bias scheme; 0 in active mode).
    pub vsb: f64,
    /// Temperature \[K\].
    pub temp_k: f64,
}

impl Conditions {
    /// Active-mode conditions at the technology's nominal corner.
    pub fn active(tech: &Technology) -> Self {
        Self {
            vdd: tech.vdd(),
            body_bias: 0.0,
            vsb: 0.0,
            temp_k: tech.temp_k(),
        }
    }

    /// Standby conditions with a raised source bias.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= vsb < vdd`.
    pub fn standby(tech: &Technology, vsb: f64) -> Self {
        assert!(
            (0.0..tech.vdd()).contains(&vsb),
            "source bias {vsb} outside [0, vdd)"
        );
        Self {
            vdd: tech.vdd(),
            body_bias: 0.0,
            vsb,
            temp_k: tech.temp_k(),
        }
    }

    /// Returns a copy with the given NMOS body bias.
    pub fn with_body_bias(mut self, vbb: f64) -> Self {
        assert!(vbb.is_finite(), "non-finite body bias");
        self.body_bias = vbb;
        self
    }

    /// Returns a copy at a different temperature.
    pub fn with_temperature(mut self, temp_k: f64) -> Self {
        assert!(temp_k > 0.0 && temp_k.is_finite(), "invalid temperature");
        self.temp_k = temp_k;
        self
    }
}

/// A 6T SRAM cell instance: technology, sizing, and per-transistor
/// threshold deviations.
#[derive(Debug, Clone, PartialEq)]
pub struct SramCell {
    tech: Technology,
    sizing: CellSizing,
    /// Per-transistor ΔVt in canonical [`Xtor`] order \[V\]
    /// (inter-die shift + RDF sample, summed).
    dvt: [f64; 6],
}

impl SramCell {
    /// A nominal cell (no deviations) with default sizing.
    pub fn nominal(tech: &Technology) -> Self {
        Self::with_sizing(tech, CellSizing::default_for(tech))
    }

    /// A nominal cell with explicit sizing.
    ///
    /// # Panics
    ///
    /// Panics if the sizing fails validation.
    pub fn with_sizing(tech: &Technology, sizing: CellSizing) -> Self {
        sizing.validate().expect("invalid cell sizing");
        Self {
            tech: tech.clone(),
            sizing,
            dvt: [0.0; 6],
        }
    }

    /// The technology card.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// The cell sizing.
    pub fn sizing(&self) -> &CellSizing {
        &self.sizing
    }

    /// Per-transistor deviations in canonical order.
    pub fn deviations(&self) -> &[f64; 6] {
        &self.dvt
    }

    /// Sets the six per-transistor deviations at once.
    pub fn set_deviations(&mut self, dvt: [f64; 6]) {
        assert!(dvt.iter().all(|v| v.is_finite()), "non-finite deviation");
        self.dvt = dvt;
    }

    /// Returns a copy with an inter-die shift added to the **NMOS**
    /// transistors (pull-downs and access devices).
    ///
    /// The die corner is modelled as an NMOS-Vt corner: every mechanism
    /// the paper attributes to the inter-die shift — read disturb, access
    /// drive, `NL` retention leakage, and the leakage signature sensed by
    /// the monitor — lives in the NMOS devices, and the compensating knob
    /// (adaptive body bias) is applied to NMOS only. Tying the PMOS to the
    /// same shift would cancel the hold/read tails the paper observes
    /// (a stronger `PL` masks `NL` leakage exactly when it matters).
    pub fn with_inter_die_shift(mut self, shift: f64) -> Self {
        assert!(shift.is_finite(), "non-finite shift");
        for x in Xtor::ALL {
            if x.is_nmos() {
                self.dvt[x.index()] += shift;
            }
        }
        self
    }

    /// Returns the left/right mirrored cell (deviations swapped), i.e. the
    /// same physical cell storing the opposite value.
    pub fn mirrored(&self) -> Self {
        let d = &self.dvt;
        let mut out = self.clone();
        out.dvt = [d[1], d[0], d[3], d[2], d[5], d[4]];
        out
    }

    /// RDF sigma of one transistor (Pelgrom law at its geometry).
    pub fn sigma_vt(&self, which: Xtor) -> f64 {
        self.device(which).sigma_vt()
    }

    /// Builds the device instance for one transistor, deviations applied.
    pub fn device(&self, which: Xtor) -> Mosfet {
        let s = &self.sizing;
        let base = match which {
            Xtor::Nl | Xtor::Nr => Mosfet::nmos(&self.tech, s.wpd, s.lpd),
            Xtor::Pl | Xtor::Pr => Mosfet::pmos(&self.tech, s.wpu, s.lpu),
            Xtor::Axl | Xtor::Axr => Mosfet::nmos(&self.tech, s.wax, s.lax),
        };
        base.with_delta_vt(self.dvt[which.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::predictive_70nm()
    }

    #[test]
    fn canonical_order_round_trips() {
        for (i, x) in Xtor::ALL.iter().enumerate() {
            assert_eq!(x.index(), i);
        }
    }

    #[test]
    fn nmos_classification() {
        assert!(Xtor::Nl.is_nmos());
        assert!(Xtor::Axr.is_nmos());
        assert!(!Xtor::Pl.is_nmos());
        assert!(!Xtor::Pr.is_nmos());
    }

    #[test]
    fn default_sizing_ratios() {
        let s = CellSizing::default_for(&tech());
        assert!(s.beta() > 1.0, "pull-down must beat access");
        assert!(s.wpu < s.wax, "pull-up must be weakest");
        s.validate().unwrap();
        assert!(s.area() > 0.0);
    }

    #[test]
    fn sizing_validation_catches_zero() {
        let mut s = CellSizing::default_for(&tech());
        s.wpd = 0.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn inter_die_shift_moves_nmos_only() {
        let cell = SramCell::nominal(&tech()).with_inter_die_shift(0.05);
        for x in Xtor::ALL {
            let expected = if x.is_nmos() { 0.05 } else { 0.0 };
            assert_eq!(cell.deviations()[x.index()], expected, "{x:?}");
        }
    }

    #[test]
    fn mirrored_swaps_pairs() {
        let mut cell = SramCell::nominal(&tech());
        cell.set_deviations([1.0, 2.0, 3.0, 4.0, 5.0, 6.0].map(|x| x * 1e-3));
        let m = cell.mirrored();
        assert_eq!(m.deviations(), &[2e-3, 1e-3, 4e-3, 3e-3, 6e-3, 5e-3]);
        // Mirroring twice is the identity.
        assert_eq!(m.mirrored().deviations(), cell.deviations());
    }

    #[test]
    fn device_carries_deviation() {
        let mut cell = SramCell::nominal(&tech());
        cell.set_deviations([0.01, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(cell.device(Xtor::Nl).delta_vt(), 0.01);
        assert_eq!(cell.device(Xtor::Nr).delta_vt(), 0.0);
    }

    #[test]
    fn conditions_constructors() {
        let t = tech();
        let a = Conditions::active(&t);
        assert_eq!(a.vsb, 0.0);
        assert_eq!(a.vdd, t.vdd());
        let s = Conditions::standby(&t, 0.2).with_body_bias(-0.3);
        assert_eq!(s.vsb, 0.2);
        assert_eq!(s.body_bias, -0.3);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn standby_rejects_vsb_at_vdd() {
        let t = tech();
        let _ = Conditions::standby(&t, t.vdd());
    }

    #[test]
    fn access_devices_use_access_width() {
        let cell = SramCell::nominal(&tech());
        assert_eq!(cell.device(Xtor::Axl).w(), cell.sizing().wax);
        assert_eq!(cell.device(Xtor::Nl).w(), cell.sizing().wpd);
        assert_eq!(cell.device(Xtor::Pl).w(), cell.sizing().wpu);
    }
}
