//! Digital-to-analog converter model for the source-bias generator.
//!
//! The paper's Fig. 7 generates the source bias by converting a digital
//! counter value to an analog voltage. The model here is an n-bit string
//! DAC with optional integral nonlinearity, so the calibration experiments
//! can sweep the resolution (the DAC ablation of DESIGN.md).

use serde::{Deserialize, Serialize};

/// An n-bit DAC mapping codes `0..2^bits − 1` onto `[0, vref]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dac {
    bits: u8,
    vref: f64,
    /// Peak integral nonlinearity as a fraction of `vref` (sinusoidal
    /// profile; 0 = ideal).
    inl_frac: f64,
}

impl Dac {
    /// Creates an ideal DAC.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 16` and `vref > 0`.
    pub fn new(bits: u8, vref: f64) -> Self {
        assert!((1..=16).contains(&bits), "unsupported DAC width {bits}");
        assert!(vref > 0.0 && vref.is_finite(), "invalid vref {vref}");
        Self {
            bits,
            vref,
            inl_frac: 0.0,
        }
    }

    /// Adds a sinusoidal integral-nonlinearity profile with the given peak
    /// (fraction of `vref`).
    ///
    /// # Panics
    ///
    /// Panics if the fraction is negative or ≥ 0.5.
    pub fn with_inl(mut self, inl_frac: f64) -> Self {
        assert!(
            (0.0..0.5).contains(&inl_frac),
            "INL fraction out of range: {inl_frac}"
        );
        self.inl_frac = inl_frac;
        self
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Full-scale reference \[V\].
    pub fn vref(&self) -> f64 {
        self.vref
    }

    /// Number of codes.
    pub fn codes(&self) -> u32 {
        1u32 << self.bits
    }

    /// Ideal step size (1 LSB) \[V\].
    pub fn lsb(&self) -> f64 {
        self.vref / (self.codes() - 1) as f64
    }

    /// Output voltage for a code.
    ///
    /// # Panics
    ///
    /// Panics if the code exceeds the DAC range.
    pub fn voltage(&self, code: u32) -> f64 {
        assert!(code < self.codes(), "code {code} out of range");
        let frac = code as f64 / (self.codes() - 1) as f64;
        let ideal = frac * self.vref;
        let inl = self.inl_frac * self.vref * (std::f64::consts::PI * frac).sin();
        (ideal + inl).clamp(0.0, self.vref)
    }

    /// Largest code whose output does not exceed `volts` (the quantization
    /// the calibration loop lives with).
    pub fn quantize_down(&self, volts: f64) -> u32 {
        let mut best = 0;
        for code in 0..self.codes() {
            if self.voltage(code) <= volts {
                best = code;
            // pvtm-lint: allow(no-float-eq) inl_frac is a configured constant; exact zero selects the ideal-DAC fast path
            } else if self.inl_frac == 0.0 {
                break;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_dac_endpoints_and_lsb() {
        let d = Dac::new(5, 0.8);
        assert_eq!(d.voltage(0), 0.0);
        assert!((d.voltage(31) - 0.8).abs() < 1e-12);
        assert!((d.lsb() - 0.8 / 31.0).abs() < 1e-12);
        assert_eq!(d.codes(), 32);
    }

    #[test]
    fn ideal_dac_is_monotone_and_uniform() {
        let d = Dac::new(6, 1.0);
        let mut prev = -1.0;
        for code in 0..d.codes() {
            let v = d.voltage(code);
            assert!(v > prev);
            prev = v;
        }
        let step = d.voltage(10) - d.voltage(9);
        assert!((step - d.lsb()).abs() < 1e-12);
    }

    #[test]
    fn inl_bends_midscale_but_keeps_endpoints() {
        let d = Dac::new(6, 1.0).with_inl(0.02);
        assert_eq!(d.voltage(0), 0.0);
        assert!((d.voltage(63) - 1.0).abs() < 1e-9);
        let mid = d.voltage(32);
        let ideal_mid = 32.0 / 63.0;
        assert!(
            (mid - ideal_mid) > 0.01,
            "midscale must bend up: {mid} vs {ideal_mid}"
        );
    }

    #[test]
    fn quantize_down_never_overshoots() {
        let d = Dac::new(5, 0.8);
        for i in 0..40 {
            let target = i as f64 * 0.02;
            let code = d.quantize_down(target);
            assert!(d.voltage(code) <= target + 1e-12);
            if code + 1 < d.codes() {
                assert!(d.voltage(code + 1) > target);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_code_overflow() {
        let d = Dac::new(3, 1.0);
        let _ = d.voltage(8);
    }
}
