//! Behavioural memory array with fault injection.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A functional fault attached to one cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The cell always reads the given value; writes are ignored.
    StuckAt(bool),
    /// The cell cannot make a 0 → 1 transition (writes of 1 over a stored 0
    /// are lost); 1 → 0 still works.
    TransitionUp,
    /// The cell cannot make a 1 → 0 transition.
    TransitionDown,
    /// Inversion coupling: whenever the aggressor cell *transitions*, this
    /// victim cell inverts.
    CouplingInv {
        /// Row of the aggressor cell.
        agg_row: usize,
        /// Column of the aggressor cell.
        agg_col: usize,
    },
    /// Retention (hold) fault: a stored 1 decays to 0 whenever the array's
    /// source-bias voltage is at or above `min_vsb`. This is the paper's
    /// hold-failure fault class — latent at low source bias, exposed as the
    /// calibration loop raises it.
    Retention {
        /// Lowest source bias \[V\] at which the cell loses its data.
        min_vsb: f64,
    },
    /// Address-decoder fault: accesses to this cell are redirected to
    /// another cell (the addressed cell is never actually reached).
    AddressAlias {
        /// Row actually accessed.
        to_row: usize,
        /// Column actually accessed.
        to_col: usize,
    },
}

/// A fault instance: location plus kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fault {
    /// Cell row.
    pub row: usize,
    /// Cell column.
    pub col: usize,
    /// Fault behaviour.
    pub kind: FaultKind,
}

/// A behavioural memory array (one bit per cell) with injected faults and a
/// source-bias state that gates retention faults.
#[derive(Debug, Clone)]
pub struct MemoryModel {
    rows: usize,
    cols: usize,
    data: Vec<bool>,
    faults: BTreeMap<(usize, usize), Vec<FaultKind>>,
    /// victim lists per aggressor cell.
    coupling: BTreeMap<(usize, usize), Vec<(usize, usize)>>,
    vsb: f64,
    reads: u64,
    writes: u64,
}

impl MemoryModel {
    /// Creates a fault-free array initialized to all zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "memory must have rows and columns");
        Self {
            rows,
            cols,
            data: vec![false; rows * cols],
            faults: BTreeMap::new(),
            coupling: BTreeMap::new(),
            vsb: 0.0,
            reads: 0,
            writes: 0,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total cells.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Reads performed so far.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Writes performed so far.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Injects a fault.
    ///
    /// # Panics
    ///
    /// Panics if the fault (or its aggressor) is out of bounds.
    pub fn inject(&mut self, fault: Fault) {
        assert!(
            fault.row < self.rows && fault.col < self.cols,
            "fault location ({}, {}) out of bounds",
            fault.row,
            fault.col
        );
        if let FaultKind::CouplingInv { agg_row, agg_col } = fault.kind {
            assert!(
                agg_row < self.rows && agg_col < self.cols,
                "aggressor ({agg_row}, {agg_col}) out of bounds"
            );
            self.coupling
                .entry((agg_row, agg_col))
                .or_default()
                .push((fault.row, fault.col));
        }
        if let FaultKind::AddressAlias { to_row, to_col } = fault.kind {
            assert!(
                to_row < self.rows && to_col < self.cols,
                "alias target ({to_row}, {to_col}) out of bounds"
            );
            assert!(
                (to_row, to_col) != (fault.row, fault.col),
                "alias must point elsewhere"
            );
        }
        self.faults
            .entry((fault.row, fault.col))
            .or_default()
            .push(fault.kind);
    }

    /// Number of injected faults.
    pub fn fault_count(&self) -> usize {
        self.faults.values().map(Vec::len).sum()
    }

    /// Sets the source-bias voltage (activates retention faults whose
    /// threshold is at or below it). Raising the bias immediately decays
    /// the stored 1 of every exposed retention-faulty cell.
    pub fn set_vsb(&mut self, vsb: f64) {
        assert!(vsb.is_finite() && vsb >= 0.0, "invalid vsb {vsb}");
        self.vsb = vsb;
        // Standby decay of exposed cells.
        let decayed: Vec<(usize, usize)> = self
            .faults
            .iter()
            .filter(|((_, _), kinds)| {
                kinds
                    .iter()
                    .any(|k| matches!(k, FaultKind::Retention { min_vsb } if vsb >= *min_vsb))
            })
            .map(|(&loc, _)| loc)
            .collect();
        for (r, c) in decayed {
            self.data[r * self.cols + c] = false;
        }
    }

    /// Current source-bias voltage.
    pub fn vsb(&self) -> f64 {
        self.vsb
    }

    /// Raw index of a cell.
    #[inline]
    fn idx(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Resolves address-decoder aliasing: the cell actually accessed.
    fn resolve(&self, row: usize, col: usize) -> (usize, usize) {
        if let Some(kinds) = self.faults.get(&(row, col)) {
            for k in kinds {
                if let FaultKind::AddressAlias { to_row, to_col } = k {
                    return (*to_row, *to_col);
                }
            }
        }
        (row, col)
    }

    /// Writes one bit.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds address.
    pub fn write(&mut self, row: usize, col: usize, value: bool) {
        assert!(row < self.rows && col < self.cols, "address out of bounds");
        self.writes += 1;
        let (row, col) = self.resolve(row, col);
        let old = self.data[self.idx(row, col)];
        let mut new = value;
        if let Some(kinds) = self.faults.get(&(row, col)) {
            for k in kinds {
                match k {
                    FaultKind::StuckAt(v) => new = *v,
                    FaultKind::TransitionUp if !old && value => new = old,
                    FaultKind::TransitionDown if old && !value => new = old,
                    _ => {}
                }
            }
        }
        let i = self.idx(row, col);
        let transitioned = self.data[i] != new;
        self.data[i] = new;
        // Retention faults swallow a freshly written 1 at high bias.
        if new && self.retention_exposed(row, col) {
            self.data[i] = false;
        }
        if transitioned {
            self.fire_coupling(row, col);
        }
    }

    /// Reads one bit (fault behaviour applied).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds address.
    pub fn read(&mut self, row: usize, col: usize) -> bool {
        assert!(row < self.rows && col < self.cols, "address out of bounds");
        self.reads += 1;
        let (row, col) = self.resolve(row, col);
        let i = self.idx(row, col);
        if self.data[i] && self.retention_exposed(row, col) {
            self.data[i] = false;
        }
        let mut v = self.data[i];
        if let Some(kinds) = self.faults.get(&(row, col)) {
            for k in kinds {
                if let FaultKind::StuckAt(s) = k {
                    v = *s;
                }
            }
        }
        v
    }

    fn retention_exposed(&self, row: usize, col: usize) -> bool {
        self.faults
            .get(&(row, col))
            .map(|kinds| {
                kinds
                    .iter()
                    .any(|k| matches!(k, FaultKind::Retention { min_vsb } if self.vsb >= *min_vsb))
            })
            .unwrap_or(false)
    }

    fn fire_coupling(&mut self, row: usize, col: usize) {
        if let Some(victims) = self.coupling.get(&(row, col)).cloned() {
            for (vr, vc) in victims {
                let i = self.idx(vr, vc);
                self.data[i] = !self.data[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_memory_round_trips() {
        let mut m = MemoryModel::new(4, 4);
        m.write(2, 3, true);
        assert!(m.read(2, 3));
        m.write(2, 3, false);
        assert!(!m.read(2, 3));
        assert_eq!(m.write_count(), 2);
        assert_eq!(m.read_count(), 2);
    }

    #[test]
    fn stuck_at_ignores_writes() {
        let mut m = MemoryModel::new(2, 2);
        m.inject(Fault {
            row: 0,
            col: 0,
            kind: FaultKind::StuckAt(true),
        });
        m.write(0, 0, false);
        assert!(m.read(0, 0));
    }

    #[test]
    fn transition_up_blocks_only_rising_writes() {
        let mut m = MemoryModel::new(2, 2);
        m.inject(Fault {
            row: 1,
            col: 1,
            kind: FaultKind::TransitionUp,
        });
        m.write(1, 1, true); // 0 -> 1 blocked
        assert!(!m.read(1, 1));
        // A cell that is already 1 can still be written to 0 ... first
        // force it to 1 through the data path? Not possible for this fault;
        // verify 1 -> 0 path with TransitionDown on another cell instead.
        m.inject(Fault {
            row: 0,
            col: 0,
            kind: FaultKind::TransitionDown,
        });
        m.write(0, 0, true);
        assert!(m.read(0, 0));
        m.write(0, 0, false); // 1 -> 0 blocked
        assert!(m.read(0, 0));
    }

    #[test]
    fn coupling_inverts_victim_on_aggressor_transition() {
        let mut m = MemoryModel::new(2, 2);
        m.inject(Fault {
            row: 0,
            col: 1,
            kind: FaultKind::CouplingInv {
                agg_row: 0,
                agg_col: 0,
            },
        });
        m.write(0, 1, false);
        m.write(0, 0, true); // aggressor transitions: victim inverts
        assert!(m.read(0, 1));
        m.write(0, 0, true); // no transition: victim unchanged
        assert!(m.read(0, 1));
    }

    #[test]
    fn retention_fault_gated_by_vsb() {
        let mut m = MemoryModel::new(2, 2);
        m.inject(Fault {
            row: 1,
            col: 0,
            kind: FaultKind::Retention { min_vsb: 0.3 },
        });
        m.write(1, 0, true);
        assert!(m.read(1, 0), "below threshold the cell holds");
        m.set_vsb(0.2);
        assert!(m.read(1, 0), "still below threshold");
        m.set_vsb(0.3);
        assert!(!m.read(1, 0), "at threshold the 1 decays");
        // Writing a 1 at high bias is immediately lost.
        m.write(1, 0, true);
        assert!(!m.read(1, 0));
        // Back at low bias the cell works again.
        m.set_vsb(0.0);
        m.write(1, 0, true);
        assert!(m.read(1, 0));
    }

    #[test]
    fn address_alias_redirects_accesses() {
        let mut m = MemoryModel::new(4, 4);
        m.inject(Fault {
            row: 0,
            col: 0,
            kind: FaultKind::AddressAlias {
                to_row: 2,
                to_col: 2,
            },
        });
        m.write(0, 0, true);
        // The addressed cell was never written; the alias target was.
        assert!(m.read(2, 2));
        assert!(m.read(0, 0), "reads of (0,0) see the alias target");
        m.write(2, 2, false);
        assert!(!m.read(0, 0));
    }

    #[test]
    fn mats_plus_detects_address_faults() {
        use crate::march::MarchTest;
        let mut m = MemoryModel::new(4, 4);
        m.inject(Fault {
            row: 1,
            col: 1,
            kind: FaultKind::AddressAlias {
                to_row: 3,
                to_col: 3,
            },
        });
        let r = MarchTest::mats_plus().run(&mut m);
        assert!(!r.passed(), "MATS+ must catch decoder aliasing");
    }

    #[test]
    #[should_panic(expected = "alias must point elsewhere")]
    fn alias_to_self_rejected() {
        let mut m = MemoryModel::new(2, 2);
        m.inject(Fault {
            row: 0,
            col: 0,
            kind: FaultKind::AddressAlias {
                to_row: 0,
                to_col: 0,
            },
        });
    }

    #[test]
    fn fault_count_accumulates() {
        let mut m = MemoryModel::new(4, 4);
        assert_eq!(m.fault_count(), 0);
        m.inject(Fault {
            row: 0,
            col: 0,
            kind: FaultKind::StuckAt(false),
        });
        m.inject(Fault {
            row: 0,
            col: 0,
            kind: FaultKind::TransitionUp,
        });
        assert_eq!(m.fault_count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_bounds_fault() {
        let mut m = MemoryModel::new(2, 2);
        m.inject(Fault {
            row: 5,
            col: 0,
            kind: FaultKind::StuckAt(false),
        });
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_bounds_read() {
        let mut m = MemoryModel::new(2, 2);
        let _ = m.read(2, 0);
    }
}
