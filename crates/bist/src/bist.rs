//! BIST controller: March execution plus the paper's per-column fault
//! bookkeeping (Fig. 7's "register bank and counter").

use serde::{Deserialize, Serialize};

use crate::march::{MarchResult, MarchTest};
use crate::memory::MemoryModel;

/// The controller. Stateless between runs; each run produces a
/// [`BistReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BistController;

impl BistController {
    /// Creates a controller.
    pub fn new() -> Self {
        Self
    }

    /// Runs a March test and folds the failures into per-column flags,
    /// mirroring the hardware: one register bit per column, set when any
    /// row of that column misbehaves, plus a counter of set registers.
    pub fn run(&self, test: &MarchTest, memory: &mut MemoryModel) -> BistReport {
        let result = test.run(memory);
        let mut column_flags = vec![false; memory.cols()];
        for f in &result.failures {
            column_flags[f.col] = true;
        }
        BistReport {
            column_flags,
            result,
        }
    }
}

/// Outcome of one BIST run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BistReport {
    column_flags: Vec<bool>,
    result: MarchResult,
}

impl BistReport {
    /// Number of faulty columns (the counter of the paper's Fig. 7).
    pub fn faulty_columns(&self) -> usize {
        self.column_flags.iter().filter(|&&f| f).count()
    }

    /// Register-bank flag of one column.
    ///
    /// # Panics
    ///
    /// Panics if the column is out of range.
    pub fn column_flag(&self, col: usize) -> bool {
        self.column_flags[col]
    }

    /// The raw March result.
    pub fn march_result(&self) -> &MarchResult {
        &self.result
    }

    /// True when the array passed (no faulty column).
    pub fn passed(&self) -> bool {
        self.faulty_columns() == 0
    }

    /// True when the array is repairable with the given number of spare
    /// columns — the comparison against `NRC` in the paper's calibration
    /// loop.
    pub fn repairable_with(&self, spare_columns: usize) -> bool {
        self.faulty_columns() <= spare_columns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{Fault, FaultKind};

    #[test]
    fn clean_array_passes() {
        let mut m = MemoryModel::new(8, 8);
        let report = BistController::new().run(&MarchTest::march_c_minus(), &mut m);
        assert!(report.passed());
        assert_eq!(report.faulty_columns(), 0);
        assert!(report.repairable_with(0));
    }

    #[test]
    fn multiple_faults_in_one_column_count_once() {
        let mut m = MemoryModel::new(8, 8);
        for row in [1, 3, 5] {
            m.inject(Fault {
                row,
                col: 2,
                kind: FaultKind::StuckAt(true),
            });
        }
        let report = BistController::new().run(&MarchTest::march_c_minus(), &mut m);
        assert_eq!(report.faulty_columns(), 1);
        assert!(report.column_flag(2));
        assert!(!report.column_flag(3));
    }

    #[test]
    fn repairability_threshold() {
        let mut m = MemoryModel::new(8, 8);
        for col in [0, 4, 7] {
            m.inject(Fault {
                row: 0,
                col,
                kind: FaultKind::StuckAt(false),
            });
            // StuckAt(false) is only visible when a 1 is expected; ensure
            // the test toggles data — March C- does.
        }
        let report = BistController::new().run(&MarchTest::march_c_minus(), &mut m);
        assert_eq!(report.faulty_columns(), 3);
        assert!(!report.repairable_with(2));
        assert!(report.repairable_with(3));
    }

    #[test]
    fn report_exposes_raw_result() {
        let mut m = MemoryModel::new(4, 4);
        m.inject(Fault {
            row: 1,
            col: 1,
            kind: FaultKind::StuckAt(true),
        });
        let report = BistController::new().run(&MarchTest::mats_plus(), &mut m);
        assert!(!report.march_result().passed());
        assert!(report.march_result().operations > 0);
    }
}
