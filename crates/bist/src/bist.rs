//! BIST controller: March execution plus the paper's per-column fault
//! bookkeeping (Fig. 7's "register bank and counter").

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::march::{MarchResult, MarchTest};
use crate::memory::MemoryModel;

/// Structural errors of a BIST run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BistError {
    /// A March failure named a column outside the register bank: the march
    /// result and the memory organization disagree about the array shape —
    /// a wiring bug in the caller, reported as a structured error instead
    /// of an index panic deep inside the fold.
    ColumnOutOfRange {
        /// Column the failure named.
        col: usize,
        /// Number of columns in the register bank.
        cols: usize,
    },
}

impl fmt::Display for BistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BistError::ColumnOutOfRange { col, cols } => write!(
                f,
                "march failure names column {col} but the register bank has {cols} columns"
            ),
        }
    }
}

impl std::error::Error for BistError {}

/// The controller. Stateless between runs; each run produces a
/// [`BistReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BistController;

impl BistController {
    /// Creates a controller.
    pub fn new() -> Self {
        Self
    }

    /// Runs a March test and folds the failures into per-column flags,
    /// mirroring the hardware: one register bit per column, set when any
    /// row of that column misbehaves, plus a counter of set registers.
    ///
    /// # Errors
    ///
    /// Returns [`BistError::ColumnOutOfRange`] when a march failure names
    /// a column the array does not have — impossible when `test` ran on
    /// `memory` itself, but checked rather than assumed.
    pub fn run(&self, test: &MarchTest, memory: &mut MemoryModel) -> Result<BistReport, BistError> {
        let cols = memory.cols();
        let result = test.run(memory);
        self.fold(result, cols)
    }

    /// Folds an already-computed March result into the per-column register
    /// bank of an array with `cols` columns.
    ///
    /// # Errors
    ///
    /// Returns [`BistError::ColumnOutOfRange`] when a failure's column
    /// index does not fit the register bank.
    pub fn fold(&self, result: MarchResult, cols: usize) -> Result<BistReport, BistError> {
        let mut column_flags = vec![false; cols];
        for f in &result.failures {
            *column_flags
                .get_mut(f.col)
                .ok_or(BistError::ColumnOutOfRange { col: f.col, cols })? = true;
        }
        Ok(BistReport {
            column_flags,
            result,
        })
    }
}

/// Outcome of one BIST run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BistReport {
    column_flags: Vec<bool>,
    result: MarchResult,
}

impl BistReport {
    /// Number of faulty columns (the counter of the paper's Fig. 7).
    pub fn faulty_columns(&self) -> usize {
        self.column_flags.iter().filter(|&&f| f).count()
    }

    /// Register-bank flag of one column.
    ///
    /// # Panics
    ///
    /// Panics if the column is out of range.
    pub fn column_flag(&self, col: usize) -> bool {
        self.column_flags[col]
    }

    /// The raw March result.
    pub fn march_result(&self) -> &MarchResult {
        &self.result
    }

    /// True when the array passed (no faulty column).
    pub fn passed(&self) -> bool {
        self.faulty_columns() == 0
    }

    /// True when the array is repairable with the given number of spare
    /// columns — the comparison against `NRC` in the paper's calibration
    /// loop.
    pub fn repairable_with(&self, spare_columns: usize) -> bool {
        self.faulty_columns() <= spare_columns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{Fault, FaultKind};

    #[test]
    fn clean_array_passes() {
        let mut m = MemoryModel::new(8, 8);
        let report = BistController::new()
            .run(&MarchTest::march_c_minus(), &mut m)
            .unwrap();
        assert!(report.passed());
        assert_eq!(report.faulty_columns(), 0);
        assert!(report.repairable_with(0));
    }

    #[test]
    fn multiple_faults_in_one_column_count_once() {
        let mut m = MemoryModel::new(8, 8);
        for row in [1, 3, 5] {
            m.inject(Fault {
                row,
                col: 2,
                kind: FaultKind::StuckAt(true),
            });
        }
        let report = BistController::new()
            .run(&MarchTest::march_c_minus(), &mut m)
            .unwrap();
        assert_eq!(report.faulty_columns(), 1);
        assert!(report.column_flag(2));
        assert!(!report.column_flag(3));
    }

    #[test]
    fn repairability_threshold() {
        let mut m = MemoryModel::new(8, 8);
        for col in [0, 4, 7] {
            m.inject(Fault {
                row: 0,
                col,
                kind: FaultKind::StuckAt(false),
            });
            // StuckAt(false) is only visible when a 1 is expected; ensure
            // the test toggles data — March C- does.
        }
        let report = BistController::new()
            .run(&MarchTest::march_c_minus(), &mut m)
            .unwrap();
        assert_eq!(report.faulty_columns(), 3);
        assert!(!report.repairable_with(2));
        assert!(report.repairable_with(3));
    }

    #[test]
    fn report_exposes_raw_result() {
        let mut m = MemoryModel::new(4, 4);
        m.inject(Fault {
            row: 1,
            col: 1,
            kind: FaultKind::StuckAt(true),
        });
        let report = BistController::new()
            .run(&MarchTest::mats_plus(), &mut m)
            .unwrap();
        assert!(!report.march_result().passed());
        assert!(report.march_result().operations > 0);
    }

    #[test]
    fn out_of_range_column_is_a_structured_error() {
        use crate::march::{MarchFailure, MarchResult};
        let result = MarchResult {
            failures: vec![MarchFailure {
                row: 0,
                col: 99,
                element: 0,
                op: 0,
            }],
            operations: 1,
        };
        let err = BistController::new().fold(result, 8).unwrap_err();
        assert_eq!(err, BistError::ColumnOutOfRange { col: 99, cols: 8 });
        assert!(err.to_string().contains("column 99"));
    }
}
