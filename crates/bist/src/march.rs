//! March test algorithms.
//!
//! A March test is a sequence of *elements*; each element walks every
//! address in a prescribed order applying a fixed sequence of read/write
//! operations. The classics provided here cover the fault classes of the
//! behavioural memory model: MATS+ (stuck-at), March C− (stuck-at,
//! transition, coupling) and March A (linked coupling faults).

use serde::{Deserialize, Serialize};

use crate::memory::MemoryModel;

/// Address traversal order of a March element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Order {
    /// Ascending addresses.
    Up,
    /// Descending addresses.
    Down,
    /// Any order (implemented as ascending).
    Either,
}

/// A single read/write operation within a March element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Read, expecting 0.
    R0,
    /// Read, expecting 1.
    R1,
    /// Write 0.
    W0,
    /// Write 1.
    W1,
}

/// One March element: an address order plus an operation sequence applied
/// at every address.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarchElement {
    /// Traversal order.
    pub order: Order,
    /// Operations applied per address.
    pub ops: Vec<Op>,
}

impl MarchElement {
    /// Creates an element.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn new(order: Order, ops: Vec<Op>) -> Self {
        assert!(!ops.is_empty(), "march element needs operations");
        Self { order, ops }
    }
}

/// A complete March test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarchTest {
    name: String,
    elements: Vec<MarchElement>,
}

/// One detected mismatch: address, element and operation indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarchFailure {
    /// Failing row.
    pub row: usize,
    /// Failing column.
    pub col: usize,
    /// Index of the March element that caught it.
    pub element: usize,
    /// Index of the operation within the element.
    pub op: usize,
}

/// Result of running a March test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarchResult {
    /// All read mismatches, in detection order.
    pub failures: Vec<MarchFailure>,
    /// Total operations applied.
    pub operations: u64,
}

impl MarchResult {
    /// True when no mismatch was detected.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

impl MarchTest {
    /// Creates a test from elements.
    ///
    /// # Panics
    ///
    /// Panics if `elements` is empty.
    pub fn new(name: &str, elements: Vec<MarchElement>) -> Self {
        assert!(!elements.is_empty(), "march test needs elements");
        Self {
            name: name.to_string(),
            elements,
        }
    }

    /// Test name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The elements.
    pub fn elements(&self) -> &[MarchElement] {
        &self.elements
    }

    /// Operations per cell (the test's complexity, e.g. 10 for March C−).
    pub fn ops_per_cell(&self) -> usize {
        self.elements.iter().map(|e| e.ops.len()).sum()
    }

    /// MATS+: `⇕(w0); ⇑(r0,w1); ⇓(r1,w0)` — 5N, detects stuck-at and
    /// address-decoder faults.
    pub fn mats_plus() -> Self {
        Self::new(
            "MATS+",
            vec![
                MarchElement::new(Order::Either, vec![Op::W0]),
                MarchElement::new(Order::Up, vec![Op::R0, Op::W1]),
                MarchElement::new(Order::Down, vec![Op::R1, Op::W0]),
            ],
        )
    }

    /// March C−: `⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)` —
    /// 10N, detects stuck-at, transition and unlinked coupling faults. The
    /// workhorse of the paper's Fig. 7 BIST box.
    pub fn march_c_minus() -> Self {
        Self::new(
            "March C-",
            vec![
                MarchElement::new(Order::Either, vec![Op::W0]),
                MarchElement::new(Order::Up, vec![Op::R0, Op::W1]),
                MarchElement::new(Order::Up, vec![Op::R1, Op::W0]),
                MarchElement::new(Order::Down, vec![Op::R0, Op::W1]),
                MarchElement::new(Order::Down, vec![Op::R1, Op::W0]),
                MarchElement::new(Order::Either, vec![Op::R0]),
            ],
        )
    }

    /// March A: `⇕(w0); ⇑(r0,w1,w0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0);
    /// ⇓(r0,w1,w0)` — 15N, detects linked coupling faults.
    pub fn march_a() -> Self {
        Self::new(
            "March A",
            vec![
                MarchElement::new(Order::Either, vec![Op::W0]),
                MarchElement::new(Order::Up, vec![Op::R0, Op::W1, Op::W0, Op::W1]),
                MarchElement::new(Order::Up, vec![Op::R1, Op::W0, Op::W1]),
                MarchElement::new(Order::Down, vec![Op::R1, Op::W0, Op::W1, Op::W0]),
                MarchElement::new(Order::Down, vec![Op::R0, Op::W1, Op::W0]),
            ],
        )
    }

    /// March SS: the 22N simple-static-fault test of Hamdioui et al. —
    /// `⇕(w0); ⇑(r0,r0,w0,r0,w1); ⇑(r1,r1,w1,r1,w0); ⇓(r0,r0,w0,r0,w1);
    /// ⇓(r1,r1,w1,r1,w0); ⇕(r0)`. Detects all simple static faults
    /// including write-disturb and deceptive read-destructive faults.
    pub fn march_ss() -> Self {
        Self::new(
            "March SS",
            vec![
                MarchElement::new(Order::Either, vec![Op::W0]),
                MarchElement::new(Order::Up, vec![Op::R0, Op::R0, Op::W0, Op::R0, Op::W1]),
                MarchElement::new(Order::Up, vec![Op::R1, Op::R1, Op::W1, Op::R1, Op::W0]),
                MarchElement::new(Order::Down, vec![Op::R0, Op::R0, Op::W0, Op::R0, Op::W1]),
                MarchElement::new(Order::Down, vec![Op::R1, Op::R1, Op::W1, Op::R1, Op::W0]),
                MarchElement::new(Order::Either, vec![Op::R0]),
            ],
        )
    }

    /// Runs the test on a memory, returning every read mismatch.
    pub fn run(&self, memory: &mut MemoryModel) -> MarchResult {
        let rows = memory.rows();
        let cols = memory.cols();
        let n = rows * cols;
        let mut failures = Vec::new();
        let mut operations = 0u64;
        for (ei, element) in self.elements.iter().enumerate() {
            let addresses: Box<dyn Iterator<Item = usize>> = match element.order {
                Order::Up | Order::Either => Box::new(0..n),
                Order::Down => Box::new((0..n).rev()),
            };
            for addr in addresses {
                let (row, col) = (addr / cols, addr % cols);
                for (oi, op) in element.ops.iter().enumerate() {
                    operations += 1;
                    match op {
                        Op::W0 => memory.write(row, col, false),
                        Op::W1 => memory.write(row, col, true),
                        Op::R0 | Op::R1 => {
                            let expected = matches!(op, Op::R1);
                            if memory.read(row, col) != expected {
                                failures.push(MarchFailure {
                                    row,
                                    col,
                                    element: ei,
                                    op: oi,
                                });
                            }
                        }
                    }
                }
            }
        }
        MarchResult {
            failures,
            operations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{Fault, FaultKind};

    #[test]
    fn clean_memory_passes_every_test() {
        for test in [
            MarchTest::mats_plus(),
            MarchTest::march_c_minus(),
            MarchTest::march_a(),
        ] {
            let mut m = MemoryModel::new(8, 8);
            let r = test.run(&mut m);
            assert!(r.passed(), "{} reported phantom failures", test.name());
            assert_eq!(
                r.operations,
                (test.ops_per_cell() * 64) as u64,
                "{} operation count",
                test.name()
            );
        }
    }

    #[test]
    fn ops_per_cell_match_literature() {
        assert_eq!(MarchTest::mats_plus().ops_per_cell(), 5);
        assert_eq!(MarchTest::march_c_minus().ops_per_cell(), 10);
        assert_eq!(MarchTest::march_a().ops_per_cell(), 15);
        assert_eq!(MarchTest::march_ss().ops_per_cell(), 22);
    }

    #[test]
    fn march_ss_passes_clean_and_catches_stuck_at() {
        let mut clean = MemoryModel::new(6, 6);
        assert!(MarchTest::march_ss().run(&mut clean).passed());
        let mut m = MemoryModel::new(6, 6);
        m.inject(Fault {
            row: 5,
            col: 0,
            kind: FaultKind::StuckAt(true),
        });
        assert!(!MarchTest::march_ss().run(&mut m).passed());
    }

    #[test]
    fn march_c_detects_every_stuck_at() {
        for value in [false, true] {
            let mut m = MemoryModel::new(4, 4);
            m.inject(Fault {
                row: 2,
                col: 1,
                kind: FaultKind::StuckAt(value),
            });
            let r = MarchTest::march_c_minus().run(&mut m);
            assert!(!r.passed(), "stuck-at-{value} must be caught");
            assert!(r.failures.iter().all(|f| (f.row, f.col) == (2, 1)));
        }
    }

    #[test]
    fn march_c_detects_transition_faults() {
        for kind in [FaultKind::TransitionUp, FaultKind::TransitionDown] {
            let mut m = MemoryModel::new(4, 4);
            m.inject(Fault {
                row: 0,
                col: 3,
                kind,
            });
            let r = MarchTest::march_c_minus().run(&mut m);
            assert!(!r.passed(), "{kind:?} must be caught");
        }
    }

    #[test]
    fn march_c_detects_coupling() {
        let mut m = MemoryModel::new(4, 4);
        // Victim at a lower address than the aggressor.
        m.inject(Fault {
            row: 0,
            col: 1,
            kind: FaultKind::CouplingInv {
                agg_row: 2,
                agg_col: 2,
            },
        });
        let r = MarchTest::march_c_minus().run(&mut m);
        assert!(!r.passed(), "inversion coupling must be caught");
    }

    #[test]
    fn mats_plus_misses_some_coupling_that_march_c_catches() {
        // Not a universal truth for all fault sites, but for this victim /
        // aggressor pair MATS+ (5N) is blind while March C- (10N) is not —
        // the reason the paper's BIST box carries the stronger algorithm.
        let build = || {
            let mut m = MemoryModel::new(4, 4);
            m.inject(Fault {
                row: 3,
                col: 3,
                kind: FaultKind::CouplingInv {
                    agg_row: 0,
                    agg_col: 0,
                },
            });
            m
        };
        let mats = MarchTest::mats_plus().run(&mut build());
        let mc = MarchTest::march_c_minus().run(&mut build());
        assert!(!mc.passed());
        // MATS+ may or may not catch it; assert only the relative strength.
        assert!(mc.failures.len() >= mats.failures.len());
    }

    #[test]
    fn retention_faults_surface_only_at_high_vsb() {
        let mut m = MemoryModel::new(4, 4);
        m.inject(Fault {
            row: 1,
            col: 2,
            kind: FaultKind::Retention { min_vsb: 0.25 },
        });
        let r_low = MarchTest::march_c_minus().run(&mut m);
        assert!(r_low.passed(), "latent retention fault must pass at vsb=0");
        m.set_vsb(0.3);
        let r_high = MarchTest::march_c_minus().run(&mut m);
        assert!(!r_high.passed(), "exposed retention fault must fail");
        assert!(r_high.failures.iter().all(|f| (f.row, f.col) == (1, 2)));
    }

    #[test]
    fn failures_are_attributed_to_elements() {
        let mut m = MemoryModel::new(2, 2);
        m.inject(Fault {
            row: 0,
            col: 0,
            kind: FaultKind::StuckAt(true),
        });
        let r = MarchTest::march_c_minus().run(&mut m);
        // First catch: element 1 (⇑ r0,w1) reads 1 where 0 expected...
        // element 0 is the w0 sweep which cannot detect anything.
        assert!(r.failures.iter().all(|f| f.element > 0));
    }
}
