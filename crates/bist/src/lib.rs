//! Built-in self-test (BIST) substrate.
//!
//! The paper's self-adaptive source-bias scheme (its Fig. 7) is built
//! around a BIST engine: a March-test generator that exercises the array, a
//! register bank tracking faulty columns, a counter comparing the faulty
//! count against the redundancy budget, and a DAC generating the source
//! bias from a digital code. This crate provides those blocks as reusable,
//! fully testable components:
//!
//! - [`memory`] — a behavioural memory array with injectable faults
//!   (stuck-at, transition, inversion coupling, and *retention* faults that
//!   fire only above a per-cell source-bias level — the physical fault
//!   class the calibration loop hunts),
//! - [`march`] — a March-test DSL with the classic algorithms (MATS+,
//!   March C−, March A),
//! - [`bist`] — the controller: runs a test, latches per-column fault
//!   flags, counts faulty columns,
//! - [`dac`] — an n-bit DAC model with optional nonlinearity.
//!
//! # Example
//!
//! ```
//! use pvtm_bist::memory::{Fault, FaultKind, MemoryModel};
//! use pvtm_bist::march::MarchTest;
//! use pvtm_bist::bist::BistController;
//!
//! let mut mem = MemoryModel::new(8, 8);
//! mem.inject(Fault { row: 3, col: 5, kind: FaultKind::StuckAt(false) });
//! let report = BistController::new()
//!     .run(&MarchTest::march_c_minus(), &mut mem)
//!     .expect("march ran on this memory, so every failure column is in range");
//! assert_eq!(report.faulty_columns(), 1);
//! assert!(report.column_flag(5));
//! ```

pub mod bist;
pub mod dac;
pub mod march;
pub mod memory;

pub use bist::{BistController, BistError, BistReport};
pub use dac::Dac;
pub use march::{MarchElement, MarchTest, Op, Order};
pub use memory::{Fault, FaultKind, MemoryModel};
