//! Deterministic fault injection for the DC solver.
//!
//! CI needs a way to exercise every solver degradation path — the rescue
//! ladder, sample quarantine, the bias-bound accounting — without waiting
//! for a genuinely pathological netlist. This module arms individual
//! solves to fail on demand:
//!
//! - `PVTM_FAULT_RATE` (default `0`, i.e. off) is the per-solve probability
//!   that a solve is injected; `PVTM_FAULT_SEED` (default `0`) decorrelates
//!   the injection pattern from the Monte-Carlo sample draws.
//! - Injection is **deterministic**: each logical solve inside an armed
//!   estimator stream hashes `(fault_seed, stream, solve_index)` through
//!   SplitMix64 — the same mixing the workspace's substream RNG uses — so
//!   the set of injected solves is a pure function of the seeds, identical
//!   across runs, thread counts and schedules.
//! - An injected solve fails at a chosen **ladder depth**: the hash also
//!   picks how many solver strategies (warm start, Gmin continuation,
//!   damped retry, source ramp, then the three rescue rungs) report
//!   `NoConvergence` before the solver is allowed to proceed. Depths past
//!   the last rung make the sample genuinely unsolvable, exercising
//!   quarantine end-to-end.
//! - Default-off cost is a single relaxed atomic load in [`trip`].
//!
//! Only solves inside a [`begin_stream`] scope are ever injected: the
//! estimator hot paths arm their per-sample substream index, so setup and
//! verification solves outside Monte-Carlo loops stay untouched.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

const STATE_UNSET: u8 = u8::MAX;
const STATE_OFF: u8 = 0;
const STATE_ON: u8 = 1;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);
static SEED: AtomicU64 = AtomicU64::new(0);
static RATE_BITS: AtomicU64 = AtomicU64::new(0);

static MAXQ_STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);
static MAXQ_BITS: AtomicU64 = AtomicU64::new(0);

/// SplitMix64 (local copy — `pvtm-stats` depends on this crate, so the
/// shared constant lives in both; the streams must mix identically).
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Reads `PVTM_FAULT_SEED` / `PVTM_FAULT_RATE` and arms (or disarms)
/// injection accordingly. The first armed solve does this lazily; entry
/// points may call it eagerly so the environment is read up front.
pub fn init_from_env() -> u8 {
    let seed = std::env::var("PVTM_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    let rate = std::env::var("PVTM_FAULT_RATE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|r| r.is_finite() && *r > 0.0)
        .unwrap_or(0.0);
    SEED.store(seed, Ordering::Relaxed);
    RATE_BITS.store(rate.to_bits(), Ordering::Relaxed);
    let state = if rate > 0.0 { STATE_ON } else { STATE_OFF };
    STATE.store(state, Ordering::Relaxed);
    state
}

#[inline]
fn state() -> u8 {
    match STATE.load(Ordering::Relaxed) {
        STATE_UNSET => init_from_env(),
        s => s,
    }
}

/// Arms fault injection programmatically (tests and harnesses; normally
/// `PVTM_FAULT_SEED` / `PVTM_FAULT_RATE` decide). A non-positive or
/// non-finite `rate` disables injection.
pub fn force(seed: u64, rate: f64) {
    let on = rate.is_finite() && rate > 0.0;
    SEED.store(seed, Ordering::Relaxed);
    RATE_BITS.store(if on { rate.to_bits() } else { 0 }, Ordering::Relaxed);
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Disables fault injection (the env vars are not re-read).
pub fn disable() {
    force(0, 0.0);
}

/// Whether fault injection is armed.
pub fn is_enabled() -> bool {
    state() == STATE_ON
}

/// The documented quarantine-rate ceiling: estimators error out with
/// `QuarantineExceeded` when more than this fraction of their samples is
/// unresolved. Initialized from `PVTM_MAX_QUARANTINE` on first use;
/// defaults to **0.01** (1 %) — far above any organic solver-failure rate,
/// and low enough that a quarantine-dominated estimate can't silently
/// stand in for a converged one.
pub fn max_quarantine() -> f64 {
    if MAXQ_STATE.load(Ordering::Relaxed) == STATE_UNSET {
        let q = std::env::var("PVTM_MAX_QUARANTINE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|q| q.is_finite() && *q >= 0.0)
            .unwrap_or(0.01);
        MAXQ_BITS.store(q.to_bits(), Ordering::Relaxed);
        MAXQ_STATE.store(STATE_ON, Ordering::Relaxed);
    }
    f64::from_bits(MAXQ_BITS.load(Ordering::Relaxed))
}

/// Overrides the quarantine ceiling (tests and harnesses).
pub fn set_max_quarantine(q: f64) {
    MAXQ_BITS.store(q.to_bits(), Ordering::Relaxed);
    MAXQ_STATE.store(STATE_ON, Ordering::Relaxed);
}

#[derive(Debug, Clone, Copy, Default)]
struct StreamState {
    active: bool,
    stream: u64,
    /// Logical solves seen in this stream so far.
    counter: u64,
    /// Remaining strategy entries to fail for the current solve.
    kills: u32,
}

thread_local! {
    static STREAM: Cell<StreamState> = const { Cell::new(StreamState {
        active: false,
        stream: 0,
        counter: 0,
        kills: 0,
    }) };
    /// Test/harness override: every solve in the stream fails at exactly
    /// this depth, bypassing the rate draw.
    static FORCED: Cell<Option<u32>> = const { Cell::new(None) };
}

/// RAII guard restoring the previously armed stream on drop; created by
/// [`begin_stream`] and [`force_depth`].
#[derive(Debug)]
pub struct StreamGuard {
    prev: Option<StreamState>,
    forced: bool,
}

impl Drop for StreamGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev {
            let _ = STREAM.try_with(|s| s.set(prev));
        }
        if self.forced {
            let _ = FORCED.try_with(|f| f.set(None));
            let rate = f64::from_bits(RATE_BITS.load(Ordering::Relaxed));
            let state = if rate > 0.0 { STATE_ON } else { STATE_OFF };
            STATE.store(state, Ordering::Relaxed);
        }
    }
}

impl StreamGuard {
    fn inert() -> Self {
        StreamGuard {
            prev: None,
            forced: false,
        }
    }
}

/// Arms every solve on this thread to be injected at exactly `depth`
/// strategy entries, bypassing the rate draw (tests and harnesses that
/// need one specific ladder depth). The returned guard restores the
/// previous arming on drop.
#[must_use = "injection is armed only while the guard lives"]
pub fn force_depth(depth: u32) -> StreamGuard {
    STATE.store(STATE_ON, Ordering::Relaxed);
    let _ = FORCED.try_with(|f| f.set(Some(depth)));
    let mut prev = None;
    let _ = STREAM.try_with(|s| {
        prev = Some(s.get());
        s.set(StreamState {
            active: true,
            stream: 0,
            counter: 0,
            kills: 0,
        });
    });
    StreamGuard { prev, forced: true }
}

/// The substream index currently armed on this thread, or `None` when no
/// stream is active (injection off, or outside a [`begin_stream`] scope).
/// Lets event producers — the rescue ladder journaling a `solver.rescue`
/// — attribute work to a replayable sample without new plumbing.
pub fn current_stream() -> Option<u64> {
    STREAM
        .try_with(|s| {
            let st = s.get();
            st.active.then_some(st.stream)
        })
        .ok()
        .flatten()
}

/// Arms fault injection for the solves of one estimator substream (the
/// same `stream` index the sample's RNG is derived from, so a quarantined
/// record pinpoints a replayable sample). Inert when injection is off.
#[must_use = "injection is armed only while the guard lives"]
pub fn begin_stream(stream: u64) -> StreamGuard {
    if state() != STATE_ON {
        return StreamGuard::inert();
    }
    let mut prev = None;
    let _ = STREAM.try_with(|s| {
        prev = Some(s.get());
        s.set(StreamState {
            active: true,
            stream,
            counter: 0,
            kills: 0,
        });
    });
    StreamGuard {
        prev,
        forced: false,
    }
}

/// Marks the entry of one logical solve. Decides deterministically — from
/// `(fault_seed, stream, solve_index)` alone — whether this solve is
/// injected, and at which ladder depth. No-op unless injection is armed
/// and a stream is active.
pub fn next_solve() {
    if state() != STATE_ON {
        return;
    }
    let _ = STREAM.try_with(|cell| {
        let mut s = cell.get();
        if !s.active {
            return;
        }
        s.counter += 1;
        if let Ok(Some(depth)) = FORCED.try_with(Cell::get) {
            s.kills = depth;
            cell.set(s);
            return;
        }
        let seed = SEED.load(Ordering::Relaxed);
        let h = splitmix64(splitmix64(seed ^ s.stream.rotate_left(17)) ^ s.counter);
        // 53 high bits → uniform in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let rate = f64::from_bits(RATE_BITS.load(Ordering::Relaxed));
        // Depth 4 fails warm + the three cold strategies (rescue rung 1
        // saves the solve); depth 7+ also exhausts the rescue ladder, so
        // the sample is quarantined. The spread exercises every rung.
        // The depth draw must be independent of the rate draw: `u < rate`
        // conditions the *high* bits of `h` toward zero, so the depth
        // comes from a fresh mix of `h` instead of its top bits (reusing
        // them would pin every small-rate injection to depth 4).
        s.kills = if u < rate {
            4 + (splitmix64(h) % 6) as u32
        } else {
            0
        };
        cell.set(s);
    });
}

/// Called at the entry of each solver strategy (warm start, Gmin
/// continuation, damped retry, source ramp, each rescue rung). Returns
/// `true` when the strategy must report `NoConvergence` instead of
/// running. The disabled path is one relaxed atomic load.
#[inline]
pub fn trip() -> bool {
    if STATE.load(Ordering::Relaxed) != STATE_ON {
        return false;
    }
    STREAM
        .try_with(|cell| {
            let mut s = cell.get();
            if !s.active || s.kills == 0 {
                return false;
            }
            s.kills -= 1;
            cell.set(s);
            true
        })
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Fault state is process-global; these tests serialize on the
    // telemetry test lock and always restore the disabled state.

    #[test]
    fn disabled_by_default_and_trip_is_false() {
        let _g = crate::test_guard();
        disable();
        let _s = begin_stream(7);
        next_solve();
        assert!(!trip());
    }

    #[test]
    fn injection_is_deterministic_per_stream_and_solve() {
        let _g = crate::test_guard();
        force(42, 0.5);
        let pattern = |stream: u64| -> Vec<u32> {
            let _s = begin_stream(stream);
            (0..32)
                .map(|_| {
                    next_solve();
                    let mut kills = 0;
                    while trip() {
                        kills += 1;
                    }
                    kills
                })
                .collect()
        };
        let a = pattern(3);
        let b = pattern(4);
        let a2 = pattern(3);
        assert_eq!(a, a2, "same stream must inject identically");
        assert_ne!(a, b, "different streams must decorrelate");
        assert!(a.iter().any(|&k| k > 0), "rate 0.5 must inject something");
        assert!(
            a.iter().all(|&k| k == 0 || (4..=9).contains(&k)),
            "injected depths stay on the ladder: {a:?}"
        );
        disable();
    }

    #[test]
    fn solves_outside_streams_are_never_injected() {
        let _g = crate::test_guard();
        force(42, 1.0);
        next_solve();
        assert!(!trip(), "no active stream, nothing armed");
        disable();
    }

    #[test]
    fn stream_guards_nest_and_restore() {
        let _g = crate::test_guard();
        force(42, 1.0);
        let outer = begin_stream(1);
        next_solve();
        {
            let _inner = begin_stream(2);
            // Inner stream starts with a fresh solve counter and no kills.
            assert!(!trip());
        }
        // The outer stream's armed kills survive the inner scope.
        assert!(trip());
        drop(outer);
        disable();
    }

    #[test]
    fn max_quarantine_override_round_trips() {
        let _g = crate::test_guard();
        set_max_quarantine(0.25);
        assert!((max_quarantine() - 0.25).abs() < 1e-15);
        set_max_quarantine(0.01);
    }
}
