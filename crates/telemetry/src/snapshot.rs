//! Point-in-time consistent live snapshots of the telemetry registry.
//!
//! A scrape taken mid-run must never observe a *torn* logical update — the
//! canonical hazard is an estimator chunk whose running moments
//! ([`crate::record_chunk`]) have landed while its health moments
//! ([`crate::record_chunk_health`]) have not: ESS computed from such a
//! snapshot would disagree with the chunk count. Single records are already
//! atomic under the registry mutex; tearing is only possible across
//! *separate* mutex acquisitions. The fix is a seqlock-style epoch:
//!
//! - writers enter a [`write scope`](update_scope) (one atomic increment),
//!   perform any number of registry mutations, then bump the epoch and
//!   leave the scope;
//! - [`live`] reads the epoch, waits until no writer is inside a scope,
//!   captures the registry under the mutex, and retries whenever a writer
//!   entered concurrently or the epoch moved.
//!
//! Everything here is live-plane only: none of this state is rendered into
//! sidecars or journals, so runs without a metrics server are byte-identical
//! to runs that never loaded this module.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::json::{obj, Value};
use crate::report::Report;
use crate::{clock, events};

// ------------------------------------------------------------ write epoch

/// Writers currently inside an [`update_scope`].
static WRITERS: AtomicU64 = AtomicU64::new(0);
/// Completed logical updates; bumped when a write scope closes.
static EPOCH: AtomicU64 = AtomicU64::new(0);
/// Whether a metrics server is running (gates open-span tracking).
static LIVE: AtomicBool = AtomicBool::new(false);

/// Open-span registry: `/`-joined path → currently-open count. Maintained
/// only while a server is live; never rendered into deterministic outputs.
static OPEN_SPANS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());

/// Planned estimator work recorded by [`crate::record_mc_start`]:
/// trace name → (samples, chunks). Gives live progress its denominators.
static PLANS: Mutex<BTreeMap<String, (u64, u64)>> = Mutex::new(BTreeMap::new());

/// Stopwatch started when a metrics server comes up; read by [`live`] so
/// scrape timestamps route through `clock` (zero when the clock is gated).
static WATCH: Mutex<Option<clock::Stopwatch>> = Mutex::new(None);

fn open_spans() -> MutexGuard<'static, BTreeMap<String, u64>> {
    OPEN_SPANS.lock().unwrap_or_else(|e| e.into_inner())
}

fn plans() -> MutexGuard<'static, BTreeMap<String, (u64, u64)>> {
    PLANS.lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII marker for one logical registry update; see [`update_scope`].
#[derive(Debug)]
pub(crate) struct WriteScope(());

impl WriteScope {
    pub(crate) fn enter() -> Self {
        WRITERS.fetch_add(1, Ordering::SeqCst);
        WriteScope(())
    }
}

impl Drop for WriteScope {
    fn drop(&mut self) {
        EPOCH.fetch_add(1, Ordering::SeqCst);
        WRITERS.fetch_sub(1, Ordering::SeqCst);
    }
}

pub(crate) fn write_scope() -> WriteScope {
    WriteScope::enter()
}

/// Runs `f` as one logical registry update: a live scrape either sees all
/// of its effects or none of them. Estimators wrap the per-chunk
/// moments + health recording pair so ESS stays recomputable from any
/// snapshot. Scopes nest; the cost is three uncontended atomic ops.
pub fn update_scope<R>(f: impl FnOnce() -> R) -> R {
    let _scope = WriteScope::enter();
    f()
}

// -------------------------------------------------- live-plane bookkeeping

pub(crate) fn set_live(on: bool) {
    LIVE.store(on, Ordering::SeqCst);
    if !on {
        open_spans().clear();
        *WATCH.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

pub(crate) fn live_tracking() -> bool {
    LIVE.load(Ordering::SeqCst)
}

pub(crate) fn start_watch() {
    *WATCH.lock().unwrap_or_else(|e| e.into_inner()) = Some(clock::Stopwatch::started());
}

pub(crate) fn span_opened(path: &str) {
    *open_spans().entry(path.to_string()).or_insert(0) += 1;
}

pub(crate) fn span_closed(path: &str) {
    let mut open = open_spans();
    if let Some(n) = open.get_mut(path) {
        // Saturating: the span may have been opened before tracking began.
        *n = n.saturating_sub(1);
        if *n == 0 {
            open.remove(path);
        }
    }
}

pub(crate) fn record_plan(name: &str, samples: u64, chunks: u64) {
    plans().insert(name.to_string(), (samples, chunks));
}

pub(crate) fn clear() {
    plans().clear();
    open_spans().clear();
}

// ------------------------------------------------------------- snapshots

/// Per-trace live progress: done vs planned work, the Chan-merged running
/// estimate, and the raw weight moments the health diagnostics derive from
/// (exposed so ESS is recomputable from the snapshot itself).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProgress {
    /// Trace name (the `trace_scope` label).
    pub name: String,
    /// Chunks whose moments have been recorded so far.
    pub chunks_done: u64,
    /// Planned chunk count (0 when no `mc.start` was recorded).
    pub chunks_total: u64,
    /// Samples folded into the running estimate so far.
    pub samples_done: u64,
    /// Planned sample count (0 when no `mc.start` was recorded).
    pub samples_total: u64,
    /// Health chunks recorded so far — equals `chunks_done` at every
    /// consistent snapshot of a weight-tracking estimator.
    pub health_chunks: u64,
    /// Contributing (failing) samples across recorded health chunks.
    pub contributing: u64,
    /// Σw over contributing samples.
    pub weight_sum: f64,
    /// Σw² over contributing samples.
    pub weight_sq_sum: f64,
    /// max(w) over contributing samples.
    pub weight_max: f64,
    /// Effective sample size `(Σw)²/Σw²` (0 without weights).
    pub ess: f64,
    /// Running estimate after the last recorded chunk.
    pub value: f64,
    /// Standard error of the running estimate.
    pub std_err: f64,
}

/// One consistent scrape of the full registry, as served by
/// `/snapshot.json` and rendered to Prometheus text by `/metrics`.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveSnapshot {
    /// Write epoch the capture was validated against.
    pub epoch: u64,
    /// Journal id of the running figure (`live` when no journal is open).
    pub id: String,
    /// Seconds since the metrics server started (0 with the clock gated).
    pub elapsed_secs: f64,
    /// The merged registry, exactly as a sidecar would report it now.
    pub report: Report,
    /// Currently-open span paths with open counts.
    pub open_spans: Vec<(String, u64)>,
    /// Per-trace progress and raw health moments.
    pub progress: Vec<TraceProgress>,
}

/// Captures one consistent [`LiveSnapshot`] via the seqlock protocol:
/// retry while any writer is inside an [`update_scope`] or the epoch moved
/// during the capture. Under sustained writes the loop is bounded; the
/// final attempt is returned best-effort (single-record consistency still
/// holds — only multi-record pairing could be stale).
pub fn live() -> LiveSnapshot {
    for _ in 0..64 {
        let epoch = EPOCH.load(Ordering::SeqCst);
        if WRITERS.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
            continue;
        }
        let snap = capture(epoch);
        if WRITERS.load(Ordering::SeqCst) == 0 && EPOCH.load(Ordering::SeqCst) == epoch {
            return snap;
        }
    }
    capture(EPOCH.load(Ordering::SeqCst))
}

fn capture(epoch: u64) -> LiveSnapshot {
    let planned: BTreeMap<String, (u64, u64)> = plans().clone();
    let (report, progress) = {
        let g = crate::global();
        let report = crate::report::build(&g, crate::mode(), crate::clock_enabled());
        let mut names: Vec<&String> = g.traces.keys().collect();
        for name in planned.keys() {
            if !g.traces.contains_key(name) {
                names.push(name);
            }
        }
        names.sort();
        let progress = names
            .iter()
            .map(|name| {
                let (samples_total, chunks_total) = planned.get(*name).copied().unwrap_or((0, 0));
                let chunks_done = g.traces.get(*name).map_or(0, |c| c.len() as u64);
                let last = report.trace(name).and_then(|t| t.points.last().copied());
                let (samples_done, value, std_err) =
                    last.map_or((0, 0.0, 0.0), |p| (p.samples, p.value, p.std_err));
                // Fold health moments in chunk order, mirroring the report,
                // so `ess` here is bit-identical to the derived gauges.
                let (mut health_chunks, mut fails) = (0u64, 0u64);
                let (mut ws, mut wss, mut wmax) = (0.0f64, 0.0f64, 0.0f64);
                if let Some(chunks) = g.health.get(*name) {
                    let mut sorted = chunks.clone();
                    sorted.sort_by_key(|&(chunk, _)| chunk);
                    health_chunks = sorted.len() as u64;
                    for (_, h) in &sorted {
                        fails += h.fails;
                        ws += h.weight_sum;
                        wss += h.weight_sq_sum;
                        wmax = wmax.max(h.weight_max);
                    }
                }
                TraceProgress {
                    name: (*name).clone(),
                    chunks_done,
                    chunks_total,
                    samples_done,
                    samples_total,
                    health_chunks,
                    contributing: fails,
                    weight_sum: ws,
                    weight_sq_sum: wss,
                    weight_max: wmax,
                    ess: if wss > 0.0 { ws * ws / wss } else { 0.0 },
                    value,
                    std_err,
                }
            })
            .collect();
        (report, progress)
    };
    let open = open_spans().iter().map(|(p, &n)| (p.clone(), n)).collect();
    let elapsed_secs = WATCH
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map_or(0.0, clock::Stopwatch::elapsed_secs);
    LiveSnapshot {
        epoch,
        id: events::live_id().unwrap_or_else(|| "live".to_string()),
        elapsed_secs,
        report,
        open_spans: open,
        progress,
    }
}

// ------------------------------------------------------- prometheus names

/// Prometheus names of the curated run-level metrics (DESIGN.md §5b →
/// §5e): each entry maps a taxonomy name to its mechanical mangling
/// `pvtm_` + name with `.` replaced by `_`. pvtm-lint checks both the
/// taxonomy membership of the first element and the mangling of the
/// second, so the scrape plane cannot drift from the sidecar taxonomy.
pub const PROM_METRIC_MAP: &[(&str, &str)] = &[
    ("mc.ess", "pvtm_mc_ess"),
    ("mc.ess_fraction", "pvtm_mc_ess_fraction"),
    ("mc.max_weight_fraction", "pvtm_mc_max_weight_fraction"),
    ("mc.stall_ratio", "pvtm_mc_stall_ratio"),
    ("mc.quarantine_ci_share", "pvtm_mc_quarantine_ci_share"),
    ("mc.is_weight", "pvtm_mc_is_weight"),
    ("solver.newton_per_solve", "pvtm_solver_newton_per_solve"),
];

/// `/healthz` thresholds — the conservative `default` entry of the
/// checked-in health budgets (`pvtm-trace health` gates figures tighter,
/// per-figure; the live endpoint only flags clearly unhealthy runs).
pub const HEALTHZ_MIN_ESS_FRACTION: f64 = 0.2;
/// Ceiling on `mc.max_weight_fraction` before `WEIGHT_DEGENERATE`.
pub const HEALTHZ_MAX_WEIGHT_FRACTION: f64 = 0.25;
/// Ceiling on `mc.stall_ratio` before `STALLED`.
pub const HEALTHZ_MAX_STALL_RATIO: f64 = 0.5;
/// Ceiling on `mc.quarantine_ci_share` before `QUARANTINE_BIASED`.
pub const HEALTHZ_MAX_QUARANTINE_CI_SHARE: f64 = 0.25;

/// The mechanical §5b → Prometheus mangling: `pvtm_` prefix, every
/// character outside `[a-z0-9_]` becomes `_`.
pub fn prom_name(name: &str) -> String {
    let curated = PROM_METRIC_MAP
        .iter()
        .find(|(taxonomy, _)| *taxonomy == name)
        .map(|&(_, prom)| prom.to_string());
    curated.unwrap_or_else(|| {
        let mut out = String::with_capacity(name.len() + 5);
        out.push_str("pvtm_");
        for ch in name.chars() {
            out.push(match ch {
                'a'..='z' | '0'..='9' | '_' => ch,
                _ => '_',
            });
        }
        out
    })
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Prometheus sample-value formatting: integers without a decimal point,
/// everything else via shortest round-trip, non-finite spelled out.
fn prom_num(v: f64) -> String {
    if !v.is_finite() {
        if v.is_nan() {
            "NaN".to_string()
        } else if v > 0.0 {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        }
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:?}")
    }
}

impl LiveSnapshot {
    /// The `/snapshot.json` document: the sidecar schema
    /// (`pvtm-telemetry/3`, parseable by every tolerant sidecar consumer)
    /// plus the live-plane members, with keys in sorted order.
    pub fn to_value(&self) -> Value {
        let mut members = match self.report.to_value(&self.id) {
            Value::Obj(members) => members,
            other => vec![("report".to_string(), other)],
        };
        members.push(("elapsed_secs".to_string(), Value::Num(self.elapsed_secs)));
        members.push(("epoch".to_string(), Value::Num(self.epoch as f64)));
        members.push(("live".to_string(), Value::Bool(true)));
        members.push((
            "open_spans".to_string(),
            Value::Arr(
                self.open_spans
                    .iter()
                    .map(|(path, n)| {
                        obj(vec![
                            ("open", Value::Num(*n as f64)),
                            ("path", Value::Str(path.clone())),
                        ])
                    })
                    .collect(),
            ),
        ));
        members.push((
            "progress".to_string(),
            Value::Arr(
                self.progress
                    .iter()
                    .map(|p| {
                        obj(vec![
                            ("chunks_done", Value::Num(p.chunks_done as f64)),
                            ("chunks_total", Value::Num(p.chunks_total as f64)),
                            ("contributing", Value::Num(p.contributing as f64)),
                            ("ess", Value::Num(p.ess)),
                            ("health_chunks", Value::Num(p.health_chunks as f64)),
                            ("name", Value::Str(p.name.clone())),
                            ("samples_done", Value::Num(p.samples_done as f64)),
                            ("samples_total", Value::Num(p.samples_total as f64)),
                            ("std_err", Value::Num(p.std_err)),
                            ("value", Value::Num(p.value)),
                            ("weight_max", Value::Num(p.weight_max)),
                            ("weight_sq_sum", Value::Num(p.weight_sq_sum)),
                            ("weight_sum", Value::Num(p.weight_sum)),
                        ])
                    })
                    .collect(),
            ),
        ));
        members.push((
            "quarantine_count".to_string(),
            Value::Num(self.report.quarantine.len() as f64),
        ));
        members.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(members)
    }

    /// The `/snapshot.json` body (compact, newline-terminated).
    pub fn to_json(&self) -> String {
        let mut s = self.to_value().to_json();
        s.push('\n');
        s
    }

    /// Prometheus text exposition (format 0.0.4) of the snapshot.
    ///
    /// Histograms are rendered with cumulative `le` buckets derived from
    /// the log2 bounds (`le = 2^(log2+1)`, underflow below the lowest
    /// bound); no `_sum` series is emitted because the producer keeps
    /// order-independent integer buckets only (DESIGN.md §5e).
    pub fn prometheus(&self) -> String {
        fn sample(out: &mut String, name: &str, kind: &str, lines: &[(String, f64)]) {
            if lines.is_empty() {
                return;
            }
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            for (suffix, v) in lines {
                out.push_str(&format!("{name}{suffix} {}\n", prom_num(*v)));
            }
        }
        let mut out = String::new();
        for (name, v) in &self.report.counters {
            sample(
                &mut out,
                &prom_name(name),
                "counter",
                &[(String::new(), *v as f64)],
            );
        }
        let s = &self.report.solver;
        for (field, v) in [
            ("solver.cold_solves", s.cold_solves),
            ("solver.damped_retries", s.damped_retries),
            ("solver.gmin_steps", s.gmin_steps),
            ("solver.lu_factorizations", s.lu_factorizations),
            ("solver.newton_iterations", s.newton_iterations),
            ("solver.ramp_steps", s.ramp_steps),
            ("solver.rescue_attempts", s.rescue_attempts),
            ("solver.rescue_hits", s.rescue_hits),
            ("solver.rescue_rungs", s.rescue_rungs),
            ("solver.solves", s.solves),
            ("solver.source_ramps", s.source_ramps),
            ("solver.warm_attempts", s.warm_attempts),
            ("solver.warm_hits", s.warm_hits),
        ] {
            sample(
                &mut out,
                &prom_name(field),
                "counter",
                &[(String::new(), v as f64)],
            );
        }
        sample(
            &mut out,
            &prom_name("solver.warm_hit_rate"),
            "gauge",
            &[(String::new(), s.warm_hit_rate)],
        );
        for (name, v) in &self.report.gauges {
            sample(&mut out, &prom_name(name), "gauge", &[(String::new(), *v)]);
        }
        for h in &self.report.histograms {
            let name = prom_name(&h.name);
            let mut lines = Vec::new();
            let mut cum = h.underflow;
            for b in &h.buckets {
                cum += b.count;
                let le = 2.0f64.powi(i32::from(b.log2) + 1);
                lines.push((format!("_bucket{{le=\"{}\"}}", prom_num(le)), cum as f64));
            }
            lines.push(("_bucket{le=\"+Inf\"}".to_string(), h.count as f64));
            out.push_str(&format!("# TYPE {name} histogram\n"));
            for (suffix, v) in &lines {
                out.push_str(&format!("{name}{suffix} {}\n", prom_num(*v)));
            }
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        let families: [(&str, Vec<f64>); 7] = [
            (
                "mc.trace_chunks_done",
                self.progress.iter().map(|p| p.chunks_done as f64).collect(),
            ),
            (
                "mc.trace_chunks_total",
                self.progress
                    .iter()
                    .map(|p| p.chunks_total as f64)
                    .collect(),
            ),
            (
                "mc.trace_samples_done",
                self.progress
                    .iter()
                    .map(|p| p.samples_done as f64)
                    .collect(),
            ),
            (
                "mc.trace_samples_total",
                self.progress
                    .iter()
                    .map(|p| p.samples_total as f64)
                    .collect(),
            ),
            (
                "mc.trace_estimate",
                self.progress.iter().map(|p| p.value).collect(),
            ),
            (
                "mc.trace_std_err",
                self.progress.iter().map(|p| p.std_err).collect(),
            ),
            (
                "mc.trace_ess",
                self.progress.iter().map(|p| p.ess).collect(),
            ),
        ];
        for (name, values) in families {
            let lines: Vec<(String, f64)> = self
                .progress
                .iter()
                .zip(values)
                .map(|(p, v)| (format!("{{trace=\"{}\"}}", escape_label(&p.name)), v))
                .collect();
            sample(&mut out, &prom_name(name), "gauge", &lines);
        }
        let open: Vec<(String, f64)> = self
            .open_spans
            .iter()
            .map(|(path, n)| (format!("{{path=\"{}\"}}", escape_label(path)), *n as f64))
            .collect();
        sample(&mut out, "pvtm_open_spans", "gauge", &open);
        sample(
            &mut out,
            "pvtm_elapsed_seconds",
            "gauge",
            &[(String::new(), self.elapsed_secs)],
        );
        sample(
            &mut out,
            "pvtm_snapshot_epoch",
            "gauge",
            &[(String::new(), self.epoch as f64)],
        );
        sample(
            &mut out,
            "pvtm_mc_quarantined_total",
            "counter",
            &[(String::new(), self.report.quarantine.len() as f64)],
        );
        out
    }

    /// The `/healthz` verdict: one failure line per tripped axis, using
    /// the same axes (and tags) as `pvtm-trace health` — LOW_ESS,
    /// WEIGHT_DEGENERATE, STALLED, QUARANTINE_BIASED — against the
    /// conservative default thresholds. Empty means healthy (HTTP 200).
    pub fn health_failures(&self) -> Vec<String> {
        let gauge = |name: &str| {
            self.report
                .gauges
                .iter()
                .find(|(k, _)| k == name)
                .map(|&(_, v)| v)
        };
        let mut out = Vec::new();
        if let Some(v) = gauge("mc.ess_fraction") {
            if v < HEALTHZ_MIN_ESS_FRACTION {
                out.push(format!(
                    "LOW_ESS ess_fraction {v:.4} (floor {HEALTHZ_MIN_ESS_FRACTION})"
                ));
            }
        }
        if let Some(v) = gauge("mc.max_weight_fraction") {
            if v > HEALTHZ_MAX_WEIGHT_FRACTION {
                out.push(format!(
                    "WEIGHT_DEGENERATE max_weight_fraction {v:.4} (ceiling {HEALTHZ_MAX_WEIGHT_FRACTION})"
                ));
            }
        }
        if let Some(v) = gauge("mc.stall_ratio") {
            if v > HEALTHZ_MAX_STALL_RATIO {
                out.push(format!(
                    "STALLED stall_ratio {v:.4} (ceiling {HEALTHZ_MAX_STALL_RATIO})"
                ));
            }
        }
        if let Some(v) = gauge("mc.quarantine_ci_share") {
            if v > HEALTHZ_MAX_QUARANTINE_CI_SHARE {
                out.push(format!(
                    "QUARANTINE_BIASED quarantine_ci_share {v:.4} (ceiling {HEALTHZ_MAX_QUARANTINE_CI_SHARE})"
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{HistBucket, HistRow, SolverSummary};
    use crate::Mode;

    fn fixture() -> LiveSnapshot {
        LiveSnapshot {
            epoch: 7,
            id: "fig2a".to_string(),
            elapsed_secs: 0.0,
            report: Report {
                mode: Mode::Full,
                clock: false,
                spans: Vec::new(),
                counters: vec![("mc.samples".to_string(), 8192)],
                gauges: vec![
                    ("mc.ess_fraction".to_string(), 0.5),
                    ("mc.stall_ratio".to_string(), 0.0),
                ],
                histograms: vec![HistRow {
                    name: "mc.is_weight".to_string(),
                    count: 10,
                    underflow: 1,
                    buckets: vec![
                        HistBucket { log2: -1, count: 4 },
                        HistBucket { log2: 0, count: 5 },
                    ],
                }],
                solver: SolverSummary {
                    solves: 3,
                    newton_iterations: 12,
                    lu_factorizations: 12,
                    warm_attempts: 2,
                    warm_hits: 1,
                    cold_solves: 1,
                    damped_retries: 0,
                    source_ramps: 0,
                    gmin_steps: 0,
                    ramp_steps: 0,
                    rescue_attempts: 0,
                    rescue_hits: 0,
                    rescue_rungs: 0,
                    warm_hit_rate: 0.5,
                },
                traces: Vec::new(),
                quarantine: Vec::new(),
            },
            open_spans: vec![("fig2a/mc.chunk".to_string(), 2)],
            progress: vec![TraceProgress {
                name: "fig2a.mc".to_string(),
                chunks_done: 2,
                chunks_total: 4,
                samples_done: 8192,
                samples_total: 16384,
                health_chunks: 2,
                contributing: 64,
                weight_sum: 8.0,
                weight_sq_sum: 2.0,
                weight_max: 0.5,
                ess: 32.0,
                value: 1.5e-3,
                std_err: 2.5e-4,
            }],
        }
    }

    #[test]
    fn prometheus_text_is_byte_exact() {
        let expected = "\
# TYPE pvtm_mc_samples counter
pvtm_mc_samples 8192
# TYPE pvtm_solver_cold_solves counter
pvtm_solver_cold_solves 1
# TYPE pvtm_solver_damped_retries counter
pvtm_solver_damped_retries 0
# TYPE pvtm_solver_gmin_steps counter
pvtm_solver_gmin_steps 0
# TYPE pvtm_solver_lu_factorizations counter
pvtm_solver_lu_factorizations 12
# TYPE pvtm_solver_newton_iterations counter
pvtm_solver_newton_iterations 12
# TYPE pvtm_solver_ramp_steps counter
pvtm_solver_ramp_steps 0
# TYPE pvtm_solver_rescue_attempts counter
pvtm_solver_rescue_attempts 0
# TYPE pvtm_solver_rescue_hits counter
pvtm_solver_rescue_hits 0
# TYPE pvtm_solver_rescue_rungs counter
pvtm_solver_rescue_rungs 0
# TYPE pvtm_solver_solves counter
pvtm_solver_solves 3
# TYPE pvtm_solver_source_ramps counter
pvtm_solver_source_ramps 0
# TYPE pvtm_solver_warm_attempts counter
pvtm_solver_warm_attempts 2
# TYPE pvtm_solver_warm_hits counter
pvtm_solver_warm_hits 1
# TYPE pvtm_solver_warm_hit_rate gauge
pvtm_solver_warm_hit_rate 0.5
# TYPE pvtm_mc_ess_fraction gauge
pvtm_mc_ess_fraction 0.5
# TYPE pvtm_mc_stall_ratio gauge
pvtm_mc_stall_ratio 0
# TYPE pvtm_mc_is_weight histogram
pvtm_mc_is_weight_bucket{le=\"1\"} 5
pvtm_mc_is_weight_bucket{le=\"2\"} 10
pvtm_mc_is_weight_bucket{le=\"+Inf\"} 10
pvtm_mc_is_weight_count 10
# TYPE pvtm_mc_trace_chunks_done gauge
pvtm_mc_trace_chunks_done{trace=\"fig2a.mc\"} 2
# TYPE pvtm_mc_trace_chunks_total gauge
pvtm_mc_trace_chunks_total{trace=\"fig2a.mc\"} 4
# TYPE pvtm_mc_trace_samples_done gauge
pvtm_mc_trace_samples_done{trace=\"fig2a.mc\"} 8192
# TYPE pvtm_mc_trace_samples_total gauge
pvtm_mc_trace_samples_total{trace=\"fig2a.mc\"} 16384
# TYPE pvtm_mc_trace_estimate gauge
pvtm_mc_trace_estimate{trace=\"fig2a.mc\"} 0.0015
# TYPE pvtm_mc_trace_std_err gauge
pvtm_mc_trace_std_err{trace=\"fig2a.mc\"} 0.00025
# TYPE pvtm_mc_trace_ess gauge
pvtm_mc_trace_ess{trace=\"fig2a.mc\"} 32
# TYPE pvtm_open_spans gauge
pvtm_open_spans{path=\"fig2a/mc.chunk\"} 2
# TYPE pvtm_elapsed_seconds gauge
pvtm_elapsed_seconds 0
# TYPE pvtm_snapshot_epoch gauge
pvtm_snapshot_epoch 7
# TYPE pvtm_mc_quarantined_total counter
pvtm_mc_quarantined_total 0
";
        assert_eq!(fixture().prometheus(), expected);
    }

    #[test]
    fn snapshot_json_keys_are_sorted() {
        let v = fixture().to_value();
        let Value::Obj(members) = &v else {
            panic!("snapshot is not an object")
        };
        let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("pvtm-telemetry/3")
        );
        assert_eq!(v.get("live").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn healthz_trips_on_low_ess_and_stays_quiet_when_healthy() {
        let mut snap = fixture();
        assert!(snap.health_failures().is_empty());
        snap.report.gauges[0].1 = 0.05;
        let fails = snap.health_failures();
        assert_eq!(fails.len(), 1);
        assert!(fails[0].starts_with("LOW_ESS"), "{fails:?}");
    }

    #[test]
    fn prom_names_route_through_the_curated_map() {
        for (taxonomy, prom) in PROM_METRIC_MAP {
            assert_eq!(&prom_name(taxonomy), prom);
            let mangled = format!("pvtm_{}", taxonomy.replace('.', "_"));
            assert_eq!(*prom, mangled, "curated mapping must stay mechanical");
        }
        assert_eq!(prom_name("eval.cells"), "pvtm_eval_cells");
    }

    #[test]
    fn update_scope_bumps_the_epoch() {
        let before = EPOCH.load(Ordering::SeqCst);
        update_scope(|| {
            assert!(WRITERS.load(Ordering::SeqCst) >= 1);
        });
        assert!(EPOCH.load(Ordering::SeqCst) > before);
        assert_eq!(WRITERS.load(Ordering::SeqCst), 0);
    }
}
