//! Snapshot of the merged telemetry state, plus its JSON sidecar form.

use crate::json::{obj, Value};
use crate::{ChunkStat, Global, HealthChunk, Mode, QuarantineRecord};

/// Current sidecar schema version. Version 2 added `schema_version` itself
/// plus per-span attribution (`self_ns`, solver counters per span);
/// version 3 adds per-trace estimator-health objects, per-span rescue
/// counters, and derived `mc.*` health gauges. Consumers must tolerate
/// absent fields and treat such documents as the older version.
pub const SCHEMA_VERSION: u32 = 3;

/// One span path's aggregate, with self/child-time and solver attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRow {
    /// `/`-joined span path.
    pub path: String,
    /// Times the span was entered.
    pub count: u64,
    /// Total nanoseconds inside the span (0 with the clock disabled).
    pub total_ns: u64,
    /// Nanoseconds accumulated by direct children — same-thread nesting
    /// plus worker spans adopted under this path via
    /// [`crate::parallel_context`]/[`crate::adopt`].
    pub child_ns: u64,
    /// `total_ns - child_ns`, saturating at zero (parallel children can
    /// sum to more CPU time than the parent's wall-clock).
    pub self_ns: u64,
    /// DC solves charged to this span (innermost-span attribution).
    pub solves: u64,
    /// Newton iterations charged to this span.
    pub newton_iterations: u64,
    /// LU factorizations charged to this span.
    pub lu_factorizations: u64,
    /// Cold solves charged to this span.
    pub cold_solves: u64,
    /// Rescue-ladder entries charged to this span.
    pub rescue_attempts: u64,
    /// Rescue-ladder entries that converged, charged to this span.
    pub rescue_hits: u64,
}

/// One log2 histogram bucket: counts values in `[2^log2, 2^(log2+1))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistBucket {
    /// Bucket exponent.
    pub log2: i16,
    /// Observations in the bucket.
    pub count: u64,
}

/// One histogram's buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct HistRow {
    /// Metric name.
    pub name: String,
    /// Total observations (underflow included).
    pub count: u64,
    /// Non-positive / non-finite observations.
    pub underflow: u64,
    /// Occupied buckets in ascending exponent order.
    pub buckets: Vec<HistBucket>,
}

/// Merged DC-solver counters with the derived warm-hit rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverSummary {
    /// Completed solves.
    pub solves: u64,
    /// Newton iterations.
    pub newton_iterations: u64,
    /// LU factorizations.
    pub lu_factorizations: u64,
    /// Warm-start attempts.
    pub warm_attempts: u64,
    /// Warm-start attempts that converged.
    pub warm_hits: u64,
    /// Cold solves.
    pub cold_solves: u64,
    /// Damped retries.
    pub damped_retries: u64,
    /// Source-ramp fallbacks.
    pub source_ramps: u64,
    /// Gmin-continuation stages.
    pub gmin_steps: u64,
    /// Source-ramp steps.
    pub ramp_steps: u64,
    /// Solves that entered the rescue ladder.
    pub rescue_attempts: u64,
    /// Rescue-ladder entries that converged.
    pub rescue_hits: u64,
    /// Individual rescue rungs run.
    pub rescue_rungs: u64,
    /// `warm_hits / warm_attempts`; 1.0 when no warm start was tried.
    pub warm_hit_rate: f64,
}

/// One point of a convergence trace: the running estimate after a chunk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Chunk index (deterministic substream id).
    pub chunk: u64,
    /// Cumulative samples through this chunk.
    pub samples: u64,
    /// Running estimate (mean of the accumulated observations).
    pub value: f64,
    /// Running standard error.
    pub std_err: f64,
    /// Running relative error (`std_err / |value|`; infinite at 0).
    pub rel_err: f64,
}

/// Estimator-health diagnostics for one convergence trace, derived at
/// snapshot time from the per-chunk trace moments and (for importance
/// sampling) the [`crate::HealthChunk`] side channel.
///
/// The stall detector walks consecutive running points: with `n` samples a
/// CI half-width should shrink like `1/sqrt(n)`, so a step from
/// `(n0, h0)` to `(n1, h1)` counts as **stalled** when
/// `h1 > h0 * sqrt(n0/n1) * 1.25` — the interval shrank at least 25%
/// slower than root-n (or grew). A high `stall_ratio` means adding
/// samples is no longer buying confidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceHealth {
    /// Whether importance-sampling weight moments were recorded (via
    /// [`crate::record_chunk_health`]); the ESS fields are meaningful
    /// only when set.
    pub has_weights: bool,
    /// Contributing (failing) samples across all chunks.
    pub contributing: u64,
    /// Effective sample size over contributing weights: `(Σw)²/Σw²`.
    pub ess: f64,
    /// `ess / contributing`; 1.0 when nothing contributed (a weightless
    /// or empty estimator is vacuously healthy on this axis).
    pub ess_fraction: f64,
    /// Largest single weight's share of the total: `max(w)/Σw`.
    pub max_weight_fraction: f64,
    /// Consecutive-point comparisons made (`points - 1`).
    pub steps: u64,
    /// Comparisons where the CI half-width shrank slower than root-n.
    pub stalled_steps: u64,
    /// `stalled_steps / steps`; 0.0 when fewer than two points.
    pub stall_ratio: f64,
}

/// One named convergence trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRow {
    /// Trace label (from [`crate::trace_scope`]).
    pub name: String,
    /// Running estimates in chunk order.
    pub points: Vec<TracePoint>,
    /// Estimator-health diagnostics (`None` only for an empty trace).
    pub health: Option<TraceHealth>,
}

/// Snapshot of all merged telemetry, as returned by [`crate::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Mode the snapshot was taken under.
    pub mode: Mode,
    /// Whether span durations came from the monotonic clock.
    pub clock: bool,
    /// Span aggregates in path order.
    pub spans: Vec<SpanRow>,
    /// Counters in name order.
    pub counters: Vec<(String, u64)>,
    /// Gauges in name order.
    pub gauges: Vec<(String, f64)>,
    /// Histograms in name order.
    pub histograms: Vec<HistRow>,
    /// Merged DC-solver counters.
    pub solver: SolverSummary,
    /// Convergence traces in name order.
    pub traces: Vec<TraceRow>,
    /// Quarantined Monte-Carlo samples, sorted by `(stream, seed, kind)`
    /// — empty in healthy runs, so the sidecar omits the section and
    /// stays byte-identical to pre-quarantine output.
    pub quarantine: Vec<QuarantineRecord>,
}

pub(crate) fn build(g: &Global, mode: Mode, clock: bool) -> Report {
    let traces: Vec<TraceRow> = g
        .traces
        .iter()
        .map(|(name, chunks)| {
            let points = running_points(chunks);
            let health = trace_health(&points, g.health.get(name).map(Vec::as_slice));
            TraceRow {
                name: name.clone(),
                points,
                health,
            }
        })
        .collect();
    let mut gauges: Vec<(String, f64)> =
        g.gauges.iter().map(|(&k, &v)| (k.to_string(), v)).collect();
    gauges.extend(derived_health_gauges(&traces));
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    Report {
        mode,
        clock,
        spans: g
            .spans
            .iter()
            .map(|(path, s)| SpanRow {
                path: path.clone(),
                count: s.count,
                total_ns: s.total_ns,
                child_ns: s.child_ns,
                self_ns: s.total_ns.saturating_sub(s.child_ns),
                solves: s.solver.solves,
                newton_iterations: s.solver.newton_iterations,
                lu_factorizations: s.solver.lu_factorizations,
                cold_solves: s.solver.cold_solves,
                rescue_attempts: s.solver.rescue_attempts,
                rescue_hits: s.solver.rescue_hits,
            })
            .collect(),
        counters: g
            .counters
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect(),
        gauges,
        histograms: g
            .hists
            .iter()
            .map(|(&name, h)| HistRow {
                name: name.to_string(),
                count: h.count,
                underflow: h.underflow,
                buckets: h
                    .buckets
                    .iter()
                    .map(|(&log2, &count)| HistBucket { log2, count })
                    .collect(),
            })
            .collect(),
        solver: SolverSummary {
            solves: g.solver.solves,
            newton_iterations: g.solver.newton_iterations,
            lu_factorizations: g.solver.lu_factorizations,
            warm_attempts: g.solver.warm_attempts,
            warm_hits: g.solver.warm_hits,
            cold_solves: g.solver.cold_solves,
            damped_retries: g.solver.damped_retries,
            source_ramps: g.solver.source_ramps,
            gmin_steps: g.solver.gmin_steps,
            ramp_steps: g.solver.ramp_steps,
            rescue_attempts: g.solver.rescue_attempts,
            rescue_hits: g.solver.rescue_hits,
            rescue_rungs: g.solver.rescue_rungs,
            warm_hit_rate: if g.solver.warm_attempts == 0 {
                1.0
            } else {
                g.solver.warm_hits as f64 / g.solver.warm_attempts as f64
            },
        },
        traces,
        quarantine: {
            let mut q = g.quarantine.clone();
            // Events arrive from worker threads in schedule order; sorting
            // on the replay key makes two clock-off runs byte-identical.
            q.sort_by_key(|r| (r.stream, r.seed, r.kind, r.corner.to_bits()));
            q
        },
    }
}

/// Reconstructs the running estimate after each chunk by merging the
/// per-chunk Welford moments in chunk order (Chan's parallel update —
/// deterministic, independent of the order chunks were recorded in).
fn running_points(chunks: &[ChunkStat]) -> Vec<TracePoint> {
    let mut sorted: Vec<ChunkStat> = chunks.to_vec();
    sorted.sort_by_key(|c| c.chunk);
    let (mut n, mut mean, mut m2) = (0u64, 0.0f64, 0.0f64);
    sorted
        .iter()
        .map(|c| {
            if n == 0 {
                (n, mean, m2) = (c.n, c.mean, c.m2);
            } else if c.n > 0 {
                let n1 = n as f64;
                let n2 = c.n as f64;
                let delta = c.mean - mean;
                let total = n1 + n2;
                mean += delta * n2 / total;
                m2 += c.m2 + delta * delta * n1 * n2 / total;
                n += c.n;
            }
            let variance = if n < 2 { 0.0 } else { m2 / (n - 1) as f64 };
            let std_err = if n == 0 {
                0.0
            } else {
                (variance / n as f64).sqrt()
            };
            // pvtm-lint: allow(no-float-eq) an exactly zero mean has no defined relative error
            let rel_err = if mean == 0.0 {
                f64::INFINITY
            } else {
                std_err / mean.abs()
            };
            TracePoint {
                chunk: c.chunk,
                samples: n,
                value: mean,
                std_err,
                rel_err,
            }
        })
        .collect()
}

/// Derives one trace's [`TraceHealth`] from its running points and (when
/// present) its per-chunk weight moments. Chunk moments are folded in
/// chunk-index order so the f64 sums are schedule-independent.
fn trace_health(
    points: &[TracePoint],
    chunks: Option<&[(u64, HealthChunk)]>,
) -> Option<TraceHealth> {
    if points.is_empty() {
        return None;
    }
    let mut stalled = 0u64;
    for w in points.windows(2) {
        let (p0, p1) = (w[0], w[1]);
        if p0.samples == 0 || p1.samples == 0 {
            continue;
        }
        let h0 = 1.96 * p0.std_err;
        let h1 = 1.96 * p1.std_err;
        let expected = h0 * (p0.samples as f64 / p1.samples as f64).sqrt();
        if h1 > expected * 1.25 {
            stalled += 1;
        }
    }
    let steps = (points.len() - 1) as u64;
    let mut health = TraceHealth {
        has_weights: false,
        contributing: 0,
        ess: 0.0,
        ess_fraction: 1.0,
        max_weight_fraction: 0.0,
        steps,
        stalled_steps: stalled,
        stall_ratio: if steps == 0 {
            0.0
        } else {
            stalled as f64 / steps as f64
        },
    };
    if let Some(chunks) = chunks {
        let mut sorted: Vec<(u64, HealthChunk)> = chunks.to_vec();
        sorted.sort_by_key(|&(chunk, _)| chunk);
        let (mut fails, mut ws, mut wss, mut wmax) = (0u64, 0.0f64, 0.0f64, 0.0f64);
        for (_, h) in &sorted {
            fails += h.fails;
            ws += h.weight_sum;
            wss += h.weight_sq_sum;
            wmax = wmax.max(h.weight_max);
        }
        health.has_weights = true;
        health.contributing = fails;
        health.ess = if wss > 0.0 { ws * ws / wss } else { 0.0 };
        health.ess_fraction = if fails == 0 {
            1.0
        } else {
            health.ess / fails as f64
        };
        health.max_weight_fraction = if ws > 0.0 { wmax / ws } else { 0.0 };
    }
    Some(health)
}

/// The run-level `mc.*` health gauges derived from per-trace health:
/// worst case across traces — minimum ESS / ESS fraction over weighted
/// traces, maximum weight concentration and stall ratio over all traces.
/// Derived here (not `gauge_set` from workers) because gauges merge by
/// maximum, which would invert the min-ESS semantics.
fn derived_health_gauges(traces: &[TraceRow]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let healths: Vec<&TraceHealth> = traces.iter().filter_map(|t| t.health.as_ref()).collect();
    if healths.is_empty() {
        return out;
    }
    let weighted: Vec<&&TraceHealth> = healths.iter().filter(|h| h.has_weights).collect();
    if !weighted.is_empty() {
        let ess = weighted.iter().map(|h| h.ess).fold(f64::INFINITY, f64::min);
        let essf = weighted
            .iter()
            .map(|h| h.ess_fraction)
            .fold(f64::INFINITY, f64::min);
        let wf = weighted
            .iter()
            .map(|h| h.max_weight_fraction)
            .fold(0.0, f64::max);
        out.push(("mc.ess".to_string(), ess));
        out.push(("mc.ess_fraction".to_string(), essf));
        out.push(("mc.max_weight_fraction".to_string(), wf));
    }
    let stall = healths.iter().map(|h| h.stall_ratio).fold(0.0, f64::max);
    out.push(("mc.stall_ratio".to_string(), stall));
    out
}

impl Report {
    /// A counter's merged value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// A span aggregate by `/`-joined path.
    pub fn span(&self, path: &str) -> Option<&SpanRow> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// A convergence trace by name.
    pub fn trace(&self, name: &str) -> Option<&TraceRow> {
        self.traces.iter().find(|t| t.name == name)
    }

    /// The solver-counter object of the sidecar. The rescue keys are
    /// emitted only when the rescue ladder ran at all, so sidecars of
    /// rescue-free runs stay byte-identical to pre-rescue output.
    fn solver_value(&self) -> Value {
        let mut fields = vec![
            ("solves", Value::Num(self.solver.solves as f64)),
            (
                "newton_iterations",
                Value::Num(self.solver.newton_iterations as f64),
            ),
            (
                "lu_factorizations",
                Value::Num(self.solver.lu_factorizations as f64),
            ),
            (
                "warm_attempts",
                Value::Num(self.solver.warm_attempts as f64),
            ),
            ("warm_hits", Value::Num(self.solver.warm_hits as f64)),
            ("cold_solves", Value::Num(self.solver.cold_solves as f64)),
            (
                "damped_retries",
                Value::Num(self.solver.damped_retries as f64),
            ),
            ("source_ramps", Value::Num(self.solver.source_ramps as f64)),
            ("gmin_steps", Value::Num(self.solver.gmin_steps as f64)),
            ("ramp_steps", Value::Num(self.solver.ramp_steps as f64)),
        ];
        if self.solver.rescue_attempts > 0 {
            fields.push((
                "rescue_attempts",
                Value::Num(self.solver.rescue_attempts as f64),
            ));
            fields.push(("rescue_hits", Value::Num(self.solver.rescue_hits as f64)));
            fields.push(("rescue_rungs", Value::Num(self.solver.rescue_rungs as f64)));
        }
        fields.push(("warm_hit_rate", Value::Num(self.solver.warm_hit_rate)));
        obj(fields)
    }

    /// The sidecar document (`results/<id>.telemetry.json` schema) as a
    /// JSON tree.
    pub fn to_value(&self, id: &str) -> Value {
        let mut doc = vec![
            ("schema", Value::Str("pvtm-telemetry/3".into())),
            ("schema_version", Value::Num(f64::from(SCHEMA_VERSION))),
            ("id", Value::Str(id.into())),
            ("mode", Value::Str(self.mode.as_str().into())),
            ("clock", Value::Bool(self.clock)),
            ("solver", self.solver_value()),
            (
                "counters",
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Value::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Value::Arr(
                    self.histograms
                        .iter()
                        .map(|h| {
                            obj(vec![
                                ("name", Value::Str(h.name.clone())),
                                ("count", Value::Num(h.count as f64)),
                                ("underflow", Value::Num(h.underflow as f64)),
                                (
                                    "buckets",
                                    Value::Arr(
                                        h.buckets
                                            .iter()
                                            .map(|b| {
                                                obj(vec![
                                                    ("log2", Value::Num(f64::from(b.log2))),
                                                    (
                                                        "lo",
                                                        Value::Num(2.0f64.powi(i32::from(b.log2))),
                                                    ),
                                                    // Explicit `le`-style upper bound, so
                                                    // Prometheus rendering and report
                                                    // consumers agree without re-deriving
                                                    // it from the log2 index.
                                                    (
                                                        "hi",
                                                        Value::Num(
                                                            2.0f64.powi(i32::from(b.log2) + 1),
                                                        ),
                                                    ),
                                                    ("count", Value::Num(b.count as f64)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "spans",
                Value::Arr(
                    self.spans
                        .iter()
                        .map(|s| {
                            let mut fields = vec![
                                ("path", Value::Str(s.path.clone())),
                                ("count", Value::Num(s.count as f64)),
                                ("total_ns", Value::Num(s.total_ns as f64)),
                                ("self_ns", Value::Num(s.self_ns as f64)),
                                (
                                    "mean_ns",
                                    Value::Num(if s.count == 0 {
                                        0.0
                                    } else {
                                        s.total_ns as f64 / s.count as f64
                                    }),
                                ),
                                ("solves", Value::Num(s.solves as f64)),
                                ("newton_iterations", Value::Num(s.newton_iterations as f64)),
                                ("lu_factorizations", Value::Num(s.lu_factorizations as f64)),
                                ("cold_solves", Value::Num(s.cold_solves as f64)),
                            ];
                            // Like the solver section: rescue keys appear
                            // only when the ladder ran under this span.
                            if s.rescue_attempts > 0 {
                                fields.push((
                                    "rescue_attempts",
                                    Value::Num(s.rescue_attempts as f64),
                                ));
                                fields.push(("rescue_hits", Value::Num(s.rescue_hits as f64)));
                            }
                            obj(fields)
                        })
                        .collect(),
                ),
            ),
            (
                "traces",
                Value::Arr(
                    self.traces
                        .iter()
                        .map(|t| {
                            let mut fields = vec![
                                ("name", Value::Str(t.name.clone())),
                                (
                                    "points",
                                    Value::Arr(
                                        t.points
                                            .iter()
                                            .map(|p| {
                                                obj(vec![
                                                    ("chunk", Value::Num(p.chunk as f64)),
                                                    ("samples", Value::Num(p.samples as f64)),
                                                    ("value", Value::Num(p.value)),
                                                    ("std_err", Value::Num(p.std_err)),
                                                    ("rel_err", Value::Num(p.rel_err)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ];
                            if let Some(h) = &t.health {
                                let mut hv = Vec::new();
                                if h.has_weights {
                                    hv.push(("contributing", Value::Num(h.contributing as f64)));
                                    hv.push(("ess", Value::Num(h.ess)));
                                    hv.push(("ess_fraction", Value::Num(h.ess_fraction)));
                                    hv.push((
                                        "max_weight_fraction",
                                        Value::Num(h.max_weight_fraction),
                                    ));
                                }
                                hv.push(("steps", Value::Num(h.steps as f64)));
                                hv.push(("stalled_steps", Value::Num(h.stalled_steps as f64)));
                                hv.push(("stall_ratio", Value::Num(h.stall_ratio)));
                                fields.push(("health", obj(hv)));
                            }
                            obj(fields)
                        })
                        .collect(),
                ),
            ),
        ];
        if !self.quarantine.is_empty() {
            doc.push((
                "quarantine",
                Value::Arr(
                    self.quarantine
                        .iter()
                        .map(|q| {
                            obj(vec![
                                // Hex strings, not Num: full-range u64 replay
                                // keys don't survive an f64 round trip.
                                ("seed", Value::Str(format!("{:#018x}", q.seed))),
                                ("stream", Value::Str(format!("{:#018x}", q.stream))),
                                ("corner", Value::Num(q.corner)),
                                ("kind", Value::Str(q.kind.into())),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        obj(doc)
    }

    /// The sidecar document as pretty-printed JSON text.
    pub fn to_json_pretty(&self, id: &str) -> String {
        let mut s = self.to_value(id).to_json_pretty();
        s.push('\n');
        s
    }

    /// One compact human line summarizing the run — the per-figure row of
    /// the summary table.
    pub fn summary_line(&self, id: &str) -> String {
        let mut line = format!(
            "[telemetry {id}] solves={} warm={:.1}% newton={} lu={}",
            self.solver.solves,
            self.solver.warm_hit_rate * 100.0,
            self.solver.newton_iterations,
            self.solver.lu_factorizations,
        );
        let fallbacks = self.solver.damped_retries + self.solver.source_ramps;
        if fallbacks > 0 {
            line.push_str(&format!(" fallbacks={fallbacks}"));
        }
        if self.solver.rescue_attempts > 0 {
            line.push_str(&format!(
                " rescue={}/{}",
                self.solver.rescue_hits, self.solver.rescue_attempts
            ));
        }
        if !self.quarantine.is_empty() {
            line.push_str(&format!(" quarantined={}", self.quarantine.len()));
        }
        for t in &self.traces {
            if let Some(p) = t.points.last() {
                line.push_str(&format!(
                    " {}: {:.3e}±{:.0e} ({} chunks)",
                    t.name,
                    p.value,
                    p.std_err,
                    t.points.len()
                ));
            }
        }
        if self.mode == Mode::Full {
            line.push_str(&format!(" spans={}", self.spans.len()));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use crate::{json, test_guard, Mode};

    #[test]
    fn sidecar_json_round_trips_and_has_schema() {
        let _g = test_guard();
        crate::set_mode(Mode::Full);
        crate::set_clock_enabled(false);
        crate::reset();
        {
            let _s = crate::span("fig");
            crate::counter_add("eval.margins", 3);
            crate::record_solver(&crate::SolverDelta {
                solves: 1,
                newton_iterations: 2,
                warm_attempts: 1,
                warm_hits: 1,
                ..Default::default()
            });
            let _t = crate::trace_scope("fig.mc");
            let h = crate::active_trace().unwrap();
            crate::record_chunk(&h, 0, 4096, 1e-4, 1e-6);
        }
        let r = crate::snapshot();
        let text = r.to_json_pretty("fig");
        let v = json::parse(&text).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("pvtm-telemetry/3"));
        assert_eq!(
            v.get("schema_version").unwrap().as_u64(),
            Some(u64::from(crate::SCHEMA_VERSION))
        );
        assert_eq!(v.get("id").unwrap().as_str(), Some("fig"));
        assert_eq!(
            v.get("solver").unwrap().get("solves").unwrap().as_u64(),
            Some(1)
        );
        let rate = v
            .get("solver")
            .unwrap()
            .get("warm_hit_rate")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((rate - 1.0).abs() < 1e-15);
        let traces = v.get("traces").unwrap().as_array().unwrap();
        assert_eq!(traces[0].get("name").unwrap().as_str(), Some("fig.mc"));
        let pts = traces[0].get("points").unwrap().as_array().unwrap();
        assert_eq!(pts[0].get("samples").unwrap().as_u64(), Some(4096));
        crate::set_mode(Mode::Off);
        crate::set_clock_enabled(true);
    }

    #[test]
    fn clock_off_reports_are_byte_identical() {
        let _g = test_guard();
        crate::set_mode(Mode::Full);
        crate::set_clock_enabled(false);
        let run = || {
            crate::reset();
            {
                let _a = crate::span("outer");
                for _ in 0..3 {
                    let _b = crate::span("inner");
                    crate::counter_add("n", 1);
                    crate::hist_record("h", 3.0);
                }
            }
            crate::snapshot().to_json_pretty("det")
        };
        let first = run();
        let second = run();
        assert_eq!(first, second);
        assert!(first.contains("\"total_ns\": 0"));
        crate::set_mode(Mode::Off);
        crate::set_clock_enabled(true);
    }

    #[test]
    fn summary_line_is_compact() {
        let _g = test_guard();
        crate::set_mode(Mode::Summary);
        crate::reset();
        crate::record_solver(&crate::SolverDelta {
            solves: 10,
            newton_iterations: 25,
            warm_attempts: 10,
            warm_hits: 9,
            cold_solves: 1,
            damped_retries: 1,
            ..Default::default()
        });
        let line = crate::snapshot().summary_line("fig2a");
        assert!(line.contains("fig2a"));
        assert!(line.contains("solves=10"));
        assert!(line.contains("warm=90.0%"));
        assert!(line.contains("fallbacks=1"));
        crate::set_mode(Mode::Off);
    }
}
