//! Hand-rolled `std::net` HTTP/1.1 scrape endpoint for the live metrics
//! plane (no new dependencies, GET-only, bounded).
//!
//! Opt-in via `PVTM_METRICS_ADDR` (e.g. `127.0.0.1:9184`, or port `0` to
//! let the OS pick — the bench Reporter writes the bound address to
//! `<results>/metrics.addr` for discovery). With the knob unset nothing
//! here runs and every output stays byte-identical to a server-free run;
//! scrapes never mutate the registry, so that holds with the knob set too.
//!
//! Endpoints:
//!
//! - `/metrics` — Prometheus text exposition of a consistent
//!   [`crate::snapshot::live`] capture;
//! - `/snapshot.json` — the same capture as sorted-key JSON (sidecar
//!   schema plus live-plane members);
//! - `/healthz` — `200 ok` or `503` with one line per tripped
//!   `pvtm-trace health` axis (LOW_ESS / WEIGHT_DEGENERATE / STALLED /
//!   QUARANTINE_BIASED).
//!
//! Architecture: one accept thread feeding a bounded queue, a two-thread
//! worker pool draining it (excess connections are dropped, never
//! buffered unboundedly), graceful shutdown on run finalize via a stop
//! flag plus a self-connect to unblock `accept`. All timing goes through
//! [`crate::clock`] — no direct wall-clock reads, so clock-gated scrapes
//! are deterministic modulo run progress.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::snapshot;

/// Worker threads draining the accept queue.
const WORKERS: usize = 2;
/// Bounded accept queue depth; connections beyond it are dropped.
const QUEUE: usize = 32;
/// Cap on request bytes read before answering 400.
const MAX_REQUEST_BYTES: usize = 4096;
/// Socket read timeout so a stalled client cannot pin a worker.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// A running metrics server; shuts down gracefully on drop.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Starts the server iff `PVTM_METRICS_ADDR` is set and non-empty. Bind
/// failures are reported to stderr and swallowed — a typo'd knob must not
/// kill a long run, and the deterministic outputs are unaffected either
/// way.
pub fn start_from_env() -> Option<ServerHandle> {
    let spec = std::env::var("PVTM_METRICS_ADDR").ok()?;
    let spec = spec.trim().to_string();
    if spec.is_empty() {
        return None;
    }
    match start(&spec) {
        Ok(handle) => Some(handle),
        Err(e) => {
            eprintln!("pvtm-telemetry: cannot serve metrics on {spec:?}: {e}");
            None
        }
    }
}

/// Binds `spec` (a `host:port` address; port 0 picks a free port) and
/// starts the accept thread and worker pool.
///
/// # Errors
///
/// Propagates the bind/local-addr I/O error.
pub fn start(spec: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(spec)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(QUEUE);
    let rx = Arc::new(Mutex::new(rx));
    let workers = (0..WORKERS)
        .map(|_| {
            let rx = Arc::clone(&rx);
            std::thread::spawn(move || worker(&rx))
        })
        .collect();
    let accept_stop = Arc::clone(&stop);
    let accept = std::thread::spawn(move || accept_loop(&listener, &tx, &accept_stop));
    snapshot::set_live(true);
    snapshot::start_watch();
    Ok(ServerHandle {
        addr,
        stop,
        accept: Some(accept),
        workers,
    })
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop without touching the wall clock.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // The accept thread owned the queue sender; with it gone the
        // workers' `recv` fails and they exit.
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        snapshot::set_live(false);
    }
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, stop: &AtomicBool) {
    loop {
        match listener.accept() {
            Ok((conn, _)) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                // Bounded: drop the connection when the queue is full.
                let _ = tx.try_send(conn);
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
}

fn worker(rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // Hold the lock only while waiting; handling runs unlocked so the
        // other worker can pick up the next connection meanwhile.
        let conn = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(poisoned) => poisoned.into_inner().recv(),
        };
        match conn {
            Ok(conn) => handle(conn),
            Err(_) => break,
        }
    }
}

/// Reads the request head (up to the blank line or the byte cap) and
/// returns the request line.
fn read_request_line(conn: &mut TcpStream) -> Option<String> {
    let _ = conn.set_read_timeout(Some(READ_TIMEOUT));
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < MAX_REQUEST_BYTES {
        match conn.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    head.lines().next().map(str::to_string)
}

fn handle(mut conn: TcpStream) {
    let Some(request_line) = read_request_line(&mut conn) else {
        return;
    };
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let path = target.split('?').next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => {
                let snap = snapshot::live();
                (
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    snap.prometheus(),
                )
            }
            "/snapshot.json" => {
                let snap = snapshot::live();
                ("200 OK", "application/json", snap.to_json())
            }
            "/healthz" => {
                let snap = snapshot::live();
                let failures = snap.health_failures();
                if failures.is_empty() {
                    ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string())
                } else {
                    let mut body = failures.join("\n");
                    body.push('\n');
                    ("503 Service Unavailable", "text/plain; charset=utf-8", body)
                }
            }
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nConnection: close\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let _ = conn.write_all(response.as_bytes());
    let _ = conn.flush();
}
