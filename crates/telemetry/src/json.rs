//! Minimal self-contained JSON tree: a value type, a recursive-descent
//! parser, and a pretty writer.
//!
//! The workspace's `serde`/`serde_json` shims are write-only; telemetry
//! also needs to *read* its own sidecars (the CI checker validates them,
//! tests round-trip them), so this module carries both halves. It handles
//! exactly the JSON this crate emits plus anything structurally similar —
//! no streaming, no borrowed strings, no number-precision heroics beyond
//! `f64`.

use std::fmt;

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up an object member by key; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// Renders pretty-printed JSON text (2-space indent).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => write_num(out, *x),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent.map(|d| d + 1));
                    item.write(out, indent.map(|d| d + 1));
                }
                if !items.is_empty() {
                    newline(out, indent);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent.map(|d| d + 1));
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent.map(|d| d + 1));
                }
                if !members.is_empty() {
                    newline(out, indent);
                }
                out.push('}');
            }
        }
    }
}

/// Convenience constructor for an object value.
pub fn obj(members: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn newline(out: &mut String, indent: Option<usize>) {
    if let Some(d) = indent {
        out.push('\n');
        for _ in 0..d {
            out.push_str("  ");
        }
    }
}

fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        // Same convention as serde_json: non-finite numbers become null.
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 1e15 {
        // Counters and bucket indices print as integers.
        use fmt::Write;
        let _ = write!(out, "{}", x as i64);
    } else {
        use fmt::Write;
        let _ = write!(out, "{x:?}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: what was expected and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not produced by this crate's
                            // writer; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -3.5e2 ").unwrap(), Value::Num(-350.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2.5, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert_eq!(v.get("c"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn round_trips_through_writer() {
        let src = r#"{"id":"fig2a","n":4096,"rate":0.992,"tags":["a","b"],"none":null}"#;
        let v = parse(src).unwrap();
        let compact = v.to_json();
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = v.to_json_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"id\": \"fig2a\""));
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Value::Num(4096.0).to_json(), "4096");
        assert_eq!(Value::Num(0.5).to_json(), "0.5");
        assert_eq!(Value::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Value::Num(7.0).as_u64(), Some(7));
        assert_eq!(Value::Num(7.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"open"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        let err = parse("{\"a\":}").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }
}
