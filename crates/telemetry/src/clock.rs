//! The workspace's only wall-clock access point.
//!
//! Every other crate is forbidden (by `pvtm-lint`'s `no-wallclock` rule)
//! from touching `std::time::Instant`/`SystemTime` directly: timing must
//! flow through a [`Stopwatch`], which reads the clock only while
//! [`crate::clock_enabled`] is true. With `PVTM_TELEMETRY_CLOCK=off` every
//! stopwatch reports zero, which is what keeps telemetry sidecars and
//! bench reports byte-identical across runs.

use std::time::Instant;

/// A start-time capture that respects the telemetry clock gate.
///
/// [`Stopwatch::started`] reads the wall clock only when the gate is open;
/// otherwise (and for [`Stopwatch::inert`]) every elapsed query returns
/// zero. The gate is sampled once at construction, so a toggle mid-flight
/// cannot produce a partial (and therefore nondeterministic) measurement.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Option<Instant>,
}

impl Stopwatch {
    /// Starts timing now — if the clock gate is open. Otherwise the
    /// stopwatch is inert and reports zero elapsed time.
    #[must_use]
    pub fn started() -> Stopwatch {
        Stopwatch {
            start: crate::clock_enabled().then(Instant::now),
        }
    }

    /// A stopwatch that never reads the clock and always reports zero.
    #[must_use]
    pub fn inert() -> Stopwatch {
        Stopwatch { start: None }
    }

    /// Whether this stopwatch captured a real start time.
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.start.is_some()
    }

    /// Nanoseconds since construction; `0` if inert or gated off.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        self.start
            .map(|t| t.elapsed().as_nanos().min(u64::MAX as u128) as u64)
            .unwrap_or(0)
    }

    /// Seconds since construction; `0.0` if inert or gated off.
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.start.map(|t| t.elapsed().as_secs_f64()).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_stopwatch_reports_zero() {
        let w = Stopwatch::inert();
        assert!(!w.is_running());
        assert_eq!(w.elapsed_ns(), 0);
        assert_eq!(w.elapsed_secs(), 0.0);
    }

    #[test]
    fn gated_off_stopwatch_reports_zero() {
        let _g = crate::test_guard();
        let prev = crate::clock_enabled();
        crate::set_clock_enabled(false);
        let w = Stopwatch::started();
        assert!(!w.is_running());
        assert_eq!(w.elapsed_ns(), 0);
        crate::set_clock_enabled(prev);
    }

    #[test]
    fn running_stopwatch_moves_forward() {
        let _g = crate::test_guard();
        let prev = crate::clock_enabled();
        crate::set_clock_enabled(true);
        let w = Stopwatch::started();
        assert!(w.is_running());
        let a = w.elapsed_ns();
        let b = w.elapsed_ns();
        assert!(b >= a);
        crate::set_clock_enabled(prev);
    }
}
