//! Structured, deterministic run journal (`results/<id>.events.jsonl`).
//!
//! Every figure run can emit an append-only stream of lifecycle events —
//! Monte-Carlo estimator starts, per-chunk convergence and weight-health
//! snapshots, rescue-ladder escalations, quarantined samples, experiment
//! milestones — one JSON object per line. The journal is the streaming
//! counterpart of the sidecar: `pvtm-trace tail` renders progress from it
//! while a run is still going, and `pvtm-trace health` cross-checks it
//! against the final sidecar afterwards.
//!
//! # Two orders, one contract
//!
//! Events arrive from worker threads in schedule order, which is not
//! reproducible. The journal therefore exists in two forms:
//!
//! - **Live** (while the run is in flight): lines are appended in arrival
//!   order as they happen, so a tailing consumer sees progress with no
//!   buffering delay and a killed run keeps a valid partial record. Live
//!   sequence numbers reflect arrival.
//! - **Canonical** (after [`finalize_journal`]): the buffered events are
//!   sorted by their deterministic key — `(k1, k2, kind, payload)` — and
//!   renumbered densely, and the file is atomically rewritten. Because the
//!   *multiset* of events is a pure function of the seeds, two
//!   `PVTM_TELEMETRY_CLOCK=off` runs produce byte-identical canonical
//!   journals. Events with fully identical payloads sort as equals, which
//!   is harmless: identical lines are interchangeable bytes.
//!
//! # Schema
//!
//! Line 0 is always `{"seq":0,"kind":"run.start","schema":"pvtm-events/1",
//! "id":…,"mode":…,"clock":…}`; the last line of a finalized journal is a
//! `run.end` with the event count. Body kinds follow the DESIGN.md §5d
//! taxonomy (`mc.start`, `mc.chunk`, `mc.health`, `mc.quarantine`,
//! `mc.estimate`, `solver.rescue`, `figure.corner`). Consumers must ignore
//! unknown kinds and unknown fields.
//!
//! # Gating
//!
//! Recording follows the telemetry mode (`PVTM_TELEMETRY`): events are
//! dropped entirely in `off` mode. `PVTM_EVENTS=off|0` additionally
//! disables the journal while leaving the rest of telemetry on; the
//! disabled fast path is one atomic load.

use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::json::{obj, Value};
use crate::Mode;

/// Journal schema marker written into every `run.start` line.
pub const SCHEMA: &str = "pvtm-events/1";

const STATE_UNSET: u8 = u8::MAX;

static ENABLED: AtomicU8 = AtomicU8::new(STATE_UNSET);

/// Whether event recording is enabled (`PVTM_EVENTS` unset or not
/// `off`/`0`, *and* telemetry itself is on).
pub fn enabled() -> bool {
    if crate::mode() == Mode::Off {
        return false;
    }
    match ENABLED.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => {
            let on = !matches!(
                std::env::var("PVTM_EVENTS")
                    .unwrap_or_default()
                    .to_ascii_lowercase()
                    .as_str(),
                "off" | "0"
            );
            set_enabled(on);
            on
        }
    }
}

/// Overrides the `PVTM_EVENTS` gate (tests and harnesses). Telemetry mode
/// still applies: events are never recorded in `Mode::Off`.
pub fn set_enabled(on: bool) {
    ENABLED.store(u8::from(on), Ordering::Relaxed);
}

/// One buffered event. `k1`/`k2` are the deterministic sort keys supplied
/// by the producer (e.g. trace-name hash and chunk index); the rendered
/// line carries only `kind` and the payload fields.
#[derive(Debug, Clone, PartialEq)]
struct EventRec {
    kind: &'static str,
    k1: u64,
    k2: u64,
    fields: Vec<(&'static str, Value)>,
}

impl EventRec {
    fn line(&self, seq: usize) -> String {
        let mut members = vec![
            ("seq", Value::Num(seq as f64)),
            ("kind", Value::Str(self.kind.to_string())),
        ];
        members.extend(self.fields.iter().map(|(k, v)| (*k, v.clone())));
        obj(members).to_json()
    }
}

#[derive(Debug, Default)]
struct Journal {
    /// All events of the current run, in arrival order.
    events: Vec<EventRec>,
    /// Live sink: open while a figure run is journaling to disk.
    live: Option<LiveSink>,
}

#[derive(Debug)]
struct LiveSink {
    file: File,
    path: PathBuf,
    id: String,
    /// Lines written so far (header included), i.e. the next live seq.
    written: usize,
}

static JOURNAL: Mutex<Journal> = Mutex::new(Journal {
    events: Vec::new(),
    live: None,
});

fn journal() -> MutexGuard<'static, Journal> {
    JOURNAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// FNV-1a over a name — the stable `k1` grouping key for per-trace events.
/// Only used for ordering, never rendered.
pub(crate) fn name_key(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn header_line(id: &str) -> String {
    obj(vec![
        ("seq", Value::Num(0.0)),
        ("kind", Value::Str("run.start".into())),
        ("schema", Value::Str(SCHEMA.into())),
        ("id", Value::Str(id.into())),
        ("mode", Value::Str(crate::mode().as_str().into())),
        ("clock", Value::Bool(crate::clock_enabled())),
    ])
    .to_json()
}

/// Records one event under the deterministic sort key `(k1, k2)`. When a
/// live journal is open the line is also appended (single `write_all`, so
/// a kill can truncate at most the final line). No-op unless [`enabled`].
pub fn emit(kind: &'static str, k1: u64, k2: u64, fields: Vec<(&'static str, Value)>) {
    if !enabled() {
        return;
    }
    let rec = EventRec {
        kind,
        k1,
        k2,
        fields,
    };
    let mut j = journal();
    if let Some(live) = j.live.as_mut() {
        let mut line = rec.line(live.written);
        line.push('\n');
        if live.file.write_all(line.as_bytes()).is_ok() {
            live.written += 1;
        }
    }
    j.events.push(rec);
}

/// Renders the canonical journal text: header, body events in
/// deterministic `(k1, k2, kind, payload)` order with dense sequence
/// numbers, and the `run.end` footer carrying `extra` fields.
pub fn render(id: &str, extra: &[(&'static str, Value)]) -> String {
    let mut out = header_line(id);
    out.push('\n');
    let j = journal();
    // The rendered payload (with a placeholder seq) is the final
    // tie-breaker: events identical in key and payload are interchangeable.
    let mut indexed: Vec<&EventRec> = j.events.iter().collect();
    indexed.sort_by_key(|e| (e.k1, e.k2, e.kind, e.line(0)));
    let mut seq = 1usize;
    for e in indexed {
        out.push_str(&e.line(seq));
        out.push('\n');
        seq += 1;
    }
    drop(j);
    let mut footer = vec![
        ("seq", Value::Num(seq as f64)),
        ("kind", Value::Str("run.end".into())),
        ("id", Value::Str(id.into())),
        ("events", Value::Num((seq - 1) as f64)),
    ];
    footer.extend(extra.iter().map(|(k, v)| (*k, v.clone())));
    out.push_str(&obj(footer).to_json());
    out.push('\n');
    out
}

/// Opens a live journal at `path` for figure `id`: truncates the file and
/// writes the `run.start` header. Subsequent [`emit`] calls append live
/// lines in arrival order until [`finalize_journal`]. No-op (returning
/// `Ok(false)`) unless [`enabled`].
///
/// # Errors
///
/// Propagates filesystem errors from creating the file.
pub fn open_journal(path: &Path, id: &str) -> std::io::Result<bool> {
    if !enabled() {
        return Ok(false);
    }
    // The run id changes what live scrapes report; bump the write epoch.
    let _scope = crate::snapshot::write_scope();
    let mut file = File::create(path)?;
    let mut header = header_line(id);
    header.push('\n');
    file.write_all(header.as_bytes())?;
    file.flush()?;
    journal().live = Some(LiveSink {
        file,
        path: path.to_path_buf(),
        id: id.to_string(),
        written: 1,
    });
    Ok(true)
}

/// Closes the live journal: renders the canonical (sorted, densely
/// renumbered) form and atomically replaces the live file with it, so the
/// on-disk artifact is byte-identical across clock-off runs. Returns the
/// journal path when one was open.
///
/// # Errors
///
/// Propagates filesystem errors; the live (arrival-order) file is left in
/// place when the canonical rewrite fails.
pub fn finalize_journal(extra: &[(&'static str, Value)]) -> std::io::Result<Option<PathBuf>> {
    let _scope = crate::snapshot::write_scope();
    let Some(live) = journal().live.take() else {
        return Ok(None);
    };
    let text = render(&live.id, extra);
    let tmp = live.path.with_extension("jsonl.tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, &live.path)?;
    Ok(Some(live.path))
}

/// The id of the currently open live journal, if any — what live scrapes
/// report as the run id.
pub(crate) fn live_id() -> Option<String> {
    journal().live.as_ref().map(|l| l.id.clone())
}

/// Drops all buffered events and closes any live journal without
/// finalizing it (the partial live file stays on disk). Called by
/// [`crate::reset`] at figure boundaries.
pub(crate) fn clear() {
    let mut j = journal();
    j.events.clear();
    j.live = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_mode_buffers_nothing() {
        let _g = crate::test_guard();
        crate::set_mode(Mode::Off);
        set_enabled(true);
        clear();
        emit("mc.start", 0, 0, vec![("samples", Value::Num(1.0))]);
        assert_eq!(journal().events.len(), 0);
    }

    #[test]
    fn events_gate_disables_independently_of_mode() {
        let _g = crate::test_guard();
        crate::set_mode(Mode::Summary);
        set_enabled(false);
        clear();
        emit("mc.start", 0, 0, vec![]);
        assert_eq!(journal().events.len(), 0);
        set_enabled(true);
        emit("mc.start", 0, 0, vec![]);
        assert_eq!(journal().events.len(), 1);
        crate::set_mode(Mode::Off);
        clear();
    }

    #[test]
    fn canonical_render_sorts_and_renumbers_densely() {
        let _g = crate::test_guard();
        crate::set_mode(Mode::Summary);
        crate::set_clock_enabled(false);
        set_enabled(true);
        clear();
        let k = name_key("t.mc");
        // Arrival order deliberately scrambled.
        emit("mc.chunk", k, 2, vec![("chunk", Value::Num(2.0))]);
        emit("mc.chunk", k, 0, vec![("chunk", Value::Num(0.0))]);
        emit("mc.chunk", k, 1, vec![("chunk", Value::Num(1.0))]);
        let text = render("det", &[]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "header + 3 events + footer:\n{text}");
        assert!(lines[0].contains("\"run.start\""));
        assert!(lines[0].contains("pvtm-events/1"));
        assert!(lines[1].contains("\"chunk\": 0") || lines[1].contains("\"chunk\":0"));
        assert!(lines[3].contains("\"chunk\":2") || lines[3].contains("\"chunk\": 2"));
        assert!(lines[4].contains("\"run.end\""));
        // Dense sequence numbers 0..=4.
        for (i, l) in lines.iter().enumerate() {
            let doc = crate::json::parse(l).expect("journal line parses");
            assert_eq!(doc.get("seq").and_then(Value::as_u64), Some(i as u64));
        }
        crate::set_mode(Mode::Off);
        crate::set_clock_enabled(true);
        clear();
    }

    #[test]
    fn render_is_identical_across_arrival_orders() {
        let _g = crate::test_guard();
        crate::set_mode(Mode::Summary);
        crate::set_clock_enabled(false);
        set_enabled(true);
        let k = name_key("t.mc");
        let run = |order: &[u64]| {
            clear();
            for &c in order {
                emit("mc.chunk", k, c, vec![("chunk", Value::Num(c as f64))]);
            }
            render("det", &[])
        };
        let a = run(&[0, 1, 2, 3]);
        let b = run(&[3, 1, 0, 2]);
        assert_eq!(a, b, "canonical journal must not depend on arrival order");
        crate::set_mode(Mode::Off);
        crate::set_clock_enabled(true);
        clear();
    }

    #[test]
    fn live_journal_finalizes_to_canonical_file() {
        let _g = crate::test_guard();
        crate::set_mode(Mode::Summary);
        crate::set_clock_enabled(false);
        set_enabled(true);
        clear();
        let dir = std::env::temp_dir().join("pvtm-events-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("unit.events.jsonl");
        assert!(open_journal(&path, "unit").unwrap());
        let k = name_key("t.mc");
        emit("mc.chunk", k, 1, vec![("chunk", Value::Num(1.0))]);
        emit("mc.chunk", k, 0, vec![("chunk", Value::Num(0.0))]);
        // The live file already holds header + 2 arrival-order lines.
        let live = std::fs::read_to_string(&path).unwrap();
        assert_eq!(live.lines().count(), 3);
        let out = finalize_journal(&[("solves", Value::Num(7.0))]).unwrap();
        assert_eq!(out.as_deref(), Some(path.as_path()));
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, render("unit", &[("solves", Value::Num(7.0))]));
        assert!(text.ends_with("\n"));
        assert!(text.contains("\"solves\": 7") || text.contains("\"solves\":7"));
        let _ = std::fs::remove_dir_all(&dir);
        crate::set_mode(Mode::Off);
        crate::set_clock_enabled(true);
        clear();
    }
}
