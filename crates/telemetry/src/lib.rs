//! Zero-dependency observability for the pvtm workspace.
//!
//! Every reproduced figure hides thousands of Newton solves and rare-event
//! Monte-Carlo samples; this crate makes their health visible without
//! disturbing them:
//!
//! - **Hierarchical timed spans** ([`span`]): RAII guards that aggregate
//!   `{count, total_ns}` per `/`-joined path in a thread-local collector.
//! - **Typed counters, gauges and log2-bucketed histograms**
//!   ([`counter_add`], [`gauge_set`], [`hist_record`]), plus a fixed-layout
//!   fast path for the DC solver's per-solve deltas ([`record_solver`]).
//! - **Convergence traces** ([`trace_scope`], [`record_chunk`]): Monte-Carlo
//!   chunk loops snapshot their running moments every chunk, and the final
//!   [`Report`] reconstructs a per-chunk `value / std_err / rel_err` series.
//!
//! # Modes
//!
//! Everything is gated by `PVTM_TELEMETRY=off|summary|full` (see [`Mode`];
//! default **off**). The disabled path of every record function is a single
//! atomic load. `summary` records counters, histograms, the solver fast
//! path and traces; `full` additionally records timed spans.
//!
//! # Determinism
//!
//! Worker threads accumulate into thread-local collectors that merge into a
//! process-global collector when each thread exits; under the workspace's
//! rayon shim (scoped threads that join before a parallel call returns) the
//! merged totals are independent of scheduling and chunk order, because
//! every merge operation is commutative (integer adds; gauges keep the
//! maximum). Traces are keyed by chunk index and sorted at snapshot time.
//! With the monotonic clock disabled (`PVTM_TELEMETRY_CLOCK=off` or
//! [`set_clock_enabled`]) span durations read as zero and an entire
//! [`Report`] — spans included — renders byte-identically across runs.
//!
//! # Example
//!
//! ```
//! use pvtm_telemetry as tm;
//!
//! tm::set_mode(tm::Mode::Full);
//! tm::reset();
//! {
//!     let _outer = tm::span("figure");
//!     let _inner = tm::span("corner");
//!     tm::counter_add("corners", 1);
//! }
//! let report = tm::snapshot();
//! assert_eq!(report.counter("corners"), 1);
//! assert!(report.span("figure/corner").is_some());
//! tm::set_mode(tm::Mode::Off);
//! ```

pub mod clock;
pub mod events;
pub mod fault;
pub mod json;
mod report;
pub mod serve;
pub mod snapshot;
mod trace_events;

pub use report::{
    HistBucket, HistRow, Report, SolverSummary, SpanRow, TraceHealth, TracePoint, TraceRow,
    SCHEMA_VERSION,
};
pub use snapshot::update_scope;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

// ---------------------------------------------------------------- mode gate

/// Telemetry recording level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Mode {
    /// Record nothing; every instrumentation call is one atomic load.
    Off,
    /// Record counters, gauges, histograms, solver deltas and traces.
    Summary,
    /// Everything in `Summary` plus timed spans.
    Full,
}

impl Mode {
    /// Stable lowercase name (`off` / `summary` / `full`).
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::Summary => "summary",
            Mode::Full => "full",
        }
    }
}

const MODE_UNSET: u8 = u8::MAX;
static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);
static CLOCK: AtomicU8 = AtomicU8::new(MODE_UNSET);

/// Current mode; initialized from `PVTM_TELEMETRY` on first use.
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        0 => Mode::Off,
        1 => Mode::Summary,
        2 => Mode::Full,
        _ => {
            let m = mode_from_env();
            set_mode(m);
            m
        }
    }
}

fn mode_from_env() -> Mode {
    match std::env::var("PVTM_TELEMETRY")
        .unwrap_or_default()
        .to_ascii_lowercase()
        .as_str()
    {
        "summary" => Mode::Summary,
        "full" | "1" => Mode::Full,
        _ => Mode::Off,
    }
}

/// Overrides the mode (tests and harnesses; normally the env var decides).
pub fn set_mode(m: Mode) {
    MODE.store(m as u8, Ordering::Relaxed);
}

/// Whether any recording is active (`mode() != Off`).
pub fn is_enabled() -> bool {
    mode() != Mode::Off
}

/// Whether span durations are read from the monotonic clock; initialized
/// from `PVTM_TELEMETRY_CLOCK` (`off`/`0` disables) on first use.
pub fn clock_enabled() -> bool {
    match CLOCK.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => {
            let on = !matches!(
                std::env::var("PVTM_TELEMETRY_CLOCK")
                    .unwrap_or_default()
                    .to_ascii_lowercase()
                    .as_str(),
                "off" | "0"
            );
            set_clock_enabled(on);
            on
        }
    }
}

/// Enables or disables the monotonic clock. Disabled, span durations are
/// recorded as zero and reports are byte-identical across runs.
pub fn set_clock_enabled(on: bool) {
    CLOCK.store(u8::from(on), Ordering::Relaxed);
}

// ---------------------------------------------------------------- collector

/// Solver work charged to a span: the subset of [`SolverDelta`] that the
/// attribution model follows per span path (the rest stays global-only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SpanSolver {
    pub(crate) solves: u64,
    pub(crate) newton_iterations: u64,
    pub(crate) lu_factorizations: u64,
    pub(crate) cold_solves: u64,
    pub(crate) rescue_attempts: u64,
    pub(crate) rescue_hits: u64,
}

impl SpanSolver {
    fn add(&mut self, other: &SpanSolver) {
        self.solves += other.solves;
        self.newton_iterations += other.newton_iterations;
        self.lu_factorizations += other.lu_factorizations;
        self.cold_solves += other.cold_solves;
        self.rescue_attempts += other.rescue_attempts;
        self.rescue_hits += other.rescue_hits;
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct SpanStat {
    pub(crate) count: u64,
    pub(crate) total_ns: u64,
    /// Wall-clock accumulated by direct children (same-thread nesting and
    /// spans adopted under this path by parallel workers). The report
    /// derives `self_ns = total_ns - child_ns`, saturating at zero — a
    /// parallel region's children can sum to more CPU time than the
    /// parent's wall-clock.
    pub(crate) child_ns: u64,
    /// Solver work recorded while this path was the innermost span.
    pub(crate) solver: SpanSolver,
}

/// A log2-bucketed histogram: bucket `e` counts values in `[2^e, 2^(e+1))`.
/// Non-positive and non-finite values land in `underflow`.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Hist {
    pub(crate) count: u64,
    pub(crate) underflow: u64,
    pub(crate) buckets: BTreeMap<i16, u64>,
}

impl Hist {
    fn record(&mut self, v: f64) {
        self.count += 1;
        match bucket_exp(v) {
            Some(e) => *self.buckets.entry(e).or_insert(0) += 1,
            None => self.underflow += 1,
        }
    }

    fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.underflow += other.underflow;
        for (&e, &c) in &other.buckets {
            *self.buckets.entry(e).or_insert(0) += c;
        }
    }
}

/// Floor of log2 for a positive finite value, via the IEEE exponent field
/// (exact — no rounding surprises at bucket edges).
fn bucket_exp(v: f64) -> Option<i16> {
    if !v.is_finite() || v <= 0.0 {
        return None;
    }
    let biased = ((v.to_bits() >> 52) & 0x7ff) as i32;
    // Subnormals all collapse into the bottom bucket.
    let e = if biased == 0 { -1023 } else { biased - 1023 };
    Some(e as i16)
}

/// One solve's worth of DC-solver counter increments, recorded through a
/// single thread-local access by [`record_solver`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverDelta {
    /// Completed solves.
    pub solves: u64,
    /// Newton iterations.
    pub newton_iterations: u64,
    /// LU factorizations.
    pub lu_factorizations: u64,
    /// Warm-start attempts.
    pub warm_attempts: u64,
    /// Warm-start attempts that converged.
    pub warm_hits: u64,
    /// Cold solves (fallbacks included).
    pub cold_solves: u64,
    /// Cold solves that needed the damped retry.
    pub damped_retries: u64,
    /// Cold solves that fell through to the source ramp.
    pub source_ramps: u64,
    /// Gmin-continuation stages run.
    pub gmin_steps: u64,
    /// Source-ramp steps run.
    pub ramp_steps: u64,
    /// Solves that entered the rescue ladder after the cold ladder failed.
    pub rescue_attempts: u64,
    /// Rescue-ladder entries that converged.
    pub rescue_hits: u64,
    /// Individual rescue rungs run.
    pub rescue_rungs: u64,
}

impl SolverDelta {
    fn add(&mut self, other: &SolverDelta) {
        self.solves += other.solves;
        self.newton_iterations += other.newton_iterations;
        self.lu_factorizations += other.lu_factorizations;
        self.warm_attempts += other.warm_attempts;
        self.warm_hits += other.warm_hits;
        self.cold_solves += other.cold_solves;
        self.damped_retries += other.damped_retries;
        self.source_ramps += other.source_ramps;
        self.gmin_steps += other.gmin_steps;
        self.ramp_steps += other.ramp_steps;
        self.rescue_attempts += other.rescue_attempts;
        self.rescue_hits += other.rescue_hits;
        self.rescue_rungs += other.rescue_rungs;
    }
}

/// One quarantined Monte-Carlo sample: enough provenance to replay it in
/// isolation (`substream(seed, stream)`) and to attribute it to a corner.
/// Recorded by [`record_quarantine`]; rendered in the sidecar's
/// `quarantine` section (present only when non-empty, so reports without
/// quarantined samples are byte-identical to pre-quarantine output).
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineRecord {
    /// Master seed of the estimator run.
    pub seed: u64,
    /// Substream index of the unresolved sample.
    pub stream: u64,
    /// Inter-die corner (σ·Vt shift) the sample was evaluated at.
    pub corner: f64,
    /// Error kind (the `CircuitError` variant name, e.g. `no_convergence`).
    pub kind: &'static str,
}

#[derive(Debug, Default)]
struct Collector {
    /// Current span path of this thread (`/`-joined names).
    path: String,
    spans: BTreeMap<String, SpanStat>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, Hist>,
    solver: SolverDelta,
}

impl Collector {
    fn clear_stats(&mut self) {
        self.spans.clear();
        self.counters.clear();
        self.gauges.clear();
        self.hists.clear();
        self.solver = SolverDelta::default();
    }

    fn merge_into(&mut self, g: &mut Global) {
        for (path, s) in std::mem::take(&mut self.spans) {
            let e = g.spans.entry(path).or_default();
            e.count += s.count;
            e.total_ns += s.total_ns;
            e.child_ns += s.child_ns;
            e.solver.add(&s.solver);
        }
        for (k, v) in std::mem::take(&mut self.counters) {
            *g.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in std::mem::take(&mut self.gauges) {
            // Deterministic regardless of merge order: keep the maximum.
            let e = g.gauges.entry(k).or_insert(f64::NEG_INFINITY);
            *e = e.max(v);
        }
        for (k, h) in std::mem::take(&mut self.hists) {
            g.hists.entry(k).or_default().merge(&h);
        }
        g.solver.add(&self.solver);
        self.solver = SolverDelta::default();
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        // Worker threads flush here as they exit (the rayon shim joins its
        // scoped workers before a parallel call returns, so totals are
        // complete by the time the caller can snapshot).
        self.merge_into(&mut global());
    }
}

#[derive(Debug, Default)]
struct Global {
    spans: BTreeMap<String, SpanStat>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, Hist>,
    solver: SolverDelta,
    traces: BTreeMap<String, Vec<ChunkStat>>,
    health: BTreeMap<String, Vec<(u64, HealthChunk)>>,
    quarantine: Vec<QuarantineRecord>,
}

static GLOBAL: Mutex<Global> = Mutex::new(Global {
    spans: BTreeMap::new(),
    counters: BTreeMap::new(),
    gauges: BTreeMap::new(),
    hists: BTreeMap::new(),
    solver: SolverDelta {
        solves: 0,
        newton_iterations: 0,
        lu_factorizations: 0,
        warm_attempts: 0,
        warm_hits: 0,
        cold_solves: 0,
        damped_retries: 0,
        source_ramps: 0,
        gmin_steps: 0,
        ramp_steps: 0,
        rescue_attempts: 0,
        rescue_hits: 0,
        rescue_rungs: 0,
    },
    traces: BTreeMap::new(),
    health: BTreeMap::new(),
    quarantine: Vec::new(),
});

fn global() -> MutexGuard<'static, Global> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static LOCAL: RefCell<Collector> = RefCell::new(Collector::default());
    static TRACE_STACK: RefCell<Vec<Arc<str>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` on the thread-local collector; silently skipped during thread
/// teardown (after the TLS slot is destroyed).
fn with_local(f: impl FnOnce(&mut Collector)) {
    let _ = LOCAL.try_with(|c| f(&mut c.borrow_mut()));
}

// ---------------------------------------------------------------- spans

/// RAII guard for a timed span; created by [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    watch: clock::Stopwatch,
    /// Path length to restore on drop; `usize::MAX` marks an inactive guard.
    prev_len: usize,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.prev_len == usize::MAX {
            return;
        }
        let ns = self.watch.elapsed_ns();
        let prev_len = self.prev_len;
        with_local(|c| {
            if snapshot::live_tracking() {
                snapshot::span_closed(&c.path);
            }
            if let Some(s) = c.spans.get_mut(&c.path) {
                s.count += 1;
                s.total_ns += ns;
            } else {
                c.spans.insert(
                    c.path.clone(),
                    SpanStat {
                        count: 1,
                        total_ns: ns,
                        ..SpanStat::default()
                    },
                );
            }
            c.path.truncate(prev_len);
            // Charge this span's wall-clock to the parent (after the
            // truncate, `c.path` *is* the parent path — an adopted prefix
            // counts too, which is what keeps post-hoc-merged worker spans
            // from double-counting into the parent's self-time).
            if !c.path.is_empty() {
                if let Some(p) = c.spans.get_mut(&c.path) {
                    p.child_ns += ns;
                } else {
                    c.spans.insert(
                        c.path.clone(),
                        SpanStat {
                            child_ns: ns,
                            ..SpanStat::default()
                        },
                    );
                }
            }
        });
    }
}

/// Opens a timed span named `name`, nested under any span already open on
/// this thread. Active only in [`Mode::Full`]; otherwise the guard is inert.
///
/// `name` must not contain `/` (the path separator).
#[must_use = "a span measures the scope of its guard"]
pub fn span(name: &str) -> SpanGuard {
    if mode() != Mode::Full {
        return SpanGuard {
            watch: clock::Stopwatch::inert(),
            prev_len: usize::MAX,
        };
    }
    debug_assert!(!name.contains('/'), "span name {name:?} contains '/'");
    let mut prev_len = usize::MAX;
    with_local(|c| {
        prev_len = c.path.len();
        if !c.path.is_empty() {
            c.path.push('/');
        }
        c.path.push_str(name);
        // Live-plane only: mirror the open span into the scrape registry
        // while a metrics server runs (never on the deterministic path).
        if snapshot::live_tracking() {
            snapshot::span_opened(&c.path);
        }
    });
    SpanGuard {
        watch: if prev_len != usize::MAX {
            clock::Stopwatch::started()
        } else {
            clock::Stopwatch::inert()
        },
        prev_len,
    }
}

// ------------------------------------------------- parallel span adoption

/// Cloneable capture of the calling thread's current span path, taken at a
/// parallel fan-out boundary by [`parallel_context`] and re-established on
/// worker threads with [`adopt`].
#[derive(Debug, Clone)]
pub struct SpanContext {
    path: Option<Arc<str>>,
}

/// Captures the current span path (the coordinating thread's innermost
/// open span) so worker closures can [`adopt`] it. Returns an inert
/// context unless [`Mode::Full`] is active and a span is open.
#[must_use]
pub fn parallel_context() -> SpanContext {
    if mode() != Mode::Full {
        return SpanContext { path: None };
    }
    let mut path = None;
    with_local(|c| {
        if !c.path.is_empty() {
            path = Some(Arc::from(c.path.as_str()));
        }
    });
    SpanContext { path }
}

/// RAII guard restoring a worker thread's span path on drop; created by
/// [`adopt`].
#[derive(Debug)]
#[must_use = "the adopted span path lasts only while the guard lives"]
pub struct AdoptGuard {
    adopted: bool,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        if self.adopted {
            with_local(|c| c.path.clear());
        }
    }
}

/// Re-establishes the captured span path on this thread, so spans opened
/// (and solver work recorded) by a parallel worker nest under the
/// coordinator's span exactly as same-thread children do. A no-op when the
/// context is inert or the thread already has an open span (the rayon
/// shim's single-core inline fallback runs workers on the coordinating
/// thread, whose path is already the context).
pub fn adopt(ctx: &SpanContext) -> AdoptGuard {
    let Some(path) = &ctx.path else {
        return AdoptGuard { adopted: false };
    };
    if mode() != Mode::Full {
        return AdoptGuard { adopted: false };
    }
    let mut adopted = false;
    with_local(|c| {
        if c.path.is_empty() {
            c.path.push_str(path);
            adopted = true;
        }
    });
    AdoptGuard { adopted }
}

// ------------------------------------------------- counters / gauges / hists

/// Adds `n` to the named counter. No-op unless `mode() >= Summary`.
pub fn counter_add(name: &'static str, n: u64) {
    if mode() == Mode::Off {
        return;
    }
    with_local(|c| *c.counters.entry(name).or_insert(0) += n);
}

/// Records a gauge observation. Gauges merge across threads by keeping the
/// **maximum**, which is order-independent. No-op unless `mode() >= Summary`.
pub fn gauge_set(name: &'static str, v: f64) {
    if mode() == Mode::Off {
        return;
    }
    with_local(|c| {
        let e = c.gauges.entry(name).or_insert(f64::NEG_INFINITY);
        *e = e.max(v);
    });
}

/// Records `v` into the named log2-bucketed histogram (bucket `e` holds
/// `[2^e, 2^(e+1))`; non-positive values count as underflow). No-op unless
/// `mode() >= Summary`.
pub fn hist_record(name: &'static str, v: f64) {
    if mode() == Mode::Off {
        return;
    }
    with_local(|c| c.hists.entry(name).or_default().record(v));
}

/// Records one solve's counter increments and a `solver.newton_per_solve`
/// histogram sample, through a single thread-local access. This is the DC
/// hot path: disabled cost is one atomic load. No-op unless
/// `mode() >= Summary`.
pub fn record_solver(delta: &SolverDelta) {
    if mode() == Mode::Off {
        return;
    }
    with_local(|c| {
        c.solver.add(delta);
        c.hists
            .entry("solver.newton_per_solve")
            .or_default()
            .record(delta.newton_iterations as f64);
        // Attribution: charge the innermost span (empty outside Full mode,
        // so this costs nothing on the Summary-mode hot path).
        if !c.path.is_empty() {
            let charge = SpanSolver {
                solves: delta.solves,
                newton_iterations: delta.newton_iterations,
                lu_factorizations: delta.lu_factorizations,
                cold_solves: delta.cold_solves,
                rescue_attempts: delta.rescue_attempts,
                rescue_hits: delta.rescue_hits,
            };
            if let Some(s) = c.spans.get_mut(&c.path) {
                s.solver.add(&charge);
            } else {
                c.spans.insert(
                    c.path.clone(),
                    SpanStat {
                        solver: charge,
                        ..SpanStat::default()
                    },
                );
            }
        }
    });
}

// ---------------------------------------------------------------- traces

/// One Monte-Carlo chunk's running moments, recorded by [`record_chunk`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ChunkStat {
    pub(crate) chunk: u64,
    pub(crate) n: u64,
    pub(crate) mean: f64,
    pub(crate) m2: f64,
}

/// RAII guard naming the convergence trace that Monte-Carlo loops started
/// inside its scope record into; created by [`trace_scope`].
#[derive(Debug)]
pub struct TraceGuard {
    active: bool,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if self.active {
            let _ = TRACE_STACK.try_with(|s| s.borrow_mut().pop());
        }
    }
}

/// Names the convergence trace for Monte-Carlo loops started while the
/// guard lives (on this thread — estimators capture the label *before*
/// fanning out, via [`active_trace`]). Nested scopes shadow outer ones.
#[must_use = "the trace label lasts only while the guard lives"]
pub fn trace_scope(name: &str) -> TraceGuard {
    if mode() == Mode::Off {
        return TraceGuard { active: false };
    }
    let mut active = false;
    let _ = TRACE_STACK.try_with(|s| {
        s.borrow_mut().push(Arc::from(name));
        active = true;
    });
    TraceGuard { active }
}

/// Cloneable handle to the innermost active trace scope; what a chunked
/// estimator captures on the calling thread and moves into its workers.
#[derive(Debug, Clone)]
pub struct TraceHandle(Arc<str>);

/// The innermost active trace label, or `None` when disabled or unset.
pub fn active_trace() -> Option<TraceHandle> {
    if mode() == Mode::Off {
        return None;
    }
    TRACE_STACK
        .try_with(|s| s.borrow().last().cloned())
        .ok()
        .flatten()
        .map(TraceHandle)
}

/// Records one chunk's running moments (`n` observations, Welford `mean`
/// and `m2`) under the handle's trace. Chunks may arrive in any order from
/// any thread; the report sorts by `chunk`. Also journals an `mc.chunk`
/// event keyed by `(trace, chunk)`.
pub fn record_chunk(handle: &TraceHandle, chunk: u64, n: u64, mean: f64, m2: f64) {
    if mode() == Mode::Off {
        return;
    }
    let _scope = snapshot::write_scope();
    global()
        .traces
        .entry(handle.0.to_string())
        .or_default()
        .push(ChunkStat { chunk, n, mean, m2 });
    events::emit(
        "mc.chunk",
        events::name_key(&handle.0),
        chunk,
        vec![
            ("trace", json::Value::Str(handle.0.to_string())),
            ("chunk", json::Value::Num(chunk as f64)),
            ("n", json::Value::Num(n as f64)),
            ("mean", json::Value::Num(mean)),
            ("m2", json::Value::Num(m2)),
        ],
    );
}

/// Journals an `mc.start` event announcing a chunked estimator's total
/// planned work (`samples` observations over `chunks` chunks) under the
/// handle's trace — what gives `pvtm-trace tail` its denominator for
/// progress and ETA. No-op unless `mode() >= Summary`.
pub fn record_mc_start(handle: &TraceHandle, samples: u64, chunks: u64) {
    if mode() == Mode::Off {
        return;
    }
    let _scope = snapshot::write_scope();
    snapshot::record_plan(&handle.0, samples, chunks);
    events::emit(
        "mc.start",
        events::name_key(&handle.0),
        u64::MAX, // sorts after every mc.chunk key, but kind breaks the tie first
        vec![
            ("trace", json::Value::Str(handle.0.to_string())),
            ("samples", json::Value::Num(samples as f64)),
            ("chunks", json::Value::Num(chunks as f64)),
        ],
    );
}

// ---------------------------------------------------------------- health

/// One Monte-Carlo chunk's estimator-health side channel: the
/// importance-sampling weight moments over *contributing* (failing)
/// samples in that chunk. Accumulated by estimators alongside — never
/// inside — the estimate arithmetic, so recording it cannot perturb the
/// reproduced numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HealthChunk {
    /// Contributing (failing) samples in this chunk.
    pub fails: u64,
    /// Σw over contributing samples.
    pub weight_sum: f64,
    /// Σw² over contributing samples.
    pub weight_sq_sum: f64,
    /// max(w) over contributing samples.
    pub weight_max: f64,
}

/// Records one chunk's health moments under the handle's trace and
/// journals an `mc.health` event. Chunks may arrive in any order from any
/// thread; the report sorts by chunk index and folds the moments (all
/// sums/max — commutative) into per-trace ESS and max-weight-fraction
/// diagnostics. No-op unless `mode() >= Summary`.
pub fn record_chunk_health(handle: &TraceHandle, chunk: u64, h: HealthChunk) {
    if mode() == Mode::Off {
        return;
    }
    let _scope = snapshot::write_scope();
    global()
        .health
        .entry(handle.0.to_string())
        .or_default()
        .push((chunk, h));
    events::emit(
        "mc.health",
        events::name_key(&handle.0),
        chunk,
        vec![
            ("trace", json::Value::Str(handle.0.to_string())),
            ("chunk", json::Value::Num(chunk as f64)),
            ("fails", json::Value::Num(h.fails as f64)),
            ("weight_sum", json::Value::Num(h.weight_sum)),
            ("weight_sq_sum", json::Value::Num(h.weight_sq_sum)),
            ("weight_max", json::Value::Num(h.weight_max)),
        ],
    );
}

// ---------------------------------------------------------------- quarantine

/// Records one quarantined sample. Events may arrive from any thread in any
/// order; the report sorts by `(stream, seed, kind)` so two clock-off runs
/// render byte-identically. Quarantine events are rare by construction
/// (bounded by `PVTM_MAX_QUARANTINE`), so going straight to the global
/// collector is fine. No-op unless `mode() >= Summary`.
pub fn record_quarantine(rec: QuarantineRecord) {
    if mode() == Mode::Off {
        return;
    }
    let _scope = snapshot::write_scope();
    events::emit(
        "mc.quarantine",
        rec.stream,
        rec.seed,
        vec![
            ("seed", json::Value::Str(format!("{:#018x}", rec.seed))),
            ("stream", json::Value::Num(rec.stream as f64)),
            ("corner", json::Value::Num(rec.corner)),
            // "reason", not "kind": the event's own "kind" member is
            // already taken by the taxonomy name.
            ("reason", json::Value::Str(rec.kind.to_string())),
        ],
    );
    global().quarantine.push(rec);
}

// ---------------------------------------------------------------- lifecycle

/// Flushes this thread's collector and snapshots the merged totals.
///
/// Call from the coordinating thread after parallel work completes (the
/// rayon shim's workers have already flushed by exiting).
pub fn snapshot() -> Report {
    with_local(|c| c.merge_into(&mut global()));
    report::build(&global(), mode(), clock_enabled())
}

/// Clears all recorded data (global and this thread's collector). The mode
/// and clock settings are untouched. Open spans keep their path and will
/// still record on drop.
pub fn reset() {
    with_local(Collector::clear_stats);
    let mut g = global();
    g.spans.clear();
    g.counters.clear();
    g.gauges.clear();
    g.hists.clear();
    g.solver = SolverDelta::default();
    g.traces.clear();
    g.health.clear();
    g.quarantine.clear();
    drop(g);
    snapshot::clear();
    events::clear();
}

#[cfg(test)]
pub(crate) fn test_guard() -> MutexGuard<'static, ()> {
    // Telemetry state is process-global; tests that touch it serialize.
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_mode_records_nothing() {
        let _g = test_guard();
        set_mode(Mode::Off);
        reset();
        {
            let _s = span("should-not-appear");
            counter_add("c", 5);
            gauge_set("g", 1.0);
            hist_record("h", 2.0);
            record_solver(&SolverDelta {
                solves: 1,
                ..Default::default()
            });
            let _t = trace_scope("t");
            assert!(active_trace().is_none());
        }
        let r = snapshot();
        assert!(r.spans.is_empty());
        assert!(r.counters.is_empty());
        assert!(r.gauges.is_empty());
        assert!(r.histograms.is_empty());
        assert!(r.traces.is_empty());
        assert_eq!(r.solver.solves, 0);
    }

    #[test]
    fn summary_mode_skips_spans_but_keeps_counters() {
        let _g = test_guard();
        set_mode(Mode::Summary);
        reset();
        {
            let _s = span("quiet");
            counter_add("c", 2);
            counter_add("c", 3);
        }
        let r = snapshot();
        assert!(r.spans.is_empty());
        assert_eq!(r.counter("c"), 5);
        set_mode(Mode::Off);
    }

    #[test]
    fn spans_nest_into_paths() {
        let _g = test_guard();
        set_mode(Mode::Full);
        reset();
        {
            let _a = span("outer");
            {
                let _b = span("inner");
            }
            {
                let _b = span("inner");
            }
        }
        let r = snapshot();
        assert_eq!(r.span("outer").unwrap().count, 1);
        assert_eq!(r.span("outer/inner").unwrap().count, 2);
        assert!(r.span("inner").is_none());
        set_mode(Mode::Off);
    }

    #[test]
    fn histogram_bucket_edges_are_exact() {
        // Bucket e covers [2^e, 2^(e+1)): powers of two open their own
        // bucket, the value just below belongs to the previous one.
        assert_eq!(bucket_exp(1.0), Some(0));
        assert_eq!(bucket_exp(1.999_999_9), Some(0));
        assert_eq!(bucket_exp(2.0), Some(1));
        assert_eq!(bucket_exp(4095.999), Some(11));
        assert_eq!(bucket_exp(4096.0), Some(12));
        assert_eq!(bucket_exp(0.5), Some(-1));
        assert_eq!(bucket_exp(0.499), Some(-2));
        assert_eq!(bucket_exp(0.0), None);
        assert_eq!(bucket_exp(-1.0), None);
        assert_eq!(bucket_exp(f64::INFINITY), None);
        assert_eq!(bucket_exp(f64::NAN), None);
    }

    #[test]
    fn histogram_counts_land_in_buckets() {
        let _g = test_guard();
        set_mode(Mode::Summary);
        reset();
        for v in [1.0, 1.5, 2.0, 3.0, 0.0, -4.0] {
            hist_record("h", v);
        }
        let r = snapshot();
        let h = r.histograms.iter().find(|h| h.name == "h").unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.underflow, 2);
        let bucket = |e: i16| h.buckets.iter().find(|b| b.log2 == e).map(|b| b.count);
        assert_eq!(bucket(0), Some(2));
        assert_eq!(bucket(1), Some(2));
        set_mode(Mode::Off);
    }

    #[test]
    fn solver_deltas_accumulate_and_rate_derives() {
        let _g = test_guard();
        set_mode(Mode::Summary);
        reset();
        record_solver(&SolverDelta {
            solves: 1,
            newton_iterations: 3,
            warm_attempts: 1,
            warm_hits: 1,
            ..Default::default()
        });
        record_solver(&SolverDelta {
            solves: 1,
            newton_iterations: 40,
            warm_attempts: 1,
            cold_solves: 1,
            ..Default::default()
        });
        let r = snapshot();
        assert_eq!(r.solver.solves, 2);
        assert_eq!(r.solver.newton_iterations, 43);
        assert!((r.solver.warm_hit_rate - 0.5).abs() < 1e-15);
        let h = r
            .histograms
            .iter()
            .find(|h| h.name == "solver.newton_per_solve")
            .unwrap();
        assert_eq!(h.count, 2);
        set_mode(Mode::Off);
    }

    #[test]
    fn traces_sort_and_reconstruct_running_error() {
        let _g = test_guard();
        set_mode(Mode::Summary);
        reset();
        {
            let _t = trace_scope("conv");
            let h = active_trace().unwrap();
            // Two chunks recorded out of order; each 100 samples of mean
            // 2.0 / 4.0 with zero spread.
            record_chunk(&h, 1, 100, 4.0, 0.0);
            record_chunk(&h, 0, 100, 2.0, 0.0);
        }
        assert!(active_trace().is_none());
        let r = snapshot();
        let t = r.trace("conv").unwrap();
        assert_eq!(t.points.len(), 2);
        assert_eq!(t.points[0].chunk, 0);
        assert_eq!(t.points[0].samples, 100);
        assert_eq!(t.points[0].value, 2.0);
        assert_eq!(t.points[1].samples, 200);
        assert_eq!(t.points[1].value, 3.0);
        assert!(t.points[1].rel_err > 0.0);
        set_mode(Mode::Off);
    }

    #[test]
    fn nested_trace_scopes_shadow() {
        let _g = test_guard();
        set_mode(Mode::Summary);
        reset();
        let _a = trace_scope("outer");
        {
            let _b = trace_scope("inner");
            let h = active_trace().unwrap();
            record_chunk(&h, 0, 1, 1.0, 0.0);
        }
        let h = active_trace().unwrap();
        record_chunk(&h, 0, 1, 5.0, 0.0);
        drop(_a);
        let r = snapshot();
        assert_eq!(r.trace("inner").unwrap().points[0].value, 1.0);
        assert_eq!(r.trace("outer").unwrap().points[0].value, 5.0);
        set_mode(Mode::Off);
    }

    #[test]
    fn reset_clears_everything() {
        let _g = test_guard();
        set_mode(Mode::Summary);
        reset();
        counter_add("c", 1);
        let _ = snapshot();
        reset();
        let r = snapshot();
        assert!(r.counters.is_empty());
        assert_eq!(r.solver.solves, 0);
        set_mode(Mode::Off);
    }
}
