//! Chrome trace-event (Perfetto / `about://tracing`) export of a
//! [`Report`]'s span tree.
//!
//! The report holds *aggregates* per span path, not individual span
//! instances, so the exporter synthesizes a flame-chart-shaped timeline:
//! one complete (`"ph": "X"`) event per span path, children laid out
//! sequentially inside their parent starting at the parent's start. When a
//! parallel region's children sum to more CPU time than the parent's
//! wall-clock, child durations are scaled down proportionally so the
//! nesting stays valid — the `args` of every event carry the true
//! unscaled totals (`total_ns`, `self_ns`, counts, attributed solver
//! work), which is what Perfetto's selection panel shows.
//!
//! Counters (named counters plus the merged solver counters) are emitted
//! as `"ph": "C"` counter events at `ts = 0`.

use crate::json::{obj, Value};
use crate::report::{Report, SpanRow};

/// Microseconds (trace-event time unit) from nanoseconds.
fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

fn span_event(s: &SpanRow, ts_us: f64, dur_us: f64) -> Value {
    let name = s.path.rsplit('/').next().unwrap_or(&s.path);
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("cat", Value::Str("span".into())),
        ("ph", Value::Str("X".into())),
        ("ts", Value::Num(ts_us)),
        ("dur", Value::Num(dur_us)),
        ("pid", Value::Num(1.0)),
        ("tid", Value::Num(1.0)),
        (
            "args",
            obj(vec![
                ("path", Value::Str(s.path.clone())),
                ("count", Value::Num(s.count as f64)),
                ("total_ns", Value::Num(s.total_ns as f64)),
                ("self_ns", Value::Num(s.self_ns as f64)),
                ("solves", Value::Num(s.solves as f64)),
                ("newton_iterations", Value::Num(s.newton_iterations as f64)),
                ("lu_factorizations", Value::Num(s.lu_factorizations as f64)),
                ("cold_solves", Value::Num(s.cold_solves as f64)),
            ]),
        ),
    ])
}

fn counter_event(name: &str, value: f64) -> Value {
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("cat", Value::Str("counter".into())),
        ("ph", Value::Str("C".into())),
        ("ts", Value::Num(0.0)),
        ("pid", Value::Num(1.0)),
        ("args", obj(vec![("value", Value::Num(value))])),
    ])
}

/// Direct children of `parent` (index into `spans`, or the roots for
/// `None`), relying on the rows being in path order.
fn children(spans: &[SpanRow], parent: Option<usize>) -> Vec<usize> {
    let prefix = parent.map(|p| format!("{}/", spans[p].path));
    spans
        .iter()
        .enumerate()
        .filter(|(_, s)| match &prefix {
            Some(pre) => s.path.starts_with(pre.as_str()) && !s.path[pre.len()..].contains('/'),
            None => !s.path.contains('/'),
        })
        .map(|(i, _)| i)
        .collect()
}

fn layout(
    spans: &[SpanRow],
    parent: Option<usize>,
    start_us: f64,
    avail_us: f64,
    out: &mut Vec<Value>,
) {
    let kids = children(spans, parent);
    let total: f64 = kids.iter().map(|&i| us(spans[i].total_ns)).sum();
    // pvtm-lint: allow(no-float-eq) exact zero means nothing to lay out
    let scale = if total > avail_us && total != 0.0 {
        avail_us / total
    } else {
        1.0
    };
    let mut cursor = start_us;
    for i in kids {
        let dur = us(spans[i].total_ns) * scale;
        out.push(span_event(&spans[i], cursor, dur));
        layout(spans, Some(i), cursor, dur, out);
        cursor += dur;
    }
}

impl Report {
    /// The span tree and counters as a Chrome trace-event document
    /// (loadable in Perfetto / `about://tracing`). `id` names the process.
    pub fn to_trace_events(&self, id: &str) -> Value {
        let mut events = vec![obj(vec![
            ("name", Value::Str("process_name".into())),
            ("ph", Value::Str("M".into())),
            ("ts", Value::Num(0.0)),
            ("pid", Value::Num(1.0)),
            ("tid", Value::Num(0.0)),
            (
                "args",
                obj(vec![("name", Value::Str(format!("pvtm {id}")))]),
            ),
        ])];
        layout(&self.spans, None, 0.0, f64::INFINITY, &mut events);
        for (name, v) in &self.counters {
            events.push(counter_event(name, *v as f64));
        }
        let s = &self.solver;
        for (name, v) in [
            ("solver.solves", s.solves),
            ("solver.newton_iterations", s.newton_iterations),
            ("solver.lu_factorizations", s.lu_factorizations),
            ("solver.cold_solves", s.cold_solves),
        ] {
            events.push(counter_event(name, v as f64));
        }
        obj(vec![
            ("traceEvents", Value::Arr(events)),
            ("displayTimeUnit", Value::Str("ms".into())),
            (
                "otherData",
                obj(vec![
                    ("id", Value::Str(id.to_string())),
                    ("mode", Value::Str(self.mode.as_str().into())),
                    ("clock", Value::Bool(self.clock)),
                    ("synthetic_timeline", Value::Bool(true)),
                ]),
            ),
        ])
    }

    /// [`Report::to_trace_events`] as pretty-printed JSON text.
    pub fn to_trace_events_json(&self, id: &str) -> String {
        let mut s = self.to_trace_events(id).to_json_pretty();
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::json::Value;
    use crate::{test_guard, Mode};

    /// Every event must carry the structural fields the trace-event spec
    /// requires; X events additionally need a non-negative duration, and
    /// children must nest inside their parent's [ts, ts+dur] window.
    #[test]
    fn trace_events_are_structurally_valid() {
        let _g = test_guard();
        crate::set_mode(Mode::Full);
        crate::reset();
        {
            let _a = crate::span("fig");
            {
                let _b = crate::span("inner");
                crate::record_solver(&crate::SolverDelta {
                    solves: 1,
                    newton_iterations: 4,
                    lu_factorizations: 4,
                    ..Default::default()
                });
            }
            crate::counter_add("eval.margins", 2);
        }
        let r = crate::snapshot();
        let doc = r.to_trace_events("fig");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let mut xs = Vec::new();
        for e in events {
            let ph = e.get("ph").and_then(Value::as_str).expect("ph");
            assert!(matches!(ph, "X" | "C" | "M"), "unexpected phase {ph}");
            assert!(e.get("name").and_then(Value::as_str).is_some());
            assert!(e.get("ts").and_then(Value::as_f64).is_some());
            assert!(e.get("pid").and_then(Value::as_f64).is_some());
            if ph == "X" {
                let ts = e.get("ts").and_then(Value::as_f64).unwrap();
                let dur = e.get("dur").and_then(Value::as_f64).expect("dur");
                assert!(dur >= 0.0 && ts >= 0.0);
                let path = e
                    .get("args")
                    .and_then(|a| a.get("path"))
                    .and_then(Value::as_str)
                    .expect("args.path")
                    .to_string();
                xs.push((path, ts, dur));
            }
        }
        // Both spans exported; the child nests within the parent window.
        let find = |p: &str| xs.iter().find(|(q, _, _)| q == p).cloned().unwrap();
        let (_, pts, pdur) = find("fig");
        let (_, cts, cdur) = find("fig/inner");
        assert!(cts >= pts && cts + cdur <= pts + pdur + 1e-9);
        // Round-trips through the writer+parser (valid JSON).
        let text = r.to_trace_events_json("fig");
        let reparsed = crate::json::parse(&text).expect("trace_events JSON parses");
        assert_eq!(
            reparsed.get("displayTimeUnit").and_then(Value::as_str),
            Some("ms")
        );
        // Counter events carry the attributed values.
        let has_counter = events.iter().any(|e| {
            e.get("ph").and_then(Value::as_str) == Some("C")
                && e.get("name").and_then(Value::as_str) == Some("solver.newton_iterations")
                && e.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Value::as_u64)
                    == Some(4)
        });
        assert!(has_counter);
        crate::set_mode(Mode::Off);
    }

    /// Parallel children whose summed time exceeds the parent's wall-clock
    /// are compressed to fit, but keep true totals in args.
    #[test]
    fn overcommitted_children_scale_to_fit() {
        let _g = test_guard();
        crate::set_mode(Mode::Full);
        crate::reset();
        // Hand-build a report shape via the public API: parent measured 0ns
        // (clock off) while children carry synthetic totals is hard to do
        // without the clock, so assemble rows directly.
        let r = crate::Report {
            mode: Mode::Full,
            clock: true,
            spans: vec![
                crate::SpanRow {
                    path: "par".into(),
                    count: 1,
                    total_ns: 1_000,
                    child_ns: 4_000,
                    self_ns: 0,
                    solves: 0,
                    newton_iterations: 0,
                    lu_factorizations: 0,
                    cold_solves: 0,
                    rescue_attempts: 0,
                    rescue_hits: 0,
                },
                crate::SpanRow {
                    path: "par/chunk".into(),
                    count: 4,
                    total_ns: 4_000,
                    child_ns: 0,
                    self_ns: 4_000,
                    solves: 0,
                    newton_iterations: 0,
                    lu_factorizations: 0,
                    cold_solves: 0,
                    rescue_attempts: 0,
                    rescue_hits: 0,
                },
            ],
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
            solver: crate::SolverSummary {
                solves: 0,
                newton_iterations: 0,
                lu_factorizations: 0,
                warm_attempts: 0,
                warm_hits: 0,
                cold_solves: 0,
                damped_retries: 0,
                source_ramps: 0,
                gmin_steps: 0,
                ramp_steps: 0,
                rescue_attempts: 0,
                rescue_hits: 0,
                rescue_rungs: 0,
                warm_hit_rate: 1.0,
            },
            traces: vec![],
            quarantine: vec![],
        };
        let doc = r.to_trace_events("par");
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        let chunk = events
            .iter()
            .find(|e| {
                e.get("args")
                    .and_then(|a| a.get("path"))
                    .and_then(Value::as_str)
                    == Some("par/chunk")
            })
            .unwrap();
        // 4 µs of child time squeezed into the parent's 1 µs window…
        assert!((chunk.get("dur").and_then(Value::as_f64).unwrap() - 1.0).abs() < 1e-9);
        // …with the true total preserved in args.
        assert_eq!(
            chunk
                .get("args")
                .and_then(|a| a.get("total_ns"))
                .and_then(Value::as_u64),
            Some(4_000)
        );
        crate::set_mode(Mode::Off);
    }
}
