//! Thread-local collector merge under the rayon shim's `map_init`
//! parallelism: merged totals must be independent of how work was chunked
//! across worker threads.

use pvtm_telemetry as tm;
use rayon::prelude::*;
use std::sync::{Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    // Telemetry state is process-global; serialize the tests in this binary.
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn parallel_workload(items: usize) -> tm::Report {
    tm::reset();
    let _figure = tm::span("workload");
    let total: u64 = (0..items)
        .into_par_iter()
        .map_init(
            || (),
            |(), i| {
                let _s = tm::span("item");
                tm::counter_add("items", 1);
                tm::hist_record("value", (i + 1) as f64);
                tm::record_solver(&tm::SolverDelta {
                    solves: 1,
                    newton_iterations: 2,
                    warm_attempts: 1,
                    warm_hits: u64::from(i % 10 != 0),
                    ..Default::default()
                });
                1u64
            },
        )
        .sum();
    assert_eq!(total as usize, items);
    drop(_figure);
    tm::snapshot()
}

#[test]
fn map_init_merge_is_exact_and_chunking_independent() {
    let _g = lock();
    tm::set_mode(tm::Mode::Full);
    tm::set_clock_enabled(false);

    let items = 500;
    let r = parallel_workload(items);

    // Exact totals: every worker thread's collector merged exactly once.
    assert_eq!(r.counter("items"), items as u64);
    assert_eq!(r.solver.solves, items as u64);
    assert_eq!(r.solver.warm_attempts, items as u64);
    assert_eq!(r.solver.warm_hits, items as u64 - items as u64 / 10);
    let h = r.histograms.iter().find(|h| h.name == "value").unwrap();
    assert_eq!(h.count, items as u64);
    assert_eq!(h.buckets.iter().map(|b| b.count).sum::<u64>(), items as u64);

    // Spans: worker threads have no parent span (the `workload` span lives
    // on the coordinating thread), so items aggregate under their own root —
    // except on a single-core host, where the shim runs inline and the item
    // spans nest under the caller's open span.
    assert_eq!(r.span("workload").unwrap().count, 1);
    let item_path = if rayon::current_num_threads() > 1 {
        "item"
    } else {
        "workload/item"
    };
    assert_eq!(r.span(item_path).unwrap().count, items as u64);

    // Re-running the identical workload merges to the identical report —
    // scheduling and work-stealing order must not show through.
    let again = parallel_workload(items);
    assert_eq!(r, again);
    assert_eq!(
        r.to_json_pretty("merge"),
        again.to_json_pretty("merge"),
        "clock-off reports must be byte-identical"
    );

    tm::set_mode(tm::Mode::Off);
    tm::set_clock_enabled(true);
}

#[test]
fn trace_chunks_recorded_from_workers_reconstruct_in_order() {
    let _g = lock();
    tm::set_mode(tm::Mode::Summary);
    tm::reset();

    {
        let _t = tm::trace_scope("par.trace");
        // Capture on the coordinating thread, move into the workers — the
        // same pattern the Monte-Carlo chunk loops use.
        let handle = tm::active_trace().unwrap();
        (0..8u64).into_par_iter().for_each(|c| {
            tm::record_chunk(&handle, c, 100, c as f64, 0.0);
        });
    }

    let r = tm::snapshot();
    let t = r.trace("par.trace").unwrap();
    assert_eq!(t.points.len(), 8);
    for (i, p) in t.points.iter().enumerate() {
        assert_eq!(p.chunk, i as u64);
        assert_eq!(p.samples, 100 * (i as u64 + 1));
    }
    // Running mean of 0..=k is k/2 at every prefix.
    assert_eq!(t.points[7].value, 3.5);

    tm::set_mode(tm::Mode::Off);
}

#[test]
fn disabled_mode_stays_silent_under_parallelism() {
    let _g = lock();
    tm::set_mode(tm::Mode::Off);
    tm::reset();
    (0..64usize).into_par_iter().for_each(|_| {
        let _s = tm::span("ghost");
        tm::counter_add("ghost", 1);
    });
    let r = tm::snapshot();
    assert!(r.spans.is_empty());
    assert!(r.counters.is_empty());
}
