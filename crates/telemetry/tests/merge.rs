//! Thread-local collector merge under the rayon shim's `map_init`
//! parallelism: merged totals must be independent of how work was chunked
//! across worker threads.

use pvtm_telemetry as tm;
use rayon::prelude::*;
use std::sync::{Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    // Telemetry state is process-global; serialize the tests in this binary.
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn parallel_workload(items: usize) -> tm::Report {
    tm::reset();
    let _figure = tm::span("workload");
    let total: u64 = (0..items)
        .into_par_iter()
        .map_init(
            || (),
            |(), i| {
                let _s = tm::span("item");
                tm::counter_add("items", 1);
                tm::hist_record("value", (i + 1) as f64);
                tm::record_solver(&tm::SolverDelta {
                    solves: 1,
                    newton_iterations: 2,
                    warm_attempts: 1,
                    warm_hits: u64::from(i % 10 != 0),
                    ..Default::default()
                });
                1u64
            },
        )
        .sum();
    assert_eq!(total as usize, items);
    drop(_figure);
    tm::snapshot()
}

#[test]
fn map_init_merge_is_exact_and_chunking_independent() {
    let _g = lock();
    tm::set_mode(tm::Mode::Full);
    tm::set_clock_enabled(false);

    let items = 500;
    let r = parallel_workload(items);

    // Exact totals: every worker thread's collector merged exactly once.
    assert_eq!(r.counter("items"), items as u64);
    assert_eq!(r.solver.solves, items as u64);
    assert_eq!(r.solver.warm_attempts, items as u64);
    assert_eq!(r.solver.warm_hits, items as u64 - items as u64 / 10);
    let h = r.histograms.iter().find(|h| h.name == "value").unwrap();
    assert_eq!(h.count, items as u64);
    assert_eq!(h.buckets.iter().map(|b| b.count).sum::<u64>(), items as u64);

    // Spans: worker threads have no parent span (the `workload` span lives
    // on the coordinating thread), so items aggregate under their own root —
    // except on a single-core host, where the shim runs inline and the item
    // spans nest under the caller's open span.
    assert_eq!(r.span("workload").unwrap().count, 1);
    let item_path = if rayon::current_num_threads() > 1 {
        "item"
    } else {
        "workload/item"
    };
    assert_eq!(r.span(item_path).unwrap().count, items as u64);

    // Re-running the identical workload merges to the identical report —
    // scheduling and work-stealing order must not show through.
    let again = parallel_workload(items);
    assert_eq!(r, again);
    assert_eq!(
        r.to_json_pretty("merge"),
        again.to_json_pretty("merge"),
        "clock-off reports must be byte-identical"
    );

    tm::set_mode(tm::Mode::Off);
    tm::set_clock_enabled(true);
}

#[test]
fn trace_chunks_recorded_from_workers_reconstruct_in_order() {
    let _g = lock();
    tm::set_mode(tm::Mode::Summary);
    tm::reset();

    {
        let _t = tm::trace_scope("par.trace");
        // Capture on the coordinating thread, move into the workers — the
        // same pattern the Monte-Carlo chunk loops use.
        let handle = tm::active_trace().unwrap();
        (0..8u64).into_par_iter().for_each(|c| {
            tm::record_chunk(&handle, c, 100, c as f64, 0.0);
        });
    }

    let r = tm::snapshot();
    let t = r.trace("par.trace").unwrap();
    assert_eq!(t.points.len(), 8);
    for (i, p) in t.points.iter().enumerate() {
        assert_eq!(p.chunk, i as u64);
        assert_eq!(p.samples, 100 * (i as u64 + 1));
    }
    // Running mean of 0..=k is k/2 at every prefix.
    assert_eq!(t.points[7].value, 3.5);

    tm::set_mode(tm::Mode::Off);
}

fn adopted_workload(items: usize) -> tm::Report {
    tm::reset();
    {
        let _figure = tm::span("workload");
        let ctx = tm::parallel_context();
        let total: u64 = (0..items)
            .into_par_iter()
            .map_init(
                || tm::adopt(&ctx),
                |_adopted, i| {
                    let _s = tm::span("item");
                    tm::record_solver(&tm::SolverDelta {
                        solves: 1,
                        newton_iterations: 3,
                        cold_solves: u64::from(i % 7 == 0),
                        ..Default::default()
                    });
                    1u64
                },
            )
            .sum();
        assert_eq!(total as usize, items);
    }
    tm::snapshot()
}

#[test]
fn adopted_worker_spans_nest_under_the_coordinator_span() {
    let _g = lock();
    tm::set_mode(tm::Mode::Full);
    tm::set_clock_enabled(false);

    let items = 500;
    let r = adopted_workload(items);

    // With adoption, worker item spans nest under the figure span on every
    // host — the thread-count-dependent root-level "item" path is gone.
    assert!(r.span("item").is_none());
    let item = r.span("workload/item").unwrap();
    assert_eq!(item.count, items as u64);

    // Solver work lands on the innermost enclosing span.
    assert_eq!(item.solves, items as u64);
    assert_eq!(item.newton_iterations, 3 * items as u64);
    assert_eq!(item.cold_solves, (items as u64).div_ceil(7));
    let workload = r.span("workload").unwrap();
    assert_eq!(workload.solves, 0, "no solver work outside the items");

    // Adoption must not break merge determinism.
    let again = adopted_workload(items);
    assert_eq!(
        r.to_json_pretty("adopt"),
        again.to_json_pretty("adopt"),
        "clock-off adopted reports must be byte-identical"
    );

    tm::set_mode(tm::Mode::Off);
    tm::set_clock_enabled(true);
}

#[test]
fn adopted_children_are_excluded_from_parent_self_time() {
    let _g = lock();
    tm::set_mode(tm::Mode::Full);
    tm::set_clock_enabled(true);

    tm::reset();
    {
        let _figure = tm::span("workload");
        let ctx = tm::parallel_context();
        (0..256usize).into_par_iter().for_each(|_| {
            let _adopted = tm::adopt(&ctx);
            let _s = tm::span("item");
            // Enough work per item for a nonzero clock delta.
            let mut acc = 0u64;
            for k in 0..2000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            std::hint::black_box(acc);
        });
    }
    let r = tm::snapshot();
    let workload = r.span("workload").unwrap();
    let item = r.span("workload/item").unwrap();
    assert!(item.total_ns > 0, "items must have measured time");
    assert!(
        workload.self_ns < workload.total_ns,
        "adopted child time must be charged to the parent ({} !< {})",
        workload.self_ns,
        workload.total_ns
    );
    // Parallel children can sum past the parent's wall-clock; self-time
    // saturates at zero rather than wrapping.
    assert!(workload.self_ns <= workload.total_ns);

    tm::set_mode(tm::Mode::Off);
}

#[test]
fn sequential_nested_span_self_time_is_exact() {
    let _g = lock();
    tm::set_mode(tm::Mode::Full);
    tm::set_clock_enabled(true);

    tm::reset();
    {
        let _outer = tm::span("workload");
        for _ in 0..3 {
            let _inner = tm::span("item");
            let mut acc = 1u64;
            for k in 1..5000u64 {
                acc = acc.wrapping_mul(k) ^ (acc >> 7);
            }
            std::hint::black_box(acc);
        }
    }
    let r = tm::snapshot();
    let outer = r.span("workload").unwrap();
    let inner = r.span("workload/item").unwrap();
    // Same-thread nesting is exact: the parent's self time is its total
    // minus precisely the children's total.
    assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);

    tm::set_mode(tm::Mode::Off);
}

#[test]
fn chan_merge_reconstruction_is_chunk_order_independent() {
    let _g = lock();
    tm::set_mode(tm::Mode::Summary);

    // Per-chunk Welford moments with distinct means and spreads.
    let chunks: Vec<(u64, u64, f64, f64)> = (0..12u64)
        .map(|c| {
            (
                c,
                256 + 16 * c,
                1e-3 * (c as f64 + 1.0),
                1e-7 * (c as f64 + 0.5),
            )
        })
        .collect();

    let record = |order: &[usize]| {
        tm::reset();
        {
            let _t = tm::trace_scope("order.trace");
            let h = tm::active_trace().unwrap();
            for &i in order {
                let (c, n, mean, m2) = chunks[i];
                tm::record_chunk(&h, c, n, mean, m2);
            }
        }
        tm::snapshot().trace("order.trace").unwrap().clone()
    };

    let ascending: Vec<usize> = (0..chunks.len()).collect();
    let descending: Vec<usize> = (0..chunks.len()).rev().collect();
    let interleaved: Vec<usize> = (0..chunks.len()).map(|i| (i * 5) % chunks.len()).collect();

    let reference = record(&ascending);
    // The single-thread ascending recording is the reference; any other
    // arrival order (work-stealing workers record chunks as they finish)
    // must reconstruct the identical running (n, mean, m2) sequence —
    // bit-for-bit, not approximately.
    assert_eq!(record(&descending), reference);
    assert_eq!(record(&interleaved), reference);

    // And the same chunks recorded from parallel workers, racing, still
    // reconstruct the reference sequence.
    tm::reset();
    {
        let _t = tm::trace_scope("order.trace");
        let h = tm::active_trace().unwrap();
        chunks.par_iter().for_each(|&(c, n, mean, m2)| {
            tm::record_chunk(&h, c, n, mean, m2);
        });
    }
    let parallel = tm::snapshot().trace("order.trace").unwrap().clone();
    assert_eq!(parallel, reference);

    // Sanity on the reconstruction itself: cumulative sample counts.
    let expect_samples: u64 = chunks.iter().map(|&(_, n, _, _)| n).sum();
    assert_eq!(reference.points.last().unwrap().samples, expect_samples);

    tm::set_mode(tm::Mode::Off);
}

#[test]
fn disabled_mode_stays_silent_under_parallelism() {
    let _g = lock();
    tm::set_mode(tm::Mode::Off);
    tm::reset();
    (0..64usize).into_par_iter().for_each(|_| {
        let _s = tm::span("ghost");
        tm::counter_add("ghost", 1);
    });
    let r = tm::snapshot();
    assert!(r.spans.is_empty());
    assert!(r.counters.is_empty());
}
