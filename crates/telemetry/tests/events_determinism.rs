//! Event-journal determinism under the rayon shim: the canonical journal
//! must be a pure function of the recorded event multiset, independent of
//! worker scheduling, and two clock-off runs must produce byte-identical
//! files with dense sequence numbers.

use pvtm_telemetry as tm;
use pvtm_telemetry::json::Value;
use rayon::prelude::*;
use std::sync::{Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    // Telemetry state is process-global; serialize the tests in this binary.
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const CHUNKS: u64 = 24;

/// One simulated figure run: a chunked estimator recording start, chunks
/// and weight health from parallel workers, plus a quarantine event.
fn journaled_run() -> String {
    tm::reset();
    {
        let _t = tm::trace_scope("mc.journal_test");
        let h = tm::active_trace().unwrap();
        tm::record_mc_start(&h, 100 * CHUNKS, CHUNKS);
        (0..CHUNKS).into_par_iter().for_each(|c| {
            tm::record_chunk(&h, c, 100, c as f64 * 1e-3, 1e-6);
            tm::record_chunk_health(
                &h,
                c,
                tm::HealthChunk {
                    fails: 3,
                    weight_sum: 0.3,
                    weight_sq_sum: 0.03,
                    weight_max: 0.1,
                },
            );
        });
    }
    tm::record_quarantine(tm::QuarantineRecord {
        stream: 7,
        seed: 0xDEAD_BEEF,
        corner: 0.12,
        kind: "no_convergence",
    });
    tm::events::render("det-test", &[("solves", Value::Num(1.0))])
}

#[test]
fn canonical_journal_is_byte_identical_across_parallel_runs() {
    let _g = lock();
    tm::set_mode(tm::Mode::Summary);
    tm::set_clock_enabled(false);
    tm::events::set_enabled(true);

    let a = journaled_run();
    let b = journaled_run();
    assert_eq!(
        a, b,
        "worker scheduling must not show through the canonical journal"
    );

    // Contract checks on the rendered form: header, dense seqs, footer.
    let lines: Vec<&str> = a.lines().collect();
    // run.start + (mc.start + CHUNKS chunks + CHUNKS health + 1 quarantine) + run.end
    assert_eq!(lines.len() as u64, 2 * CHUNKS + 4);
    for (i, l) in lines.iter().enumerate() {
        let doc = tm::json::parse(l).expect("every journal line is a JSON object");
        assert_eq!(
            doc.get("seq").and_then(Value::as_u64),
            Some(i as u64),
            "sequence numbers must be dense and ascending: line {l}"
        );
    }
    let first = tm::json::parse(lines[0]).unwrap();
    assert_eq!(first.get("kind").and_then(Value::as_str), Some("run.start"));
    assert_eq!(
        first.get("schema").and_then(Value::as_str),
        Some(tm::events::SCHEMA)
    );
    let last = tm::json::parse(lines[lines.len() - 1]).unwrap();
    assert_eq!(last.get("kind").and_then(Value::as_str), Some("run.end"));
    assert_eq!(
        last.get("events").and_then(Value::as_u64),
        Some(lines.len() as u64 - 2)
    );
    assert_eq!(last.get("solves").and_then(Value::as_u64), Some(1));

    tm::set_mode(tm::Mode::Off);
    tm::set_clock_enabled(true);
    tm::reset();
}

#[test]
fn finalized_file_is_byte_identical_across_runs() {
    let _g = lock();
    tm::set_mode(tm::Mode::Summary);
    tm::set_clock_enabled(false);
    tm::events::set_enabled(true);

    let dir = std::env::temp_dir().join("pvtm-events-par-test");
    let _ = std::fs::create_dir_all(&dir);
    let run_to_file = |name: &str| {
        tm::reset();
        let path = dir.join(name);
        assert!(tm::events::open_journal(&path, "par").unwrap());
        {
            let _t = tm::trace_scope("mc.journal_test");
            let h = tm::active_trace().unwrap();
            tm::record_mc_start(&h, 100 * CHUNKS, CHUNKS);
            (0..CHUNKS).into_par_iter().for_each(|c| {
                tm::record_chunk(&h, c, 100, c as f64, 0.5);
            });
        }
        tm::events::finalize_journal(&[]).unwrap().unwrap();
        std::fs::read(&path).unwrap()
    };
    let a = run_to_file("a.events.jsonl");
    let b = run_to_file("b.events.jsonl");
    assert_eq!(a, b, "finalized journal files must be byte-identical");
    let _ = std::fs::remove_dir_all(&dir);

    tm::set_mode(tm::Mode::Off);
    tm::set_clock_enabled(true);
    tm::reset();
}
