//! End-to-end tests of the live metrics plane: a real server on
//! `127.0.0.1:0`, scraped over real sockets with a minimal HTTP client.
//!
//! Covers the endpoint contract (`/metrics` Prometheus text,
//! `/snapshot.json` sidecar-schema JSON, `/healthz` verdicts), the
//! negative `/healthz` path on a seeded low-ESS run mirroring the
//! `fig_low_ess` golden fixture, and the determinism guarantee: running
//! the server must not perturb the registry, so the sidecar a run writes
//! is byte-identical with and without a scraper attached.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard};

use pvtm_telemetry as tm;
use pvtm_telemetry::json::{self, Value};

fn lock() -> MutexGuard<'static, ()> {
    // Telemetry state is process-global; serialize the tests in this binary.
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Minimal scrape client: returns `(status, body)`.
fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    request(addr, &format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn request(addr: SocketAddr, head: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect to live server");
    conn.write_all(head.as_bytes()).expect("send request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    let status = response
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|c| c.parse().ok())
        .expect("status line");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Seeds a healthy importance-sampling run: four chunks with
/// well-distributed weights (ESS fraction 1.0, no stalls).
fn seed_healthy_run() {
    tm::set_mode(tm::Mode::Full);
    tm::set_clock_enabled(false);
    tm::reset();
    let _t = tm::trace_scope("mc.live_serve");
    let h = tm::active_trace().unwrap();
    tm::record_mc_start(&h, 4 * 4096, 4);
    for c in 0..4u64 {
        tm::record_chunk(&h, c, 4096, 1e-3, 1e-6);
        tm::record_chunk_health(
            &h,
            c,
            tm::HealthChunk {
                fails: 100,
                weight_sum: 1.0,
                weight_sq_sum: 0.01,
                weight_max: 0.01,
            },
        );
    }
    tm::counter_add("mc.samples", 4 * 4096);
    tm::hist_record("mc.weight", 0.5);
    tm::hist_record("mc.weight", 3.0);
    // Counters and histograms buffer in TLS until a snapshot (or thread
    // exit) merges them; flush so the scrape threads can see them.
    let _ = tm::snapshot();
}

#[test]
fn serves_metrics_snapshot_and_healthz() {
    let _g = lock();
    seed_healthy_run();
    let server = tm::serve::start("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = server.addr();

    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("# TYPE pvtm_mc_samples counter"),
        "{metrics}"
    );
    assert!(metrics.contains("pvtm_mc_samples 16384"), "{metrics}");
    assert!(
        metrics.contains("pvtm_mc_trace_chunks_done{trace=\"mc.live_serve\"} 4"),
        "{metrics}"
    );
    assert!(
        metrics.contains("pvtm_mc_weight_bucket{le=\"+Inf\"} 2"),
        "{metrics}"
    );
    assert!(metrics.contains("pvtm_snapshot_epoch"), "{metrics}");

    let (status, body) = get(addr, "/snapshot.json");
    assert_eq!(status, 200);
    let doc = json::parse(body.trim_end()).expect("snapshot.json parses");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("pvtm-telemetry/3"),
        "snapshot reuses the sidecar schema so sidecar consumers parse it"
    );
    assert_eq!(doc.get("live").and_then(Value::as_bool), Some(true));
    assert!(matches!(doc.get("progress"), Some(Value::Arr(p)) if p.len() == 1));

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "healthy run must pass /healthz: {body}");
    assert_eq!(body, "ok\n");

    let (status, _) = get(addr, "/nope");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 405);

    drop(server);
    assert!(
        TcpStream::connect(addr).is_err(),
        "dropping the handle must close the listener"
    );
    tm::set_mode(tm::Mode::Off);
}

#[test]
fn healthz_answers_503_on_a_low_ess_run() {
    let _g = lock();
    // Mirrors the fig_low_ess golden fixture: a dominant weight collapses
    // the ESS and the running standard error stalls chunk over chunk.
    tm::set_mode(tm::Mode::Full);
    tm::set_clock_enabled(false);
    tm::reset();
    {
        let _t = tm::trace_scope("mc.low_ess");
        let h = tm::active_trace().unwrap();
        tm::record_mc_start(&h, 5 * 4096, 5);
        for c in 0..5u64 {
            // Growing per-chunk variance keeps the merged CI half-width
            // from shrinking root-n: every step counts as stalled.
            tm::record_chunk(&h, c, 4096, 2e-3, 1e-4 * (c + 1) as f64 * (c + 1) as f64);
            // Chunk 0 carries one dominant weight (0.62 of the eventual
            // total), collapsing the ESS and the max-weight share.
            let h_chunk = if c == 0 {
                tm::HealthChunk {
                    fails: 60,
                    weight_sum: 0.62,
                    weight_sq_sum: 0.39,
                    weight_max: 0.62,
                }
            } else {
                tm::HealthChunk {
                    fails: 60,
                    weight_sum: 0.095,
                    weight_sq_sum: 0.002,
                    weight_max: 0.05,
                }
            };
            tm::record_chunk_health(&h, c, h_chunk);
        }
    }
    let server = tm::serve::start("127.0.0.1:0").expect("bind an ephemeral port");
    let (status, body) = get(server.addr(), "/healthz");
    assert_eq!(status, 503, "low-ESS run must fail /healthz: {body}");
    assert!(body.contains("LOW_ESS"), "{body}");
    assert!(body.contains("WEIGHT_DEGENERATE"), "{body}");
    drop(server);
    tm::set_mode(tm::Mode::Off);
}

#[test]
fn a_running_server_never_perturbs_the_sidecar() {
    let _g = lock();
    // The byte-identity contract: the sidecar of a run scraped mid-flight
    // equals the sidecar of an identical unscraped run.
    seed_healthy_run();
    let without = tm::snapshot().to_json_pretty("fig_live_identity");

    seed_healthy_run();
    let server = tm::serve::start("127.0.0.1:0").expect("bind an ephemeral port");
    let _ = get(server.addr(), "/metrics");
    let _ = get(server.addr(), "/snapshot.json");
    let _ = get(server.addr(), "/healthz");
    let with = tm::snapshot().to_json_pretty("fig_live_identity");
    drop(server);

    assert_eq!(without, with, "scrapes must not mutate the registry");
    tm::set_mode(tm::Mode::Off);
}
