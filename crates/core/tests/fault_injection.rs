//! End-to-end fault-injection checks: with a deterministic injected fault
//! rate, a quick Fig. 2a run completes with quarantined samples instead of
//! aborting, and the quarantine accounting is identical across two
//! clock-free runs.
//!
//! Fault-injection and telemetry state are process-global, so this lives
//! in its own integration binary.

use pvtm::experiments::{fig2a, Effort};

#[test]
fn injected_faults_quarantine_instead_of_aborting_fig2a() {
    pvtm_telemetry::set_mode(pvtm_telemetry::Mode::Summary);
    pvtm_telemetry::set_clock_enabled(false);
    // The injected rate deliberately exceeds the default 1% quarantine
    // budget; raise the gate the way the CI fault-injection job does.
    pvtm_telemetry::fault::set_max_quarantine(0.5);

    let run = || {
        pvtm_telemetry::reset();
        pvtm_telemetry::fault::force(0x5EED, 1e-3);
        let fig = fig2a(Effort::quick()).expect("fig2a must survive injected faults");
        pvtm_telemetry::fault::disable();
        let report = pvtm_telemetry::snapshot();
        (fig, report.counter("mc.quarantined"), report.quarantine)
    };
    let (fig_a, count_a, recs_a) = run();
    let (fig_b, count_b, recs_b) = run();

    assert!(
        count_a > 0,
        "a 1e-3 injected fault rate over a quick fig2a must quarantine samples"
    );
    assert!(!recs_a.is_empty(), "quarantine sidecar section is empty");
    assert_eq!(fig_a, fig_b, "fig2a results differ across identical runs");
    assert_eq!(count_a, count_b, "quarantine counts differ across runs");
    assert_eq!(recs_a, recs_b, "quarantine records differ across runs");

    pvtm_telemetry::fault::set_max_quarantine(0.01);
    pvtm_telemetry::set_mode(pvtm_telemetry::Mode::Off);
    pvtm_telemetry::reset();
}
