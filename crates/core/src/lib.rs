//! Process-variation tolerant memories in sub-90 nm technologies.
//!
//! This crate implements the two post-silicon tuning techniques of the
//! SOCC 2006 paper on top of the workspace's device / circuit / SRAM /
//! BIST substrates:
//!
//! 1. **Self-repairing SRAM** ([`self_repair`]): an on-line leakage
//!    monitor senses the array current, comparators bin the die into
//!    low-Vt / nominal / high-Vt regions ([`monitor`]), and a body-bias
//!    generator ([`body_bias`]) applies RBB or FBB — simultaneously
//!    improving parametric yield (paper Eq. (1), Fig. 2c) and compressing
//!    the inter-die leakage spread (Figs. 5b–c).
//! 2. **Self-adaptive source biasing** ([`adaptive`], [`source_bias`]): a
//!    BIST engine raises the standby source bias one DAC code at a time
//!    until hold failures exhaust the column redundancy, maximizing
//!    standby-power savings per die while bounding hold-yield loss
//!    (Figs. 6–10).
//!
//! The [`experiments`] module regenerates every figure of the paper's
//! evaluation; the `pvtm-bench` crate drives it from `cargo bench`.
//!
//! # Example
//!
//! ```no_run
//! use pvtm::self_repair::{Policy, SelfRepairConfig, SelfRepairingMemory};
//! use pvtm::interp::linspace;
//!
//! let memory = SelfRepairingMemory::new(SelfRepairConfig::default_70nm(64, 8));
//! let response = memory.response(&linspace(-0.3, 0.3, 13))?;
//! let baseline = response.parametric_yield(0.15, Policy::Zbb);
//! let repaired = response.parametric_yield(0.15, Policy::SelfRepair);
//! assert!(repaired >= baseline);
//! # Ok::<(), pvtm_circuit::CircuitError>(())
//! ```

pub mod adaptive;
pub mod body_bias;
pub mod experiments;
pub mod interp;
pub mod monitor;
pub mod self_repair;
pub mod source_bias;

pub use adaptive::{AsbConfig, AsbEngine, AsbOutcome, DieEvaluation, StandbyLeakageGrid};
pub use body_bias::BodyBiasGenerator;
pub use monitor::{LeakageBinner, LeakageMonitor, VtRegion};
pub use self_repair::{CornerResponse, Policy, SelfRepairConfig, SelfRepairingMemory};
pub use source_bias::{HoldModelGrid, MaxVsbOutcome, SourceBiasAnalyzer};
