//! Small interpolation helpers for precomputed corner tables.

/// Linear interpolation of `(xs, ys)` at `x`, clamped to the table's ends.
///
/// # Panics
///
/// Panics if the table is empty, lengths differ, or `xs` is not strictly
/// increasing.
///
/// # Example
///
/// ```
/// use pvtm::interp::lin_interp;
/// let xs = [0.0, 1.0, 2.0];
/// let ys = [0.0, 10.0, 40.0];
/// assert_eq!(lin_interp(&xs, &ys, 0.5), 5.0);
/// assert_eq!(lin_interp(&xs, &ys, -3.0), 0.0); // clamped
/// assert_eq!(lin_interp(&xs, &ys, 9.0), 40.0); // clamped
/// ```
pub fn lin_interp(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert!(!xs.is_empty(), "empty interpolation table");
    assert_eq!(xs.len(), ys.len(), "table length mismatch");
    debug_assert!(
        xs.windows(2).all(|w| w[1] > w[0]),
        "xs must be strictly increasing"
    );
    if x <= xs[0] {
        return ys[0];
    }
    if x >= xs[xs.len() - 1] {
        return ys[ys.len() - 1];
    }
    let i = xs.partition_point(|&v| v < x).max(1);
    let (x0, x1) = (xs[i - 1], xs[i]);
    let (y0, y1) = (ys[i - 1], ys[i]);
    y0 + (y1 - y0) * (x - x0) / (x1 - x0)
}

/// Log-domain interpolation for probabilities: interpolates `ln(y)` so
/// curves spanning many decades (failure probabilities) stay smooth.
/// Zero entries are floored at 1e-300.
///
/// Allocation-free: only the (at most two) entries bracketing `x` are
/// taken to log space, instead of materializing the whole table. This
/// sits on the per-die hot path of the yield integrations, which call it
/// thousands of times over the same small corner tables.
///
/// # Panics
///
/// Panics if the table is empty or lengths differ.
pub fn log_interp(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert!(!xs.is_empty(), "empty interpolation table");
    assert_eq!(xs.len(), ys.len(), "table length mismatch");
    debug_assert!(
        xs.windows(2).all(|w| w[1] > w[0]),
        "xs must be strictly increasing"
    );
    let ly = |i: usize| ys[i].max(1e-300).ln();
    if x <= xs[0] {
        return ly(0).exp();
    }
    if x >= xs[xs.len() - 1] {
        return ly(ys.len() - 1).exp();
    }
    let i = xs.partition_point(|&v| v < x).max(1);
    let (x0, x1) = (xs[i - 1], xs[i]);
    let (y0, y1) = (ly(i - 1), ly(i));
    (y0 + (y1 - y0) * (x - x0) / (x1 - x0)).exp()
}

/// Uniformly spaced grid over `[lo, hi]` inclusive.
///
/// # Panics
///
/// Panics unless `n >= 2` and `lo < hi`.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "need at least two points");
    assert!(lo < hi, "invalid range [{lo}, {hi}]");
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_and_clamps() {
        let xs = [1.0, 2.0, 4.0];
        let ys = [10.0, 20.0, 0.0];
        assert_eq!(lin_interp(&xs, &ys, 1.5), 15.0);
        assert_eq!(lin_interp(&xs, &ys, 3.0), 10.0);
        assert_eq!(lin_interp(&xs, &ys, 0.0), 10.0);
        assert_eq!(lin_interp(&xs, &ys, 5.0), 0.0);
        assert_eq!(lin_interp(&xs, &ys, 2.0), 20.0);
    }

    #[test]
    fn log_interp_is_geometric() {
        let xs = [0.0, 1.0];
        let ys = [1e-6, 1e-2];
        let mid = log_interp(&xs, &ys, 0.5);
        assert!((mid / 1e-4 - 1.0).abs() < 1e-9, "mid = {mid:e}");
    }

    #[test]
    fn log_interp_handles_zeros() {
        let xs = [0.0, 1.0];
        let ys = [0.0, 1.0];
        let v = log_interp(&xs, &ys, 0.5);
        assert!((0.0..1e-100).contains(&v));
    }

    #[test]
    fn log_interp_matches_dense_log_table() {
        // The no-alloc path must reproduce interpolating a fully
        // log-transformed table bit for bit, clamps included.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1e-8, 1e-5, 3e-3, 0.9];
        let lys: Vec<f64> = ys.iter().map(|&y: &f64| y.max(1e-300).ln()).collect();
        for x in [-1.0, 0.0, 0.3, 1.0, 1.7, 2.99, 3.0, 7.0] {
            assert_eq!(log_interp(&xs, &ys, x), lin_interp(&xs, &lys, x).exp());
        }
    }

    #[test]
    #[should_panic(expected = "empty interpolation table")]
    fn log_interp_rejects_empty_table() {
        let _ = log_interp(&[], &[], 0.5);
    }

    #[test]
    fn linspace_endpoints() {
        let g = linspace(-1.0, 1.0, 5);
        assert_eq!(g, vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn linspace_rejects_single_point() {
        let _ = linspace(0.0, 1.0, 1);
    }
}
