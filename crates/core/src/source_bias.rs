//! Source-bias analysis: how much standby source bias a die can take
//! before hold failures exceed the target (paper §IV, Fig. 6).

use rayon::prelude::*;

use pvtm_circuit::CircuitError;
use pvtm_device::Technology;
use pvtm_sram::failure::HoldFailureModel;
use pvtm_sram::{AnalysisConfig, CellSizing, Conditions, FailureAnalyzer};

use crate::interp::lin_interp;

/// Analyzer for the hold-failure-vs-source-bias tradeoff.
#[derive(Debug, Clone)]
pub struct SourceBiasAnalyzer {
    tech: Technology,
    fa: FailureAnalyzer,
    vsb_cap: f64,
}

/// Result of a quarantine-aware [`SourceBiasAnalyzer::max_vsb_quarantined`]
/// search: the bias ceiling plus the evaluation/quarantine accounting the
/// caller folds into its experiment-level `PVTM_MAX_QUARANTINE` check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxVsbOutcome {
    /// The largest admissible source bias \[V\]. Pessimistic where
    /// evaluations were quarantined: an unresolved point is treated as
    /// violating the target, so the ceiling can only shrink.
    pub vsb: f64,
    /// Hold-failure evaluations attempted during the search.
    pub evals: u64,
    /// Evaluations whose solve failed even after the rescue ladder.
    pub quarantined: u64,
}

impl SourceBiasAnalyzer {
    /// Creates an analyzer. The search cap defaults to 0.75·VDD (beyond
    /// that the cell's retention circuit leaves the solver's comfortable
    /// regime — and no sane design goes there).
    pub fn new(tech: &Technology, sizing: CellSizing, analysis: AnalysisConfig) -> Self {
        Self {
            tech: tech.clone(),
            fa: FailureAnalyzer::new(tech, sizing, analysis),
            vsb_cap: 0.75 * tech.vdd(),
        }
    }

    /// Overrides the search cap \[V\].
    pub fn with_vsb_cap(mut self, cap: f64) -> Self {
        assert!(
            cap > 0.0 && cap < self.tech.vdd(),
            "cap must lie in (0, vdd)"
        );
        self.vsb_cap = cap;
        self
    }

    /// The underlying failure analyzer.
    pub fn failure_analyzer(&self) -> &FailureAnalyzer {
        &self.fa
    }

    /// Hold-failure probability of a cell at a corner and source bias.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn hold_failure_prob(&self, corner: f64, vsb: f64) -> Result<f64, CircuitError> {
        let mut ev = self.fa.evaluator();
        self.hold_failure_prob_with(&mut ev, corner, vsb)
    }

    /// [`Self::hold_failure_prob`] against a caller-held evaluator — the
    /// hot path for the `max_vsb` bracketing/bisection loops and the grid
    /// build, where adjacent evaluations are millivolts apart and warm
    /// starts almost always hit.
    fn hold_failure_prob_with(
        &self,
        ev: &mut pvtm_sram::CellEvaluator,
        corner: f64,
        vsb: f64,
    ) -> Result<f64, CircuitError> {
        let cond = Conditions::standby(&self.tech, vsb);
        Ok(self
            .fa
            .linearize_hold_with(ev, corner, &cond)?
            .failure_prob())
    }

    /// The largest source bias at this corner whose hold-failure
    /// probability stays at or below `p_target` — the per-corner ceiling of
    /// the paper's Fig. 6 (maximum at the nominal corner, falling toward
    /// both tails).
    ///
    /// Returns 0 when even zero bias violates the target, and the search
    /// cap when the target is never violated.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn max_vsb(&self, corner: f64, p_target: f64) -> Result<f64, CircuitError> {
        let out = self.max_vsb_quarantined(corner, p_target);
        if out.quarantined as f64 / out.evals.max(1) as f64
            > pvtm_telemetry::fault::max_quarantine()
        {
            return Err(CircuitError::QuarantineExceeded {
                quarantined: out.quarantined,
                total: out.evals,
            });
        }
        Ok(out.vsb)
    }

    /// Quarantine-aware variant of [`Self::max_vsb`]: never fails.
    /// Each hold-failure evaluation runs under a deterministic fault
    /// substream keyed off `(corner, eval index)`; an evaluation whose
    /// solve is unresolved even after the rescue ladder is recorded in the
    /// telemetry quarantine sidecar and treated pessimistically — as if it
    /// violated the target — so the reported ceiling can only shrink, never
    /// grow, under quarantine.
    pub fn max_vsb_quarantined(&self, corner: f64, p_target: f64) -> MaxVsbOutcome {
        assert!(
            p_target > 0.0 && p_target < 1.0,
            "invalid target probability {p_target}"
        );
        // Coarse upward scan to bracket the crossing (the probability is
        // not monotone at small vsb, so a plain bisection from 0 could
        // latch onto the wrong side).
        const STEPS: usize = 15;
        // One evaluator for the whole scan + bisection: adjacent vsb points
        // differ by millivolts, so nearly every solve warm-starts.
        let mut ev = self.fa.evaluator();
        let mut eval_idx: u64 = 0;
        let mut quarantined: u64 = 0;
        let mut probe = |vsb: f64| -> Option<f64> {
            let idx = eval_idx;
            eval_idx += 1;
            self.hold_failure_prob_quarantined(&mut ev, corner, vsb, idx, &mut quarantined)
        };
        let mut lo = 0.0f64;
        let mut hi = None;
        match probe(0.0) {
            // An unresolved zero-bias anchor means nothing can be proven:
            // the only safe ceiling is no bias at all. Same for an anchor
            // already violating the target.
            Some(p0) if p0 <= p_target => {}
            _ => {
                return MaxVsbOutcome {
                    vsb: 0.0,
                    evals: eval_idx,
                    quarantined,
                }
            }
        }
        for k in 1..=STEPS {
            let v = self.vsb_cap * k as f64 / STEPS as f64;
            // An unresolved scan point is treated as above target: the
            // ceiling cannot be proven past it.
            match probe(v) {
                Some(p) if p <= p_target => lo = v,
                _ => {
                    hi = Some(v);
                    break;
                }
            }
        }
        let Some(mut hi) = hi else {
            return MaxVsbOutcome {
                vsb: self.vsb_cap,
                evals: eval_idx,
                quarantined,
            };
        };
        // Refine by bisection; unresolved midpoints shrink from above.
        for _ in 0..18 {
            let mid = 0.5 * (lo + hi);
            match probe(mid) {
                Some(p) if p <= p_target => lo = mid,
                _ => hi = mid,
            }
        }
        MaxVsbOutcome {
            vsb: 0.5 * (lo + hi),
            evals: eval_idx,
            quarantined,
        }
    }

    /// One quarantine-aware hold-failure evaluation: arms a deterministic
    /// fault substream keyed off `(corner, eval index)` and, when the solve
    /// stays unresolved after the rescue ladder, records the quarantine and
    /// returns `None` so the caller takes the pessimistic branch.
    fn hold_failure_prob_quarantined(
        &self,
        ev: &mut pvtm_sram::CellEvaluator,
        corner: f64,
        vsb: f64,
        eval_idx: u64,
        quarantined: &mut u64,
    ) -> Option<f64> {
        let stream = corner.to_bits().rotate_left(17) ^ eval_idx;
        let _s = pvtm_telemetry::fault::begin_stream(stream);
        match self.hold_failure_prob_with(ev, corner, vsb) {
            Ok(p) => Some(p),
            Err(e) => {
                *quarantined += 1;
                pvtm_telemetry::counter_add("eval.quarantined", 1);
                pvtm_telemetry::record_quarantine(pvtm_telemetry::QuarantineRecord {
                    seed: 0,
                    stream,
                    corner,
                    kind: e.kind(),
                });
                None
            }
        }
    }

    /// The design-time `VSB(opt)`: the maximum bias at the *nominal*
    /// corner, which a non-adaptive design would apply to every die.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn vsb_opt(&self, p_target: f64) -> Result<f64, CircuitError> {
        self.max_vsb(0.0, p_target)
    }
}

/// Precomputed hold models over a (corner × vsb) grid with bilinear
/// interpolation — the fast path for per-cell retention thresholds in the
/// BIST calibration and for population studies.
#[derive(Debug, Clone)]
pub struct HoldModelGrid {
    corners: Vec<f64>,
    vsbs: Vec<f64>,
    /// Row-major `[corner][vsb]`.
    models: Vec<HoldFailureModel>,
}

impl HoldModelGrid {
    /// Builds the grid (parallel over all grid points).
    ///
    /// # Errors
    ///
    /// Propagates the first DC-solver failure.
    ///
    /// # Panics
    ///
    /// Panics unless both axes have at least two strictly increasing
    /// entries.
    pub fn build(
        analyzer: &SourceBiasAnalyzer,
        corners: Vec<f64>,
        vsbs: Vec<f64>,
    ) -> Result<Self, CircuitError> {
        assert!(corners.len() >= 2 && vsbs.len() >= 2, "grid too small");
        assert!(corners.windows(2).all(|w| w[1] > w[0]), "corners unsorted");
        assert!(vsbs.windows(2).all(|w| w[1] > w[0]), "vsbs unsorted");
        let cells: Vec<(usize, usize)> = (0..corners.len())
            .flat_map(|ci| (0..vsbs.len()).map(move |vi| (ci, vi)))
            .collect();
        let ctx = pvtm_telemetry::parallel_context();
        let models: Result<Vec<(usize, usize, HoldFailureModel)>, CircuitError> = cells
            .par_iter()
            .map_init(
                // One compiled evaluator per worker thread for allocation
                // reuse; warm seeds are dropped at every grid point so the
                // solver work per point is schedule-independent (warm
                // starts still cover the multi-solve linearization within
                // a point).
                || (pvtm_telemetry::adopt(&ctx), analyzer.fa.evaluator()),
                |(_ctx, ev), &(ci, vi)| {
                    ev.invalidate_warm();
                    let cond = Conditions::standby(&analyzer.tech, vsbs[vi]);
                    let m = analyzer.fa.linearize_hold_with(ev, corners[ci], &cond)?;
                    Ok((ci, vi, m))
                },
            )
            .collect();
        let mut sorted = models?;
        sorted.sort_by_key(|&(ci, vi, _)| (ci, vi));
        Ok(Self {
            models: sorted.into_iter().map(|(_, _, m)| m).collect(),
            corners,
            vsbs,
        })
    }

    /// Corner axis.
    pub fn corners(&self) -> &[f64] {
        &self.corners
    }

    /// Source-bias axis.
    pub fn vsbs(&self) -> &[f64] {
        &self.vsbs
    }

    fn model(&self, ci: usize, vi: usize) -> &HoldFailureModel {
        &self.models[ci * self.vsbs.len() + vi]
    }

    /// Hold models along the vsb axis at an arbitrary corner
    /// (linear interpolation of the model parameters between grid rows).
    pub fn models_at_corner(&self, corner: f64) -> Vec<HoldFailureModel> {
        let c = corner.clamp(
            self.corners[0],
            *self
                .corners
                .last()
                .expect("corner table is non-empty by construction"),
        );
        let i = self
            .corners
            .partition_point(|&v| v < c)
            .clamp(1, self.corners.len() - 1);
        let (c0, c1) = (self.corners[i - 1], self.corners[i]);
        let t = if c1 > c0 { (c - c0) / (c1 - c0) } else { 0.0 };
        (0..self.vsbs.len())
            .map(|vi| blend(self.model(i - 1, vi), self.model(i, vi), t))
            .collect()
    }

    /// Hold-failure probability at an arbitrary (corner, vsb).
    pub fn failure_prob(&self, corner: f64, vsb: f64) -> f64 {
        let models = self.models_at_corner(corner);
        let probs: Vec<f64> = models
            .iter()
            .map(|m| m.failure_prob().max(1e-300).ln())
            .collect();
        lin_interp(&self.vsbs, &probs, vsb).exp().min(1.0)
    }

    /// The lowest source bias at which a specific cell (standardized
    /// deviation vector `z`) loses retention. `None` when the cell holds
    /// over the whole grid. Convenience wrapper over
    /// [`Self::profile_at`] — when sweeping many cells of one die, build
    /// the profile once instead.
    pub fn min_vsb_for_cell(&self, corner: f64, z: &[f64; 6]) -> Option<f64> {
        self.profile_at(corner).min_vsb(z)
    }

    /// The per-corner hold profile: the interpolated model at every vsb
    /// grid point, reusable across all cells of one die.
    pub fn profile_at(&self, corner: f64) -> CornerHoldProfile {
        CornerHoldProfile {
            vsbs: self.vsbs.clone(),
            models: self.models_at_corner(corner),
        }
    }
}

/// Hold models of one die corner along the source-bias axis.
#[derive(Debug, Clone)]
pub struct CornerHoldProfile {
    vsbs: Vec<f64>,
    models: Vec<HoldFailureModel>,
}

impl CornerHoldProfile {
    /// The lowest source bias at which the cell `z` loses retention, found
    /// from the sign change of its hold slack along the vsb axis; `None`
    /// when it holds over the whole grid.
    pub fn min_vsb(&self, z: &[f64; 6]) -> Option<f64> {
        let mut prev_slack = self.models[0].slack_at(z);
        if prev_slack <= 0.0 {
            return Some(self.vsbs[0]);
        }
        for vi in 1..self.vsbs.len() {
            let slack = self.models[vi].slack_at(z);
            if slack <= 0.0 {
                let frac = prev_slack / (prev_slack - slack);
                return Some(self.vsbs[vi - 1] + frac * (self.vsbs[vi] - self.vsbs[vi - 1]));
            }
            prev_slack = slack;
        }
        None
    }

    /// The source-bias axis.
    pub fn vsbs(&self) -> &[f64] {
        &self.vsbs
    }
}

/// Linear blend of two hold models.
fn blend(a: &HoldFailureModel, b: &HoldFailureModel, t: f64) -> HoldFailureModel {
    let mix = |x: f64, y: f64| x + (y - x) * t;
    let mix_model = |x: &pvtm_sram::failure::MarginModel, y: &pvtm_sram::failure::MarginModel| {
        pvtm_sram::failure::MarginModel {
            nominal: mix(x.nominal, y.nominal),
            sensitivity: std::array::from_fn(|i| mix(x.sensitivity[i], y.sensitivity[i])),
        }
    };
    HoldFailureModel {
        ln_droop: mix_model(&a.ln_droop, &b.ln_droop),
        allowed: mix_model(&a.allowed, &b.allowed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::linspace;

    fn analyzer() -> SourceBiasAnalyzer {
        let tech = Technology::predictive_70nm();
        SourceBiasAnalyzer::new(
            &tech,
            CellSizing::default_for(&tech),
            AnalysisConfig::default(),
        )
    }

    #[test]
    fn hold_prob_grows_past_the_knee() {
        let a = analyzer();
        let p_mid = a.hold_failure_prob(0.0, 0.45).unwrap();
        let p_deep = a.hold_failure_prob(0.0, 0.72).unwrap();
        assert!(
            p_deep > p_mid * 10.0,
            "deep bias must be much riskier: {p_mid:.2e} -> {p_deep:.2e}"
        );
    }

    #[test]
    fn max_vsb_peaks_at_the_nominal_corner() {
        let a = analyzer();
        let target = 1e-3;
        let v_low = a.max_vsb(-0.10, target).unwrap();
        let v_nom = a.max_vsb(0.0, target).unwrap();
        let v_high = a.max_vsb(0.10, target).unwrap();
        assert!(
            v_nom >= v_low && v_nom >= v_high,
            "fig-6 shape violated: {v_low:.3} / {v_nom:.3} / {v_high:.3}"
        );
        assert!(v_nom > 0.3, "nominal ceiling suspiciously low: {v_nom:.3}");
    }

    #[test]
    fn vsb_opt_equals_nominal_ceiling() {
        let a = analyzer();
        let target = 1e-3;
        assert_eq!(a.vsb_opt(target).unwrap(), a.max_vsb(0.0, target).unwrap());
    }

    #[test]
    fn grid_probability_matches_direct_evaluation() {
        let a = analyzer();
        let grid =
            HoldModelGrid::build(&a, linspace(-0.12, 0.12, 5), linspace(0.3, 0.72, 8)).unwrap();
        // On-grid point: interpolation must agree with the direct model.
        let direct = a.hold_failure_prob(0.0, 0.72).unwrap();
        let gridded = grid.failure_prob(0.0, 0.72);
        assert!(
            (gridded.max(1e-300).ln() - direct.max(1e-300).ln()).abs() < 0.2,
            "grid {gridded:.3e} vs direct {direct:.3e}"
        );
    }

    #[test]
    fn min_vsb_reflects_cell_weakness() {
        let a = analyzer();
        let grid =
            HoldModelGrid::build(&a, linspace(-0.12, 0.12, 3), linspace(0.3, 0.72, 8)).unwrap();
        // A leaky NL combined with a weak PL (the dominant failure
        // direction) fails earlier than a typical cell.
        let weak = grid.min_vsb_for_cell(0.0, &[-3.0, 0.0, 2.5, 0.0, 0.0, 0.0]);
        let typical = grid.min_vsb_for_cell(0.0, &[0.0; 6]);
        match (weak, typical) {
            (Some(w), Some(t)) => assert!(w < t),
            (Some(_), None) => {} // typical never fails: fine
            other => panic!("weak cell must fail within the grid: {other:?}"),
        }
    }
}
