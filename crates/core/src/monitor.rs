//! On-line leakage monitor, comparators, and inter-die Vt binning.
//!
//! The paper's §III.D insight: a single cell's leakage distributions at
//! different inter-die corners overlap (RDF dominates), but the leakage of
//! a *large array* — the sum over all cells — separates cleanly by the
//! central limit theorem. The monitor therefore senses the whole array's
//! leakage, converts it to a voltage, and two comparators bin the die into
//! region A (low Vt / leaky), B (nominal) or C (high Vt), which drives the
//! body-bias generator.

use rand::Rng;
use rand_distr::{Distribution, StandardNormal};
use serde::{Deserialize, Serialize};

/// Inter-die Vt region of a die (paper Fig. 2c's regions A/B/C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VtRegion {
    /// Region A: low-Vt, leaky dies — candidates for reverse body bias.
    LowVt,
    /// Region B: nominal dies — zero body bias.
    Nominal,
    /// Region C: high-Vt, slow dies — candidates for forward body bias.
    HighVt,
}

impl std::fmt::Display for VtRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VtRegion::LowVt => write!(f, "low-Vt (A)"),
            VtRegion::Nominal => write!(f, "nominal (B)"),
            VtRegion::HighVt => write!(f, "high-Vt (C)"),
        }
    }
}

/// The on-line leakage monitor: a transresistance stage converting the
/// array's standby current into a voltage, with optional input-referred
/// offset noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageMonitor {
    /// Transresistance gain \[V/A\].
    gain: f64,
    /// Output clamp (supply) \[V\].
    vdd: f64,
    /// Gaussian output-referred offset sigma \[V\] (0 = ideal).
    offset_sigma: f64,
}

impl LeakageMonitor {
    /// Creates a monitor whose full-scale output (`vdd`) corresponds to
    /// `full_scale_current`.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are positive and finite.
    pub fn new(full_scale_current: f64, vdd: f64) -> Self {
        assert!(
            full_scale_current > 0.0 && full_scale_current.is_finite(),
            "invalid full-scale current"
        );
        assert!(vdd > 0.0 && vdd.is_finite(), "invalid vdd");
        Self {
            gain: vdd / full_scale_current,
            vdd,
            offset_sigma: 0.0,
        }
    }

    /// Adds Gaussian output-referred offset noise.
    ///
    /// # Panics
    ///
    /// Panics if the sigma is negative.
    pub fn with_offset_sigma(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "invalid offset sigma");
        self.offset_sigma = sigma;
        self
    }

    /// Transresistance gain \[V/A\].
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Ideal (noiseless) output voltage for an array leakage current.
    pub fn output_ideal(&self, i_leak: f64) -> f64 {
        (self.gain * i_leak.max(0.0)).clamp(0.0, self.vdd)
    }

    /// Output voltage including one sample of the offset noise.
    pub fn output(&self, i_leak: f64, rng: &mut impl Rng) -> f64 {
        let noise: f64 = StandardNormal.sample(rng);
        (self.output_ideal(i_leak) + self.offset_sigma * noise).clamp(0.0, self.vdd)
    }
}

/// Two-comparator binning stage: compares the monitor output against
/// `vref_high > vref_low` and assigns the Vt region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageBinner {
    monitor: LeakageMonitor,
    vref_high: f64,
    vref_low: f64,
}

impl LeakageBinner {
    /// Creates a binner with explicit reference voltages.
    ///
    /// # Panics
    ///
    /// Panics unless `vref_low < vref_high`.
    pub fn new(monitor: LeakageMonitor, vref_low: f64, vref_high: f64) -> Self {
        assert!(
            vref_low < vref_high,
            "references must be ordered: {vref_low} < {vref_high}"
        );
        Self {
            monitor,
            vref_high,
            vref_low,
        }
    }

    /// Creates a binner whose references correspond to two leakage-current
    /// thresholds (the array leakage expected at the region boundaries).
    ///
    /// # Panics
    ///
    /// Panics unless `i_low < i_high`.
    pub fn from_current_thresholds(monitor: LeakageMonitor, i_low: f64, i_high: f64) -> Self {
        assert!(i_low < i_high, "thresholds must be ordered");
        Self::new(
            monitor,
            monitor.output_ideal(i_low),
            monitor.output_ideal(i_high),
        )
    }

    /// The monitor in use.
    pub fn monitor(&self) -> &LeakageMonitor {
        &self.monitor
    }

    /// Classifies a die by its array leakage (ideal monitor).
    pub fn classify_ideal(&self, i_leak: f64) -> VtRegion {
        self.classify_vout(self.monitor.output_ideal(i_leak))
    }

    /// Classifies a die with monitor noise applied.
    pub fn classify(&self, i_leak: f64, rng: &mut impl Rng) -> VtRegion {
        self.classify_vout(self.monitor.output(i_leak, rng))
    }

    fn classify_vout(&self, vout: f64) -> VtRegion {
        if vout > self.vref_high {
            // Leakier than the high threshold: low-Vt die.
            VtRegion::LowVt
        } else if vout < self.vref_low {
            VtRegion::HighVt
        } else {
            VtRegion::Nominal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binner() -> LeakageBinner {
        // Full scale 1 mA at 1 V; thresholds at 0.2 / 0.6 mA.
        let mon = LeakageMonitor::new(1e-3, 1.0);
        LeakageBinner::from_current_thresholds(mon, 0.2e-3, 0.6e-3)
    }

    #[test]
    fn monitor_output_is_linear_then_clamped() {
        let mon = LeakageMonitor::new(1e-3, 1.0);
        assert!((mon.output_ideal(0.5e-3) - 0.5).abs() < 1e-12);
        assert_eq!(mon.output_ideal(2e-3), 1.0);
        assert_eq!(mon.output_ideal(-1e-3), 0.0);
    }

    #[test]
    fn binning_regions() {
        let b = binner();
        assert_eq!(b.classify_ideal(0.8e-3), VtRegion::LowVt);
        assert_eq!(b.classify_ideal(0.4e-3), VtRegion::Nominal);
        assert_eq!(b.classify_ideal(0.05e-3), VtRegion::HighVt);
    }

    #[test]
    fn boundary_currents_fall_in_region_b() {
        // At exactly the thresholds the comparators output "not above" /
        // "not below", keeping the die in region B (no bias applied).
        let b = binner();
        assert_eq!(b.classify_ideal(0.2e-3), VtRegion::Nominal);
        assert_eq!(b.classify_ideal(0.6e-3), VtRegion::Nominal);
    }

    #[test]
    fn offset_noise_can_misbin_near_boundaries() {
        let mon = LeakageMonitor::new(1e-3, 1.0).with_offset_sigma(0.05);
        let b = LeakageBinner::from_current_thresholds(mon, 0.2e-3, 0.6e-3);
        let mut rng = pvtm_stats::rng::substream(77, 0);
        // Just above the high threshold: noise flips some decisions.
        let mut regions = std::collections::HashSet::new();
        for _ in 0..200 {
            regions.insert(b.classify(0.62e-3, &mut rng));
        }
        assert!(regions.len() > 1, "noise must create boundary ambiguity");
        // Far from boundaries the decision is stable.
        let mut far = std::collections::HashSet::new();
        for _ in 0..200 {
            far.insert(b.classify(0.95e-3, &mut rng));
        }
        assert_eq!(far.len(), 1);
    }

    #[test]
    fn region_display() {
        assert_eq!(VtRegion::LowVt.to_string(), "low-Vt (A)");
        assert_eq!(VtRegion::Nominal.to_string(), "nominal (B)");
        assert_eq!(VtRegion::HighVt.to_string(), "high-Vt (C)");
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn rejects_unordered_references() {
        let mon = LeakageMonitor::new(1e-3, 1.0);
        let _ = LeakageBinner::new(mon, 0.8, 0.2);
    }
}
