//! The self-repairing SRAM: leakage-monitor binning + adaptive body bias
//! (paper §III, Fig. 4a).
//!
//! A die's array leakage identifies its inter-die corner (monitor +
//! comparators); the body-bias generator then applies RBB to leaky low-Vt
//! dies (suppressing read/hold failures and compressing the leakage
//! spread) and FBB to slow high-Vt dies (suppressing access/write
//! failures). [`SelfRepairingMemory::response`] precomputes the full
//! corner response, from which the yield integrals of Eqs. (1)–(4) are
//! evaluated by Gauss–Hermite quadrature.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::body_bias::BodyBiasGenerator;
use crate::interp::{lin_interp, log_interp};
use crate::monitor::{LeakageBinner, LeakageMonitor, VtRegion};
use pvtm_circuit::CircuitError;
use pvtm_device::Technology;
use pvtm_sram::leakage::LeakageStats;
use pvtm_sram::{
    AnalysisConfig, ArrayOrganization, CellLeakageModel, CellSizing, Conditions, FailureAnalyzer,
    FailureProbs,
};

/// Configuration of a self-repairing memory instance.
#[derive(Debug, Clone)]
pub struct SelfRepairConfig {
    /// Technology card.
    pub tech: Technology,
    /// Cell sizing.
    pub sizing: CellSizing,
    /// Failure-metric configuration.
    pub analysis: AnalysisConfig,
    /// Array organization (capacity + redundancy).
    pub org: ArrayOrganization,
    /// Body-bias levels.
    pub generator: BodyBiasGenerator,
    /// Half-width of region B \[V\]: dies whose corner magnitude exceeds
    /// this are biased.
    pub region_boundary: f64,
    /// Standby source bias used when evaluating the hold mechanism \[V\].
    pub hold_vsb: f64,
    /// Monitor output-referred offset sigma \[V\] (0 = ideal).
    pub monitor_offset_sigma: f64,
    /// Cells sampled when estimating per-cell leakage statistics.
    pub leak_samples: usize,
}

impl SelfRepairConfig {
    /// Baseline 70 nm configuration for a given capacity in KiB with a
    /// fixed spare-column budget.
    pub fn default_70nm(kib: usize, spare_columns: usize) -> Self {
        let tech = Technology::predictive_70nm();
        let sizing = CellSizing::default_for(&tech);
        Self {
            sizing,
            analysis: AnalysisConfig::default(),
            org: ArrayOrganization::with_capacity_kib_spares(kib, spare_columns),
            generator: BodyBiasGenerator::default(),
            region_boundary: 0.05,
            hold_vsb: 0.5,
            monitor_offset_sigma: 0.0,
            leak_samples: 400,
            tech,
        }
    }
}

/// Precomputed behaviour of the design at one inter-die corner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CornerPoint {
    /// Inter-die Vt shift \[V\].
    pub corner: f64,
    /// Region assigned by the leakage binning.
    pub region: VtRegion,
    /// Body bias the self-repairing memory applies here \[V\].
    pub bias: f64,
    /// Per-mechanism cell failure probabilities with zero body bias.
    pub probs_zbb: FailureProbs,
    /// Per-mechanism cell failure probabilities with the applied bias.
    pub probs_abb: FailureProbs,
    /// Per-cell leakage statistics with zero body bias.
    pub leak_zbb: LeakageStats,
    /// Per-cell leakage statistics with the applied bias.
    pub leak_abb: LeakageStats,
}

/// The corner response of a design: everything the yield integrals need,
/// tabulated over a corner grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CornerResponse {
    org: ArrayOrganization,
    points: Vec<CornerPoint>,
}

/// The self-repairing memory: design + monitor + bias generator.
#[derive(Debug, Clone)]
pub struct SelfRepairingMemory {
    cfg: SelfRepairConfig,
    fa: FailureAnalyzer,
    leak: CellLeakageModel,
    binner: LeakageBinner,
}

impl SelfRepairingMemory {
    /// Builds the memory, deriving the comparator references from the array
    /// leakage expected at the region-B boundaries (±`region_boundary`).
    pub fn new(cfg: SelfRepairConfig) -> Self {
        let fa = FailureAnalyzer::new(&cfg.tech, cfg.sizing, cfg.analysis);
        let leak = CellLeakageModel::new(&cfg.tech, cfg.sizing);
        // Array leakage at the leakiest plausible corner sets full scale.
        let cond = Conditions::active(&cfg.tech);
        let cells = cfg.org.cells() as f64;
        let mean_at = |corner: f64| -> f64 {
            let mut rng = pvtm_stats::rng::substream(0xB1A5, (corner.abs() * 1e4) as u64);
            leak.population_stats(corner, &cond, cfg.leak_samples, &mut rng)
                .mean
                * cells
        };
        // Full scale anchored just above the region-A boundary: dies
        // deeper into region A simply clamp at the rail (they are
        // unambiguous anyway), while the B/C decision region keeps enough
        // volts per decision to tolerate comparator offset.
        let full_scale = mean_at(-cfg.region_boundary) * 2.0;
        let monitor = LeakageMonitor::new(full_scale, cfg.tech.vdd())
            .with_offset_sigma(cfg.monitor_offset_sigma);
        let i_high = mean_at(-cfg.region_boundary);
        let i_low = mean_at(cfg.region_boundary);
        let binner = LeakageBinner::from_current_thresholds(monitor, i_low, i_high);
        Self {
            cfg,
            fa,
            leak,
            binner,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SelfRepairConfig {
        &self.cfg
    }

    /// The underlying failure analyzer.
    pub fn failure_analyzer(&self) -> &FailureAnalyzer {
        &self.fa
    }

    /// The leakage model.
    pub fn leakage_model(&self) -> &CellLeakageModel {
        &self.leak
    }

    /// The binning stage.
    pub fn binner(&self) -> &LeakageBinner {
        &self.binner
    }

    /// Mean array leakage of a die at a corner and body bias \[A\]
    /// (deterministic sampling).
    pub fn die_leakage(&self, corner: f64, body_bias: f64) -> f64 {
        let cond = Conditions::active(&self.cfg.tech).with_body_bias(body_bias);
        let stream = ((corner * 1e4) as i64 as u64) ^ ((body_bias * 1e4) as i64 as u64) << 20;
        let mut rng = pvtm_stats::rng::substream(0xD1E5, stream);
        self.leak
            .population_stats(corner, &cond, self.cfg.leak_samples, &mut rng)
            .mean
            * self.cfg.org.cells() as f64
    }

    /// Region the monitor assigns to a die at this corner (ideal monitor).
    pub fn classify(&self, corner: f64) -> VtRegion {
        self.binner.classify_ideal(self.die_leakage(corner, 0.0))
    }

    /// The body bias the self-repair loop applies at this corner.
    pub fn applied_bias(&self, corner: f64) -> f64 {
        self.cfg.generator.bias_for(self.classify(corner))
    }

    /// Per-cell leakage statistics at a corner / bias.
    pub fn cell_leak_stats(&self, corner: f64, body_bias: f64) -> LeakageStats {
        let cond = Conditions::active(&self.cfg.tech).with_body_bias(body_bias);
        let stream = ((corner * 1e4) as i64 as u64) ^ ((body_bias * 1e4) as i64 as u64) << 20;
        let mut rng = pvtm_stats::rng::substream(0x5EAD, stream);
        self.leak
            .population_stats(corner, &cond, self.cfg.leak_samples, &mut rng)
    }

    /// Cell failure probabilities at a corner / bias (hold evaluated at the
    /// configured standby source bias).
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn cell_failure_probs(
        &self,
        corner: f64,
        body_bias: f64,
    ) -> Result<FailureProbs, CircuitError> {
        let mut ev = self.fa.evaluator();
        self.cell_failure_probs_with(&mut ev, corner, body_bias)
    }

    /// [`Self::cell_failure_probs`] against a caller-held evaluator (the
    /// per-thread hot path of [`Self::response`]).
    fn cell_failure_probs_with(
        &self,
        ev: &mut pvtm_sram::CellEvaluator,
        corner: f64,
        body_bias: f64,
    ) -> Result<FailureProbs, CircuitError> {
        let cond = Conditions::standby(&self.cfg.tech, self.cfg.hold_vsb).with_body_bias(body_bias);
        self.fa.failure_probs_with(ev, corner, &cond)
    }

    /// Precomputes the full corner response over a grid (parallel).
    ///
    /// # Errors
    ///
    /// Propagates the first DC-solver failure encountered.
    pub fn response(&self, corners: &[f64]) -> Result<CornerResponse, CircuitError> {
        assert!(corners.len() >= 2, "need a corner grid");
        let ctx = pvtm_telemetry::parallel_context();
        let points: Result<Vec<CornerPoint>, CircuitError> = corners
            .par_iter()
            .map_init(
                || (pvtm_telemetry::adopt(&ctx), self.fa.evaluator()),
                |(_ctx, ev), &corner| {
                    ev.invalidate_warm();
                    let region = self.classify(corner);
                    let bias = self.cfg.generator.bias_for(region);
                    let probs_zbb = self.cell_failure_probs_with(ev, corner, 0.0)?;
                    // pvtm-lint: allow(no-float-eq) bias is a configured discrete level; exact zero means ZBB
                    let probs_abb = if bias == 0.0 {
                        probs_zbb
                    } else {
                        self.cell_failure_probs_with(ev, corner, bias)?
                    };
                    let leak_zbb = self.cell_leak_stats(corner, 0.0);
                    // pvtm-lint: allow(no-float-eq) bias is a configured discrete level; exact zero means ZBB
                    let leak_abb = if bias == 0.0 {
                        leak_zbb
                    } else {
                        self.cell_leak_stats(corner, bias)
                    };
                    Ok(CornerPoint {
                        corner,
                        region,
                        bias,
                        probs_zbb,
                        probs_abb,
                        leak_zbb,
                        leak_abb,
                    })
                },
            )
            .collect();
        Ok(CornerResponse {
            org: self.cfg.org,
            points: points?,
        })
    }
}

/// Dense-trapezoid expectation of `f` over a zero-mean Gaussian corner —
/// accurate for the near-step integrands of the yield equations (Eq. (1),
/// Eq. (4)), where Gauss–Hermite quadrature rings.
fn gaussian_expect(sigma: f64, mut f: impl FnMut(f64) -> f64) -> f64 {
    // pvtm-lint: allow(no-float-eq) sigma = 0 degenerates the expectation to f(0) exactly
    if sigma == 0.0 {
        return f(0.0);
    }
    const POINTS: usize = 601;
    const SPAN: f64 = 6.0;
    let dt = 2.0 * SPAN / (POINTS - 1) as f64;
    let mut total = 0.0;
    for k in 0..POINTS {
        let t = -SPAN + k as f64 * dt;
        let w = if k == 0 || k == POINTS - 1 { 0.5 } else { 1.0 };
        total += w * pvtm_stats::special::norm_pdf(t) * f(sigma * t);
    }
    total * dt
}

/// Body-bias policy selector for the yield evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Zero body bias everywhere (the unrepaired baseline).
    Zbb,
    /// Monitor-driven adaptive body bias (the self-repairing memory).
    SelfRepair,
}

impl CornerResponse {
    /// The tabulated points.
    pub fn points(&self) -> &[CornerPoint] {
        &self.points
    }

    /// The array organization the response was computed for.
    pub fn organization(&self) -> &ArrayOrganization {
        &self.org
    }

    fn corners(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.corner).collect()
    }

    fn probs(&self, policy: Policy) -> impl Iterator<Item = FailureProbs> + '_ {
        self.points.iter().map(move |p| match policy {
            Policy::Zbb => p.probs_zbb,
            Policy::SelfRepair => p.probs_abb,
        })
    }

    /// Overall cell failure probability at an arbitrary corner
    /// (log-interpolated).
    pub fn p_cell(&self, corner: f64, policy: Policy) -> f64 {
        let xs = self.corners();
        let ys: Vec<f64> = self.probs(policy).map(|p| p.overall()).collect();
        log_interp(&xs, &ys, corner).min(1.0)
    }

    /// Memory failure probability at a corner (redundancy model).
    pub fn memory_failure_prob(&self, corner: f64, policy: Policy) -> f64 {
        self.org.memory_failure_prob(self.p_cell(corner, policy))
    }

    /// Expected number of faulty columns at a corner.
    pub fn expected_faulty_columns(&self, corner: f64, policy: Policy) -> f64 {
        self.org
            .expected_faulty_columns(self.p_cell(corner, policy))
    }

    /// Parametric yield (paper Eq. (1)): the fraction of dies whose memory
    /// is functional when the inter-die corner is `N(0, sigma²)`.
    ///
    /// The integrand is nearly a step in the corner (memory death is
    /// sharp), so the expectation uses a dense trapezoid rule over ±6σ
    /// rather than Gauss–Hermite, which rings on discontinuities.
    pub fn parametric_yield(&self, sigma_inter: f64, policy: Policy) -> f64 {
        gaussian_expect(sigma_inter, |corner| {
            1.0 - self.memory_failure_prob(corner, policy)
        })
        .clamp(0.0, 1.0)
    }

    /// Per-cell leakage statistics at an arbitrary corner (the mean spans
    /// decades across corners, so both moments are log-interpolated).
    pub fn cell_leak_stats(&self, corner: f64, policy: Policy) -> LeakageStats {
        let xs = self.corners();
        let pick = |f: &dyn Fn(&CornerPoint) -> f64| -> f64 {
            let ys: Vec<f64> = self.points.iter().map(f).collect();
            log_interp(&xs, &ys, corner)
        };
        match policy {
            Policy::Zbb => LeakageStats {
                mean: pick(&|p| p.leak_zbb.mean),
                std_dev: pick(&|p| p.leak_zbb.std_dev),
            },
            Policy::SelfRepair => LeakageStats {
                mean: pick(&|p| p.leak_abb.mean),
                std_dev: pick(&|p| p.leak_abb.std_dev),
            },
        }
    }

    /// Array (memory) leakage mean at a corner \[A\].
    pub fn array_leak_mean(&self, corner: f64, policy: Policy) -> f64 {
        self.org
            .leakage_stats(self.cell_leak_stats(corner, policy))
            .mean
    }

    /// Leakage yield `L_Yield` (paper Eqs. (3)–(4)): fraction of dies whose
    /// array leakage meets `l_max`, integrating the within-die Gaussian
    /// (Eq. (3)) over the inter-die distribution (Eq. (4)).
    pub fn leakage_yield(&self, sigma_inter: f64, l_max: f64, policy: Policy) -> f64 {
        gaussian_expect(sigma_inter, |corner| {
            self.org
                .leakage_bound_prob(self.cell_leak_stats(corner, policy), l_max)
        })
        .clamp(0.0, 1.0)
    }

    /// Body bias applied at a corner (0 under the ZBB policy).
    pub fn bias_at(&self, corner: f64, policy: Policy) -> f64 {
        match policy {
            Policy::Zbb => 0.0,
            Policy::SelfRepair => {
                let xs = self.corners();
                let ys: Vec<f64> = self.points.iter().map(|p| p.bias).collect();
                lin_interp(&xs, &ys, corner)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::linspace;

    fn small_memory() -> SelfRepairingMemory {
        let mut cfg = SelfRepairConfig::default_70nm(64, 8);
        cfg.leak_samples = 150;
        SelfRepairingMemory::new(cfg)
    }

    #[test]
    fn classification_tracks_the_corner() {
        let m = small_memory();
        assert_eq!(m.classify(-0.12), VtRegion::LowVt);
        assert_eq!(m.classify(0.0), VtRegion::Nominal);
        assert_eq!(m.classify(0.12), VtRegion::HighVt);
    }

    #[test]
    fn applied_bias_signs() {
        let m = small_memory();
        assert!(m.applied_bias(-0.12) < 0.0, "leaky die gets RBB");
        assert_eq!(m.applied_bias(0.0), 0.0);
        assert!(m.applied_bias(0.12) > 0.0, "slow die gets FBB");
    }

    #[test]
    fn die_leakage_monotone_in_corner() {
        let m = small_memory();
        let low = m.die_leakage(-0.1, 0.0);
        let nom = m.die_leakage(0.0, 0.0);
        let high = m.die_leakage(0.1, 0.0);
        assert!(low > 2.0 * nom, "low-Vt die must leak: {low:e} vs {nom:e}");
        assert!(high < nom / 2.0);
    }

    #[test]
    fn rbb_reduces_die_leakage() {
        let m = small_memory();
        let zbb = m.die_leakage(-0.1, 0.0);
        let rbb = m.die_leakage(-0.1, -0.45);
        assert!(rbb < 0.6 * zbb, "RBB must cut leakage: {rbb:e} vs {zbb:e}");
    }

    #[test]
    fn response_improves_tail_corners() {
        let m = small_memory();
        let corners = linspace(-0.24, 0.24, 9);
        let resp = m.response(&corners).unwrap();
        // At the tails the repaired cell failure probability must be lower.
        let low_z = resp.p_cell(-0.20, Policy::Zbb);
        let low_r = resp.p_cell(-0.20, Policy::SelfRepair);
        assert!(low_r < low_z, "RBB tail: {low_r:.3e} vs {low_z:.3e}");
        let high_z = resp.p_cell(0.20, Policy::Zbb);
        let high_r = resp.p_cell(0.20, Policy::SelfRepair);
        assert!(high_r < high_z, "FBB tail: {high_r:.3e} vs {high_z:.3e}");
        // In region B both policies coincide.
        assert_eq!(
            resp.p_cell(0.0, Policy::Zbb),
            resp.p_cell(0.0, Policy::SelfRepair)
        );
    }

    #[test]
    fn self_repair_yield_dominates_zbb() {
        let m = small_memory();
        let corners = linspace(-0.3, 0.3, 11);
        let resp = m.response(&corners).unwrap();
        for &sigma in &[0.05, 0.10, 0.15] {
            let yz = resp.parametric_yield(sigma, Policy::Zbb);
            let yr = resp.parametric_yield(sigma, Policy::SelfRepair);
            assert!(
                yr >= yz - 1e-9,
                "sigma {sigma}: self-repair {yr:.4} must beat ZBB {yz:.4}"
            );
            assert!((0.0..=1.0).contains(&yz));
        }
        // At large sigma the improvement must be material (paper: 8-25 %).
        let yz = resp.parametric_yield(0.15, Policy::Zbb);
        let yr = resp.parametric_yield(0.15, Policy::SelfRepair);
        assert!(yr - yz > 0.02, "improvement too small: {yz:.4} -> {yr:.4}");
    }

    #[test]
    fn leakage_yield_improves_with_self_repair() {
        let m = small_memory();
        let corners = linspace(-0.3, 0.3, 11);
        let resp = m.response(&corners).unwrap();
        // Bound at 3x the nominal array leakage.
        let l_max = 3.0 * resp.array_leak_mean(0.0, Policy::Zbb);
        let lz = resp.leakage_yield(0.12, l_max, Policy::Zbb);
        let lr = resp.leakage_yield(0.12, l_max, Policy::SelfRepair);
        assert!(lr > lz, "leakage yield: {lr:.4} vs {lz:.4}");
    }

    #[test]
    fn yield_degrades_with_sigma() {
        let m = small_memory();
        let corners = linspace(-0.3, 0.3, 11);
        let resp = m.response(&corners).unwrap();
        let y1 = resp.parametric_yield(0.05, Policy::Zbb);
        let y2 = resp.parametric_yield(0.15, Policy::Zbb);
        assert!(y2 < y1, "more variation must hurt: {y1:.4} -> {y2:.4}");
    }
}
