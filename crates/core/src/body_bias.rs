//! Body-bias generation policy.

use serde::{Deserialize, Serialize};

use crate::monitor::VtRegion;

/// The discrete body-bias generator of the self-repairing memory: one
/// reverse level for region A, zero for region B, one forward level for
/// region C. Levels are bounded by the leakage penalties of Fig. 5a
/// (junction BTBT under deep RBB, body-diode current under deep FBB).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BodyBiasGenerator {
    /// Reverse body-bias level applied to low-Vt dies \[V\] (negative).
    rbb: f64,
    /// Forward body-bias level applied to high-Vt dies \[V\] (positive).
    fbb: f64,
}

impl Default for BodyBiasGenerator {
    /// ±0.45 V: inside the bounds where junction tunnelling (RBB side) and
    /// the body diode (FBB side) stay below the subthreshold savings.
    fn default() -> Self {
        Self::new(-0.45, 0.45)
    }
}

impl BodyBiasGenerator {
    /// Creates a generator with explicit levels.
    ///
    /// # Panics
    ///
    /// Panics unless `rbb <= 0 <= fbb` and both are within ±1 V.
    pub fn new(rbb: f64, fbb: f64) -> Self {
        assert!(
            (-1.0..=0.0).contains(&rbb) && (0.0..=1.0).contains(&fbb),
            "bias levels out of range: rbb={rbb}, fbb={fbb}"
        );
        Self { rbb, fbb }
    }

    /// Reverse level \[V\].
    pub fn rbb(&self) -> f64 {
        self.rbb
    }

    /// Forward level \[V\].
    pub fn fbb(&self) -> f64 {
        self.fbb
    }

    /// The bias applied to a die in the given region.
    pub fn bias_for(&self, region: VtRegion) -> f64 {
        match region {
            VtRegion::LowVt => self.rbb,
            VtRegion::Nominal => 0.0,
            VtRegion::HighVt => self.fbb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_to_bias_mapping() {
        let g = BodyBiasGenerator::default();
        assert!(g.bias_for(VtRegion::LowVt) < 0.0);
        assert_eq!(g.bias_for(VtRegion::Nominal), 0.0);
        assert!(g.bias_for(VtRegion::HighVt) > 0.0);
    }

    #[test]
    fn custom_levels() {
        let g = BodyBiasGenerator::new(-0.3, 0.2);
        assert_eq!(g.rbb(), -0.3);
        assert_eq!(g.fbb(), 0.2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_positive_rbb() {
        let _ = BodyBiasGenerator::new(0.1, 0.4);
    }
}
