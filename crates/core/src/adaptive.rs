//! The self-adaptive source-bias (ASB) engine — the calibration system of
//! the paper's Fig. 7.
//!
//! Per die, an initial calibration cycle raises the source bias one DAC
//! code at a time; at each step the BIST runs a March test, the register
//! bank collects faulty columns, and the counter compares against the
//! redundancy budget. The last bias whose faulty-column count fits within
//! the spare columns becomes `VSB(adaptive)` for that die — maximal
//! standby-leakage savings at a bounded hold-yield cost.

use rand::Rng;
use rand_distr::{Distribution, StandardNormal};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use pvtm_bist::{BistController, Dac, Fault, FaultKind, MarchTest, MemoryModel};
use pvtm_device::Technology;
use pvtm_sram::{ArrayOrganization, CellLeakageModel, CellSizing, Conditions};

use crate::interp::lin_interp;
use crate::source_bias::HoldModelGrid;

/// Standby leakage tabulated over (corner × vsb), for fast per-die standby
/// power evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandbyLeakageGrid {
    corners: Vec<f64>,
    vsbs: Vec<f64>,
    /// Mean per-cell leakage \[A\], row-major `[corner][vsb]`.
    means: Vec<f64>,
    vdd: f64,
}

impl StandbyLeakageGrid {
    /// Builds the grid by sampling `samples` cells per point (parallel).
    ///
    /// # Panics
    ///
    /// Panics on a degenerate grid.
    pub fn build(
        tech: &Technology,
        sizing: CellSizing,
        corners: Vec<f64>,
        vsbs: Vec<f64>,
        samples: usize,
    ) -> Self {
        assert!(corners.len() >= 2 && vsbs.len() >= 2, "grid too small");
        let model = CellLeakageModel::new(tech, sizing);
        let points: Vec<(usize, usize)> = (0..corners.len())
            .flat_map(|ci| (0..vsbs.len()).map(move |vi| (ci, vi)))
            .collect();
        let mut means_idx: Vec<(usize, f64)> = points
            .par_iter()
            .map(|&(ci, vi)| {
                let cond = Conditions::standby(tech, vsbs[vi]);
                let mut rng = pvtm_stats::rng::substream(0x1EAF, (ci * 1000 + vi) as u64);
                let stats = model.population_stats(corners[ci], &cond, samples, &mut rng);
                (ci * vsbs.len() + vi, stats.mean)
            })
            .collect();
        means_idx.sort_by_key(|&(i, _)| i);
        Self {
            means: means_idx.into_iter().map(|(_, m)| m).collect(),
            corners,
            vsbs,
            vdd: tech.vdd(),
        }
    }

    /// Mean per-cell standby leakage at (corner, vsb) \[A\], bilinear in
    /// the log of the leakage.
    pub fn cell_leakage(&self, corner: f64, vsb: f64) -> f64 {
        // Interpolate ln(leakage) along vsb at the two bracketing corners,
        // then along the corner axis.
        let c = corner.clamp(
            self.corners[0],
            *self
                .corners
                .last()
                .expect("corner table is non-empty by construction"),
        );
        let i = self
            .corners
            .partition_point(|&v| v < c)
            .clamp(1, self.corners.len() - 1);
        let (c0, c1) = (self.corners[i - 1], self.corners[i]);
        let row = |ci: usize| -> f64 {
            let lys: Vec<f64> = (0..self.vsbs.len())
                .map(|vi| self.means[ci * self.vsbs.len() + vi].max(1e-300).ln())
                .collect();
            lin_interp(&self.vsbs, &lys, vsb)
        };
        let (y0, y1) = (row(i - 1), row(i));
        let t = if c1 > c0 { (c - c0) / (c1 - c0) } else { 0.0 };
        (y0 + (y1 - y0) * t).exp()
    }

    /// Standby power of an array of `cells` cells \[W\]
    /// (`VDD · N · I_cell`).
    pub fn standby_power(&self, corner: f64, vsb: f64, cells: usize) -> f64 {
        self.vdd * cells as f64 * self.cell_leakage(corner, vsb)
    }
}

/// Configuration of the ASB engine.
#[derive(Debug, Clone)]
pub struct AsbConfig {
    /// Array the BIST calibrates (the paper demonstrates on 2 KB / 32 KB
    /// arrays with 5 % column redundancy).
    pub org: ArrayOrganization,
    /// The source-bias DAC.
    pub dac: Dac,
    /// March algorithm run at each calibration step.
    pub march: MarchTest,
    /// Sigma of the per-die calibration-to-use drift \[V\]: at use time a
    /// die's effective retention thresholds sit `|N(0, use_guard²)|` lower
    /// than at calibration (temperature and supply drift between the BIST
    /// run and the field), so use-time fault counts are evaluated at
    /// `vsb + drift`. Dies whose drift exceeds the DAC back-off can lose
    /// hold margin — the small-but-nonzero hold-yield loss the paper
    /// reports (1-5 %).
    pub use_guard: f64,
    /// DAC codes backed off from the last passing calibration step before
    /// committing `VSB(adaptive)` — the guard band that keeps use-time
    /// drift from immediately exhausting the redundancy the calibration
    /// saturated.
    pub backoff_codes: u32,
}

impl AsbConfig {
    /// Paper-like default: 2 KB array, 5 % redundancy, 5-bit DAC over
    /// 0.75 V, March C−.
    pub fn default_2kb() -> Self {
        Self {
            org: ArrayOrganization::with_capacity_kib(2, 0.05),
            dac: Dac::new(5, 0.75),
            march: MarchTest::march_c_minus(),
            use_guard: 0.01,
            backoff_codes: 1,
        }
    }
}

/// One step of the calibration loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsbStep {
    /// DAC code applied.
    pub code: u32,
    /// Source bias at that code \[V\].
    pub vsb: f64,
    /// Faulty columns the BIST counted.
    pub faulty_columns: usize,
}

/// Result of calibrating one die.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsbOutcome {
    /// Applied DAC code (after the back-off guard band).
    pub code: u32,
    /// Last DAC code that passed the redundancy check.
    pub limit_code: u32,
    /// `VSB(adaptive)` of this die \[V\].
    pub vsb: f64,
    /// The calibration trajectory.
    pub steps: Vec<AsbStep>,
}

/// Per-die evaluation for the population studies (paper Figs. 8–10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DieEvaluation {
    /// The die's inter-die corner \[V\].
    pub corner: f64,
    /// `VSB(adaptive)` found by the calibration.
    pub vsb_adaptive: f64,
    /// Faulty columns at zero source bias.
    pub faulty_cols_zero: usize,
    /// Faulty columns at `VSB(opt)`.
    pub faulty_cols_opt: usize,
    /// Faulty columns at `VSB(adaptive)`.
    pub faulty_cols_adaptive: usize,
    /// Standby power at zero bias \[W\].
    pub power_zero: f64,
    /// Standby power at `VSB(opt)` \[W\].
    pub power_opt: f64,
    /// Standby power at `VSB(adaptive)` \[W\].
    pub power_adaptive: f64,
}

impl DieEvaluation {
    /// Whether the die survives hold-wise under each scheme (faulty
    /// columns within the spare budget): `(zero, opt, adaptive)`.
    pub fn hold_ok(&self, spares: usize) -> (bool, bool, bool) {
        (
            self.faulty_cols_zero <= spares,
            self.faulty_cols_opt <= spares,
            self.faulty_cols_adaptive <= spares,
        )
    }
}

/// The ASB engine: hold-model grid + leakage grid + BIST configuration.
#[derive(Debug, Clone)]
pub struct AsbEngine {
    hold: HoldModelGrid,
    leak: StandbyLeakageGrid,
    cfg: AsbConfig,
}

impl AsbEngine {
    /// Creates an engine from prebuilt grids.
    pub fn new(hold: HoldModelGrid, leak: StandbyLeakageGrid, cfg: AsbConfig) -> Self {
        Self { hold, leak, cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &AsbConfig {
        &self.cfg
    }

    /// The hold-model grid.
    pub fn hold_grid(&self) -> &HoldModelGrid {
        &self.hold
    }

    /// The standby-leakage grid.
    pub fn leakage_grid(&self) -> &StandbyLeakageGrid {
        &self.leak
    }

    /// Samples one die's calibration-to-use drift \[V\] (half-normal with
    /// the configured sigma).
    pub fn sample_drift(&self, rng: &mut impl Rng) -> f64 {
        let g: f64 = StandardNormal.sample(rng);
        (self.cfg.use_guard * g).abs()
    }

    /// Builds the behavioural memory of one die at a corner: every cell
    /// gets an RDF sample, and cells whose hold slack dies within the grid
    /// receive a [`FaultKind::Retention`] at their personal threshold.
    pub fn build_die(&self, corner: f64, rng: &mut impl Rng) -> MemoryModel {
        let org = &self.cfg.org;
        let mut mem = MemoryModel::new(org.rows, org.cols);
        let profile = self.hold.profile_at(corner);
        for row in 0..org.rows {
            for col in 0..org.cols {
                let z: [f64; 6] = std::array::from_fn(|_| StandardNormal.sample(rng));
                if let Some(min_vsb) = profile.min_vsb(&z) {
                    mem.inject(Fault {
                        row,
                        col,
                        kind: FaultKind::Retention { min_vsb },
                    });
                }
            }
        }
        mem
    }

    /// Runs the Fig. 7 calibration loop: raise the DAC code until the
    /// faulty-column counter exceeds the spare budget, then settle on the
    /// last passing code.
    pub fn calibrate(&self, mem: &mut MemoryModel) -> AsbOutcome {
        let bist = BistController::new();
        let spares = self.cfg.org.redundant_cols;
        let mut steps = Vec::new();
        let mut last_good: Option<(u32, f64)> = None;
        for code in 0..self.cfg.dac.codes() {
            let vsb = self.cfg.dac.voltage(code);
            mem.set_vsb(vsb);
            let report = bist
                .run(&self.cfg.march, mem)
                .expect("the march ran on this memory, so failure columns are in range");
            let faulty = report.faulty_columns();
            steps.push(AsbStep {
                code,
                vsb,
                faulty_columns: faulty,
            });
            if faulty <= spares {
                last_good = Some((code, vsb));
            } else {
                break;
            }
        }
        let (limit_code, _) = last_good.unwrap_or((0, 0.0));
        let code = limit_code.saturating_sub(self.cfg.backoff_codes);
        let vsb = if last_good.is_some() {
            self.cfg.dac.voltage(code)
        } else {
            0.0
        };
        mem.set_vsb(vsb);
        AsbOutcome {
            code,
            limit_code,
            vsb,
            steps,
        }
    }

    /// Faulty-column count of a die at a fixed source bias (one BIST run).
    pub fn faulty_columns_at(&self, mem: &mut MemoryModel, vsb: f64) -> usize {
        mem.set_vsb(vsb);
        BistController::new()
            .run(&self.cfg.march, mem)
            .expect("the march ran on this memory, so failure columns are in range")
            .faulty_columns()
    }

    /// Full evaluation of one die: calibration plus the comparison points
    /// (zero bias and the design-time `VSB(opt)`).
    pub fn evaluate_die(&self, corner: f64, vsb_opt: f64, rng: &mut impl Rng) -> DieEvaluation {
        let mut mem = self.build_die(corner, rng);
        let outcome = self.calibrate(&mut mem);
        let drift = self.sample_drift(rng);
        let faulty_cols_zero = self.faulty_columns_at(&mut mem, drift);
        let faulty_cols_opt = self.faulty_columns_at(&mut mem, vsb_opt + drift);
        let faulty_cols_adaptive = self.faulty_columns_at(&mut mem, outcome.vsb + drift);
        let cells = self.cfg.org.cells();
        DieEvaluation {
            corner,
            vsb_adaptive: outcome.vsb,
            faulty_cols_zero,
            faulty_cols_opt,
            faulty_cols_adaptive,
            power_zero: self.leak.standby_power(corner, 0.0, cells),
            power_opt: self.leak.standby_power(corner, vsb_opt, cells),
            power_adaptive: self.leak.standby_power(corner, outcome.vsb, cells),
        }
    }

    /// Evaluates a die population with corners `N(0, sigma²)` (parallel,
    /// deterministic in `seed`).
    pub fn run_population(
        &self,
        dies: usize,
        sigma_inter: f64,
        vsb_opt: f64,
        seed: u64,
    ) -> Vec<DieEvaluation> {
        (0..dies as u64)
            .into_par_iter()
            .map(|die| {
                let mut rng = pvtm_stats::rng::substream(seed, die);
                let g: f64 = StandardNormal.sample(&mut rng);
                let corner = sigma_inter * g;
                self.evaluate_die(corner, vsb_opt, &mut rng)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::linspace;
    use crate::source_bias::SourceBiasAnalyzer;
    use pvtm_sram::AnalysisConfig;

    fn engine() -> AsbEngine {
        let tech = Technology::predictive_70nm();
        let sizing = CellSizing::default_for(&tech);
        let analyzer = SourceBiasAnalyzer::new(&tech, sizing, AnalysisConfig::default());
        let corners = linspace(-0.15, 0.15, 4);
        let vsbs = linspace(0.30, 0.74, 9);
        let hold = HoldModelGrid::build(&analyzer, corners.clone(), vsbs.clone()).unwrap();
        let leak = StandbyLeakageGrid::build(&tech, sizing, corners, vsbs, 120);
        // Tiny array so tests stay fast.
        let cfg = AsbConfig {
            org: ArrayOrganization::new(32, 64, 3),
            dac: Dac::new(4, 0.74),
            march: MarchTest::march_c_minus(),
            use_guard: 0.0,
            backoff_codes: 0,
        };
        AsbEngine::new(hold, leak, cfg)
    }

    #[test]
    fn calibration_respects_the_redundancy_budget() {
        let e = engine();
        let mut rng = pvtm_stats::rng::substream(5, 0);
        for corner in [-0.1, 0.0, 0.1] {
            let mut mem = e.build_die(corner, &mut rng);
            let outcome = e.calibrate(&mut mem);
            let faulty = e.faulty_columns_at(&mut mem, outcome.vsb);
            assert!(
                faulty <= e.config().org.redundant_cols,
                "corner {corner}: {faulty} faulty columns at vsb {}",
                outcome.vsb
            );
            // The trajectory is recorded and starts at code 0.
            assert_eq!(outcome.steps[0].code, 0);
        }
    }

    #[test]
    fn calibration_is_maximal() {
        // One more DAC step than the selected code must violate the budget
        // (unless the DAC range was exhausted).
        let e = engine();
        let mut rng = pvtm_stats::rng::substream(6, 0);
        let mut mem = e.build_die(-0.05, &mut rng);
        let outcome = e.calibrate(&mut mem);
        if outcome.limit_code + 1 < e.config().dac.codes() {
            let next_vsb = e.config().dac.voltage(outcome.limit_code + 1);
            let faulty = e.faulty_columns_at(&mut mem, next_vsb);
            assert!(
                faulty > e.config().org.redundant_cols,
                "code {} was not maximal ({faulty} faulty at the next step)",
                outcome.limit_code
            );
        }
    }

    #[test]
    fn standby_power_falls_with_vsb_and_corner() {
        let e = engine();
        let g = e.leakage_grid();
        assert!(g.standby_power(0.0, 0.5, 1000) < g.standby_power(0.0, 0.3, 1000));
        assert!(g.standby_power(0.1, 0.4, 1000) < g.standby_power(-0.1, 0.4, 1000));
    }

    #[test]
    fn population_is_deterministic_and_bounded() {
        let e = engine();
        let a = e.run_population(6, 0.05, 0.5, 42);
        let b = e.run_population(6, 0.05, 0.5, 42);
        assert_eq!(a, b, "same seed must reproduce the population");
        for die in &a {
            assert!(die.vsb_adaptive >= 0.0);
            assert!(die.power_adaptive <= die.power_zero * 1.000001);
            assert!(die.faulty_cols_adaptive <= e.config().org.redundant_cols);
        }
    }

    #[test]
    fn adaptive_beats_opt_on_hold_failures_for_weak_dies() {
        // Across a small population, the adaptive scheme must never have
        // more hold-failing dies than VSB(opt) applied blindly.
        let e = engine();
        let vsb_opt = 0.60;
        let pop = e.run_population(10, 0.06, vsb_opt, 9);
        let spares = e.config().org.redundant_cols;
        let fail_opt = pop.iter().filter(|d| d.faulty_cols_opt > spares).count();
        let fail_adp = pop
            .iter()
            .filter(|d| d.faulty_cols_adaptive > spares)
            .count();
        assert!(
            fail_adp <= fail_opt,
            "adaptive {fail_adp} vs opt {fail_opt}"
        );
        assert_eq!(fail_adp, 0, "adaptive never exceeds the budget");
    }
}
