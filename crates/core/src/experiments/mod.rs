//! Reproduction of every figure in the paper's evaluation.
//!
//! Each `figXX` function regenerates the data behind the corresponding
//! figure of the paper and returns a serializable result that also prints
//! as the table/series the paper plots. The `figures` bench target in
//! `pvtm-bench` drives them all and writes `results/<id>.json`.
//!
//! | id | paper result |
//! |----|--------------|
//! | fig2a | cell failure probabilities vs inter-die Vt shift |
//! | fig2b | effect of body bias on each failure mechanism |
//! | fig2c | parametric yield vs σ(Vt_inter): self-repair vs ZBB |
//! | fig3  | cell vs 1 KB-array leakage distributions per corner |
//! | fig4b | failing columns in a 256 KB array: repaired vs not |
//! | fig5a | leakage components vs body bias |
//! | fig5b | memory-leakage spread with/without self-repair |
//! | fig5c | leakage yield vs σ(Vt_inter) |
//! | fig6  | max source bias for a target hold failure vs corner |
//! | fig8  | VSB(adaptive) vs corner; hold failure opt vs adaptive |
//! | fig9  | VSB(adaptive) and standby-power distributions |
//! | fig10 | leakage / hold yield vs σ for zero / opt / adaptive |

mod ablation;
mod asb;
mod repair;
mod scaling;

pub use ablation::{
    ablation_bias_levels, ablation_dac, ablation_march, ablation_monitor, ablation_temperature,
    BiasLevelAblation, DacAblation, MarchAblation, MonitorAblation, TemperatureAblation,
};
pub use asb::{
    cell_target_for_memory, fig10, fig6, fig8, fig9, headline, Fig10, Fig6, Fig8, Fig9, Headline,
};
pub use repair::{
    fig2a, fig2b, fig2c, fig3, fig4b, fig5a, fig5b, fig5c, Fig2a, Fig2b, Fig2c, Fig3, Fig4b, Fig5a,
    Fig5b, Fig5c, McCrossCheck,
};
pub use scaling::{scaling, Scaling};

use serde::Serialize;
use std::path::PathBuf;

/// Sampling effort of an experiment run.
///
/// `quick()` keeps everything small enough for CI-style smoke tests;
/// `full()` is what the bench harness uses for the recorded results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Effort {
    /// Points on inter-die corner grids.
    pub corners: usize,
    /// Dies per population study.
    pub dies: usize,
    /// Cells per leakage-distribution sample.
    pub cells: usize,
    /// Arrays per array-leakage-distribution sample.
    pub arrays: usize,
    /// Points on σ(Vt_inter) sweeps.
    pub sigmas: usize,
    /// Samples for the importance-sampled Monte-Carlo cross-check
    /// (Fig. 2a). Kept ≥ two Monte-Carlo chunks so the recorded
    /// convergence trace has more than one point.
    pub mc_samples: usize,
}

impl Effort {
    /// Small run for tests.
    pub fn quick() -> Self {
        Self {
            corners: 5,
            dies: 24,
            cells: 2_000,
            arrays: 60,
            sigmas: 3,
            mc_samples: 8_192,
        }
    }

    /// Full run for the recorded figures.
    pub fn full() -> Self {
        Self {
            corners: 13,
            dies: 250,
            cells: 20_000,
            arrays: 400,
            sigmas: 6,
            mc_samples: 20_000,
        }
    }
}

/// Directory experiment results are written to (`PVTM_RESULTS_DIR`,
/// defaulting to `results/`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("PVTM_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Serializes an experiment result to `results/<id>.json`.
///
/// # Errors
///
/// Propagates filesystem and serialization errors.
pub fn save_json<T: Serialize>(id: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{id}.json"));
    let file = std::fs::File::create(&path)?;
    serde_json::to_writer_pretty(file, value).map_err(std::io::Error::other)?;
    Ok(path)
}

/// Records one quarantined corner/eval failure in the telemetry sidecar
/// and bumps the shared `eval.quarantined` counter. Corner-level streams
/// carry no Monte-Carlo seed, so `seed` is fixed at zero and `stream`
/// identifies the failing evaluation deterministically.
pub(crate) fn quarantine_corner(stream: u64, corner: f64, e: &pvtm_circuit::CircuitError) {
    pvtm_telemetry::record_quarantine(pvtm_telemetry::QuarantineRecord {
        seed: 0,
        stream,
        corner,
        kind: e.kind(),
    });
    pvtm_telemetry::counter_add("eval.quarantined", 1);
}

/// Fails the experiment only when the quarantine rate exceeds the
/// documented `PVTM_MAX_QUARANTINE` budget; below it the pessimistic
/// per-item substitutions stand and the run completes.
pub(crate) fn check_quarantine_rate(
    quarantined: u64,
    total: u64,
) -> Result<(), pvtm_circuit::CircuitError> {
    let rate = quarantined as f64 / total.max(1) as f64;
    if rate > pvtm_telemetry::fault::max_quarantine() {
        return Err(pvtm_circuit::CircuitError::QuarantineExceeded { quarantined, total });
    }
    Ok(())
}

/// Formats a probability for the tables (engineering style).
pub(crate) fn fmt_p(p: f64) -> String {
    // pvtm-lint: allow(no-float-eq) formatting fast path for an exactly zero probability
    if p == 0.0 {
        "0".to_string()
    } else if p < 1e-12 {
        "<1e-12".to_string()
    } else {
        format!("{p:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_presets_are_ordered() {
        let q = Effort::quick();
        let f = Effort::full();
        assert!(q.corners < f.corners);
        assert!(q.dies < f.dies);
        assert!(q.cells < f.cells);
    }

    #[test]
    fn save_json_round_trips() {
        let dir = std::env::temp_dir().join("pvtm-test-results");
        std::env::set_var("PVTM_RESULTS_DIR", &dir);
        let path = save_json("unit-test", &vec![1.0, 2.0]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("2.0"));
        std::env::remove_var("PVTM_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn probability_formatting() {
        assert_eq!(fmt_p(0.0), "0");
        assert_eq!(fmt_p(1e-30), "<1e-12");
        assert!(fmt_p(3.2e-4).contains("3.20e-4"));
    }
}
