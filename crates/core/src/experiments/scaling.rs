//! Technology-scaling study — the paper's motivation quantified.
//!
//! §I of the paper argues that scaling into the sub-90 nm regime inflates
//! both the leakage and the parametric-failure rates, making post-silicon
//! tuning *necessary*. This experiment runs the same cell methodology on
//! the predictive 90 / 70 / 45 nm cards and shows the trend.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

use pvtm_circuit::CircuitError;
use pvtm_device::Technology;
use pvtm_sram::{
    AnalysisConfig, CellLeakageModel, CellSizing, Conditions, FailureAnalyzer, SramCell,
};

use super::Effort;

/// One technology node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Node name.
    pub node: String,
    /// Feature size \[nm\].
    pub node_nm: f64,
    /// RDF sigma of the minimum pull-down device \[V\].
    pub sigma_vt_pd: f64,
    /// Nominal-cell standby leakage \[A\].
    pub cell_leakage: f64,
    /// Overall cell failure probability at the nominal corner.
    pub p_cell_nominal: f64,
    /// Overall cell failure probability at the −100 mV corner.
    pub p_cell_low: f64,
}

/// The scaling study result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scaling {
    /// One row per node, largest first.
    pub rows: Vec<ScalingRow>,
}

/// Runs the scaling study.
///
/// Each node gets its own calibrated timing thresholds (a design is always
/// re-margined per node); what scaling cannot fix is the RDF sigma and the
/// leakage, which is exactly the paper's point.
///
/// # Errors
///
/// Propagates DC-solver failures.
pub fn scaling(_effort: Effort) -> Result<Scaling, CircuitError> {
    let _span = pvtm_telemetry::span("scaling");
    let nodes = [
        Technology::predictive_90nm(),
        Technology::predictive_70nm(),
        Technology::predictive_45nm(),
    ];
    let ctx = pvtm_telemetry::parallel_context();
    let rows: Result<Vec<ScalingRow>, CircuitError> = nodes
        .par_iter()
        .map(|tech| {
            let _ctx = pvtm_telemetry::adopt(&ctx);
            let sizing = CellSizing::default_for(tech);
            let fa =
                FailureAnalyzer::calibrate_timing(tech, sizing, AnalysisConfig::default(), 4.7)?;
            let cond = Conditions::standby(tech, 0.5 * tech.vdd());
            let mut ev = fa.evaluator();
            let p_nom = fa.failure_probs_with(&mut ev, 0.0, &cond)?.overall();
            let p_low = fa.failure_probs_with(&mut ev, -0.10, &cond)?.overall();
            let leak = CellLeakageModel::new(tech, sizing)
                .standby(&SramCell::nominal(tech), &Conditions::active(tech))
                .total();
            Ok(ScalingRow {
                node: tech.name().to_string(),
                node_nm: tech.node_nm(),
                sigma_vt_pd: SramCell::nominal(tech).sigma_vt(pvtm_sram::Xtor::Nl),
                cell_leakage: leak,
                p_cell_nominal: p_nom,
                p_cell_low: p_low,
            })
        })
        .collect();
    Ok(Scaling { rows: rows? })
}

impl fmt::Display for Scaling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Scaling study — why sub-90nm needs post-silicon tuning")?;
        writeln!(
            f,
            "{:>16} {:>10} {:>12} {:>12} {:>12}",
            "node", "sigmaVt", "cell leak", "p_cell(0)", "p_cell(-100m)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>16} {:>8.1}mV {:>10.2}nA {:>12} {:>12}",
                r.node,
                r.sigma_vt_pd * 1e3,
                r.cell_leakage * 1e9,
                super::fmt_p(r.p_cell_nominal),
                super::fmt_p(r.p_cell_low)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_grows_as_nodes_shrink() {
        let result = scaling(Effort::quick()).unwrap();
        assert_eq!(result.rows.len(), 3);
        // Rows are ordered 90 → 70 → 45 nm.
        assert!(result.rows[0].node_nm > result.rows[2].node_nm);
        assert!(
            result.rows[2].cell_leakage > result.rows[0].cell_leakage,
            "45 nm must leak more than 90 nm"
        );
    }

    #[test]
    fn low_corner_failures_worsen_at_45nm() {
        let result = scaling(Effort::quick()).unwrap();
        let r90 = &result.rows[0];
        let r45 = &result.rows[2];
        assert!(
            r45.p_cell_low > r90.p_cell_low,
            "scaled node must fail more at the leaky corner: {:.2e} vs {:.2e}",
            r45.p_cell_low,
            r90.p_cell_low
        );
    }
}
