//! Ablation studies of the design choices the paper leaves implicit:
//! monitor precision, DAC resolution, body-bias strength, March algorithm
//! choice, and temperature sensitivity of the leakage binning.

use rand::Rng;
use rand_distr::Distribution;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

use pvtm_bist::{BistController, Dac, Fault, FaultKind, MarchTest, MemoryModel};
use pvtm_circuit::CircuitError;
use pvtm_device::Technology;
use pvtm_sram::{AnalysisConfig, CellLeakageModel, CellSizing, Conditions, FailureAnalyzer};

use super::Effort;
use crate::body_bias::BodyBiasGenerator;
use crate::interp::{linspace, log_interp};
use crate::monitor::{LeakageBinner, LeakageMonitor, VtRegion};
use crate::self_repair::{SelfRepairConfig, SelfRepairingMemory};

fn baseline() -> (Technology, CellSizing, AnalysisConfig) {
    let tech = Technology::predictive_70nm();
    (
        tech.clone(),
        CellSizing::default_for(&tech),
        AnalysisConfig::default(),
    )
}

// ------------------------------------------------------- monitor ablation

/// One monitor-offset point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorAblationRow {
    /// Output-referred comparator/monitor offset sigma \[V\].
    pub offset_sigma: f64,
    /// Fraction of dies binned into a different region than the ideal
    /// monitor would choose.
    pub misbin_rate: f64,
    /// Parametric yield with this monitor at σ(Vt_inter) = 100 mV.
    pub parametric_yield: f64,
}

/// Monitor-precision ablation: how much comparator offset the self-repair
/// loop tolerates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorAblation {
    /// Offset sweep.
    pub rows: Vec<MonitorAblationRow>,
    /// Yield with a perfect (oracle) monitor, for reference.
    pub oracle_yield: f64,
}

/// Runs the monitor ablation.
///
/// The CLT separation of array leakage (Fig. 3) gives the monitor volts of
/// margin per decision, so moderate offsets only scramble dies near the
/// region boundaries — where either bias choice is acceptable. The yield
/// should therefore degrade gracefully until the offset becomes comparable
/// to the inter-region output spacing.
///
/// # Errors
///
/// Propagates DC-solver failures.
pub fn ablation_monitor(effort: Effort) -> Result<MonitorAblation, CircuitError> {
    let _span = pvtm_telemetry::span("ablation_monitor");
    let (tech, sizing, config) = baseline();
    let cfg = SelfRepairConfig::default_70nm(64, 102);
    let memory = SelfRepairingMemory::new(cfg);
    let sigma_inter = 0.10;

    // Tabulate p_cell(corner, bias) for the three bias levels.
    let corners = linspace(-0.30, 0.30, effort.corners.max(7));
    let fa = FailureAnalyzer::new(&tech, sizing, config);
    let gen = memory.config().generator;
    let biases = [gen.rbb(), 0.0, gen.fbb()];
    let hold_vsb = memory.config().hold_vsb;
    let mut p_cell = vec![vec![0.0f64; corners.len()]; 3];
    let ctx = pvtm_telemetry::parallel_context();
    let flat: Vec<(usize, usize, f64, bool)> = (0..3)
        .flat_map(|bi| (0..corners.len()).map(move |ci| (bi, ci)))
        .collect::<Vec<_>>()
        .par_iter()
        .map_init(
            || (pvtm_telemetry::adopt(&ctx), fa.evaluator()),
            |(_ctx, ev), &(bi, ci)| {
                ev.invalidate_warm();
                let cond = Conditions::standby(&tech, hold_vsb).with_body_bias(biases[bi]);
                match fa.failure_probs_with(ev, corners[ci], &cond) {
                    Ok(m) => (bi, ci, m.overall(), false),
                    Err(e) => {
                        // Pessimistic substitution: a corner whose solve
                        // stays unresolved after the rescue ladder is
                        // treated as certain failure and quarantined.
                        super::quarantine_corner((bi * corners.len() + ci) as u64, corners[ci], &e);
                        (bi, ci, 1.0, true)
                    }
                }
            },
        )
        .collect();
    let quarantined = flat.iter().filter(|(_, _, _, q)| *q).count() as u64;
    super::check_quarantine_rate(quarantined, flat.len() as u64)?;
    for (bi, ci, p, _) in flat {
        p_cell[bi][ci] = p;
    }
    // Die leakage vs corner (for the monitor input).
    let leak: Vec<f64> = corners
        .iter()
        .map(|&c| memory.die_leakage(c, 0.0))
        .collect();

    let org = memory.config().org;
    let dies = (effort.dies * 40).max(2_000);
    let yield_for = |binner: &LeakageBinner, noisy: bool, seed: u64| -> (f64, f64) {
        let mut rng = pvtm_stats::rng::substream(seed, 0);
        let mut pass = 0usize;
        let mut misbins = 0usize;
        for _ in 0..dies {
            let g: f64 = rand_distr::StandardNormal.sample(&mut rng);
            let corner = sigma_inter * g;
            let i_leak = log_interp(&corners, &leak, corner);
            let region = if noisy {
                binner.classify(i_leak, &mut rng)
            } else {
                binner.classify_ideal(i_leak)
            };
            if region != binner.classify_ideal(i_leak) {
                misbins += 1;
            }
            let bi = match region {
                VtRegion::LowVt => 0,
                VtRegion::Nominal => 1,
                VtRegion::HighVt => 2,
            };
            let p = log_interp(&corners, &p_cell[bi], corner).min(1.0);
            if rng.gen::<f64>() > org.memory_failure_prob(p) {
                pass += 1;
            }
        }
        (misbins as f64 / dies as f64, pass as f64 / dies as f64)
    };

    let (_, oracle_yield) = yield_for(memory.binner(), false, 0xAB1);
    let offsets = [0.0, 0.01, 0.03, 0.06, 0.12];
    let rows = offsets
        .iter()
        .enumerate()
        .map(|(i, &offset_sigma)| {
            let monitor = LeakageMonitor::new(
                memory.config().tech.vdd() / memory.binner().monitor().gain(),
                memory.config().tech.vdd(),
            )
            .with_offset_sigma(offset_sigma);
            // Same reference currents as the production binner.
            let i_high = memory.die_leakage(-memory.config().region_boundary, 0.0);
            let i_low = memory.die_leakage(memory.config().region_boundary, 0.0);
            let binner = LeakageBinner::from_current_thresholds(monitor, i_low, i_high);
            let (misbin_rate, parametric_yield) = yield_for(&binner, true, 0xAB2 + i as u64);
            MonitorAblationRow {
                offset_sigma,
                misbin_rate,
                parametric_yield,
            }
        })
        .collect();
    Ok(MonitorAblation { rows, oracle_yield })
}

impl fmt::Display for MonitorAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation — monitor offset (64 KB, sigma_inter = 100 mV; oracle yield {:.1}%)",
            100.0 * self.oracle_yield
        )?;
        writeln!(f, "{:>10} {:>10} {:>8}", "offset", "misbinned", "yield")?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8.0}mV {:>9.1}% {:>7.1}%",
                r.offset_sigma * 1e3,
                100.0 * r.misbin_rate,
                100.0 * r.parametric_yield
            )?;
        }
        Ok(())
    }
}

// ----------------------------------------------------------- DAC ablation

/// One DAC-resolution point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DacAblationRow {
    /// DAC resolution in bits.
    pub bits: u8,
    /// Mean standby-power saving vs zero bias (ratio).
    pub mean_saving: f64,
    /// Hold-yield loss vs zero source bias (fraction of dies).
    pub hold_loss: f64,
}

/// DAC-resolution ablation for the ASB loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DacAblation {
    /// Bits sweep.
    pub rows: Vec<DacAblationRow>,
}

/// Runs the DAC ablation: a coarse DAC quantizes `VSB(adaptive)` far below
/// each die's ceiling (losing savings), while more bits converge on the
/// per-die optimum with diminishing returns.
///
/// # Errors
///
/// Propagates DC-solver failures.
pub fn ablation_dac(effort: Effort) -> Result<DacAblation, CircuitError> {
    let _span = pvtm_telemetry::span("ablation_dac");
    let (engine0, vsb_opt) = super::asb::build_engine(effort)?;
    let sigma = 0.06;
    let dies = effort.dies.clamp(24, 200);
    let rows = [3u8, 4, 5, 6]
        .iter()
        .map(|&bits| {
            let mut cfg = engine0.config().clone();
            cfg.dac = Dac::new(bits, cfg.dac.vref());
            let engine = crate::adaptive::AsbEngine::new(
                engine0.hold_grid().clone(),
                engine0.leakage_grid().clone(),
                cfg,
            );
            let pop = engine.run_population(dies, sigma, vsb_opt, 0xDAC0 + bits as u64);
            let spares = engine.config().org.redundant_cols;
            let mean = |f: &dyn Fn(&crate::adaptive::DieEvaluation) -> f64| -> f64 {
                pop.iter().map(f).sum::<f64>() / pop.len() as f64
            };
            let saving = mean(&|d| d.power_zero) / mean(&|d| d.power_adaptive);
            let ok_zero = pop.iter().filter(|d| d.faulty_cols_zero <= spares).count();
            let ok_adp = pop
                .iter()
                .filter(|d| d.faulty_cols_adaptive <= spares)
                .count();
            DacAblationRow {
                bits,
                mean_saving: saving,
                hold_loss: (ok_zero.saturating_sub(ok_adp)) as f64 / pop.len() as f64,
            }
        })
        .collect();
    Ok(DacAblation { rows })
}

impl fmt::Display for DacAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation — DAC resolution of the ASB generator")?;
        writeln!(f, "{:>5} {:>12} {:>10}", "bits", "mean saving", "hold loss")?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>5} {:>11.2}x {:>9.1}%",
                r.bits,
                r.mean_saving,
                100.0 * r.hold_loss
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------- bias-level ablation

/// One body-bias-strength point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BiasLevelRow {
    /// Magnitude of both RBB and FBB \[V\].
    pub level: f64,
    /// Parametric yield at σ(Vt_inter) = 120 mV.
    pub parametric_yield: f64,
    /// Leakage yield at the same σ (bound: 2.5× nominal array leakage).
    pub leakage_yield: f64,
}

/// Body-bias-strength ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiasLevelAblation {
    /// Level sweep.
    pub rows: Vec<BiasLevelRow>,
}

/// Runs the bias-level ablation: weak bias under-corrects; too-strong bias
/// over-corrects the repaired corners into the *opposite* failure
/// mechanisms and pays the junction/diode leakage penalties of Fig. 5a —
/// the window the paper says bounds the usable FBB/RBB.
///
/// # Errors
///
/// Propagates DC-solver failures.
pub fn ablation_bias_levels(effort: Effort) -> Result<BiasLevelAblation, CircuitError> {
    let _span = pvtm_telemetry::span("ablation_bias_levels");
    let corners = linspace(-0.30, 0.30, effort.corners.max(7));
    let sigma = 0.12;
    let ctx = pvtm_telemetry::parallel_context();
    let rows: Result<Vec<BiasLevelRow>, CircuitError> = [0.15f64, 0.30, 0.45, 0.60]
        .par_iter()
        .map(|&level| {
            let _ctx = pvtm_telemetry::adopt(&ctx);
            let mut cfg = SelfRepairConfig::default_70nm(64, 102);
            cfg.generator = BodyBiasGenerator::new(-level, level);
            let memory = SelfRepairingMemory::new(cfg);
            let resp = memory.response(&corners)?;
            let l_max = 2.5 * resp.array_leak_mean(0.0, crate::self_repair::Policy::Zbb);
            Ok(BiasLevelRow {
                level,
                parametric_yield: resp
                    .parametric_yield(sigma, crate::self_repair::Policy::SelfRepair),
                leakage_yield: resp.leakage_yield(
                    sigma,
                    l_max,
                    crate::self_repair::Policy::SelfRepair,
                ),
            })
        })
        .collect();
    Ok(BiasLevelAblation { rows: rows? })
}

impl fmt::Display for BiasLevelAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation — body-bias strength (|RBB| = |FBB|, sigma_inter = 120 mV)"
        )?;
        writeln!(
            f,
            "{:>7} {:>12} {:>12}",
            "level", "param yield", "leak yield"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6.2}V {:>11.1}% {:>11.1}%",
                r.level,
                100.0 * r.parametric_yield,
                100.0 * r.leakage_yield
            )?;
        }
        Ok(())
    }
}

// --------------------------------------------------------- March ablation

/// Coverage of one March algorithm on a mixed fault soup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarchCoverageRow {
    /// Algorithm name.
    pub name: String,
    /// Operations per cell.
    pub ops_per_cell: usize,
    /// Fraction of injected faulty cells detected.
    pub coverage: f64,
}

/// March-algorithm comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarchAblation {
    /// Per-algorithm coverage.
    pub rows: Vec<MarchCoverageRow>,
    /// Faults injected per trial.
    pub faults_per_trial: usize,
}

/// Compares the March algorithms' fault coverage on randomized soups of
/// stuck-at, transition, coupling and address-decoder faults — the
/// trade-off behind the "March Test Algorithms" box of the paper's Fig. 7.
pub fn ablation_march(effort: Effort) -> MarchAblation {
    let _span = pvtm_telemetry::span("ablation_march");
    let trials = (effort.dies * 4).max(60);
    let faults_per_trial = 6;
    let tests = [
        MarchTest::mats_plus(),
        MarchTest::march_c_minus(),
        MarchTest::march_a(),
        MarchTest::march_ss(),
    ];
    let rows = tests
        .iter()
        .map(|test| {
            let mut detected = 0usize;
            let mut injected = 0usize;
            for t in 0..trials {
                let mut rng = pvtm_stats::rng::substream(0x3A6C, t as u64);
                let mut mem = MemoryModel::new(16, 16);
                let mut sites = std::collections::BTreeSet::new();
                for _ in 0..faults_per_trial {
                    let row = rng.gen_range(0..16);
                    let col = rng.gen_range(0..16);
                    if !sites.insert((row, col)) {
                        continue;
                    }
                    let kind = match rng.gen_range(0..5) {
                        0 => FaultKind::StuckAt(rng.gen()),
                        1 => FaultKind::TransitionUp,
                        2 => FaultKind::TransitionDown,
                        3 => {
                            let agg_row = rng.gen_range(0..16);
                            let agg_col = rng.gen_range(0..16);
                            if (agg_row, agg_col) == (row, col) {
                                FaultKind::StuckAt(true)
                            } else {
                                FaultKind::CouplingInv { agg_row, agg_col }
                            }
                        }
                        _ => {
                            let to_row = rng.gen_range(0..16);
                            let to_col = rng.gen_range(0..16);
                            if (to_row, to_col) == (row, col) {
                                FaultKind::StuckAt(false)
                            } else {
                                FaultKind::AddressAlias { to_row, to_col }
                            }
                        }
                    };
                    mem.inject(Fault { row, col, kind });
                }
                injected += sites.len();
                let report = BistController::new()
                    .run(test, &mut mem)
                    .expect("the march ran on this memory, so failure columns are in range");
                let caught: std::collections::BTreeSet<(usize, usize)> = report
                    .march_result()
                    .failures
                    .iter()
                    .map(|f| (f.row, f.col))
                    .collect();
                // A fault is "detected" when its cell (or, for address
                // faults, any cell) produced a mismatch in this trial.
                detected += sites.iter().filter(|s| caught.contains(s)).count();
                if !caught.is_empty() {
                    // Address faults often manifest at the alias target.
                    detected += caught.difference(&sites).count().min(
                        sites
                            .len()
                            .saturating_sub(sites.iter().filter(|s| caught.contains(s)).count()),
                    );
                }
            }
            MarchCoverageRow {
                name: test.name().to_string(),
                ops_per_cell: test.ops_per_cell(),
                coverage: detected as f64 / injected as f64,
            }
        })
        .collect();
    MarchAblation {
        rows,
        faults_per_trial,
    }
}

impl fmt::Display for MarchAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation — March algorithm coverage (mixed fault soup, {} faults/trial)",
            self.faults_per_trial
        )?;
        writeln!(f, "{:>12} {:>9} {:>9}", "algorithm", "ops/cell", "coverage")?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>12} {:>9} {:>8.1}%",
                r.name,
                r.ops_per_cell,
                100.0 * r.coverage
            )?;
        }
        Ok(())
    }
}

// --------------------------------------------------- temperature ablation

/// One temperature point of the binning study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemperatureRow {
    /// Die temperature \[K\].
    pub temp_k: f64,
    /// Nominal-die array leakage relative to 300 K.
    pub leakage_ratio: f64,
    /// Region the 300 K-calibrated binner assigns to a *nominal* die at
    /// this temperature.
    pub nominal_die_region: VtRegion,
}

/// Temperature sensitivity of the leakage binning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemperatureAblation {
    /// Temperature sweep.
    pub rows: Vec<TemperatureRow>,
}

/// Runs the temperature ablation: the paper's Fig. 3 specifies 27 °C for
/// the monitor; this shows why — leakage grows so fast with temperature
/// that references calibrated cold misbin *every* hot die as low-Vt, so a
/// real implementation must temperature-compensate the references.
pub fn ablation_temperature(effort: Effort) -> TemperatureAblation {
    let _span = pvtm_telemetry::span("ablation_temperature");
    let (tech, sizing, _) = baseline();
    let model = CellLeakageModel::new(&tech, sizing);
    let memory = SelfRepairingMemory::new(SelfRepairConfig::default_70nm(64, 102));
    let cells = memory.config().org.cells() as f64;
    let samples = effort.cells.clamp(500, 4_000);
    let leak_at = |temp: f64| -> f64 {
        let cond = Conditions::active(&tech).with_temperature(temp);
        let mut rng = pvtm_stats::rng::substream(0x7E39, (temp * 10.0) as u64);
        model.population_stats(0.0, &cond, samples, &mut rng).mean * cells
    };
    let base = leak_at(300.0);
    let rows = [300.0f64, 325.0, 350.0, 375.0]
        .iter()
        .map(|&temp_k| {
            let leak = leak_at(temp_k);
            TemperatureRow {
                temp_k,
                leakage_ratio: leak / base,
                nominal_die_region: memory.binner().classify_ideal(leak),
            }
        })
        .collect();
    TemperatureAblation { rows }
}

impl fmt::Display for TemperatureAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation — temperature vs 300 K-calibrated leakage binning (nominal die)"
        )?;
        writeln!(f, "{:>7} {:>12} {:>14}", "T [K]", "leak ratio", "binned as")?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>7.0} {:>11.2}x {:>14}",
                r.temp_k,
                r.leakage_ratio,
                r.nominal_die_region.to_string()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn march_coverage_ranks_algorithms() {
        let result = ablation_march(Effort::quick());
        let get = |name: &str| -> f64 {
            result
                .rows
                .iter()
                .find(|r| r.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .coverage
        };
        // The stronger (longer) tests must not trail MATS+.
        assert!(get("March C-") >= get("MATS+") - 0.05);
        assert!(get("March SS") >= get("March C-") - 0.05);
        assert!(get("March C-") > 0.8, "March C- coverage too low");
    }

    #[test]
    fn temperature_breaks_cold_calibrated_binning() {
        let result = ablation_temperature(Effort::quick());
        assert_eq!(result.rows[0].nominal_die_region, VtRegion::Nominal);
        let hot = result.rows.last().unwrap();
        // Subthreshold leakage grows ~6x over 75 K; the *population mean*
        // grows a little less because the lognormal RDF amplification
        // shrinks as vT rises. Either way it dwarfs the ±50 mV region
        // boundary spacing (~4x).
        assert!(
            hot.leakage_ratio > 3.0,
            "leakage must grow strongly with T: {:.2}x",
            hot.leakage_ratio
        );
        assert_eq!(
            hot.nominal_die_region,
            VtRegion::LowVt,
            "a hot nominal die must be misbinned as leaky"
        );
    }

    #[test]
    fn dac_resolution_helps_savings() {
        let result = ablation_dac(Effort::quick()).unwrap();
        let first = &result.rows[0];
        let last = result.rows.last().unwrap();
        assert!(
            last.mean_saving >= first.mean_saving * 0.9,
            "finer DAC must not lose savings: {} bits {:.2}x vs {} bits {:.2}x",
            first.bits,
            first.mean_saving,
            last.bits,
            last.mean_saving
        );
        for r in &result.rows {
            assert!(r.mean_saving >= 1.0);
            assert!((0.0..=1.0).contains(&r.hold_loss));
        }
    }
}
