//! Experiments for the self-adaptive source-bias scheme (paper Figs. 6–10)
//! plus the headline summary.

use serde::{Deserialize, Serialize};
use std::fmt;

use pvtm_bist::{Dac, MarchTest};
use pvtm_circuit::CircuitError;
use pvtm_device::Technology;
use pvtm_sram::{AnalysisConfig, ArrayOrganization, CellSizing};
use pvtm_stats::special::binomial_sf;
use pvtm_stats::Histogram;

use super::{Effort, Fig2c};
use crate::adaptive::{AsbConfig, AsbEngine, StandbyLeakageGrid};
use crate::interp::linspace;
use crate::source_bias::{HoldModelGrid, SourceBiasAnalyzer};

/// Memory-level hold-failure target of the paper's Fig. 6 (`P_HF = 1e-3`).
pub const P_HF_TARGET: f64 = 1e-3;

/// Source-bias search window \[V\].
const VSB_LO: f64 = 0.30;
const VSB_HI: f64 = 0.74;

fn baseline() -> (Technology, CellSizing, AnalysisConfig) {
    let tech = Technology::predictive_70nm();
    (
        tech.clone(),
        CellSizing::default_for(&tech),
        AnalysisConfig::default(),
    )
}

/// The per-cell hold-failure probability at which a memory of organization
/// `org` reaches the memory-level target `p_mem` (inverted through the
/// column-redundancy model by bisection in log space).
pub fn cell_target_for_memory(org: &ArrayOrganization, p_mem: f64) -> f64 {
    assert!(p_mem > 0.0 && p_mem < 1.0, "invalid memory target {p_mem}");
    let mem_prob = |p_cell: f64| -> f64 {
        let p_col = org.column_failure_prob(p_cell);
        binomial_sf(org.cols as u64, org.redundant_cols as u64, p_col)
    };
    let (mut lo, mut hi) = (-30.0f64, 0.0f64); // ln p_cell bounds
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if mem_prob(mid.exp()) > p_mem {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    (0.5 * (lo + hi)).exp()
}

// ----------------------------------------------------------------- fig 6

/// One corner of the Fig. 6 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Inter-die corner \[V\].
    pub vt_inter: f64,
    /// Maximum source bias meeting the hold target \[V\].
    pub vsb_max: f64,
}

/// Fig. 6: the per-corner source-bias ceiling for `P_HF = 1e-3` (32 KB).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6 {
    /// Corner sweep.
    pub rows: Vec<Fig6Row>,
    /// The per-cell probability target implied by the memory-level target.
    pub p_cell_target: f64,
}

/// Reproduces Fig. 6: the ceiling peaks at the nominal corner and falls
/// toward both tails.
///
/// Per-corner searches run quarantine-aware: an evaluation left
/// unresolved by the solver's rescue ladder only shrinks that corner's
/// ceiling (pessimistic) and is recorded in the telemetry sidecar.
///
/// # Errors
///
/// Fails only when the aggregate quarantine rate across all hold
/// evaluations exceeds `PVTM_MAX_QUARANTINE`.
pub fn fig6(effort: Effort) -> Result<Fig6, CircuitError> {
    let _span = pvtm_telemetry::span("fig6");
    let (tech, sizing, config) = baseline();
    let org = ArrayOrganization::with_capacity_kib(32, 0.05);
    let p_cell_target = cell_target_for_memory(&org, P_HF_TARGET);
    let analyzer = SourceBiasAnalyzer::new(&tech, sizing, config);
    let corners = linspace(-0.12, 0.12, effort.corners.max(5));
    use rayon::prelude::*;
    let ctx = pvtm_telemetry::parallel_context();
    let outcomes: Vec<(Fig6Row, u64, u64)> = corners
        .par_iter()
        .map(|&vt_inter| {
            let _ctx = pvtm_telemetry::adopt(&ctx);
            let out = analyzer.max_vsb_quarantined(vt_inter, p_cell_target);
            (
                Fig6Row {
                    vt_inter,
                    vsb_max: out.vsb,
                },
                out.evals,
                out.quarantined,
            )
        })
        .collect();
    let evals: u64 = outcomes.iter().map(|(_, e, _)| e).sum();
    let quarantined: u64 = outcomes.iter().map(|(_, _, q)| q).sum();
    super::check_quarantine_rate(quarantined, evals)?;
    Ok(Fig6 {
        rows: outcomes.into_iter().map(|(r, _, _)| r).collect(),
        p_cell_target,
    })
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 6 — max source bias for P_HF = {P_HF_TARGET:.0e} (32 KB, cell target {:.2e})",
            self.p_cell_target
        )?;
        writeln!(f, "{:>9} {:>9}", "Vt_inter", "VSB_max")?;
        for r in &self.rows {
            writeln!(f, "{:>8.0}m {:>8.3}V", r.vt_inter * 1e3, r.vsb_max)?;
        }
        Ok(())
    }
}

// ----------------------------------------------------------------- fig 8

/// One corner of the Fig. 8 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Inter-die corner \[V\].
    pub vt_inter: f64,
    /// Median `VSB(adaptive)` selected by the BIST calibration \[V\].
    pub vsb_adaptive: f64,
    /// Memory hold-failure probability at the fixed `VSB(opt)`
    /// (analytic population model — the fixed scheme does not adapt, so
    /// the binomial redundancy model applies directly).
    pub p_hf_opt: f64,
    /// Use-time hold-failure *fraction* of adaptively calibrated dies at
    /// this corner. Each die rides the edge of its own redundancy budget
    /// safely because it measured itself; only calibration-to-use drift
    /// (the `use_guard`) can break it, so this stays small and flat while
    /// the fixed scheme explodes at the tails — the "widened window" of
    /// the paper's Fig. 8b.
    pub p_hf_adaptive: f64,
}

/// Fig. 8: adaptive vs fixed-optimal source bias across corners (2 KB).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8 {
    /// Corner sweep.
    pub rows: Vec<Fig8Row>,
    /// The design-time `VSB(opt)` \[V\].
    pub vsb_opt: f64,
}

/// Shared builder: the ASB engine over the standard grids.
pub(crate) fn build_engine(effort: Effort) -> Result<(AsbEngine, f64), CircuitError> {
    let (tech, sizing, config) = baseline();
    let corners = linspace(-0.15, 0.15, effort.corners.clamp(4, 9));
    let vsbs = linspace(VSB_LO, VSB_HI, 10);
    let analyzer = SourceBiasAnalyzer::new(&tech, sizing, config);
    let hold = HoldModelGrid::build(&analyzer, corners.clone(), vsbs.clone())?;
    let leak = StandbyLeakageGrid::build(&tech, sizing, corners, vsbs, 200);
    let cfg = AsbConfig {
        org: ArrayOrganization::with_capacity_kib(2, 0.05),
        dac: Dac::new(5, VSB_HI),
        march: MarchTest::march_c_minus(),
        use_guard: 0.012,
        backoff_codes: 1,
    };
    let p_cell_target = cell_target_for_memory(&cfg.org, P_HF_TARGET);
    let vsb_opt = analyzer.max_vsb(0.0, p_cell_target)?;
    Ok((AsbEngine::new(hold, leak, cfg), vsb_opt))
}

/// Memory-level hold failure probability from the hold grid.
fn memory_hold_prob(engine: &AsbEngine, org: &ArrayOrganization, corner: f64, vsb: f64) -> f64 {
    let p_cell = engine.hold_grid().failure_prob(corner, vsb);
    let p_col = org.column_failure_prob(p_cell.min(1.0));
    binomial_sf(org.cols as u64, org.redundant_cols as u64, p_col)
}

/// Reproduces Fig. 8: `VSB(adaptive)` tracks the per-corner ceiling while a
/// fixed `VSB(opt)` overshoots at shifted corners, widening the low-`P_HF`
/// window.
///
/// # Errors
///
/// Propagates DC-solver failures.
pub fn fig8(effort: Effort) -> Result<Fig8, CircuitError> {
    let _span = pvtm_telemetry::span("fig8");
    let (engine, vsb_opt) = build_engine(effort)?;
    let org = engine.config().org;
    let spares = org.redundant_cols;
    let corners = linspace(-0.12, 0.12, effort.corners.max(5));
    let dies_per_corner = (effort.dies / 10).clamp(6, 40);
    use rayon::prelude::*;
    let rows: Vec<Fig8Row> = corners
        .par_iter()
        .enumerate()
        .map(|(i, &vt_inter)| {
            let mut vsbs = Vec::with_capacity(dies_per_corner);
            let mut use_failures = 0usize;
            for k in 0..dies_per_corner {
                let mut rng = pvtm_stats::rng::substream(0xF168, (i * 1000 + k) as u64);
                let mut mem = engine.build_die(vt_inter, &mut rng);
                let outcome = engine.calibrate(&mut mem);
                let drift = engine.sample_drift(&mut rng);
                if engine.faulty_columns_at(&mut mem, outcome.vsb + drift) > spares {
                    use_failures += 1;
                }
                vsbs.push(outcome.vsb);
            }
            vsbs.sort_by(|a, b| {
                a.partial_cmp(b)
                    .expect("solved vsb values are always finite")
            });
            Fig8Row {
                vt_inter,
                vsb_adaptive: vsbs[vsbs.len() / 2],
                p_hf_opt: memory_hold_prob(&engine, &org, vt_inter, vsb_opt),
                p_hf_adaptive: use_failures as f64 / dies_per_corner as f64,
            }
        })
        .collect();
    Ok(Fig8 { rows, vsb_opt })
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 8 — adaptive source bias vs corner (2 KB, VSB(opt) = {:.3} V)",
            self.vsb_opt
        )?;
        writeln!(
            f,
            "{:>9} {:>13} {:>12} {:>14}",
            "Vt_inter", "VSB(adaptive)", "P_HF(opt)", "P_HF(adaptive)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8.0}m {:>12.3}V {:>12} {:>14}",
                r.vt_inter * 1e3,
                r.vsb_adaptive,
                super::fmt_p(r.p_hf_opt),
                super::fmt_p(r.p_hf_adaptive)
            )?;
        }
        Ok(())
    }
}

// ----------------------------------------------------------------- fig 9

/// Fig. 9: distributions across a die population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9 {
    /// Histogram of `VSB(adaptive)` across dies (σ_inter = 60 mV).
    pub vsb_distribution: Histogram,
    /// Standard deviation of `VSB(adaptive)` among dies at one fixed
    /// corner (the paper's inset: negligible within-corner spread).
    pub within_corner_sigma: f64,
    /// The DAC step size \[V\] (the natural scale of the inset spread).
    pub dac_lsb: f64,
    /// Histograms of `log10(standby power / W)` for zero / opt / adaptive.
    pub power_zero: Histogram,
    /// Standby-power histogram at `VSB(opt)`.
    pub power_opt: Histogram,
    /// Standby-power histogram at `VSB(adaptive)`.
    pub power_adaptive: Histogram,
    /// Mean standby-power saving of adaptive vs zero bias (ratio).
    pub mean_saving_vs_zero: f64,
}

/// Reproduces Fig. 9: the source-bias and standby-power distributions.
///
/// # Errors
///
/// Propagates DC-solver failures.
pub fn fig9(effort: Effort) -> Result<Fig9, CircuitError> {
    let _span = pvtm_telemetry::span("fig9");
    let (engine, vsb_opt) = build_engine(effort)?;
    let pop = engine.run_population(effort.dies.max(20), 0.06, vsb_opt, 0xF169);

    let vsbs: Vec<f64> = pop.iter().map(|d| d.vsb_adaptive).collect();
    let vsb_distribution = Histogram::from_samples(&vsbs, 24);

    // Inset: dies pinned at one corner.
    let fixed: Vec<f64> = (0..24u64)
        .map(|k| {
            let mut rng = pvtm_stats::rng::substream(0xF169A, k);
            let mut mem = engine.build_die(-0.02, &mut rng);
            engine.calibrate(&mut mem).vsb
        })
        .collect();
    let within_corner_sigma = pvtm_stats::Summary::from_slice(&fixed).std_dev();

    let log_power = |xs: Vec<f64>| -> Histogram {
        let logs: Vec<f64> = xs.iter().map(|&p| p.max(1e-30).log10()).collect();
        Histogram::from_samples(&logs, 24)
    };
    let p0: Vec<f64> = pop.iter().map(|d| d.power_zero).collect();
    let po: Vec<f64> = pop.iter().map(|d| d.power_opt).collect();
    let pa: Vec<f64> = pop.iter().map(|d| d.power_adaptive).collect();
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let mean_saving_vs_zero = mean(&p0) / mean(&pa);
    Ok(Fig9 {
        vsb_distribution,
        within_corner_sigma,
        dac_lsb: engine.config().dac.lsb(),
        power_zero: log_power(p0),
        power_opt: log_power(po),
        power_adaptive: log_power(pa),
        mean_saving_vs_zero,
    })
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 9 — ASB population distributions (2 KB, sigma_inter = 60 mV)"
        )?;
        writeln!(
            f,
            "VSB(adaptive) spread across dies: {:.3} .. {:.3} V",
            self.vsb_distribution.bin_center(0),
            self.vsb_distribution
                .bin_center(self.vsb_distribution.nbins() - 1)
        )?;
        writeln!(
            f,
            "within-corner VSB sigma: {:.4} V (DAC LSB = {:.4} V — negligible, as the inset)",
            self.within_corner_sigma, self.dac_lsb
        )?;
        writeln!(
            f,
            "mean standby-power saving, adaptive vs zero bias: {:.1}x",
            self.mean_saving_vs_zero
        )
    }
}

// ---------------------------------------------------------------- fig 10

/// One σ point of the yield comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig10Row {
    /// σ of the inter-die distribution \[V\].
    pub sigma_inter: f64,
    /// Leakage yield with zero source bias.
    pub l_yield_zero: f64,
    /// Leakage yield with `VSB(opt)`.
    pub l_yield_opt: f64,
    /// Leakage yield with `VSB(adaptive)`.
    pub l_yield_adaptive: f64,
    /// Hold yield with zero source bias.
    pub h_yield_zero: f64,
    /// Hold yield with `VSB(opt)`.
    pub h_yield_opt: f64,
    /// Hold yield with `VSB(adaptive)`.
    pub h_yield_adaptive: f64,
}

/// Fig. 10: leakage yield (a) and hold yield (b) vs σ for the three
/// source-bias schemes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10 {
    /// σ sweep.
    pub rows: Vec<Fig10Row>,
    /// Standby-power bound used for the leakage yield \[W\].
    pub p_max: f64,
    /// `VSB(opt)` \[V\].
    pub vsb_opt: f64,
}

/// Reproduces Fig. 10 from die populations at each σ.
///
/// # Errors
///
/// Propagates DC-solver failures.
pub fn fig10(effort: Effort) -> Result<Fig10, CircuitError> {
    let _span = pvtm_telemetry::span("fig10");
    let (engine, vsb_opt) = build_engine(effort)?;
    let cells = engine.config().org.cells();
    let spares = engine.config().org.redundant_cols;
    // Power bound: 1.5x the nominal die's zero-bias standby power.
    let p_max = 1.5 * engine.leakage_grid().standby_power(0.0, 0.0, cells);
    let sigmas = linspace(0.03, 0.12, effort.sigmas.max(3));
    let rows: Vec<Fig10Row> = sigmas
        .iter()
        .enumerate()
        .map(|(i, &sigma_inter)| {
            let pop = engine.run_population(
                effort.dies.max(20),
                sigma_inter,
                vsb_opt,
                0xF1610 + i as u64,
            );
            let n = pop.len() as f64;
            let frac = |pred: &dyn Fn(&crate::adaptive::DieEvaluation) -> bool| -> f64 {
                pop.iter().filter(|d| pred(d)).count() as f64 / n
            };
            Fig10Row {
                sigma_inter,
                l_yield_zero: frac(&|d| d.power_zero <= p_max),
                l_yield_opt: frac(&|d| d.power_opt <= p_max),
                l_yield_adaptive: frac(&|d| d.power_adaptive <= p_max),
                h_yield_zero: frac(&|d| d.faulty_cols_zero <= spares),
                h_yield_opt: frac(&|d| d.faulty_cols_opt <= spares),
                h_yield_adaptive: frac(&|d| d.faulty_cols_adaptive <= spares),
            }
        })
        .collect();
    Ok(Fig10 {
        rows,
        p_max,
        vsb_opt,
    })
}

impl fmt::Display for Fig10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 10 — yields vs sigma(Vt_inter) [%], P_MAX = {:.2} uW, VSB(opt) = {:.3} V",
            self.p_max * 1e6,
            self.vsb_opt
        )?;
        writeln!(
            f,
            "{:>9} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
            "sigma", "L zero", "L opt", "L adap", "H zero", "H opt", "H adap"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8.0}m | {:>8.1} {:>8.1} {:>8.1} | {:>8.1} {:>8.1} {:>8.1}",
                r.sigma_inter * 1e3,
                100.0 * r.l_yield_zero,
                100.0 * r.l_yield_opt,
                100.0 * r.l_yield_adaptive,
                100.0 * r.h_yield_zero,
                100.0 * r.h_yield_opt,
                100.0 * r.h_yield_adaptive
            )?;
        }
        Ok(())
    }
}

// --------------------------------------------------------------- headline

/// The paper's headline quantitative claims vs our measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Headline {
    /// Parametric-yield improvement of the self-repairing memory at large
    /// σ, percentage points (64 KB, 256 KB). Paper: 8–25 %.
    pub abb_yield_improvement: (f64, f64),
    /// Leakage-yield improvement of ASB vs zero source bias, percentage
    /// points at the largest σ. Paper: 7–25 %.
    pub asb_leakage_yield_improvement: f64,
    /// Reduction of hold-failing dies, adaptive vs `VSB(opt)`, percent.
    /// Paper: 70–85 %.
    pub asb_hold_failure_reduction: f64,
    /// Hold-yield loss of adaptive vs zero bias, percentage points.
    /// Paper: 1–5 %.
    pub asb_hold_yield_loss: f64,
}

/// Aggregates the headline claims from the Fig. 2c and Fig. 10 results.
pub fn headline(fig2c: &Fig2c, fig10: &Fig10) -> Headline {
    let _span = pvtm_telemetry::span("headline");
    let last = fig10.rows.last().expect("fig10 sweep always produces rows");
    let fail_opt = 1.0 - last.h_yield_opt;
    let fail_adp = 1.0 - last.h_yield_adaptive;
    Headline {
        abb_yield_improvement: fig2c.improvement_at_max_sigma,
        asb_leakage_yield_improvement: 100.0 * (last.l_yield_adaptive - last.l_yield_zero),
        asb_hold_failure_reduction: if fail_opt > 0.0 {
            100.0 * (fail_opt - fail_adp) / fail_opt
        } else {
            100.0
        },
        asb_hold_yield_loss: 100.0 * (last.h_yield_zero - last.h_yield_adaptive),
    }
}

impl fmt::Display for Headline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Headline claims — paper vs measured")?;
        writeln!(
            f,
            "  ABB parametric-yield improvement : paper 8-25%   measured {:+.1} pp (64KB), {:+.1} pp (256KB)",
            self.abb_yield_improvement.0, self.abb_yield_improvement.1
        )?;
        writeln!(
            f,
            "  ASB leakage-yield vs zero bias   : paper 7-25%   measured {:+.1} pp",
            self.asb_leakage_yield_improvement
        )?;
        writeln!(
            f,
            "  ASB hold-fail reduction vs opt   : paper 70-85%  measured {:.1}%",
            self.asb_hold_failure_reduction
        )?;
        writeln!(
            f,
            "  ASB hold-yield loss vs zero bias : paper 1-5%    measured {:.1} pp",
            self.asb_hold_yield_loss
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_target_inverts_the_redundancy_model() {
        let org = ArrayOrganization::with_capacity_kib(32, 0.05);
        let p_cell = cell_target_for_memory(&org, 1e-3);
        let p_col = org.column_failure_prob(p_cell);
        let p_mem = binomial_sf(org.cols as u64, org.redundant_cols as u64, p_col);
        assert!(
            (p_mem.ln() - (1e-3f64).ln()).abs() < 0.05,
            "inversion off: p_mem = {p_mem:.3e}"
        );
        assert!(p_cell > 1e-8 && p_cell < 1e-2, "p_cell = {p_cell:.3e}");
    }

    #[test]
    fn fig6_peaks_at_nominal() {
        let result = fig6(Effort::quick()).unwrap();
        let peak = result
            .rows
            .iter()
            .max_by(|a, b| a.vsb_max.partial_cmp(&b.vsb_max).unwrap())
            .unwrap();
        assert!(
            peak.vt_inter.abs() < 0.08,
            "ceiling must peak near nominal, peaked at {:.3}",
            peak.vt_inter
        );
        let first = &result.rows[0];
        let last = result.rows.last().unwrap();
        assert!(peak.vsb_max >= first.vsb_max && peak.vsb_max >= last.vsb_max);
    }

    #[test]
    fn fig8_adaptive_tracks_and_bounds() {
        let result = fig8(Effort::quick()).unwrap();
        for r in &result.rows {
            // Adaptive dies measure themselves: their use-time failure
            // fraction stays low everywhere, even where the fixed scheme
            // has driven its analytic failure probability sky-high.
            assert!(
                r.p_hf_adaptive <= 0.35,
                "corner {:.2}: adaptive use-time failure fraction {:.2}",
                r.vt_inter,
                r.p_hf_adaptive
            );
            assert!(r.vsb_adaptive >= 0.0 && r.vsb_adaptive <= VSB_HI);
        }
        // The fixed scheme must blow past the target at some shifted corner
        // while adaptive stays controlled there.
        let worst_opt = result
            .rows
            .iter()
            .map(|r| r.p_hf_opt)
            .fold(0.0f64, f64::max);
        assert!(
            worst_opt > 10.0 * P_HF_TARGET,
            "VSB(opt) should overshoot at the tails: worst {worst_opt:.2e}"
        );
    }
}
