//! Experiments for the self-repairing memory (paper Figs. 2–5).

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

use pvtm_circuit::CircuitError;
use pvtm_device::Technology;
use pvtm_sram::{
    AnalysisConfig, CellLeakageModel, CellSizing, Conditions, FailureAnalyzer, SramCell,
};
use pvtm_stats::Histogram;

use super::{check_quarantine_rate, fmt_p, quarantine_corner, Effort};
use crate::interp::linspace;
use crate::self_repair::{Policy, SelfRepairConfig, SelfRepairingMemory};

/// Standby source bias at which the hold mechanism is evaluated throughout
/// the self-repair experiments (a low-power standby design point deep
/// enough for hold failures to be observable, as in the paper's Fig. 2a).
pub const HOLD_VSB: f64 = 0.5;

fn baseline() -> (Technology, CellSizing, AnalysisConfig) {
    let tech = Technology::predictive_70nm();
    (
        tech,
        CellSizing::default_for(&Technology::predictive_70nm()),
        AnalysisConfig::default(),
    )
}

// ---------------------------------------------------------------- fig 2a

/// One corner of the Fig. 2a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig2aRow {
    /// Inter-die Vt shift \[V\].
    pub vt_inter: f64,
    /// Read failure probability.
    pub read: f64,
    /// Write failure probability.
    pub write: f64,
    /// Access failure probability.
    pub access: f64,
    /// Hold failure probability.
    pub hold: f64,
    /// Overall cell failure probability.
    pub overall: f64,
}

/// Importance-sampled Monte-Carlo cross-check of the linearized failure
/// estimate at one corner (exact circuit-solved margins, any mechanism
/// failing counts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McCrossCheck {
    /// Corner the check ran at (the sweep's worst corner).
    pub vt_inter: f64,
    /// Overall failure probability from the linearized model.
    pub linearized: f64,
    /// Monte-Carlo estimate of the same probability.
    pub mc: f64,
    /// Standard error of the Monte-Carlo estimate.
    pub std_err: f64,
    /// Samples spent.
    pub samples: u64,
}

/// Fig. 2a: cell failure probabilities vs inter-die Vt shift.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2a {
    /// Corner sweep.
    pub rows: Vec<Fig2aRow>,
    /// Monte-Carlo cross-check at the worst corner.
    pub mc_check: McCrossCheck,
}

/// Reproduces Fig. 2a: the V-shape of the overall cell failure probability
/// (read/hold rising toward low Vt, access/write toward high Vt).
///
/// # Errors
///
/// Propagates DC-solver failures.
pub fn fig2a(effort: Effort) -> Result<Fig2a, CircuitError> {
    let _span = pvtm_telemetry::span("fig2a");
    let (tech, sizing, config) = baseline();
    let fa = FailureAnalyzer::new(&tech, sizing, config);
    let cond = Conditions::standby(&tech, HOLD_VSB);
    let corners = linspace(-0.15, 0.15, effort.corners.max(5));
    let ctx = pvtm_telemetry::parallel_context();
    let results: Vec<(Fig2aRow, bool)> = corners
        .par_iter()
        .enumerate()
        .map_init(
            || (pvtm_telemetry::adopt(&ctx), fa.evaluator()),
            |(_ctx, ev), (ci, &vt_inter)| {
                // Cold-start each corner: per-corner solver work must not
                // depend on which corners this worker processed before
                // (keeps telemetry work counters schedule-independent).
                ev.invalidate_warm();
                let outcome = match fa.failure_probs_with(ev, vt_inter, &cond) {
                    Ok(p) => (
                        Fig2aRow {
                            vt_inter,
                            read: p.read,
                            write: p.write,
                            access: p.access,
                            hold: p.hold,
                            overall: p.overall(),
                        },
                        false,
                    ),
                    Err(e) => {
                        // An unsolvable corner is quarantined rather than
                        // aborting the sweep: record it and report the
                        // pessimistic bound (every mechanism failing).
                        quarantine_corner(ci as u64, vt_inter, &e);
                        (
                            Fig2aRow {
                                vt_inter,
                                read: 1.0,
                                write: 1.0,
                                access: 1.0,
                                hold: 1.0,
                                overall: 1.0,
                            },
                            true,
                        )
                    }
                };
                {
                    use pvtm_telemetry::json::Value;
                    pvtm_telemetry::events::emit(
                        "figure.corner",
                        ci as u64,
                        0,
                        vec![
                            ("figure", Value::Str("fig2a".into())),
                            ("corner", Value::Num(ci as f64)),
                            ("vt_inter", Value::Num(vt_inter)),
                            ("quarantined", Value::Bool(outcome.1)),
                        ],
                    );
                }
                outcome
            },
        )
        .collect();
    let quarantined = results.iter().filter(|(_, q)| *q).count() as u64;
    let rows: Vec<Fig2aRow> = results.into_iter().map(|(r, _)| r).collect();
    check_quarantine_rate(quarantined, rows.len() as u64)?;
    // Cross-check the linearization against the exact-margin Monte-Carlo
    // estimator at the worst corner, leaving its chunk-level convergence
    // trace in the telemetry report under "fig2a.mc".
    let worst = rows
        .iter()
        .max_by(|a, b| {
            a.overall
                .partial_cmp(&b.overall)
                .expect("failure probabilities are finite by construction")
        })
        .expect("sweep always produces at least one row");
    let est = {
        let _trace = pvtm_telemetry::trace_scope("fig2a.mc");
        fa.failure_prob_mc(worst.vt_inter, &cond, effort.mc_samples as u64, 0x2A17)?
    };
    Ok(Fig2a {
        mc_check: McCrossCheck {
            vt_inter: worst.vt_inter,
            linearized: worst.overall,
            mc: est.value,
            std_err: est.std_err,
            samples: est.samples,
        },
        rows,
    })
}

impl fmt::Display for Fig2a {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 2a — cell failure probability vs inter-die Vt shift")?;
        writeln!(
            f,
            "{:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "Vt_inter", "read", "write", "access", "hold", "overall"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8.0}m {:>10} {:>10} {:>10} {:>10} {:>10}",
                r.vt_inter * 1e3,
                fmt_p(r.read),
                fmt_p(r.write),
                fmt_p(r.access),
                fmt_p(r.hold),
                fmt_p(r.overall)
            )?;
        }
        let c = &self.mc_check;
        writeln!(
            f,
            "MC cross-check @ {:.0} mV: linearized {} vs MC {} ± {} ({} samples)",
            c.vt_inter * 1e3,
            fmt_p(c.linearized),
            fmt_p(c.mc),
            fmt_p(c.std_err),
            c.samples
        )
    }
}

// ---------------------------------------------------------------- fig 2b

/// One body-bias point of the Fig. 2b sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig2bRow {
    /// NMOS body bias \[V\] (negative = RBB).
    pub body_bias: f64,
    /// Read failure probability.
    pub read: f64,
    /// Write failure probability.
    pub write: f64,
    /// Access failure probability.
    pub access: f64,
    /// Hold failure probability.
    pub hold: f64,
    /// Overall cell failure probability.
    pub overall: f64,
}

/// Fig. 2b: effect of body bias on each failure mechanism at the nominal
/// corner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2b {
    /// Body-bias sweep.
    pub rows: Vec<Fig2bRow>,
}

/// Reproduces Fig. 2b: RBB suppresses read/hold while aggravating
/// access/write; FBB does the opposite.
///
/// # Errors
///
/// Propagates DC-solver failures.
pub fn fig2b(effort: Effort) -> Result<Fig2b, CircuitError> {
    let _span = pvtm_telemetry::span("fig2b");
    let (tech, sizing, config) = baseline();
    let fa = FailureAnalyzer::new(&tech, sizing, config);
    let biases = linspace(-0.6, 0.6, effort.corners.max(5));
    let ctx = pvtm_telemetry::parallel_context();
    let rows: Result<Vec<Fig2bRow>, CircuitError> = biases
        .par_iter()
        .map_init(
            || (pvtm_telemetry::adopt(&ctx), fa.evaluator()),
            |(_ctx, ev), &vbb| {
                ev.invalidate_warm();
                let cond = Conditions::standby(&tech, HOLD_VSB).with_body_bias(vbb);
                let p = fa.failure_probs_with(ev, 0.0, &cond)?;
                Ok(Fig2bRow {
                    body_bias: vbb,
                    read: p.read,
                    write: p.write,
                    access: p.access,
                    hold: p.hold,
                    overall: p.overall(),
                })
            },
        )
        .collect();
    Ok(Fig2b { rows: rows? })
}

impl fmt::Display for Fig2b {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 2b — failure probabilities vs NMOS body bias (nominal corner)"
        )?;
        writeln!(
            f,
            "{:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "Vbb", "read", "write", "access", "hold", "overall"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6.2}V {:>10} {:>10} {:>10} {:>10} {:>10}",
                r.body_bias,
                fmt_p(r.read),
                fmt_p(r.write),
                fmt_p(r.access),
                fmt_p(r.hold),
                fmt_p(r.overall)
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- fig 2c

/// One yield point of the Fig. 2c sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig2cRow {
    /// σ of the inter-die Vt distribution \[V\].
    pub sigma_inter: f64,
    /// Parametric yield of the 64 KB memory with zero body bias.
    pub yield_64k_zbb: f64,
    /// Parametric yield of the 64 KB self-repairing memory.
    pub yield_64k_repair: f64,
    /// Parametric yield of the 256 KB memory with zero body bias.
    pub yield_256k_zbb: f64,
    /// Parametric yield of the 256 KB self-repairing memory.
    pub yield_256k_repair: f64,
}

/// Fig. 2c: parametric yield vs σ(Vt_inter) for 64 KB and 256 KB memories.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2c {
    /// σ sweep.
    pub rows: Vec<Fig2cRow>,
    /// Yield improvement (percentage points) of self-repair at the largest
    /// σ, 64 KB / 256 KB.
    pub improvement_at_max_sigma: (f64, f64),
}

/// Reproduces Fig. 2c: the self-repairing memory recovers 8–25 % of
/// parametric yield at large variation.
///
/// # Errors
///
/// Propagates DC-solver failures.
pub fn fig2c(effort: Effort) -> Result<Fig2c, CircuitError> {
    let _span = pvtm_telemetry::span("fig2c");
    let corners = linspace(-0.30, 0.30, effort.corners.max(9));
    let mems: Vec<_> = [64usize, 256]
        .iter()
        .map(|&kib| {
            // Spare budget: 5 % of the 64 KB memory's columns, shared by
            // both capacities — at a fixed repair budget the larger memory
            // yields worse, as the paper's Fig. 2c shows.
            let spares = (pvtm_sram::ArrayOrganization::with_capacity_kib(64, 0.05)).redundant_cols;
            let mut cfg = SelfRepairConfig::default_70nm(kib, spares);
            cfg.org = pvtm_sram::ArrayOrganization::with_capacity_kib_spares(kib, spares);
            SelfRepairingMemory::new(cfg)
        })
        .collect();
    let responses: Result<Vec<_>, CircuitError> =
        mems.iter().map(|m| m.response(&corners)).collect();
    let responses = responses?;
    let sigmas = linspace(0.025, 0.15, effort.sigmas.max(3));
    let rows: Vec<Fig2cRow> = sigmas
        .iter()
        .map(|&sigma_inter| Fig2cRow {
            sigma_inter,
            yield_64k_zbb: responses[0].parametric_yield(sigma_inter, Policy::Zbb),
            yield_64k_repair: responses[0].parametric_yield(sigma_inter, Policy::SelfRepair),
            yield_256k_zbb: responses[1].parametric_yield(sigma_inter, Policy::Zbb),
            yield_256k_repair: responses[1].parametric_yield(sigma_inter, Policy::SelfRepair),
        })
        .collect();
    let last = rows.last().expect("sweep always produces at least one row");
    let improvement_at_max_sigma = (
        100.0 * (last.yield_64k_repair - last.yield_64k_zbb),
        100.0 * (last.yield_256k_repair - last.yield_256k_zbb),
    );
    Ok(Fig2c {
        rows,
        improvement_at_max_sigma,
    })
}

impl fmt::Display for Fig2c {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 2c — parametric yield vs sigma(Vt_inter) [%]")?;
        writeln!(
            f,
            "{:>9} {:>10} {:>12} {:>10} {:>12}",
            "sigma", "64K ZBB", "64K repair", "256K ZBB", "256K repair"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8.0}m {:>10.2} {:>12.2} {:>10.2} {:>12.2}",
                r.sigma_inter * 1e3,
                100.0 * r.yield_64k_zbb,
                100.0 * r.yield_64k_repair,
                100.0 * r.yield_256k_zbb,
                100.0 * r.yield_256k_repair
            )?;
        }
        writeln!(
            f,
            "yield improvement at max sigma: 64KB {:+.1} pp, 256KB {:+.1} pp (paper: 8-25%)",
            self.improvement_at_max_sigma.0, self.improvement_at_max_sigma.1
        )
    }
}

// ----------------------------------------------------------------- fig 3

/// A named histogram series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSeries {
    /// Label (e.g. `Vt_inter = -100 mV`).
    pub label: String,
    /// The histogram.
    pub histogram: Histogram,
}

/// Fig. 3: cell-level leakage distributions overlap across corners while
/// 1 KB-array distributions separate (central limit theorem).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3 {
    /// Per-cell leakage histograms at each corner.
    pub cell: Vec<HistogramSeries>,
    /// 1 KB-array leakage histograms at each corner.
    pub array: Vec<HistogramSeries>,
    /// Pairwise overlap of adjacent-corner cell histograms.
    pub cell_overlap: f64,
    /// Pairwise overlap of adjacent-corner array histograms.
    pub array_overlap: f64,
}

/// Reproduces Fig. 3: why the monitor senses the whole array.
pub fn fig3(effort: Effort) -> Fig3 {
    let _span = pvtm_telemetry::span("fig3");
    let (tech, sizing, _) = baseline();
    let model = CellLeakageModel::new(&tech, sizing);
    let cond = Conditions::active(&tech);
    let corners = [-0.10, 0.0, 0.10];
    let labels = ["Vt_inter = -100 mV", "Vt_inter = 0", "Vt_inter = +100 mV"];
    let array_cells = 1024 * 8; // 1 KB

    // Per-cell samples across all corners share one histogram range.
    let cell_samples: Vec<Vec<f64>> = corners
        .par_iter()
        .enumerate()
        .map(|(i, &c)| {
            let mut rng = pvtm_stats::rng::substream(0xF163, i as u64);
            (0..effort.cells)
                .map(|_| model.sample_cell(c, &cond, &mut rng))
                .collect()
        })
        .collect();
    let array_samples: Vec<Vec<f64>> = corners
        .par_iter()
        .enumerate()
        .map(|(i, &c)| {
            (0..effort.arrays as u64)
                .into_par_iter()
                .map(|a| {
                    let mut rng = pvtm_stats::rng::substream(0xF1630, i as u64 * 1_000_003 + a);
                    // Sum of `array_cells` cell leakages = one array draw.
                    // Subsample cells and scale: the CLT mean/σ of the sum
                    // is preserved by stratified subsampling at this size.
                    let n_sub = 2048.min(array_cells);
                    let scale = array_cells as f64 / n_sub as f64;
                    let sum: f64 = (0..n_sub)
                        .map(|_| model.sample_cell(c, &cond, &mut rng))
                        .sum();
                    sum * scale
                })
                .collect()
        })
        .collect();

    let make = |samples: &[Vec<f64>]| -> (Vec<HistogramSeries>, f64) {
        let all: Vec<f64> = samples.iter().flatten().copied().collect();
        let lo = all.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = all.iter().copied().fold(f64::NEG_INFINITY, f64::max) * 1.0001;
        let series: Vec<HistogramSeries> = samples
            .iter()
            .zip(labels)
            .map(|(s, label)| {
                let mut h = Histogram::new(lo, hi, 60);
                for &x in s {
                    h.add(x);
                }
                HistogramSeries {
                    label: label.to_string(),
                    histogram: h,
                }
            })
            .collect();
        let overlap = series[0]
            .histogram
            .overlap(&series[1].histogram)
            .max(series[1].histogram.overlap(&series[2].histogram));
        (series, overlap)
    };
    let (cell, cell_overlap) = make(&cell_samples);
    let (array, array_overlap) = make(&array_samples);
    Fig3 {
        cell,
        array,
        cell_overlap,
        array_overlap,
    }
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 3 — leakage distributions across inter-die corners")?;
        writeln!(
            f,
            "cell-level adjacent-corner overlap:  {:.3} (overlapping as in Fig 3a)",
            self.cell_overlap
        )?;
        writeln!(
            f,
            "array-level adjacent-corner overlap: {:.4} (separated as in Fig 3b)",
            self.array_overlap
        )?;
        for s in &self.array {
            let h = &s.histogram;
            let mean_bin = (0..h.nbins())
                .max_by(|&a, &b| h.count(a).cmp(&h.count(b)))
                .unwrap_or(0);
            writeln!(
                f,
                "  array {}: mode near {:.2} uA",
                s.label,
                h.bin_center(mean_bin) * 1e6
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- fig 4b

/// One corner of the Fig. 4b comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig4bRow {
    /// Inter-die corner \[V\].
    pub vt_inter: f64,
    /// Expected failing cells, no body bias.
    pub failures_zbb: f64,
    /// Expected failing cells with self-repair.
    pub failures_repair: f64,
    /// Expected faulty columns, no body bias.
    pub faulty_cols_zbb: f64,
    /// Expected faulty columns with self-repair.
    pub faulty_cols_repair: f64,
}

/// Fig. 4b: failure counts in a 256 KB array across corners.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4b {
    /// Corner sweep.
    pub rows: Vec<Fig4bRow>,
}

/// Reproduces Fig. 4b: the self-repairing memory slashes the number of
/// failures at shifted corners.
///
/// # Errors
///
/// Propagates DC-solver failures.
pub fn fig4b(effort: Effort) -> Result<Fig4b, CircuitError> {
    let _span = pvtm_telemetry::span("fig4b");
    let memory = SelfRepairingMemory::new({
        let mut cfg = SelfRepairConfig::default_70nm(256, 8);
        cfg.org = pvtm_sram::ArrayOrganization::with_capacity_kib(256, 0.05);
        cfg
    });
    let grid = linspace(-0.25, 0.25, effort.corners.max(7));
    let resp = memory.response(&grid)?;
    let cells = memory.config().org.cells() as f64;
    let rows = grid
        .iter()
        .map(|&vt_inter| Fig4bRow {
            vt_inter,
            failures_zbb: cells * resp.p_cell(vt_inter, Policy::Zbb),
            failures_repair: cells * resp.p_cell(vt_inter, Policy::SelfRepair),
            faulty_cols_zbb: resp.expected_faulty_columns(vt_inter, Policy::Zbb),
            faulty_cols_repair: resp.expected_faulty_columns(vt_inter, Policy::SelfRepair),
        })
        .collect();
    Ok(Fig4b { rows })
}

impl fmt::Display for Fig4b {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 4b — expected failures in a 256 KB array")?;
        writeln!(
            f,
            "{:>9} {:>14} {:>14} {:>12} {:>12}",
            "Vt_inter", "cells ZBB", "cells repair", "cols ZBB", "cols repair"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8.0}m {:>14.2} {:>14.2} {:>12.3} {:>12.3}",
                r.vt_inter * 1e3,
                r.failures_zbb,
                r.failures_repair,
                r.faulty_cols_zbb,
                r.faulty_cols_repair
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- fig 5a

/// One body-bias point of the leakage decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig5aRow {
    /// NMOS body bias \[V\].
    pub body_bias: f64,
    /// Subthreshold component, normalized to the ZBB total.
    pub subthreshold: f64,
    /// Gate component, normalized.
    pub gate: f64,
    /// Junction BTBT component, normalized.
    pub junction: f64,
    /// Body-diode component, normalized.
    pub diode: f64,
    /// Total, normalized.
    pub total: f64,
}

/// Fig. 5a: cell leakage components vs body bias.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5a {
    /// Body-bias sweep.
    pub rows: Vec<Fig5aRow>,
    /// Body bias minimizing the total \[V\].
    pub optimum_bias: f64,
}

/// Reproduces Fig. 5a: subthreshold falls with RBB while junction BTBT
/// rises (and the diode explodes under deep FBB), bounding the usable
/// body-bias window.
pub fn fig5a(effort: Effort) -> Fig5a {
    let _span = pvtm_telemetry::span("fig5a");
    let (tech, sizing, _) = baseline();
    let model = CellLeakageModel::new(&tech, sizing);
    let cell = SramCell::nominal(&tech);
    let biases = linspace(-0.6, 0.6, (2 * effort.corners).max(13));
    let norm = model.standby(&cell, &Conditions::active(&tech)).total();
    let rows: Vec<Fig5aRow> = biases
        .iter()
        .map(|&vbb| {
            let l = model.standby(&cell, &Conditions::active(&tech).with_body_bias(vbb));
            Fig5aRow {
                body_bias: vbb,
                subthreshold: l.subthreshold / norm,
                gate: l.gate / norm,
                junction: l.junction / norm,
                diode: l.diode / norm,
                total: l.total() / norm,
            }
        })
        .collect();
    let optimum_bias = rows
        .iter()
        .min_by(|a, b| {
            a.total
                .partial_cmp(&b.total)
                .expect("yield totals are finite by construction")
        })
        .expect("sweep always produces at least one row")
        .body_bias;
    Fig5a { rows, optimum_bias }
}

impl fmt::Display for Fig5a {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 5a — normalized cell leakage components vs body bias"
        )?;
        writeln!(
            f,
            "{:>7} {:>8} {:>8} {:>9} {:>9} {:>8}",
            "Vbb", "subthr", "gate", "junction", "diode", "total"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6.2}V {:>8.3} {:>8.3} {:>9.3} {:>9.3} {:>8.3}",
                r.body_bias, r.subthreshold, r.gate, r.junction, r.diode, r.total
            )?;
        }
        writeln!(
            f,
            "total-leakage optimum at Vbb = {:.2} V (interior, as in Fig 5a)",
            self.optimum_bias
        )
    }
}

// ---------------------------------------------------------------- fig 5b

/// Fig. 5b: the inter-die memory-leakage spread with and without
/// self-repair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5b {
    /// Histogram of array leakage across dies, all dies at ZBB.
    pub zbb: Histogram,
    /// Histogram with the self-repairing body bias applied.
    pub repaired: Histogram,
    /// Ratio of 95th-percentile to 5th-percentile array leakage, ZBB.
    pub spread_zbb: f64,
    /// Same ratio with self-repair.
    pub spread_repaired: f64,
}

/// Reproduces Fig. 5b: RBB on leaky dies and FBB on slow dies compress the
/// leakage spread.
///
/// # Errors
///
/// Propagates DC-solver failures.
pub fn fig5b(effort: Effort) -> Result<Fig5b, CircuitError> {
    let _span = pvtm_telemetry::span("fig5b");
    let memory = SelfRepairingMemory::new({
        let mut cfg = SelfRepairConfig::default_70nm(64, 8);
        cfg.org = pvtm_sram::ArrayOrganization::with_capacity_kib(64, 0.05);
        cfg
    });
    let resp = memory.response(&linspace(-0.30, 0.30, effort.corners.max(9)))?;
    let sigma = 0.08;
    let mut rng = pvtm_stats::rng::substream(0xF165B, 0);
    let dies = (effort.dies * 10).max(500);
    let mut zbb_samples = Vec::with_capacity(dies);
    let mut rep_samples = Vec::with_capacity(dies);
    use rand_distr::Distribution;
    for _ in 0..dies {
        let g: f64 = rand_distr::StandardNormal.sample(&mut rng);
        let corner = sigma * g;
        zbb_samples.push(resp.array_leak_mean(corner, Policy::Zbb));
        rep_samples.push(resp.array_leak_mean(corner, Policy::SelfRepair));
    }
    let hi = zbb_samples
        .iter()
        .chain(&rep_samples)
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        * 1.0001;
    let mut zbb = Histogram::new(0.0, hi, 60);
    let mut repaired = Histogram::new(0.0, hi, 60);
    for (&a, &b) in zbb_samples.iter().zip(&rep_samples) {
        zbb.add(a);
        repaired.add(b);
    }
    let q = pvtm_stats::histogram::quantile;
    Ok(Fig5b {
        spread_zbb: q(&zbb_samples, 0.95) / q(&zbb_samples, 0.05),
        spread_repaired: q(&rep_samples, 0.95) / q(&rep_samples, 0.05),
        zbb,
        repaired,
    })
}

impl fmt::Display for Fig5b {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 5b — inter-die array-leakage spread (64 KB)")?;
        writeln!(
            f,
            "p95/p5 leakage ratio at ZBB:        {:.2}",
            self.spread_zbb
        )?;
        writeln!(
            f,
            "p95/p5 leakage ratio self-repaired: {:.2} (compressed)",
            self.spread_repaired
        )
    }
}

// ---------------------------------------------------------------- fig 5c

/// One σ point of the leakage-yield sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig5cRow {
    /// σ of the inter-die Vt distribution \[V\].
    pub sigma_inter: f64,
    /// `L_Yield` with zero body bias.
    pub l_yield_zbb: f64,
    /// `L_Yield` with self-repair.
    pub l_yield_repair: f64,
}

/// Fig. 5c: leakage yield vs σ(Vt_inter) for a 64 KB array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5c {
    /// σ sweep.
    pub rows: Vec<Fig5cRow>,
    /// The leakage bound used \[A\].
    pub l_max: f64,
}

/// Reproduces Fig. 5c (paper Eqs. (3)–(4)).
///
/// # Errors
///
/// Propagates DC-solver failures.
pub fn fig5c(effort: Effort) -> Result<Fig5c, CircuitError> {
    let _span = pvtm_telemetry::span("fig5c");
    let memory = SelfRepairingMemory::new({
        let mut cfg = SelfRepairConfig::default_70nm(64, 8);
        cfg.org = pvtm_sram::ArrayOrganization::with_capacity_kib(64, 0.05);
        cfg
    });
    let resp = memory.response(&linspace(-0.30, 0.30, effort.corners.max(9)))?;
    let l_max = 2.5 * resp.array_leak_mean(0.0, Policy::Zbb);
    let rows = linspace(0.025, 0.15, effort.sigmas.max(3))
        .iter()
        .map(|&sigma_inter| Fig5cRow {
            sigma_inter,
            l_yield_zbb: resp.leakage_yield(sigma_inter, l_max, Policy::Zbb),
            l_yield_repair: resp.leakage_yield(sigma_inter, l_max, Policy::SelfRepair),
        })
        .collect();
    Ok(Fig5c { rows, l_max })
}

impl fmt::Display for Fig5c {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 5c — leakage yield vs sigma(Vt_inter), 64 KB, L_MAX = {:.2} uA",
            self.l_max * 1e6
        )?;
        writeln!(f, "{:>9} {:>10} {:>12}", "sigma", "ZBB", "self-repair")?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8.0}m {:>9.2}% {:>11.2}%",
                r.sigma_inter * 1e3,
                100.0 * r.l_yield_zbb,
                100.0 * r.l_yield_repair
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_has_the_v_shape() {
        let result = fig2a(Effort::quick()).unwrap();
        let overall: Vec<f64> = result.rows.iter().map(|r| r.overall).collect();
        let min_idx = overall
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            min_idx > 0 && min_idx < overall.len() - 1,
            "overall failure must be minimal at an interior corner: {overall:?}"
        );
        // Read dominates the low end, access/write the high end.
        let first = &result.rows[0];
        let last = result.rows.last().unwrap();
        assert!(first.read > last.read);
        assert!(last.access > first.access);
        assert!(last.write > first.write);
        // The Monte-Carlo cross-check ran at the worst corner and is a
        // sane probability.
        let c = &result.mc_check;
        assert_eq!(c.samples, Effort::quick().mc_samples as u64);
        assert!(c.mc.is_finite() && (0.0..=1.0).contains(&c.mc));
        assert!(c.linearized > 0.0);
    }

    #[test]
    fn fig2b_directions() {
        let result = fig2b(Effort::quick()).unwrap();
        let rbb = &result.rows[0];
        let zbb = &result.rows[result.rows.len() / 2];
        let fbb = result.rows.last().unwrap();
        assert!(rbb.read < zbb.read && zbb.read < fbb.read, "read vs bias");
        assert!(
            rbb.access > zbb.access && zbb.access > fbb.access,
            "access vs bias"
        );
        assert!(
            rbb.write > zbb.write && zbb.write > fbb.write,
            "write vs bias"
        );
    }

    #[test]
    fn fig5a_shape() {
        let result = fig5a(Effort::quick());
        // Interior total minimum; junction monotone falling with Vbb.
        assert!(result.optimum_bias > -0.6 && result.optimum_bias < 0.3);
        let first = &result.rows[0];
        let last = result.rows.last().unwrap();
        assert!(first.junction > last.junction);
        assert!(first.subthreshold < last.subthreshold);
        assert!(last.diode > first.diode);
    }

    #[test]
    fn fig3_array_separates_cells_overlap() {
        let result = fig3(Effort::quick());
        assert!(
            result.cell_overlap > 0.2,
            "cell histograms must overlap: {}",
            result.cell_overlap
        );
        assert!(
            result.array_overlap < 0.05,
            "array histograms must separate: {}",
            result.array_overlap
        );
    }
}
