//! Golden-fixture tests: checked-in sidecars run through report/diff/check
//! and must reproduce the checked-in output byte-for-byte. The fixtures
//! are clock-gated (`"clock": false`) sidecars, exactly what the CI
//! perf-budget job compares, so these goldens double as format contracts.
//!
//! To regenerate after an intentional output change:
//! `cargo test -p pvtm-trace --test golden -- --ignored bless`

use pvtm_trace::{
    check, diff, folded_stacks, health_check, hot_span_table, update_budgets,
    update_health_budgets, Budgets, HealthBudgets, Sidecar,
};

const BASE: &str = include_str!("fixtures/fig_quick.telemetry.json");
const REGRESSED: &str = include_str!("fixtures/fig_quick_regressed.telemetry.json");
const BUDGETS: &str = include_str!("fixtures/perf-budgets.json");
const HEALTHY: &str = include_str!("fixtures/fig_health.telemetry.json");
const LOW_ESS: &str = include_str!("fixtures/fig_low_ess.telemetry.json");
const HEALTH_BUDGETS: &str = include_str!("fixtures/health-budgets.json");

fn base() -> Sidecar {
    Sidecar::parse(BASE).expect("base fixture parses")
}

fn regressed() -> Sidecar {
    Sidecar::parse(REGRESSED).expect("regressed fixture parses")
}

fn budgets() -> Budgets {
    Budgets::parse(BUDGETS).expect("budgets fixture parses")
}

fn healthy() -> Sidecar {
    Sidecar::parse(HEALTHY).expect("healthy fixture parses")
}

fn low_ess() -> Sidecar {
    Sidecar::parse(LOW_ESS).expect("low-ESS fixture parses")
}

fn health_budgets() -> HealthBudgets {
    HealthBudgets::parse(HEALTH_BUDGETS).expect("health-budgets fixture parses")
}

/// The hand-maintained `"default"` entry the health fixture is built on:
/// loose enough for any honest importance-sampled figure, tight enough to
/// reject the seeded low-ESS run.
fn default_health_entry() -> HealthBudgets {
    HealthBudgets::parse(
        r#"{
          "schema": "pvtm-health-budgets/1",
          "budgets": {
            "default": {
              "min_ess_fraction": 0.2,
              "max_weight_fraction": 0.25,
              "max_stall_ratio": 0.5,
              "max_quarantine_ci_share": 0.25
            }
          }
        }"#,
    )
    .expect("inline default budgets parse")
}

fn assert_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e} — run the bless test",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "output drifted from golden {name}; if intentional, re-bless with \
         `cargo test -p pvtm-trace --test golden -- --ignored bless`"
    );
}

#[test]
fn report_table_matches_golden() {
    assert_golden("report.golden.txt", &hot_span_table(&base(), 30));
}

#[test]
fn report_folded_matches_golden() {
    assert_golden("folded.golden.txt", &folded_stacks(&base()));
}

#[test]
fn diff_matches_golden_and_fails_on_regression() {
    let out = diff(&base(), &regressed(), 0.2);
    assert!(out.failed(), "more Newton work must fail the diff");
    assert_golden("diff.golden.txt", &out.text);
}

#[test]
fn diff_of_identical_sidecars_passes() {
    let out = diff(&base(), &base(), 0.2);
    assert!(!out.failed());
    assert_eq!(out.counter_changes, 0);
}

#[test]
fn check_passes_base_fixture_against_budgets() {
    let out = check(&budgets(), &[base()]);
    assert!(
        !out.failed(),
        "budgets must match the base fixture:\n{}",
        out.text
    );
    assert_eq!(out.slack_notes, 0, "budgets are an exact ratchet");
}

#[test]
fn check_fails_regressed_fixture_against_budgets() {
    let out = check(&budgets(), &[regressed()]);
    assert!(out.failed(), "inflated counters must violate the budget");
    assert_golden("check-fail.golden.txt", &out.text);
}

#[test]
fn health_passes_healthy_fixture_against_budgets() {
    let out = health_check(&health_budgets(), &[healthy()]);
    assert!(
        !out.failed(),
        "health budgets must match the healthy fixture:\n{}",
        out.text
    );
    assert_golden("health.golden.txt", &out.text);
}

#[test]
fn health_fails_low_ess_fixture_against_default_entry() {
    // fig_low_ess has no per-figure entry, so the "default" thresholds
    // apply — and its seeded weight degeneracy must trip every axis.
    let out = health_check(&health_budgets(), &[low_ess()]);
    assert!(out.failed(), "seeded low-ESS fixture must fail the gate");
    assert!(out.text.contains("LOW_ESS"), "{}", out.text);
    assert!(out.text.contains("WEIGHT_DEGENERATE"), "{}", out.text);
    assert!(out.text.contains("STALLED"), "{}", out.text);
    assert_golden("health-fail.golden.txt", &out.text);
}

#[test]
fn health_budgets_fixture_is_the_update_fixpoint() {
    // --update-budgets on the healthy sidecar, starting from the default
    // entry, must reproduce the checked-in health-budgets fixture.
    let next = update_health_budgets(&default_health_entry(), &[healthy()]);
    assert_eq!(next.to_json_pretty(), HEALTH_BUDGETS);
}

#[test]
fn budgets_fixture_is_the_update_fixpoint() {
    // --update-budgets on the base sidecar must reproduce the checked-in
    // budgets file exactly (same semantics as re-recording a baseline).
    let next = update_budgets(&Budgets::default(), &[base()]);
    assert_eq!(next.to_json_pretty(), BUDGETS);
}

/// Regenerates every golden from the current output. Run explicitly:
/// `cargo test -p pvtm-trace --test golden -- --ignored bless`
#[test]
#[ignore = "writes the golden files; run explicitly to re-bless"]
fn bless() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::write(dir.join("report.golden.txt"), hot_span_table(&base(), 30)).unwrap();
    std::fs::write(dir.join("folded.golden.txt"), folded_stacks(&base())).unwrap();
    std::fs::write(
        dir.join("diff.golden.txt"),
        diff(&base(), &regressed(), 0.2).text,
    )
    .unwrap();
    std::fs::write(
        dir.join("check-fail.golden.txt"),
        check(&budgets(), &[regressed()]).text,
    )
    .unwrap();
    let hb = update_health_budgets(&default_health_entry(), &[healthy()]);
    std::fs::write(dir.join("health-budgets.json"), hb.to_json_pretty()).unwrap();
    std::fs::write(
        dir.join("health.golden.txt"),
        health_check(&hb, &[healthy()]).text,
    )
    .unwrap();
    std::fs::write(
        dir.join("health-fail.golden.txt"),
        health_check(&hb, &[low_ess()]).text,
    )
    .unwrap();
}
