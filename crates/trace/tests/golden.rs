//! Golden-fixture tests: checked-in sidecars run through report/diff/check
//! and must reproduce the checked-in output byte-for-byte. The fixtures
//! are clock-gated (`"clock": false`) sidecars, exactly what the CI
//! perf-budget job compares, so these goldens double as format contracts.
//!
//! To regenerate after an intentional output change:
//! `cargo test -p pvtm-trace --test golden -- --ignored bless`

use pvtm_trace::{check, diff, folded_stacks, hot_span_table, update_budgets, Budgets, Sidecar};

const BASE: &str = include_str!("fixtures/fig_quick.telemetry.json");
const REGRESSED: &str = include_str!("fixtures/fig_quick_regressed.telemetry.json");
const BUDGETS: &str = include_str!("fixtures/perf-budgets.json");

fn base() -> Sidecar {
    Sidecar::parse(BASE).expect("base fixture parses")
}

fn regressed() -> Sidecar {
    Sidecar::parse(REGRESSED).expect("regressed fixture parses")
}

fn budgets() -> Budgets {
    Budgets::parse(BUDGETS).expect("budgets fixture parses")
}

fn assert_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e} — run the bless test",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "output drifted from golden {name}; if intentional, re-bless with \
         `cargo test -p pvtm-trace --test golden -- --ignored bless`"
    );
}

#[test]
fn report_table_matches_golden() {
    assert_golden("report.golden.txt", &hot_span_table(&base(), 30));
}

#[test]
fn report_folded_matches_golden() {
    assert_golden("folded.golden.txt", &folded_stacks(&base()));
}

#[test]
fn diff_matches_golden_and_fails_on_regression() {
    let out = diff(&base(), &regressed(), 0.2);
    assert!(out.failed(), "more Newton work must fail the diff");
    assert_golden("diff.golden.txt", &out.text);
}

#[test]
fn diff_of_identical_sidecars_passes() {
    let out = diff(&base(), &base(), 0.2);
    assert!(!out.failed());
    assert_eq!(out.counter_changes, 0);
}

#[test]
fn check_passes_base_fixture_against_budgets() {
    let out = check(&budgets(), &[base()]);
    assert!(
        !out.failed(),
        "budgets must match the base fixture:\n{}",
        out.text
    );
    assert_eq!(out.slack_notes, 0, "budgets are an exact ratchet");
}

#[test]
fn check_fails_regressed_fixture_against_budgets() {
    let out = check(&budgets(), &[regressed()]);
    assert!(out.failed(), "inflated counters must violate the budget");
    assert_golden("check-fail.golden.txt", &out.text);
}

#[test]
fn budgets_fixture_is_the_update_fixpoint() {
    // --update-budgets on the base sidecar must reproduce the checked-in
    // budgets file exactly (same semantics as re-recording a baseline).
    let next = update_budgets(&Budgets::default(), &[base()]);
    assert_eq!(next.to_json_pretty(), BUDGETS);
}

/// Regenerates every golden from the current output. Run explicitly:
/// `cargo test -p pvtm-trace --test golden -- --ignored bless`
#[test]
#[ignore = "writes the golden files; run explicitly to re-bless"]
fn bless() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::write(dir.join("report.golden.txt"), hot_span_table(&base(), 30)).unwrap();
    std::fs::write(dir.join("folded.golden.txt"), folded_stacks(&base())).unwrap();
    std::fs::write(
        dir.join("diff.golden.txt"),
        diff(&base(), &regressed(), 0.2).text,
    )
    .unwrap();
    std::fs::write(
        dir.join("check-fail.golden.txt"),
        check(&budgets(), &[regressed()]).text,
    )
    .unwrap();
}
