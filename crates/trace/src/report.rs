//! `pvtm-trace report` — hot-span table and folded flamegraph stacks.

use crate::sidecar::{Sidecar, Span};

/// Span weight used for ranking and folded stacks: self-time when the
/// producer's clock ran, Newton iterations otherwise (a clock-gated run
/// has every `*_ns` field at zero, so work counters are the only signal).
fn weight(s: &Span, clock: bool) -> u64 {
    if clock {
        s.self_ns
    } else {
        s.newton_iterations
    }
}

fn sorted_spans(sc: &Sidecar) -> Vec<&Span> {
    let mut spans: Vec<&Span> = sc.spans.iter().collect();
    // Stable key: weight descending, then path, so clock-off output is
    // deterministic even among equal weights.
    spans.sort_by(|a, b| {
        weight(b, sc.clock)
            .cmp(&weight(a, sc.clock))
            .then_with(|| a.path.cmp(&b.path))
    });
    spans
}

/// Renders the hot-span table: one row per span path, hottest first.
///
/// Hottest means largest self-time — the time a span spent *not* inside
/// an instrumented child — falling back to attributed Newton iterations
/// when the sidecar was produced with the clock gated off.
pub fn hot_span_table(sc: &Sidecar, top: usize) -> String {
    let mut out = String::new();
    let rank = if sc.clock {
        "self-time"
    } else {
        "newton iterations (clock was gated off)"
    };
    out.push_str(&format!(
        "hot spans of {} (mode {}, schema v{}) — ranked by {}\n",
        sc.id, sc.mode, sc.schema_version, rank
    ));
    out.push_str(&format!(
        "{:<40} {:>8} {:>12} {:>12} {:>9} {:>9} {:>7} {:>8}\n",
        "span", "count", "total ms", "self ms", "solves", "newton", "cold", "rescue"
    ));
    for s in sorted_spans(sc).into_iter().take(top) {
        out.push_str(&format!(
            "{:<40} {:>8} {:>12.3} {:>12.3} {:>9} {:>9} {:>7} {:>8}\n",
            s.path,
            s.count,
            s.total_ns as f64 / 1e6,
            s.self_ns as f64 / 1e6,
            s.solves,
            s.newton_iterations,
            s.cold_solves,
            // hits/attempts, like the producer's summary line — a span
            // with many attempts and few hits is quarantining samples.
            format!("{}/{}", s.rescue_hits, s.rescue_attempts),
        ));
    }
    if sc.spans.is_empty() {
        out.push_str("(no spans — was the producer run with PVTM_TELEMETRY=full?)\n");
    }
    out
}

/// Renders folded stacks (`inferno` / `flamegraph.pl` input): one line
/// per span path, `/` separators rewritten to `;`, value = self-time in
/// nanoseconds (or Newton iterations on clock-gated sidecars). Zero-weight
/// spans are skipped — they would render as invisible frames anyway.
pub fn folded_stacks(sc: &Sidecar) -> String {
    let mut out = String::new();
    for s in &sc.spans {
        let w = weight(s, sc.clock);
        if w > 0 {
            out.push_str(&format!("{} {}\n", s.path.replace('/', ";"), w));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(path: &str, self_ns: u64, newton: u64) -> Span {
        Span {
            path: path.to_string(),
            count: 1,
            total_ns: self_ns,
            self_ns,
            solves: 0,
            newton_iterations: newton,
            lu_factorizations: 0,
            cold_solves: 0,
            rescue_attempts: 0,
            rescue_hits: 0,
        }
    }

    fn sidecar(clock: bool, spans: Vec<Span>) -> Sidecar {
        Sidecar {
            id: "t".into(),
            mode: "full".into(),
            clock,
            schema_version: 2,
            solver: Default::default(),
            counters: Default::default(),
            gauges: Default::default(),
            histograms: Vec::new(),
            spans,
            traces: Vec::new(),
        }
    }

    #[test]
    fn table_shows_rescue_hits_over_attempts() {
        let mut s = span("fig/mc.chunk", 10, 100);
        s.rescue_attempts = 4;
        s.rescue_hits = 3;
        let t = hot_span_table(&sidecar(true, vec![s]), 10);
        assert!(t.contains("3/4"), "rescue column missing:\n{t}");
    }

    #[test]
    fn table_ranks_by_self_time_with_clock() {
        let sc = sidecar(
            true,
            vec![span("a", 10, 999), span("b", 30, 1), span("c", 20, 5)],
        );
        let t = hot_span_table(&sc, 10);
        let b = t.find("\nb ").unwrap();
        let c = t.find("\nc ").unwrap();
        let a = t.find("\na ").unwrap();
        assert!(b < c && c < a, "expected b, c, a order:\n{t}");
    }

    #[test]
    fn table_falls_back_to_newton_without_clock() {
        let sc = sidecar(false, vec![span("a", 0, 999), span("b", 0, 1)]);
        let t = hot_span_table(&sc, 10);
        assert!(t.contains("clock was gated off"));
        assert!(t.find("\na ").unwrap() < t.find("\nb ").unwrap());
    }

    #[test]
    fn folded_stacks_use_semicolons_and_skip_zero_weight() {
        let sc = sidecar(
            true,
            vec![span("fig/mc.chunk", 40, 0), span("fig/idle", 0, 0)],
        );
        assert_eq!(folded_stacks(&sc), "fig;mc.chunk 40\n");
    }
}
