//! `pvtm-trace check` — gate sidecars against `perf-budgets.json`.
//!
//! A budget is a hard ceiling on a **deterministic work counter** (DC
//! solves, Newton iterations, LU factorizations, cold solves) for one
//! figure. Because those counters are byte-identical across runs with
//! `PVTM_TELEMETRY_CLOCK=off`, the gate has zero flake: exceeding a
//! budget means the code does more numerical work, full stop.
//!
//! The ratchet mirrors the pvtm-lint baseline semantics:
//!
//! - observed > budget → violation (gate fails);
//! - observed < budget → pass, with a slack note nudging a ratchet-down;
//! - `--update-budgets` rewrites the file to the observed values, which
//!   is how both ratchets *and* intentional regressions get recorded —
//!   the diff of `perf-budgets.json` is then reviewed like any other.

use std::collections::BTreeMap;
use std::fmt;

use pvtm_telemetry::json::{self, Value};

use crate::sidecar::Sidecar;

/// The budget metrics maintained by `--update-budgets`: the solver work
/// counters that are deterministic under a fixed seed.
pub const DEFAULT_METRICS: &[&str] = &[
    "solver.solves",
    "solver.newton_iterations",
    "solver.lu_factorizations",
    "solver.cold_solves",
];

/// Budget-file rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for BudgetError {}

/// Parsed `perf-budgets.json`: figure id → metric name → ceiling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budgets {
    /// Per-figure metric ceilings, both levels name-sorted.
    pub figures: BTreeMap<String, BTreeMap<String, u64>>,
}

impl Budgets {
    /// Parses budget-file text.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or the wrong `schema` marker.
    pub fn parse(text: &str) -> Result<Budgets, BudgetError> {
        let doc = json::parse(text).map_err(|e| BudgetError {
            message: format!("malformed perf-budgets JSON: {e}"),
        })?;
        if doc.get("schema").and_then(Value::as_str) != Some("pvtm-perf-budgets/1") {
            return Err(BudgetError {
                message: "perf-budgets file must have schema \"pvtm-perf-budgets/1\"".into(),
            });
        }
        let mut figures = BTreeMap::new();
        if let Some(Value::Obj(figs)) = doc.get("budgets") {
            for (id, metrics) in figs {
                let mut map = BTreeMap::new();
                if let Value::Obj(members) = metrics {
                    for (name, v) in members {
                        if let Some(n) = v.as_u64() {
                            map.insert(name.clone(), n);
                        }
                    }
                }
                figures.insert(id.clone(), map);
            }
        }
        Ok(Budgets { figures })
    }

    /// Renders the canonical pretty JSON form (BTreeMap ordering makes
    /// the output deterministic, so the checked-in file diffs cleanly).
    pub fn to_json_pretty(&self) -> String {
        let figs: Vec<(String, Value)> = self
            .figures
            .iter()
            .map(|(id, metrics)| {
                (
                    id.clone(),
                    Value::Obj(
                        metrics
                            .iter()
                            .map(|(k, &v)| (k.clone(), Value::Num(v as f64)))
                            .collect(),
                    ),
                )
            })
            .collect();
        let mut s = json::obj(vec![
            ("schema", Value::Str("pvtm-perf-budgets/1".into())),
            ("budgets", Value::Obj(figs)),
        ])
        .to_json_pretty();
        s.push('\n');
        s
    }
}

/// Result of checking sidecars against budgets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Human-readable findings, one per line.
    pub text: String,
    /// Hard failures: budget exceeded, or no budget for a figure.
    pub violations: usize,
    /// Advisory slack notes: observed below the ceiling.
    pub slack_notes: usize,
}

impl CheckOutcome {
    /// Whether the gate fails.
    pub fn failed(&self) -> bool {
        self.violations > 0
    }
}

/// Checks each sidecar against its figure's budgets.
pub fn check(budgets: &Budgets, sidecars: &[Sidecar]) -> CheckOutcome {
    let mut out = CheckOutcome {
        text: String::new(),
        violations: 0,
        slack_notes: 0,
    };
    for sc in sidecars {
        let Some(figure) = budgets.figures.get(&sc.id) else {
            out.violations += 1;
            out.text.push_str(&format!(
                "FAIL {}: no budget entry — record one with --update-budgets\n",
                sc.id
            ));
            continue;
        };
        for (metric, &max) in figure {
            let observed = sc.metric(metric).unwrap_or(0);
            if observed > max {
                out.violations += 1;
                out.text.push_str(&format!(
                    "FAIL {}: {metric} = {observed} exceeds budget {max} (+{})\n",
                    sc.id,
                    observed - max
                ));
            } else if observed < max {
                out.slack_notes += 1;
                out.text.push_str(&format!(
                    "note {}: {metric} = {observed} is under budget {max} (-{}) — \
                     ratchet down with --update-budgets\n",
                    sc.id,
                    max - observed
                ));
            } else {
                out.text
                    .push_str(&format!("ok   {}: {metric} = {observed}\n", sc.id));
            }
        }
    }
    out
}

/// Returns `budgets` with each sidecar's figure entry replaced by the
/// observed [`DEFAULT_METRICS`] values — the ratchet write. Entries for
/// figures not in `sidecars` are kept as-is.
pub fn update_budgets(budgets: &Budgets, sidecars: &[Sidecar]) -> Budgets {
    let mut next = budgets.clone();
    for sc in sidecars {
        let metrics = DEFAULT_METRICS
            .iter()
            .map(|&m| (m.to_string(), sc.metric(m).unwrap_or(0)))
            .collect();
        next.figures.insert(sc.id.clone(), metrics);
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sidecar(id: &str, solves: u64, newton: u64) -> Sidecar {
        Sidecar {
            id: id.into(),
            mode: "full".into(),
            clock: false,
            schema_version: 2,
            solver: BTreeMap::from([
                ("solves".to_string(), solves),
                ("newton_iterations".to_string(), newton),
                ("lu_factorizations".to_string(), 7),
                ("cold_solves".to_string(), 2),
            ]),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: Vec::new(),
            spans: Vec::new(),
            traces: Vec::new(),
        }
    }

    #[test]
    fn budgets_round_trip_through_json() {
        let b = update_budgets(&Budgets::default(), &[sidecar("fig2a", 100, 321)]);
        let text = b.to_json_pretty();
        let parsed = Budgets::parse(&text).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.figures["fig2a"]["solver.newton_iterations"], 321);
    }

    #[test]
    fn exact_match_passes_cleanly() {
        let sc = sidecar("fig2a", 100, 321);
        let b = update_budgets(&Budgets::default(), std::slice::from_ref(&sc));
        let out = check(&b, &[sc]);
        assert!(!out.failed());
        assert_eq!(out.slack_notes, 0);
    }

    #[test]
    fn exceeding_a_budget_fails() {
        let b = update_budgets(&Budgets::default(), &[sidecar("fig2a", 100, 321)]);
        let out = check(&b, &[sidecar("fig2a", 100, 400)]);
        assert!(out.failed());
        assert!(out
            .text
            .contains("solver.newton_iterations = 400 exceeds budget 321"));
    }

    #[test]
    fn under_budget_passes_with_ratchet_note() {
        let b = update_budgets(&Budgets::default(), &[sidecar("fig2a", 100, 321)]);
        let out = check(&b, &[sidecar("fig2a", 100, 300)]);
        assert!(!out.failed());
        assert_eq!(out.slack_notes, 1);
        assert!(out.text.contains("ratchet down"));
    }

    #[test]
    fn missing_budget_entry_fails() {
        let out = check(&Budgets::default(), &[sidecar("fig2a", 1, 1)]);
        assert!(out.failed());
        assert!(out.text.contains("no budget entry"));
    }

    #[test]
    fn update_preserves_unrelated_figures() {
        let b = update_budgets(&Budgets::default(), &[sidecar("fig6", 5, 9)]);
        let b2 = update_budgets(&b, &[sidecar("fig2a", 100, 321)]);
        assert!(b2.figures.contains_key("fig6"));
        assert!(b2.figures.contains_key("fig2a"));
    }

    #[test]
    fn rejects_wrong_schema() {
        assert!(Budgets::parse(r#"{"schema": "nope", "budgets": {}}"#).is_err());
    }
}
