//! `pvtm-trace` — the consumer half of the workspace's observability loop.
//!
//! `pvtm-telemetry` (the producer) writes one `results/<id>.telemetry.json`
//! sidecar per figure run. This crate reads those sidecars back and turns
//! them into decisions:
//!
//! - [`report`] renders a hot-span table (sorted by self-time, or by Newton
//!   iterations when the run was clock-gated) and folded flamegraph stacks;
//! - [`diff`] compares two sidecars — work counters exactly, wall-clock
//!   with a noise tolerance;
//! - [`check`] gates a sidecar against checked-in `perf-budgets.json`
//!   ceilings on the deterministic work counters;
//! - [`health`] gates the v3 sidecar's estimator-health diagnostics
//!   (ESS fraction, weight degeneracy, CI stalls, quarantine bias)
//!   against checked-in `health-budgets.json` thresholds;
//! - [`tail`] parses the `results/<id>.events.jsonl` run journal — live
//!   or finalized — into a progress snapshot, and doubles as the
//!   `pvtm-events/1` schema validator in CI;
//! - [`top`] renders a polling terminal dashboard, scraping a live
//!   `/snapshot.json` endpoint when the run exported one
//!   (`PVTM_METRICS_ADDR`) and degrading to the event journal otherwise.
//!
//! The design point carried through all three: **wall-clock is advisory,
//! work counters are the contract.** With `PVTM_TELEMETRY_CLOCK=off` the
//! counters are byte-identical run to run, so the budget ratchet is
//! reliable on shared CI runners where timing is not.
//!
//! Everything here is pure string-in/string-out; the thin CLI in
//! `main.rs` owns file I/O and exit codes, which keeps the golden-fixture
//! tests hermetic.

pub mod check;
pub mod diff;
pub mod health;
pub mod report;
pub mod sidecar;
pub mod tail;
pub mod top;

pub use check::{check, update_budgets, Budgets, CheckOutcome};
pub use diff::{diff, DiffOutcome};
pub use health::{health_check, update_health_budgets, HealthBudgets, HealthOutcome};
pub use report::{folded_stacks, hot_span_table};
pub use sidecar::{Sidecar, SidecarError, Span};
pub use tail::{snapshot, Journal, Snapshot};
pub use top::{fetch_live, parse_source, render_journal, render_live, LiveFrame, Source};
