//! `pvtm-trace top` — a polling terminal dashboard for a run in flight.
//!
//! Two sources, one display:
//!
//! - **live** (`pvtm-trace top 127.0.0.1:9184`): polls the producer's
//!   `/snapshot.json` endpoint (a [`crate::sidecar::Sidecar`]-schema
//!   document plus live-plane members) with a hand-rolled `std::net`
//!   HTTP/1.1 client — no new dependencies, mirroring the server side;
//! - **journal** (`pvtm-trace top results/fig2a.events.jsonl`): degrades
//!   to re-reading the event journal and folding it through
//!   [`crate::tail`]'s Chan-merge reconstruction, for runs started
//!   without `PVTM_METRICS_ADDR`.
//!
//! The dashboard shows per-trace progress bars, the running estimates,
//! an estimator-health ledger (ESS / weight degeneracy / stalls /
//! quarantine), the hot-span table (live source only — journals carry no
//! span aggregates), and a work-based ETA. `--once` renders a single
//! frame and doubles as the CI schema validator for `/snapshot.json`.

use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use pvtm_telemetry::json::{self, Value};

use crate::report::hot_span_table;
use crate::sidecar::Sidecar;
use crate::tail;

/// Where `top` reads its frames from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// A live metrics server (`host:port`).
    Addr(SocketAddr),
    /// An event-journal path.
    Journal(String),
}

/// Classifies the positional argument: anything that parses as a socket
/// address is a live server, everything else is a journal path.
pub fn parse_source(arg: &str) -> Source {
    match arg.parse() {
        Ok(addr) => Source::Addr(addr),
        Err(_) => Source::Journal(arg.to_string()),
    }
}

/// Connect/read timeout for the scrape client, mirroring the server's
/// read timeout.
const HTTP_TIMEOUT: Duration = Duration::from_secs(2);

/// Minimal HTTP/1.1 GET: returns `(status, body)`.
///
/// # Errors
///
/// Returns a human-readable message on connect/read failure or a
/// response with no parsable status line.
pub fn http_get(addr: SocketAddr, path: &str) -> Result<(u16, String), String> {
    let mut conn = TcpStream::connect_timeout(&addr, HTTP_TIMEOUT)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = conn.set_read_timeout(Some(HTTP_TIMEOUT));
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    conn.write_all(request.as_bytes())
        .map_err(|e| format!("cannot send request to {addr}: {e}"))?;
    let mut response = String::new();
    conn.read_to_string(&mut response)
        .map_err(|e| format!("cannot read response from {addr}: {e}"))?;
    let status = response
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| format!("malformed response from {addr}"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// One fetched live frame: the snapshot parsed both ways.
#[derive(Debug, Clone)]
pub struct LiveFrame {
    /// The sidecar-schema view (spans, gauges, traces).
    pub sidecar: Sidecar,
    /// The raw document, for the live-plane members the sidecar parser
    /// ignores (`epoch`, `elapsed_secs`, `open_spans`, `progress`, ...).
    pub raw: Value,
}

/// Fetches and validates one `/snapshot.json` frame.
///
/// # Errors
///
/// Returns a message when the scrape fails, the status is not 200, or
/// the body violates the sidecar/live contract — which is exactly what
/// `top --once` gates on in CI.
pub fn fetch_live(addr: SocketAddr) -> Result<LiveFrame, String> {
    let (status, body) = http_get(addr, "/snapshot.json")?;
    if status != 200 {
        return Err(format!("{addr}/snapshot.json answered {status}"));
    }
    let sidecar = Sidecar::parse(&body).map_err(|e| format!("{addr}/snapshot.json: {e}"))?;
    let raw = json::parse(&body).map_err(|e| format!("{addr}/snapshot.json: {e}"))?;
    if raw.get("live").and_then(Value::as_bool) != Some(true) {
        return Err(format!("{addr}/snapshot.json: missing live marker"));
    }
    if !matches!(raw.get("progress"), Some(Value::Arr(_))) {
        return Err(format!("{addr}/snapshot.json: missing progress array"));
    }
    Ok(LiveFrame { sidecar, raw })
}

/// One dashboard row, whichever source it came from.
#[derive(Debug, Clone, PartialEq)]
struct Row {
    name: String,
    chunks_done: u64,
    chunks_total: u64,
    samples_done: u64,
    samples_total: u64,
    value: f64,
    std_err: f64,
    ess: Option<f64>,
}

/// A fixed-width `#`/`.` progress bar; all-`.` when the total is unknown.
fn bar(done: u64, total: u64, width: usize) -> String {
    let filled = if total == 0 {
        0
    } else {
        (done.min(total) as usize * width) / total as usize
    };
    let mut out = String::with_capacity(width);
    for i in 0..width {
        out.push(if i < filled { '#' } else { '.' });
    }
    out
}

fn render_rows(out: &mut String, rows: &[Row]) {
    for r in rows {
        let pct = if r.chunks_total > 0 {
            format!(
                "{:3.0}%",
                100.0 * r.chunks_done as f64 / r.chunks_total as f64
            )
        } else {
            "  ?%".to_string()
        };
        let _ = write!(
            out,
            "  {:<28} [{}] {} {}/{} chunks, {}/{} samples",
            r.name,
            bar(r.chunks_done, r.chunks_total, 20),
            pct,
            r.chunks_done,
            r.chunks_total,
            r.samples_done,
            r.samples_total
        );
        if r.samples_done > 0 {
            let _ = write!(out, ", est {:.4e} ± {:.2e}", r.value, r.std_err);
        }
        if let Some(ess) = r.ess {
            let _ = write!(out, ", ess {ess:.1}");
        }
        out.push('\n');
    }
}

/// Appends the work-based ETA line: chunks are equal-sized by
/// construction, so `elapsed / done` extrapolates. Suppressed when the
/// clock is gated off (elapsed 0), nothing has landed, or the run is done.
fn render_eta(out: &mut String, rows: &[Row], elapsed: f64) {
    let done: u64 = rows.iter().map(|r| r.chunks_done).sum();
    let total: u64 = rows.iter().map(|r| r.chunks_total).sum();
    if done > 0 && total > done && elapsed > 0.0 {
        let eta = elapsed * (total - done) as f64 / done as f64;
        let _ = writeln!(out, "  eta: ~{eta:.0} s ({done}/{total} chunks)");
    }
}

/// Renders one live-frame dashboard.
pub fn render_live(frame: &LiveFrame, top_spans: usize) -> String {
    let raw = &frame.raw;
    let sc = &frame.sidecar;
    let num = |key: &str| raw.get(key).and_then(Value::as_f64).unwrap_or(0.0);
    let elapsed = num("elapsed_secs");
    let mut out = format!(
        "run {} — live (epoch {}, mode {}",
        sc.id,
        num("epoch") as u64,
        sc.mode
    );
    if elapsed > 0.0 {
        let _ = write!(out, ", {elapsed:.1} s elapsed");
    }
    out.push_str(")\n");

    let rows: Vec<Row> = match raw.get("progress") {
        Some(Value::Arr(entries)) => entries
            .iter()
            .map(|p| {
                let f = |key: &str| p.get(key).and_then(Value::as_f64).unwrap_or(0.0);
                Row {
                    name: p
                        .get("name")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    chunks_done: f("chunks_done") as u64,
                    chunks_total: f("chunks_total") as u64,
                    samples_done: f("samples_done") as u64,
                    samples_total: f("samples_total") as u64,
                    value: f("value"),
                    std_err: f("std_err"),
                    ess: p.get("ess").and_then(Value::as_f64),
                }
            })
            .collect(),
        _ => Vec::new(),
    };
    render_rows(&mut out, &rows);
    render_eta(&mut out, &rows, elapsed);

    // Estimator-health ledger from the derived v3 gauges; absent early in
    // a run (no chunk recorded yet), which simply hides the line.
    let axes = [
        ("ess_frac", "mc.ess_fraction"),
        ("max_weight_frac", "mc.max_weight_fraction"),
        ("stall", "mc.stall_ratio"),
        ("quarantine_ci", "mc.quarantine_ci_share"),
    ];
    let ledger: Vec<String> = axes
        .iter()
        .filter_map(|(label, gauge)| sc.gauges.get(*gauge).map(|v| format!("{label} {v:.3}")))
        .collect();
    if !ledger.is_empty() {
        let _ = writeln!(out, "  health: {}", ledger.join(", "));
    }
    let quarantined = num("quarantine_count") as u64;
    if quarantined > 0 {
        let _ = writeln!(out, "  quarantined corners: {quarantined}");
    }

    if let Some(Value::Arr(open)) = raw.get("open_spans") {
        let spans: Vec<String> = open
            .iter()
            .filter_map(|s| {
                let path = s.get("path").and_then(Value::as_str)?;
                let n = s.get("open").and_then(Value::as_u64).unwrap_or(0);
                Some(if n > 1 {
                    format!("{path} (x{n})")
                } else {
                    path.to_string()
                })
            })
            .collect();
        if !spans.is_empty() {
            let _ = writeln!(out, "  open spans: {}", spans.join(" "));
        }
    }

    if !sc.spans.is_empty() {
        out.push('\n');
        out.push_str(&hot_span_table(sc, top_spans));
    }
    out
}

/// Renders one journal-mode dashboard from a [`tail`] snapshot.
pub fn render_journal(s: &tail::Snapshot, elapsed: f64) -> String {
    let mut out = format!(
        "run {} — {} ({} events{})\n",
        s.id,
        if s.finalized {
            "finalized"
        } else {
            "in flight"
        },
        s.events,
        if s.torn_tail {
            ", torn tail dropped"
        } else {
            ""
        },
    );
    let rows: Vec<Row> = s
        .traces
        .iter()
        .map(|t| Row {
            name: t.name.clone(),
            chunks_done: t.chunks_done,
            chunks_total: t.chunks_total,
            samples_done: t.samples_done,
            samples_total: t.samples_total,
            value: t.value,
            std_err: t.std_err,
            ess: None,
        })
        .collect();
    render_rows(&mut out, &rows);
    if !s.finalized {
        render_eta(&mut out, &rows, elapsed);
    }
    if s.corners > 0 {
        let _ = writeln!(
            out,
            "  corners: {} done ({} quarantined), {} estimates",
            s.corners, s.corners_quarantined, s.estimates
        );
    }
    if s.rescue_attempts > 0 || s.quarantined > 0 {
        let _ = writeln!(
            out,
            "  rescue: {}/{} hits/attempts, quarantined samples: {}",
            s.rescue_hits, s.rescue_attempts, s.quarantined
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_classifies_addresses_and_paths() {
        assert!(matches!(parse_source("127.0.0.1:9184"), Source::Addr(_)));
        assert!(matches!(parse_source("127.0.0.1:0"), Source::Addr(_)));
        assert_eq!(
            parse_source("results/fig2a.events.jsonl"),
            Source::Journal("results/fig2a.events.jsonl".to_string())
        );
    }

    #[test]
    fn bar_fills_proportionally_and_handles_unknown_totals() {
        assert_eq!(bar(0, 4, 8), "........");
        assert_eq!(bar(2, 4, 8), "####....");
        assert_eq!(bar(4, 4, 8), "########");
        assert_eq!(bar(9, 4, 8), "########", "overshoot clamps");
        assert_eq!(bar(3, 0, 8), "........", "unknown total stays empty");
    }

    #[test]
    fn live_frame_renders_progress_health_and_spans() {
        let body = concat!(
            r#"{"clock":false,"counters":{},"elapsed_secs":10.0,"epoch":7,"#,
            r#""gauges":{"mc.ess_fraction":0.5,"mc.stall_ratio":0.1},"#,
            r#""id":"fig2a","live":true,"mode":"full","#,
            r#""open_spans":[{"open":1,"path":"fig2a/mc"}],"#,
            r#""progress":[{"chunks_done":1,"chunks_total":4,"contributing":10,"#,
            r#""ess":9.5,"health_chunks":1,"name":"fig2a.mc","samples_done":4096,"#,
            r#""samples_total":16384,"std_err":1e-5,"value":2e-4,"#,
            r#""weight_max":0.1,"weight_sq_sum":0.5,"weight_sum":2.0}],"#,
            r#""quarantine_count":0,"schema":"pvtm-telemetry/3","schema_version":3,"#,
            r#""solver":{"solves":12},"spans":[],"traces":[]}"#
        );
        let frame = LiveFrame {
            sidecar: Sidecar::parse(body).expect("snapshot body parses as sidecar"),
            raw: json::parse(body).unwrap(),
        };
        let text = render_live(&frame, 10);
        assert!(text.contains("run fig2a — live (epoch 7"), "{text}");
        assert!(text.contains("1/4 chunks"), "{text}");
        assert!(text.contains("ess 9.5"), "{text}");
        assert!(text.contains("ess_frac 0.500"), "{text}");
        assert!(text.contains("eta: ~30 s"), "{text}");
        assert!(text.contains("open spans: fig2a/mc"), "{text}");
    }

    #[test]
    fn journal_dashboard_shares_the_tail_reconstruction() {
        let text = concat!(
            r#"{"seq":0,"kind":"run.start","schema":"pvtm-events/1","id":"f","mode":"full","clock":false}"#,
            "\n",
            r#"{"seq":1,"kind":"mc.start","trace":"f.mc","samples":8192,"chunks":2}"#,
            "\n",
            r#"{"seq":2,"kind":"mc.chunk","trace":"f.mc","chunk":0,"n":4096,"mean":0.25,"m2":768.0}"#,
            "\n",
        );
        let j = crate::tail::Journal::parse(text).unwrap();
        let s = crate::tail::snapshot(&j);
        let out = render_journal(&s, 5.0);
        assert!(out.contains("run f — in flight"), "{out}");
        assert!(out.contains("1/2 chunks"), "{out}");
        assert!(out.contains("eta: ~5 s"), "{out}");
        let done = render_journal(
            &crate::tail::Snapshot {
                finalized: true,
                ..s
            },
            5.0,
        );
        assert!(done.contains("finalized"), "{done}");
        assert!(!done.contains("eta"), "finalized run has no ETA: {done}");
    }
}
