//! `pvtm-trace health` — gate estimator-health diagnostics against
//! `health-budgets.json`.
//!
//! Where `check` ratchets *work* (how many solves a figure spends),
//! `health` ratchets *confidence* (whether the estimate those solves buy
//! can be trusted). The inputs are the v3 sidecar's per-trace health
//! block and the derived `mc.*` gauges, all of which are byte-identical
//! across runs under `PVTM_TELEMETRY_CLOCK=off`, so this gate has the
//! same zero-flake property as the perf budgets.
//!
//! A budget entry is four thresholds:
//!
//! - `min_ess_fraction` — floor on effective-sample-size / contributing
//!   samples; falling below it means importance weights are carrying the
//!   estimate on too few shoulders (`LOW_ESS`);
//! - `max_weight_fraction` — ceiling on any single weight's share of the
//!   total; exceeding it means one sample dominates (`WEIGHT_DEGENERATE`);
//! - `max_stall_ratio` — ceiling on the fraction of convergence steps
//!   where the CI half-width shrank slower than root-n (`STALLED`);
//! - `max_quarantine_ci_share` — ceiling on the quarantine bias band as a
//!   share of the CI half-width (`QUARANTINE_BIASED`).
//!
//! Figures resolve their entry by id, falling back to `"default"`; the
//! ratchet (`--update-budgets`) rewrites only per-figure entries, leaving
//! `"default"` as the hand-maintained floor for new figures.

use std::collections::BTreeMap;
use std::fmt;

use pvtm_telemetry::json::{self, Value};

use crate::sidecar::Sidecar;

/// Name of the fallback budget entry.
pub const DEFAULT_ENTRY: &str = "default";

/// Budget-file rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthBudgetError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for HealthBudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for HealthBudgetError {}

/// One figure's health thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthEntry {
    /// Floor on per-trace `ess_fraction` (weighted traces only).
    pub min_ess_fraction: f64,
    /// Ceiling on per-trace `max_weight_fraction` (weighted traces only).
    pub max_weight_fraction: f64,
    /// Ceiling on per-trace `stall_ratio`.
    pub max_stall_ratio: f64,
    /// Ceiling on the `mc.quarantine_ci_share` gauge.
    pub max_quarantine_ci_share: f64,
}

impl Default for HealthEntry {
    /// Permissive defaults: everything passes until a budget tightens it.
    fn default() -> Self {
        HealthEntry {
            min_ess_fraction: 0.0,
            max_weight_fraction: 1.0,
            max_stall_ratio: 1.0,
            max_quarantine_ci_share: 1.0,
        }
    }
}

impl HealthEntry {
    fn from_value(v: &Value) -> HealthEntry {
        let f = |key: &str, fallback: f64| v.get(key).and_then(Value::as_f64).unwrap_or(fallback);
        let d = HealthEntry::default();
        HealthEntry {
            min_ess_fraction: f("min_ess_fraction", d.min_ess_fraction),
            max_weight_fraction: f("max_weight_fraction", d.max_weight_fraction),
            max_stall_ratio: f("max_stall_ratio", d.max_stall_ratio),
            max_quarantine_ci_share: f("max_quarantine_ci_share", d.max_quarantine_ci_share),
        }
    }

    fn to_value(self) -> Value {
        json::obj(vec![
            ("min_ess_fraction", Value::Num(self.min_ess_fraction)),
            ("max_weight_fraction", Value::Num(self.max_weight_fraction)),
            ("max_stall_ratio", Value::Num(self.max_stall_ratio)),
            (
                "max_quarantine_ci_share",
                Value::Num(self.max_quarantine_ci_share),
            ),
        ])
    }
}

/// Parsed `health-budgets.json`: entry name (`"default"` or a figure id)
/// → thresholds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthBudgets {
    /// Name-sorted threshold entries.
    pub entries: BTreeMap<String, HealthEntry>,
}

impl HealthBudgets {
    /// Parses budget-file text.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or the wrong `schema` marker.
    pub fn parse(text: &str) -> Result<HealthBudgets, HealthBudgetError> {
        let doc = json::parse(text).map_err(|e| HealthBudgetError {
            message: format!("malformed health-budgets JSON: {e}"),
        })?;
        if doc.get("schema").and_then(Value::as_str) != Some("pvtm-health-budgets/1") {
            return Err(HealthBudgetError {
                message: "health-budgets file must have schema \"pvtm-health-budgets/1\"".into(),
            });
        }
        let mut entries = BTreeMap::new();
        if let Some(Value::Obj(members)) = doc.get("budgets") {
            for (name, v) in members {
                entries.insert(name.clone(), HealthEntry::from_value(v));
            }
        }
        Ok(HealthBudgets { entries })
    }

    /// Renders the canonical pretty JSON form.
    pub fn to_json_pretty(&self) -> String {
        let members: Vec<(String, Value)> = self
            .entries
            .iter()
            .map(|(name, e)| (name.clone(), e.to_value()))
            .collect();
        let mut s = json::obj(vec![
            ("schema", Value::Str("pvtm-health-budgets/1".into())),
            ("budgets", Value::Obj(members)),
        ])
        .to_json_pretty();
        s.push('\n');
        s
    }

    /// The thresholds applying to `figure`: the figure's own entry, else
    /// `"default"`, else `None` (which the gate treats as a violation).
    pub fn entry_for<'a>(&self, figure: &'a str) -> Option<(&'a str, HealthEntry)> {
        if let Some(e) = self.entries.get(figure) {
            return Some((figure, *e));
        }
        self.entries.get(DEFAULT_ENTRY).map(|e| (DEFAULT_ENTRY, *e))
    }
}

/// Result of the health gate: the confidence ledger plus pass/fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthOutcome {
    /// The confidence ledger, one line per trace/metric finding.
    pub text: String,
    /// Hard failures: threshold crossed, or no budget entry at all.
    pub violations: usize,
    /// Advisory notes (pre-v3 sidecars with no health data).
    pub notes: usize,
}

impl HealthOutcome {
    /// Whether the gate fails.
    pub fn failed(&self) -> bool {
        self.violations > 0
    }
}

fn verdict(out: &mut HealthOutcome, bad: bool, id: &str, tag: &str, detail: String) {
    if bad {
        out.violations += 1;
        out.text.push_str(&format!("FAIL {id}: {tag} — {detail}\n"));
    } else {
        out.text.push_str(&format!("ok   {id}: {detail}\n"));
    }
}

/// Checks each sidecar's estimator health against its figure's budget
/// entry, rendering the per-figure confidence ledger.
pub fn health_check(budgets: &HealthBudgets, sidecars: &[Sidecar]) -> HealthOutcome {
    let mut out = HealthOutcome {
        text: String::new(),
        violations: 0,
        notes: 0,
    };
    for sc in sidecars {
        let Some((source, entry)) = budgets.entry_for(&sc.id) else {
            out.violations += 1;
            out.text.push_str(&format!(
                "FAIL {}: no budget entry and no \"default\" — record one with --update-budgets\n",
                sc.id
            ));
            continue;
        };
        out.text
            .push_str(&format!("== {} (thresholds from {:?}) ==\n", sc.id, source));
        let with_health: Vec<_> = sc
            .traces
            .iter()
            .filter_map(|t| t.health.map(|h| (t.name.as_str(), h)))
            .collect();
        if with_health.is_empty() {
            out.notes += 1;
            out.text.push_str(&format!(
                "note {}: no estimator-health data (pre-v3 sidecar, or no MC traces)\n",
                sc.id
            ));
        }
        for (name, h) in with_health {
            if h.has_weights {
                verdict(
                    &mut out,
                    h.ess_fraction < entry.min_ess_fraction,
                    &sc.id,
                    "LOW_ESS",
                    format!(
                        "{name}: ess_fraction {:.4} (floor {:.4}, ess {:.1} of {} contributing)",
                        h.ess_fraction, entry.min_ess_fraction, h.ess, h.contributing
                    ),
                );
                verdict(
                    &mut out,
                    h.max_weight_fraction > entry.max_weight_fraction,
                    &sc.id,
                    "WEIGHT_DEGENERATE",
                    format!(
                        "{name}: max_weight_fraction {:.4} (ceiling {:.4})",
                        h.max_weight_fraction, entry.max_weight_fraction
                    ),
                );
            }
            verdict(
                &mut out,
                h.stall_ratio > entry.max_stall_ratio,
                &sc.id,
                "STALLED",
                format!(
                    "{name}: stall_ratio {:.4} (ceiling {:.4}, {}/{} steps)",
                    h.stall_ratio, entry.max_stall_ratio, h.stalled_steps, h.steps
                ),
            );
        }
        if let Some(share) = sc.gauge("mc.quarantine_ci_share") {
            verdict(
                &mut out,
                share > entry.max_quarantine_ci_share,
                &sc.id,
                "QUARANTINE_BIASED",
                format!(
                    "quarantine_ci_share {:.4} (ceiling {:.4})",
                    share, entry.max_quarantine_ci_share
                ),
            );
        }
    }
    out
}

/// Rounds down to 4 decimals — headroom direction for a floor threshold.
fn floor4(x: f64) -> f64 {
    (x * 1e4).floor() / 1e4
}

/// Rounds up to 4 decimals — headroom direction for a ceiling threshold.
fn ceil4(x: f64) -> f64 {
    (x * 1e4).ceil() / 1e4
}

/// Returns `budgets` with each sidecar's figure entry replaced by its
/// observed health, rounded in the *permissive* direction (floors down,
/// ceilings up) so a byte-identical rerun passes exactly. The `"default"`
/// entry is never rewritten.
pub fn update_health_budgets(budgets: &HealthBudgets, sidecars: &[Sidecar]) -> HealthBudgets {
    let mut next = budgets.clone();
    for sc in sidecars {
        let mut e = HealthEntry {
            min_ess_fraction: 1.0,
            max_weight_fraction: 0.0,
            max_stall_ratio: 0.0,
            max_quarantine_ci_share: sc.gauge("mc.quarantine_ci_share").unwrap_or(0.0),
        };
        let mut weighted = false;
        for h in sc.traces.iter().filter_map(|t| t.health) {
            if h.has_weights {
                weighted = true;
                e.min_ess_fraction = e.min_ess_fraction.min(h.ess_fraction);
                e.max_weight_fraction = e.max_weight_fraction.max(h.max_weight_fraction);
            }
            e.max_stall_ratio = e.max_stall_ratio.max(h.stall_ratio);
        }
        if !weighted {
            // No IS traces: keep the ESS axes permissive rather than
            // recording the vacuous extremes of an empty fold.
            e.min_ess_fraction = 0.0;
            e.max_weight_fraction = 1.0;
        }
        e.min_ess_fraction = floor4(e.min_ess_fraction);
        e.max_weight_fraction = ceil4(e.max_weight_fraction);
        e.max_stall_ratio = ceil4(e.max_stall_ratio);
        e.max_quarantine_ci_share = ceil4(e.max_quarantine_ci_share);
        next.entries.insert(sc.id.clone(), e);
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sidecar::{Trace, TraceHealth, TracePoint};
    use std::collections::BTreeMap;

    fn health(ess_fraction: f64, max_weight_fraction: f64, stall_ratio: f64) -> TraceHealth {
        TraceHealth {
            has_weights: true,
            contributing: 1000,
            ess: ess_fraction * 1000.0,
            ess_fraction,
            max_weight_fraction,
            steps: 4,
            stalled_steps: (stall_ratio * 4.0).round() as u64,
            stall_ratio,
        }
    }

    fn sidecar(id: &str, h: Option<TraceHealth>) -> Sidecar {
        Sidecar {
            id: id.into(),
            mode: "full".into(),
            clock: false,
            schema_version: 3,
            solver: BTreeMap::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: Vec::new(),
            spans: Vec::new(),
            traces: vec![Trace {
                name: format!("{id}.mc"),
                points: vec![TracePoint {
                    chunk: 0,
                    samples: 4096,
                    value: 1e-4,
                    std_err: 1e-5,
                }],
                health: h,
            }],
        }
    }

    fn budgets(entry: &str, e: HealthEntry) -> HealthBudgets {
        HealthBudgets {
            entries: BTreeMap::from([(entry.to_string(), e)]),
        }
    }

    #[test]
    fn budgets_round_trip_through_json() {
        let b = update_health_budgets(
            &HealthBudgets::default(),
            &[sidecar("fig2a", Some(health(0.8215, 0.031, 0.25)))],
        );
        let parsed = HealthBudgets::parse(&b.to_json_pretty()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.entries["fig2a"].min_ess_fraction, 0.8215);
    }

    #[test]
    fn rejects_wrong_schema() {
        assert!(HealthBudgets::parse(r#"{"schema": "nope", "budgets": {}}"#).is_err());
    }

    #[test]
    fn healthy_trace_passes_against_its_ratchet() {
        let sc = sidecar("fig2a", Some(health(0.82, 0.03, 0.25)));
        let b = update_health_budgets(&HealthBudgets::default(), std::slice::from_ref(&sc));
        let out = health_check(&b, &[sc]);
        assert!(!out.failed(), "{}", out.text);
        assert!(out.text.contains("ess_fraction 0.8200"));
    }

    #[test]
    fn low_ess_fails() {
        let b = budgets(
            "fig2a",
            HealthEntry {
                min_ess_fraction: 0.5,
                ..HealthEntry::default()
            },
        );
        let out = health_check(&b, &[sidecar("fig2a", Some(health(0.04, 0.9, 0.0)))]);
        assert!(out.failed());
        assert!(out.text.contains("LOW_ESS"), "{}", out.text);
    }

    #[test]
    fn weight_degeneracy_and_stall_fail() {
        let b = budgets(
            "fig2a",
            HealthEntry {
                max_weight_fraction: 0.1,
                max_stall_ratio: 0.3,
                ..HealthEntry::default()
            },
        );
        let out = health_check(&b, &[sidecar("fig2a", Some(health(0.9, 0.8, 0.75)))]);
        assert_eq!(out.violations, 2);
        assert!(out.text.contains("WEIGHT_DEGENERATE"));
        assert!(out.text.contains("STALLED"));
    }

    #[test]
    fn quarantine_ci_share_gauge_is_gated() {
        let b = budgets(
            "fig2a",
            HealthEntry {
                max_quarantine_ci_share: 0.05,
                ..HealthEntry::default()
            },
        );
        let mut sc = sidecar("fig2a", Some(health(0.9, 0.02, 0.0)));
        sc.gauges.insert("mc.quarantine_ci_share".into(), 0.4);
        let out = health_check(&b, &[sc]);
        assert!(out.failed());
        assert!(out.text.contains("QUARANTINE_BIASED"));
    }

    #[test]
    fn default_entry_covers_unlisted_figures() {
        let b = budgets(
            DEFAULT_ENTRY,
            HealthEntry {
                min_ess_fraction: 0.1,
                ..HealthEntry::default()
            },
        );
        let out = health_check(&b, &[sidecar("fig9", Some(health(0.9, 0.01, 0.0)))]);
        assert!(!out.failed(), "{}", out.text);
        assert!(out.text.contains("thresholds from \"default\""));
    }

    #[test]
    fn missing_entry_without_default_fails() {
        let out = health_check(
            &HealthBudgets::default(),
            &[sidecar("fig9", Some(health(0.9, 0.01, 0.0)))],
        );
        assert!(out.failed());
        assert!(out.text.contains("no budget entry"));
    }

    #[test]
    fn pre_v3_sidecar_is_a_note_not_a_failure() {
        let b = budgets(DEFAULT_ENTRY, HealthEntry::default());
        let out = health_check(&b, &[sidecar("old", None)]);
        assert!(!out.failed());
        assert_eq!(out.notes, 1);
        assert!(out.text.contains("no estimator-health data"));
    }

    #[test]
    fn unweighted_trace_skips_ess_axes() {
        let mut h = health(0.0, 0.0, 0.0);
        h.has_weights = false;
        let b = budgets(
            "fig2a",
            HealthEntry {
                min_ess_fraction: 0.9,
                ..HealthEntry::default()
            },
        );
        let out = health_check(&b, &[sidecar("fig2a", Some(h))]);
        assert!(!out.failed(), "{}", out.text);
        assert!(!out.text.contains("LOW_ESS"));
    }

    #[test]
    fn update_preserves_default_and_rounds_permissively() {
        let b0 = budgets(
            DEFAULT_ENTRY,
            HealthEntry {
                min_ess_fraction: 0.2,
                ..HealthEntry::default()
            },
        );
        let next = update_health_budgets(
            &b0,
            &[sidecar("fig2a", Some(health(0.82159, 0.03001, 0.25)))],
        );
        assert_eq!(next.entries[DEFAULT_ENTRY].min_ess_fraction, 0.2);
        let e = next.entries["fig2a"];
        assert_eq!(e.min_ess_fraction, 0.8215, "floor rounds down");
        assert_eq!(e.max_weight_fraction, 0.0301, "ceiling rounds up");
    }
}
