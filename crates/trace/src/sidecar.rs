//! Tolerant parser for `results/<id>.telemetry.json` sidecars.
//!
//! Tolerant means: a v1 sidecar (written before `schema_version` existed)
//! parses fine — the version defaults to 1, per-span attribution fields
//! default to "no children, no attributed solver work", and unknown
//! members are ignored. Only a missing/foreign `schema` string or
//! malformed JSON is an error, so `pvtm-trace diff` can always compare
//! across the format boundary.

use std::collections::BTreeMap;
use std::fmt;

use pvtm_telemetry::json::{self, Value};

/// Sidecar rejection: either unparsable JSON or not a telemetry document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SidecarError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for SidecarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for SidecarError {}

fn err(message: impl Into<String>) -> SidecarError {
    SidecarError {
        message: message.into(),
    }
}

/// One span aggregate read back from a sidecar.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// `/`-joined span path.
    pub path: String,
    /// Times entered.
    pub count: u64,
    /// Total nanoseconds (0 when the producer's clock was gated off).
    pub total_ns: u64,
    /// Self nanoseconds (total minus child time; defaults to `total_ns`
    /// for v1 sidecars, which had no child attribution).
    pub self_ns: u64,
    /// DC solves attributed to this span (innermost-span attribution).
    pub solves: u64,
    /// Newton iterations attributed to this span.
    pub newton_iterations: u64,
    /// LU factorizations attributed to this span.
    pub lu_factorizations: u64,
    /// Cold solves attributed to this span.
    pub cold_solves: u64,
}

/// A parsed telemetry sidecar — just the pieces the consumers need.
#[derive(Debug, Clone, PartialEq)]
pub struct Sidecar {
    /// Figure id the sidecar was written for.
    pub id: String,
    /// Producer mode string (`"full"`, `"summary"`, ...).
    pub mode: String,
    /// Whether span durations came from a real clock. When false, every
    /// `*_ns` field is deterministically zero and timing output is
    /// meaningless — consumers fall back to work counters.
    pub clock: bool,
    /// Sidecar schema version; 1 when the field is absent.
    pub schema_version: u64,
    /// Global solver work counters by field name (integers only —
    /// `warm_hit_rate` is derived and excluded).
    pub solver: BTreeMap<String, u64>,
    /// Named event counters.
    pub counters: BTreeMap<String, u64>,
    /// Span aggregates in sidecar order (path order, as written).
    pub spans: Vec<Span>,
}

fn get_u64(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(0)
}

impl Sidecar {
    /// Parses sidecar text.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a document whose `schema` member is not
    /// a `pvtm-telemetry/<n>` string.
    pub fn parse(text: &str) -> Result<Sidecar, SidecarError> {
        let doc = json::parse(text).map_err(|e| err(format!("malformed sidecar JSON: {e}")))?;
        let schema = doc
            .get("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| err("not a telemetry sidecar: missing \"schema\" string"))?;
        if !schema.starts_with("pvtm-telemetry/") {
            return Err(err(format!(
                "not a telemetry sidecar: schema {schema:?} is not pvtm-telemetry/<n>"
            )));
        }
        let schema_version = doc
            .get("schema_version")
            .and_then(Value::as_u64)
            .unwrap_or(1);

        let mut solver = BTreeMap::new();
        if let Some(Value::Obj(members)) = doc.get("solver") {
            for (k, v) in members {
                // warm_hit_rate is a derived float; everything else in the
                // solver section is an integer work counter.
                if let Some(n) = v.as_u64() {
                    solver.insert(k.clone(), n);
                }
            }
        }

        let mut counters = BTreeMap::new();
        if let Some(Value::Obj(members)) = doc.get("counters") {
            for (k, v) in members {
                if let Some(n) = v.as_u64() {
                    counters.insert(k.clone(), n);
                }
            }
        }

        let spans = doc
            .get("spans")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(|s| {
                let path = s.get("path")?.as_str()?.to_string();
                let total_ns = get_u64(s, "total_ns");
                Some(Span {
                    path,
                    count: get_u64(s, "count"),
                    total_ns,
                    // v1 sidecars carry no attribution: all time is self.
                    self_ns: s.get("self_ns").and_then(Value::as_u64).unwrap_or(total_ns),
                    solves: get_u64(s, "solves"),
                    newton_iterations: get_u64(s, "newton_iterations"),
                    lu_factorizations: get_u64(s, "lu_factorizations"),
                    cold_solves: get_u64(s, "cold_solves"),
                })
            })
            .collect();

        Ok(Sidecar {
            id: doc
                .get("id")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            mode: doc
                .get("mode")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            clock: matches!(doc.get("clock"), Some(Value::Bool(true)) | None),
            schema_version,
            solver,
            counters,
            spans,
        })
    }

    /// A solver work counter by sidecar field name (0 when absent).
    pub fn solver_counter(&self, name: &str) -> u64 {
        self.solver.get(name).copied().unwrap_or(0)
    }

    /// Looks up a budget-metric value. Metric names are namespaced:
    /// `solver.<field>` reads the global solver section,
    /// `counter.<name>` reads a named event counter.
    pub fn metric(&self, name: &str) -> Option<u64> {
        if let Some(field) = name.strip_prefix("solver.") {
            self.solver.get(field).copied()
        } else if let Some(counter) = name.strip_prefix("counter.") {
            self.counters.get(counter).copied()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v2_doc() -> String {
        r#"{
          "schema": "pvtm-telemetry/2",
          "schema_version": 2,
          "id": "figX",
          "mode": "full",
          "clock": false,
          "solver": {"solves": 10, "newton_iterations": 31, "warm_hit_rate": 0.9},
          "counters": {"mc.samples": 4096},
          "spans": [
            {"path": "figX", "count": 1, "total_ns": 100, "self_ns": 40, "solves": 2},
            {"path": "figX/mc.chunk", "count": 3, "total_ns": 60, "self_ns": 60, "solves": 8}
          ]
        }"#
        .to_string()
    }

    #[test]
    fn parses_v2_sidecar() {
        let s = Sidecar::parse(&v2_doc()).unwrap();
        assert_eq!(s.id, "figX");
        assert_eq!(s.schema_version, 2);
        assert!(!s.clock);
        assert_eq!(s.solver_counter("solves"), 10);
        // warm_hit_rate is a float and must not land in the counter map.
        assert!(!s.solver.contains_key("warm_hit_rate"));
        assert_eq!(s.metric("solver.newton_iterations"), Some(31));
        assert_eq!(s.metric("counter.mc.samples"), Some(4096));
        assert_eq!(s.metric("bogus.name"), None);
        assert_eq!(s.spans.len(), 2);
        assert_eq!(s.spans[0].self_ns, 40);
    }

    #[test]
    fn v1_sidecar_defaults_are_tolerant() {
        let text = r#"{
          "schema": "pvtm-telemetry/1",
          "id": "old",
          "mode": "full",
          "clock": true,
          "solver": {"solves": 5},
          "spans": [{"path": "old", "count": 1, "total_ns": 70}]
        }"#;
        let s = Sidecar::parse(text).unwrap();
        assert_eq!(s.schema_version, 1, "missing schema_version reads as v1");
        assert!(s.clock);
        // No self_ns in v1: all of the span's time counts as self.
        assert_eq!(s.spans[0].self_ns, 70);
        assert_eq!(s.spans[0].newton_iterations, 0);
        assert!(s.counters.is_empty());
    }

    #[test]
    fn rejects_foreign_documents() {
        assert!(Sidecar::parse("{not json").is_err());
        assert!(Sidecar::parse("{}").is_err());
        assert!(Sidecar::parse(r#"{"schema": "other/1"}"#).is_err());
    }
}
