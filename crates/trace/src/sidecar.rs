//! Tolerant parser for `results/<id>.telemetry.json` sidecars.
//!
//! Tolerant means: a v1 sidecar (written before `schema_version` existed)
//! parses fine — the version defaults to 1, per-span attribution fields
//! default to "no children, no attributed solver work", and unknown
//! members are ignored. Only a missing/foreign `schema` string or
//! malformed JSON is an error, so `pvtm-trace diff` can always compare
//! across the format boundary.

use std::collections::BTreeMap;
use std::fmt;

use pvtm_telemetry::json::{self, Value};

/// Sidecar rejection: either unparsable JSON or not a telemetry document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SidecarError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for SidecarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for SidecarError {}

fn err(message: impl Into<String>) -> SidecarError {
    SidecarError {
        message: message.into(),
    }
}

/// One span aggregate read back from a sidecar.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// `/`-joined span path.
    pub path: String,
    /// Times entered.
    pub count: u64,
    /// Total nanoseconds (0 when the producer's clock was gated off).
    pub total_ns: u64,
    /// Self nanoseconds (total minus child time; defaults to `total_ns`
    /// for v1 sidecars, which had no child attribution).
    pub self_ns: u64,
    /// DC solves attributed to this span (innermost-span attribution).
    pub solves: u64,
    /// Newton iterations attributed to this span.
    pub newton_iterations: u64,
    /// LU factorizations attributed to this span.
    pub lu_factorizations: u64,
    /// Cold solves attributed to this span.
    pub cold_solves: u64,
    /// Rescue-ladder entries attributed to this span (0 pre-v3, and in v3
    /// sidecars of rescue-free runs, which omit the field).
    pub rescue_attempts: u64,
    /// Rescue-ladder entries that converged, attributed to this span.
    pub rescue_hits: u64,
}

/// One convergence-trace point read back from a sidecar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Chunk index.
    pub chunk: u64,
    /// Cumulative samples through this chunk.
    pub samples: u64,
    /// Running estimate.
    pub value: f64,
    /// Running standard error.
    pub std_err: f64,
}

/// Estimator-health diagnostics of one trace (v3 sidecars; `None` before).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceHealth {
    /// Whether the ESS fields were present (importance-sampling runs).
    pub has_weights: bool,
    /// Contributing (failing) samples.
    pub contributing: u64,
    /// Effective sample size over contributing weights.
    pub ess: f64,
    /// `ess / contributing` (1.0 when nothing contributed).
    pub ess_fraction: f64,
    /// Largest single weight's share of the weight total.
    pub max_weight_fraction: f64,
    /// Consecutive-point comparisons made.
    pub steps: u64,
    /// Comparisons where the CI half-width shrank slower than root-n.
    pub stalled_steps: u64,
    /// `stalled_steps / steps` (0.0 with fewer than two points).
    pub stall_ratio: f64,
}

/// One log2 histogram bucket read back from a sidecar, with explicit
/// bounds: values in `[lo, hi)` land here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramBucket {
    /// IEEE exponent of the bucket's lower bound.
    pub log2: i64,
    /// Inclusive lower bound (`2^log2`).
    pub lo: f64,
    /// Exclusive upper bound (`2^(log2+1)`) — the Prometheus `le` bound.
    pub hi: f64,
    /// Observations in `[lo, hi)`.
    pub count: u64,
}

/// One named log2 histogram read back from a sidecar.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Observations of non-positive values (below every bucket).
    pub underflow: u64,
    /// Buckets in sidecar (exponent) order.
    pub buckets: Vec<HistogramBucket>,
}

/// One named convergence trace read back from a sidecar.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Trace label.
    pub name: String,
    /// Running estimates in sidecar (chunk) order.
    pub points: Vec<TracePoint>,
    /// Health diagnostics when the producer recorded them (v3+).
    pub health: Option<TraceHealth>,
}

/// A parsed telemetry sidecar — just the pieces the consumers need.
#[derive(Debug, Clone, PartialEq)]
pub struct Sidecar {
    /// Figure id the sidecar was written for.
    pub id: String,
    /// Producer mode string (`"full"`, `"summary"`, ...).
    pub mode: String,
    /// Whether span durations came from a real clock. When false, every
    /// `*_ns` field is deterministically zero and timing output is
    /// meaningless — consumers fall back to work counters.
    pub clock: bool,
    /// Sidecar schema version; 1 when the field is absent.
    pub schema_version: u64,
    /// Global solver work counters by field name (integers only —
    /// `warm_hit_rate` is derived and excluded).
    pub solver: BTreeMap<String, u64>,
    /// Named event counters.
    pub counters: BTreeMap<String, u64>,
    /// Named gauges (v3 sidecars include the derived `mc.*` health gauges).
    pub gauges: BTreeMap<String, f64>,
    /// Span aggregates in sidecar order (path order, as written).
    pub spans: Vec<Span>,
    /// Convergence traces in sidecar order.
    pub traces: Vec<Trace>,
    /// Log2 histograms in sidecar order. Bucket bounds are explicit:
    /// producers that emit them (`lo`/`hi`) are taken at their word, and
    /// older sidecars that carry only the `log2` index get both bounds
    /// re-derived (`2^log2`, `2^(log2+1)`).
    pub histograms: Vec<Histogram>,
}

fn get_u64(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(0)
}

impl Sidecar {
    /// Parses sidecar text.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a document whose `schema` member is not
    /// a `pvtm-telemetry/<n>` string.
    pub fn parse(text: &str) -> Result<Sidecar, SidecarError> {
        let doc = json::parse(text).map_err(|e| err(format!("malformed sidecar JSON: {e}")))?;
        let schema = doc
            .get("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| err("not a telemetry sidecar: missing \"schema\" string"))?;
        if !schema.starts_with("pvtm-telemetry/") {
            return Err(err(format!(
                "not a telemetry sidecar: schema {schema:?} is not pvtm-telemetry/<n>"
            )));
        }
        let schema_version = doc
            .get("schema_version")
            .and_then(Value::as_u64)
            .unwrap_or(1);

        let mut solver = BTreeMap::new();
        if let Some(Value::Obj(members)) = doc.get("solver") {
            for (k, v) in members {
                // warm_hit_rate is a derived float; everything else in the
                // solver section is an integer work counter.
                if let Some(n) = v.as_u64() {
                    solver.insert(k.clone(), n);
                }
            }
        }

        let mut counters = BTreeMap::new();
        if let Some(Value::Obj(members)) = doc.get("counters") {
            for (k, v) in members {
                if let Some(n) = v.as_u64() {
                    counters.insert(k.clone(), n);
                }
            }
        }

        let mut gauges = BTreeMap::new();
        if let Some(Value::Obj(members)) = doc.get("gauges") {
            for (k, v) in members {
                if let Some(x) = v.as_f64() {
                    gauges.insert(k.clone(), x);
                }
            }
        }

        let spans = doc
            .get("spans")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(|s| {
                let path = s.get("path")?.as_str()?.to_string();
                let total_ns = get_u64(s, "total_ns");
                Some(Span {
                    path,
                    count: get_u64(s, "count"),
                    total_ns,
                    // v1 sidecars carry no attribution: all time is self.
                    self_ns: s.get("self_ns").and_then(Value::as_u64).unwrap_or(total_ns),
                    solves: get_u64(s, "solves"),
                    newton_iterations: get_u64(s, "newton_iterations"),
                    lu_factorizations: get_u64(s, "lu_factorizations"),
                    cold_solves: get_u64(s, "cold_solves"),
                    rescue_attempts: get_u64(s, "rescue_attempts"),
                    rescue_hits: get_u64(s, "rescue_hits"),
                })
            })
            .collect();

        let traces = doc
            .get("traces")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(|t| {
                let name = t.get("name")?.as_str()?.to_string();
                let points = t
                    .get("points")
                    .and_then(Value::as_array)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|p| {
                        Some(TracePoint {
                            chunk: get_u64(p, "chunk"),
                            samples: get_u64(p, "samples"),
                            value: p.get("value")?.as_f64()?,
                            std_err: p.get("std_err").and_then(Value::as_f64).unwrap_or(0.0),
                        })
                    })
                    .collect();
                let health = t.get("health").map(|h| {
                    let has_weights = h.get("ess").is_some();
                    TraceHealth {
                        has_weights,
                        contributing: get_u64(h, "contributing"),
                        ess: h.get("ess").and_then(Value::as_f64).unwrap_or(0.0),
                        ess_fraction: h.get("ess_fraction").and_then(Value::as_f64).unwrap_or(1.0),
                        max_weight_fraction: h
                            .get("max_weight_fraction")
                            .and_then(Value::as_f64)
                            .unwrap_or(0.0),
                        steps: get_u64(h, "steps"),
                        stalled_steps: get_u64(h, "stalled_steps"),
                        stall_ratio: h.get("stall_ratio").and_then(Value::as_f64).unwrap_or(0.0),
                    }
                });
                Some(Trace {
                    name,
                    points,
                    health,
                })
            })
            .collect();

        let histograms = doc
            .get("histograms")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(|h| {
                let name = h.get("name")?.as_str()?.to_string();
                let buckets = h
                    .get("buckets")
                    .and_then(Value::as_array)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|b| {
                        let log2 = b.get("log2")?.as_f64()? as i64;
                        // Tolerant of both forms: explicit bounds when the
                        // producer emitted them, else derived from log2.
                        let exp = i32::try_from(log2).ok()?;
                        let lo = b
                            .get("lo")
                            .and_then(Value::as_f64)
                            .unwrap_or_else(|| 2.0f64.powi(exp));
                        let hi = b
                            .get("hi")
                            .and_then(Value::as_f64)
                            .unwrap_or_else(|| 2.0f64.powi(exp + 1));
                        Some(HistogramBucket {
                            log2,
                            lo,
                            hi,
                            count: get_u64(b, "count"),
                        })
                    })
                    .collect();
                Some(Histogram {
                    name,
                    count: get_u64(h, "count"),
                    underflow: get_u64(h, "underflow"),
                    buckets,
                })
            })
            .collect();

        Ok(Sidecar {
            id: doc
                .get("id")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            mode: doc
                .get("mode")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            clock: matches!(doc.get("clock"), Some(Value::Bool(true)) | None),
            schema_version,
            solver,
            counters,
            gauges,
            spans,
            traces,
            histograms,
        })
    }

    /// A gauge value by name (`None` when absent).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A solver work counter by sidecar field name (0 when absent).
    pub fn solver_counter(&self, name: &str) -> u64 {
        self.solver.get(name).copied().unwrap_or(0)
    }

    /// Looks up a budget-metric value. Metric names are namespaced:
    /// `solver.<field>` reads the global solver section,
    /// `counter.<name>` reads a named event counter.
    pub fn metric(&self, name: &str) -> Option<u64> {
        if let Some(field) = name.strip_prefix("solver.") {
            self.solver.get(field).copied()
        } else if let Some(counter) = name.strip_prefix("counter.") {
            self.counters.get(counter).copied()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v2_doc() -> String {
        r#"{
          "schema": "pvtm-telemetry/2",
          "schema_version": 2,
          "id": "figX",
          "mode": "full",
          "clock": false,
          "solver": {"solves": 10, "newton_iterations": 31, "warm_hit_rate": 0.9},
          "counters": {"mc.samples": 4096},
          "spans": [
            {"path": "figX", "count": 1, "total_ns": 100, "self_ns": 40, "solves": 2},
            {"path": "figX/mc.chunk", "count": 3, "total_ns": 60, "self_ns": 60, "solves": 8}
          ]
        }"#
        .to_string()
    }

    #[test]
    fn parses_v2_sidecar() {
        let s = Sidecar::parse(&v2_doc()).unwrap();
        assert_eq!(s.id, "figX");
        assert_eq!(s.schema_version, 2);
        assert!(!s.clock);
        assert_eq!(s.solver_counter("solves"), 10);
        // warm_hit_rate is a float and must not land in the counter map.
        assert!(!s.solver.contains_key("warm_hit_rate"));
        assert_eq!(s.metric("solver.newton_iterations"), Some(31));
        assert_eq!(s.metric("counter.mc.samples"), Some(4096));
        assert_eq!(s.metric("bogus.name"), None);
        assert_eq!(s.spans.len(), 2);
        assert_eq!(s.spans[0].self_ns, 40);
    }

    #[test]
    fn v1_sidecar_defaults_are_tolerant() {
        let text = r#"{
          "schema": "pvtm-telemetry/1",
          "id": "old",
          "mode": "full",
          "clock": true,
          "solver": {"solves": 5},
          "spans": [{"path": "old", "count": 1, "total_ns": 70}]
        }"#;
        let s = Sidecar::parse(text).unwrap();
        assert_eq!(s.schema_version, 1, "missing schema_version reads as v1");
        assert!(s.clock);
        // No self_ns in v1: all of the span's time counts as self.
        assert_eq!(s.spans[0].self_ns, 70);
        assert_eq!(s.spans[0].newton_iterations, 0);
        assert!(s.counters.is_empty());
    }

    #[test]
    fn parses_v3_gauges_traces_and_health() {
        let text = r#"{
          "schema": "pvtm-telemetry/3",
          "schema_version": 3,
          "id": "fig3",
          "mode": "full",
          "clock": false,
          "solver": {"solves": 4},
          "gauges": {"mc.ess_fraction": 0.82, "mc.stall_ratio": 0.0},
          "spans": [
            {"path": "fig3", "count": 1, "total_ns": 0, "self_ns": 0,
             "solves": 4, "rescue_attempts": 2, "rescue_hits": 1}
          ],
          "traces": [
            {"name": "fig3.mc",
             "points": [
               {"chunk": 0, "samples": 4096, "value": 1e-4, "std_err": 2e-5},
               {"chunk": 1, "samples": 8192, "value": 1.1e-4, "std_err": 1.5e-5}
             ],
             "health": {"contributing": 900, "ess": 738.0, "ess_fraction": 0.82,
                        "max_weight_fraction": 0.02, "steps": 1,
                        "stalled_steps": 0, "stall_ratio": 0.0}}
          ]
        }"#;
        let s = Sidecar::parse(text).unwrap();
        assert_eq!(s.gauge("mc.ess_fraction"), Some(0.82));
        assert_eq!(s.spans[0].rescue_attempts, 2);
        assert_eq!(s.spans[0].rescue_hits, 1);
        let t = &s.traces[0];
        assert_eq!(t.name, "fig3.mc");
        assert_eq!(t.points.len(), 2);
        assert_eq!(t.points[1].samples, 8192);
        let h = t.health.unwrap();
        assert!(h.has_weights);
        assert_eq!(h.contributing, 900);
        assert_eq!(h.ess_fraction, 0.82);
    }

    #[test]
    fn pre_v3_sidecars_have_no_health() {
        let s = Sidecar::parse(&v2_doc()).unwrap();
        assert!(s.traces.is_empty());
        assert!(s.gauges.is_empty());
        assert_eq!(s.spans[0].rescue_attempts, 0);
    }

    #[test]
    fn histogram_bounds_parse_explicitly_and_derive_when_absent() {
        let text = r#"{
          "schema": "pvtm-telemetry/3",
          "id": "h",
          "mode": "full",
          "clock": false,
          "histograms": [
            {"name": "mc.is_weight", "count": 9, "underflow": 1,
             "buckets": [
               {"log2": -1, "lo": 0.5, "hi": 1, "count": 3},
               {"log2": 0, "count": 5}
             ]}
          ]
        }"#;
        let s = Sidecar::parse(text).unwrap();
        assert_eq!(s.histograms.len(), 1);
        let h = &s.histograms[0];
        assert_eq!((h.count, h.underflow), (9, 1));
        // Explicit bounds win; missing bounds derive from the log2 index.
        assert_eq!(
            h.buckets[0],
            HistogramBucket {
                log2: -1,
                lo: 0.5,
                hi: 1.0,
                count: 3
            }
        );
        assert_eq!(
            h.buckets[1],
            HistogramBucket {
                log2: 0,
                lo: 1.0,
                hi: 2.0,
                count: 5
            }
        );
    }

    #[test]
    fn rejects_foreign_documents() {
        assert!(Sidecar::parse("{not json").is_err());
        assert!(Sidecar::parse("{}").is_err());
        assert!(Sidecar::parse(r#"{"schema": "other/1"}"#).is_err());
    }
}
