//! `pvtm-trace tail` — follow a run's event journal.
//!
//! The producer ([`pvtm_telemetry::events`]) appends one JSON object per
//! line to `results/<id>.events.jsonl` while a figure runs, then rewrites
//! the file in canonical order at the end. This module parses either form
//! — live (arrival order, possibly mid-write) or finalized (sorted, with
//! a `run.end` footer) — and folds it into a progress snapshot: per-trace
//! chunk counts against the `mc.start` totals, a running estimate merged
//! from the `mc.chunk` moments, and corner/rescue/quarantine tallies.
//!
//! Run once without `--follow`, the strict parse doubles as the CI schema
//! validator: a journal that violates the `pvtm-events/1` contract
//! (wrong header, non-dense sequence numbers, unparsable body line) is
//! rejected with a diagnostic. The only tolerated defect is a torn final
//! line, which a kill mid-append legitimately produces.

use std::collections::BTreeMap;
use std::fmt;

use pvtm_telemetry::json::{self, Value};

/// Journal rejection: a schema-contract violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for JournalError {}

fn err(message: impl Into<String>) -> JournalError {
    JournalError {
        message: message.into(),
    }
}

/// A parsed event journal: the header identity plus the body events.
#[derive(Debug, Clone, PartialEq)]
pub struct Journal {
    /// Figure id from the `run.start` header.
    pub id: String,
    /// Producer mode string from the header.
    pub mode: String,
    /// Body events (everything between `run.start` and `run.end`).
    pub events: Vec<Value>,
    /// The `run.end` footer when the journal is finalized.
    pub end: Option<Value>,
    /// Whether a torn (unparsable, kill-truncated) final line was dropped.
    pub torn_tail: bool,
}

impl Journal {
    /// Parses journal text, validating the `pvtm-events/1` contract:
    /// line 0 is a `run.start` carrying the schema marker, every line is
    /// a JSON object, and sequence numbers are dense and ascending from
    /// zero. A torn final line (kill mid-append) is dropped, not fatal.
    ///
    /// # Errors
    ///
    /// Fails on an empty file, a bad header, an unparsable non-final
    /// line, or a sequence-number gap.
    pub fn parse(text: &str) -> Result<Journal, JournalError> {
        let lines: Vec<&str> = text.lines().collect();
        if lines.is_empty() {
            return Err(err("empty journal"));
        }
        let mut docs = Vec::with_capacity(lines.len());
        let mut torn_tail = false;
        for (i, l) in lines.iter().enumerate() {
            match json::parse(l) {
                Ok(doc) => docs.push(doc),
                Err(_) if i == lines.len() - 1 && i > 0 => torn_tail = true,
                Err(e) => return Err(err(format!("line {}: unparsable JSON: {e}", i + 1))),
            }
        }

        let header = &docs[0];
        if header.get("kind").and_then(Value::as_str) != Some("run.start") {
            return Err(err("line 1: journal must open with a run.start event"));
        }
        match header.get("schema").and_then(Value::as_str) {
            Some(SCHEMA) => {}
            other => {
                return Err(err(format!(
                    "line 1: schema {other:?}, expected {SCHEMA:?}"
                )))
            }
        }
        for (i, doc) in docs.iter().enumerate() {
            if doc.get("seq").and_then(Value::as_u64) != Some(i as u64) {
                return Err(err(format!(
                    "line {}: sequence numbers must be dense and ascending from 0",
                    i + 1
                )));
            }
            if doc.get("kind").and_then(Value::as_str).is_none() {
                return Err(err(format!("line {}: missing \"kind\"", i + 1)));
            }
        }

        let id = header
            .get("id")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string();
        let mode = header
            .get("mode")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string();
        let mut body = docs.split_off(1);
        let end = match body.last() {
            Some(doc) if doc.get("kind").and_then(Value::as_str) == Some("run.end") => body.pop(),
            _ => None,
        };
        Ok(Journal {
            id,
            mode,
            events: body,
            end,
            torn_tail,
        })
    }

    /// Whether the journal carries the `run.end` footer (canonical form).
    pub fn finalized(&self) -> bool {
        self.end.is_some()
    }
}

/// Journal schema this parser accepts (mirrors the producer's marker).
pub const SCHEMA: &str = "pvtm-events/1";

/// One trace's progress, folded from its `mc.start` / `mc.chunk` events.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProgress {
    /// Trace label.
    pub name: String,
    /// Chunks recorded so far.
    pub chunks_done: u64,
    /// Planned chunks from `mc.start` (0 when the start event is missing,
    /// e.g. a tail that attached after a canonical rewrite trimmed nothing
    /// — totals then read as unknown).
    pub chunks_total: u64,
    /// Samples recorded so far (sum of chunk `n`s).
    pub samples_done: u64,
    /// Planned samples from `mc.start`.
    pub samples_total: u64,
    /// Running estimate from the merged chunk moments.
    pub value: f64,
    /// Running standard error from the merged chunk moments.
    pub std_err: f64,
}

/// A progress snapshot folded from one journal.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Figure id.
    pub id: String,
    /// Whether the journal was finalized.
    pub finalized: bool,
    /// Whether a torn final line was dropped by the parser.
    pub torn_tail: bool,
    /// Body events seen.
    pub events: usize,
    /// Per-trace progress, name-sorted.
    pub traces: Vec<TraceProgress>,
    /// `figure.corner` events seen.
    pub corners: u64,
    /// ... of which were quarantined corners.
    pub corners_quarantined: u64,
    /// `mc.estimate` events seen.
    pub estimates: u64,
    /// `solver.rescue` events seen.
    pub rescue_attempts: u64,
    /// ... of which converged.
    pub rescue_hits: u64,
    /// `mc.quarantine` events seen.
    pub quarantined: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct Moments {
    n: f64,
    mean: f64,
    m2: f64,
}

impl Moments {
    /// Chan parallel merge — same combination the estimators use, so the
    /// tailed running estimate matches the sidecar's convergence trace.
    fn merge(self, other: Moments) -> Moments {
        // pvtm-lint: allow(no-float-eq) n is a whole-number sample count; 0.0 is the assigned empty sentinel
        if other.n == 0.0 {
            return self;
        }
        // pvtm-lint: allow(no-float-eq) n is a whole-number sample count; 0.0 is the assigned empty sentinel
        if self.n == 0.0 {
            return other;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        Moments {
            n,
            mean: self.mean + delta * other.n / n,
            m2: self.m2 + other.m2 + delta * delta * self.n * other.n / n,
        }
    }
}

/// Folds a journal into a progress snapshot.
pub fn snapshot(j: &Journal) -> Snapshot {
    #[derive(Default)]
    struct Acc {
        chunks_done: u64,
        chunks_total: u64,
        samples_total: u64,
        moments: Moments,
    }
    let mut traces: BTreeMap<String, Acc> = BTreeMap::new();
    let mut s = Snapshot {
        id: j.id.clone(),
        finalized: j.finalized(),
        torn_tail: j.torn_tail,
        events: j.events.len(),
        traces: Vec::new(),
        corners: 0,
        corners_quarantined: 0,
        estimates: 0,
        rescue_attempts: 0,
        rescue_hits: 0,
        quarantined: 0,
    };
    let f = |e: &Value, key: &str| e.get(key).and_then(Value::as_f64).unwrap_or(0.0);
    for e in &j.events {
        let trace_of = |e: &Value| {
            e.get("trace")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string()
        };
        match e.get("kind").and_then(Value::as_str) {
            Some("mc.start") => {
                let acc = traces.entry(trace_of(e)).or_default();
                acc.chunks_total += f(e, "chunks") as u64;
                acc.samples_total += f(e, "samples") as u64;
            }
            Some("mc.chunk") => {
                let acc = traces.entry(trace_of(e)).or_default();
                acc.chunks_done += 1;
                acc.moments = acc.moments.merge(Moments {
                    n: f(e, "n"),
                    mean: f(e, "mean"),
                    m2: f(e, "m2"),
                });
            }
            Some("figure.corner") => {
                s.corners += 1;
                if e.get("quarantined") == Some(&Value::Bool(true)) {
                    s.corners_quarantined += 1;
                }
            }
            Some("mc.estimate") => s.estimates += 1,
            Some("solver.rescue") => {
                s.rescue_attempts += 1;
                if e.get("hit") == Some(&Value::Bool(true)) {
                    s.rescue_hits += 1;
                }
            }
            Some("mc.quarantine") => s.quarantined += 1,
            _ => {} // forward compatibility: unknown kinds are ignored
        }
    }
    s.traces = traces
        .into_iter()
        .map(|(name, a)| {
            let std_err = if a.moments.n > 1.0 {
                (a.moments.m2 / (a.moments.n - 1.0) / a.moments.n).sqrt()
            } else {
                0.0
            };
            TraceProgress {
                name,
                chunks_done: a.chunks_done,
                chunks_total: a.chunks_total,
                samples_done: a.moments.n as u64,
                samples_total: a.samples_total,
                value: a.moments.mean,
                std_err,
            }
        })
        .collect();
    s
}

impl Snapshot {
    /// Work completed and planned, in chunks — the ETA numerator and
    /// denominator. The total reads 0 when no `mc.start` has landed yet.
    pub fn work(&self) -> (u64, u64) {
        let done = self.traces.iter().map(|t| t.chunks_done).sum();
        let total = self.traces.iter().map(|t| t.chunks_total).sum();
        (done, total)
    }

    /// The snapshot as a JSON value with alphabetically sorted keys —
    /// the `tail --json` machine-readable contract. `work_done` /
    /// `work_total` are denormalized in so scripted consumers do not
    /// have to re-sum the traces.
    pub fn to_value(&self) -> Value {
        let (work_done, work_total) = self.work();
        let traces = self
            .traces
            .iter()
            .map(|t| {
                json::obj(vec![
                    ("chunks_done", Value::Num(t.chunks_done as f64)),
                    ("chunks_total", Value::Num(t.chunks_total as f64)),
                    ("name", Value::Str(t.name.clone())),
                    ("samples_done", Value::Num(t.samples_done as f64)),
                    ("samples_total", Value::Num(t.samples_total as f64)),
                    ("std_err", Value::Num(t.std_err)),
                    ("value", Value::Num(t.value)),
                ])
            })
            .collect();
        json::obj(vec![
            ("corners", Value::Num(self.corners as f64)),
            (
                "corners_quarantined",
                Value::Num(self.corners_quarantined as f64),
            ),
            ("estimates", Value::Num(self.estimates as f64)),
            ("events", Value::Num(self.events as f64)),
            ("finalized", Value::Bool(self.finalized)),
            ("id", Value::Str(self.id.clone())),
            ("quarantined", Value::Num(self.quarantined as f64)),
            ("rescue_attempts", Value::Num(self.rescue_attempts as f64)),
            ("rescue_hits", Value::Num(self.rescue_hits as f64)),
            ("torn_tail", Value::Bool(self.torn_tail)),
            ("traces", Value::Arr(traces)),
            ("work_done", Value::Num(work_done as f64)),
            ("work_total", Value::Num(work_total as f64)),
        ])
    }

    /// Compact one-line JSON rendering of [`Snapshot::to_value`], with a
    /// trailing newline.
    pub fn to_json(&self) -> String {
        let mut out = self.to_value().to_json();
        out.push('\n');
        out
    }

    /// Renders the human-readable snapshot.
    pub fn render(&self) -> String {
        let mut out = format!(
            "run {} — {} ({} events{})\n",
            self.id,
            if self.finalized {
                "finalized"
            } else {
                "in flight"
            },
            self.events,
            if self.torn_tail {
                ", torn tail dropped"
            } else {
                ""
            },
        );
        for t in &self.traces {
            out.push_str(&format!(
                "  trace {}: {}/{} chunks, {}/{} samples",
                t.name, t.chunks_done, t.chunks_total, t.samples_done, t.samples_total
            ));
            if t.samples_done > 0 {
                out.push_str(&format!(", est {:.4e} ± {:.2e}", t.value, t.std_err));
            }
            out.push('\n');
        }
        if self.corners > 0 {
            out.push_str(&format!(
                "  corners: {} done ({} quarantined), {} estimates\n",
                self.corners, self.corners_quarantined, self.estimates
            ));
        }
        if self.rescue_attempts > 0 || self.quarantined > 0 {
            out.push_str(&format!(
                "  rescue: {}/{} hits/attempts, quarantined samples: {}\n",
                self.rescue_hits, self.rescue_attempts, self.quarantined
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal_text(finalize: bool) -> String {
        let mut t = String::from(concat!(
            r#"{"seq":0,"kind":"run.start","schema":"pvtm-events/1","id":"fig2a","mode":"full","clock":false}"#,
            "\n",
            r#"{"seq":1,"kind":"mc.start","trace":"fig2a.mc","samples":8192,"chunks":2}"#,
            "\n",
            r#"{"seq":2,"kind":"mc.chunk","trace":"fig2a.mc","chunk":0,"n":4096,"mean":0.25,"m2":768.0}"#,
            "\n",
            r#"{"seq":3,"kind":"mc.chunk","trace":"fig2a.mc","chunk":1,"n":4096,"mean":0.25,"m2":768.0}"#,
            "\n",
            r#"{"seq":4,"kind":"figure.corner","figure":"fig2a","corner":0,"quarantined":true}"#,
            "\n",
            r#"{"seq":5,"kind":"solver.rescue","stream":3,"rungs":1,"hit":true}"#,
            "\n",
            r#"{"seq":6,"kind":"mc.quarantine","stream":3,"corner":0.1,"reason":"clamp"}"#,
            "\n",
        ));
        if finalize {
            t.push_str(r#"{"seq":7,"kind":"run.end","id":"fig2a","events":6,"solves":10}"#);
            t.push('\n');
        }
        t
    }

    #[test]
    fn parses_live_and_finalized_journals() {
        let live = Journal::parse(&journal_text(false)).unwrap();
        assert_eq!(live.id, "fig2a");
        assert!(!live.finalized());
        assert_eq!(live.events.len(), 6);
        let done = Journal::parse(&journal_text(true)).unwrap();
        assert!(done.finalized());
        assert_eq!(done.events.len(), 6, "run.end is footer, not body");
    }

    #[test]
    fn tolerates_exactly_one_torn_final_line() {
        let mut t = journal_text(false);
        t.push_str(r#"{"seq":7,"kind":"mc.chu"#); // kill mid-append
        let j = Journal::parse(&t).unwrap();
        assert!(j.torn_tail);
        assert_eq!(j.events.len(), 6);
    }

    #[test]
    fn rejects_contract_violations() {
        assert!(Journal::parse("").is_err());
        assert!(Journal::parse("{\"seq\":0,\"kind\":\"other\"}\n").is_err());
        let wrong_schema =
            r#"{"seq":0,"kind":"run.start","schema":"pvtm-events/9","id":"x","mode":"full"}"#;
        assert!(Journal::parse(wrong_schema).is_err());
        let gap = format!(
            "{}\n{}\n",
            r#"{"seq":0,"kind":"run.start","schema":"pvtm-events/1","id":"x","mode":"full"}"#,
            r#"{"seq":5,"kind":"mc.start"}"#
        );
        let e = Journal::parse(&gap).unwrap_err();
        assert!(e.message.contains("dense"), "{e}");
        // A torn line anywhere but the tail is fatal.
        let mid = format!(
            "{}\n{}\n{}\n",
            r#"{"seq":0,"kind":"run.start","schema":"pvtm-events/1","id":"x","mode":"full"}"#,
            r#"{"seq":1,"kind":"mc.st"#,
            r#"{"seq":2,"kind":"mc.start"}"#
        );
        assert!(Journal::parse(&mid).is_err());
    }

    #[test]
    fn snapshot_folds_progress_and_merges_moments() {
        let j = Journal::parse(&journal_text(false)).unwrap();
        let s = snapshot(&j);
        assert_eq!(s.work(), (2, 2));
        let t = &s.traces[0];
        assert_eq!(t.name, "fig2a.mc");
        assert_eq!((t.samples_done, t.samples_total), (8192, 8192));
        assert!((t.value - 0.25).abs() < 1e-12);
        // Two identical-mean chunks: merged m2 = 1536, var = m2/(n-1).
        let expect = (1536.0f64 / 8191.0 / 8192.0).sqrt();
        assert!((t.std_err - expect).abs() < 1e-15);
        assert_eq!((s.corners, s.corners_quarantined), (1, 1));
        assert_eq!((s.rescue_attempts, s.rescue_hits), (1, 1));
        assert_eq!(s.quarantined, 1);
        let text = s.render();
        assert!(text.contains("in flight"), "{text}");
        assert!(text.contains("2/2 chunks"), "{text}");
        assert!(text.contains("1/1 hits/attempts"), "{text}");
    }

    #[test]
    fn json_snapshot_is_sorted_and_denormalizes_work() {
        let j = Journal::parse(&journal_text(false)).unwrap();
        let s = snapshot(&j);
        let v = s.to_value();
        let Value::Obj(members) = &v else {
            panic!("snapshot JSON must be an object");
        };
        let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "top-level keys must be alphabetical");
        assert_eq!(v.get("id").and_then(Value::as_str), Some("fig2a"));
        assert_eq!(v.get("finalized").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("work_done").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("work_total").and_then(Value::as_u64), Some(2));
        let text = s.to_json();
        assert!(text.ends_with('\n'));
        let reparsed = json::parse(text.trim_end()).expect("tail --json output reparses");
        assert_eq!(
            reparsed
                .get("traces")
                .map(|t| matches!(t, Value::Arr(a) if a.len() == 1)),
            Some(true)
        );
    }

    #[test]
    fn finalized_snapshot_reports_it() {
        let j = Journal::parse(&journal_text(true)).unwrap();
        let s = snapshot(&j);
        assert!(s.finalized);
        assert!(s.render().contains("finalized"));
    }
}
