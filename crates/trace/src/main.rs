//! `pvtm-trace` CLI — file I/O and exit codes over the library.
//!
//! ```text
//! pvtm-trace report <sidecar.json> [--folded] [--top N]
//! pvtm-trace diff   <old.json> <new.json> [--tolerance F]
//! pvtm-trace check  <budgets.json> <sidecar.json>... [--update-budgets]
//! ```
//!
//! Exit codes: 0 success, 1 gate failure (budget exceeded / work-counter
//! regression), 2 usage or I/O error.

use std::process::ExitCode;

use pvtm_trace::{check, diff, folded_stacks, hot_span_table, update_budgets, Budgets, Sidecar};

const USAGE: &str = "usage:
  pvtm-trace report <sidecar.json> [--folded] [--top N]
  pvtm-trace diff   <old.json> <new.json> [--tolerance F]
  pvtm-trace check  <budgets.json> <sidecar.json>... [--update-budgets]";

const EXIT_GATE: u8 = 1;
const EXIT_USAGE: u8 = 2;

fn usage(msg: &str) -> ExitCode {
    eprintln!("pvtm-trace: {msg}\n{USAGE}");
    ExitCode::from(EXIT_USAGE)
}

fn read_sidecar(path: &str) -> Result<Sidecar, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Sidecar::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage("missing subcommand");
    };
    match cmd.as_str() {
        "report" => cmd_report(&args[1..]),
        "diff" => cmd_diff(&args[1..]),
        "check" => cmd_check(&args[1..]),
        other => usage(&format!("unknown subcommand {other:?}")),
    }
}

fn cmd_report(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut folded = false;
    let mut top = 30usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--folded" => folded = true,
            "--top" => match it.next().map(|s| s.parse()) {
                Some(Ok(n)) => top = n,
                _ => return usage("--top needs an integer"),
            },
            _ if path.is_none() => path = Some(a.clone()),
            _ => return usage("report takes one sidecar"),
        }
    }
    let Some(path) = path else {
        return usage("report needs a sidecar path");
    };
    let sc = match read_sidecar(&path) {
        Ok(sc) => sc,
        Err(e) => return usage(&e),
    };
    if folded {
        print!("{}", folded_stacks(&sc));
    } else {
        print!("{}", hot_span_table(&sc, top));
    }
    ExitCode::SUCCESS
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut tolerance = 0.2f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => match it.next().map(|s| s.parse()) {
                Some(Ok(f)) => tolerance = f,
                _ => return usage("--tolerance needs a number"),
            },
            _ => paths.push(a.clone()),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        return usage("diff needs exactly two sidecars");
    };
    let (old, new) = match (read_sidecar(old_path), read_sidecar(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => return usage(&e),
    };
    let out = diff(&old, &new, tolerance);
    print!("{}", out.text);
    if out.failed() {
        eprintln!(
            "pvtm-trace diff: FAIL — {} work-counter regression(s)",
            out.regressions
        );
        ExitCode::from(EXIT_GATE)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let mut update = false;
    let mut paths = Vec::new();
    for a in args {
        if a == "--update-budgets" {
            update = true;
        } else {
            paths.push(a.clone());
        }
    }
    let [budget_path, sidecar_paths @ ..] = paths.as_slice() else {
        return usage("check needs a budgets file");
    };
    if sidecar_paths.is_empty() {
        return usage("check needs at least one sidecar");
    }
    // A missing budgets file is fine with --update-budgets (first ratchet).
    let budgets = match std::fs::read_to_string(budget_path) {
        Ok(text) => match Budgets::parse(&text) {
            Ok(b) => b,
            Err(e) => return usage(&format!("{budget_path}: {e}")),
        },
        Err(e) if update => {
            eprintln!("pvtm-trace check: starting fresh budgets ({budget_path}: {e})");
            Budgets::default()
        }
        Err(e) => return usage(&format!("cannot read {budget_path}: {e}")),
    };
    let mut sidecars = Vec::new();
    for p in sidecar_paths {
        match read_sidecar(p) {
            Ok(sc) => sidecars.push(sc),
            Err(e) => return usage(&e),
        }
    }

    if update {
        let next = update_budgets(&budgets, &sidecars);
        if let Err(e) = std::fs::write(budget_path, next.to_json_pretty()) {
            return usage(&format!("cannot write {budget_path}: {e}"));
        }
        println!(
            "pvtm-trace check: recorded budgets for {} figure(s) in {budget_path}",
            sidecars.len()
        );
        return ExitCode::SUCCESS;
    }

    let out = check(&budgets, &sidecars);
    print!("{}", out.text);
    if out.failed() {
        eprintln!("pvtm-trace check: FAIL — {} violation(s)", out.violations);
        ExitCode::from(EXIT_GATE)
    } else {
        println!(
            "pvtm-trace check: OK — {} figure(s) within budget{}",
            sidecars.len(),
            if out.slack_notes > 0 {
                " (slack available; see notes)"
            } else {
                ""
            }
        );
        ExitCode::SUCCESS
    }
}
