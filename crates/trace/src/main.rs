//! `pvtm-trace` CLI — file I/O and exit codes over the library.
//!
//! ```text
//! pvtm-trace report <sidecar.json> [--folded] [--top N]
//! pvtm-trace diff   <old.json> <new.json> [--tolerance F]
//! pvtm-trace check  <budgets.json> <sidecar.json>... [--update-budgets]
//! pvtm-trace health <budgets.json> <sidecar.json>... [--update-budgets]
//! pvtm-trace tail   <events.jsonl> [--json | --follow [--interval S]]
//! pvtm-trace top    <addr | events.jsonl> [--interval S] [--once] [--top N]
//! ```
//!
//! Exit codes: 0 success, 1 gate failure (budget exceeded / work-counter
//! regression / estimator-health violation), 2 usage or I/O error.

use std::process::ExitCode;

use pvtm_trace::{
    check, diff, fetch_live, folded_stacks, health_check, hot_span_table, parse_source,
    render_journal, render_live, snapshot, update_budgets, update_health_budgets, Budgets,
    HealthBudgets, Journal, Sidecar, Source,
};

const USAGE: &str = "usage:
  pvtm-trace report <sidecar.json> [--folded] [--top N]
  pvtm-trace diff   <old.json> <new.json> [--tolerance F]
  pvtm-trace check  <budgets.json> <sidecar.json>... [--update-budgets]
  pvtm-trace health <budgets.json> <sidecar.json>... [--update-budgets]
  pvtm-trace tail   <events.jsonl> [--json | --follow [--interval S]]
  pvtm-trace top    <addr | events.jsonl> [--interval S] [--once] [--top N]";

const EXIT_GATE: u8 = 1;
const EXIT_USAGE: u8 = 2;

fn usage(msg: &str) -> ExitCode {
    eprintln!("pvtm-trace: {msg}\n{USAGE}");
    ExitCode::from(EXIT_USAGE)
}

fn read_sidecar(path: &str) -> Result<Sidecar, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Sidecar::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage("missing subcommand");
    };
    match cmd.as_str() {
        "report" => cmd_report(&args[1..]),
        "diff" => cmd_diff(&args[1..]),
        "check" => cmd_check(&args[1..]),
        "health" => cmd_health(&args[1..]),
        "tail" => cmd_tail(&args[1..]),
        "top" => cmd_top(&args[1..]),
        other => usage(&format!("unknown subcommand {other:?}")),
    }
}

fn cmd_report(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut folded = false;
    let mut top = 30usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--folded" => folded = true,
            "--top" => match it.next().map(|s| s.parse()) {
                Some(Ok(n)) => top = n,
                _ => return usage("--top needs an integer"),
            },
            _ if path.is_none() => path = Some(a.clone()),
            _ => return usage("report takes one sidecar"),
        }
    }
    let Some(path) = path else {
        return usage("report needs a sidecar path");
    };
    let sc = match read_sidecar(&path) {
        Ok(sc) => sc,
        Err(e) => return usage(&e),
    };
    if folded {
        print!("{}", folded_stacks(&sc));
    } else {
        print!("{}", hot_span_table(&sc, top));
    }
    ExitCode::SUCCESS
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut tolerance = 0.2f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => match it.next().map(|s| s.parse()) {
                Some(Ok(f)) => tolerance = f,
                _ => return usage("--tolerance needs a number"),
            },
            _ => paths.push(a.clone()),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        return usage("diff needs exactly two sidecars");
    };
    let (old, new) = match (read_sidecar(old_path), read_sidecar(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => return usage(&e),
    };
    let out = diff(&old, &new, tolerance);
    print!("{}", out.text);
    if out.failed() {
        eprintln!(
            "pvtm-trace diff: FAIL — {} work-counter regression(s)",
            out.regressions
        );
        ExitCode::from(EXIT_GATE)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let mut update = false;
    let mut paths = Vec::new();
    for a in args {
        if a == "--update-budgets" {
            update = true;
        } else {
            paths.push(a.clone());
        }
    }
    let [budget_path, sidecar_paths @ ..] = paths.as_slice() else {
        return usage("check needs a budgets file");
    };
    if sidecar_paths.is_empty() {
        return usage("check needs at least one sidecar");
    }
    // A missing budgets file is fine with --update-budgets (first ratchet).
    let budgets = match std::fs::read_to_string(budget_path) {
        Ok(text) => match Budgets::parse(&text) {
            Ok(b) => b,
            Err(e) => return usage(&format!("{budget_path}: {e}")),
        },
        Err(e) if update => {
            eprintln!("pvtm-trace check: starting fresh budgets ({budget_path}: {e})");
            Budgets::default()
        }
        Err(e) => return usage(&format!("cannot read {budget_path}: {e}")),
    };
    let mut sidecars = Vec::new();
    for p in sidecar_paths {
        match read_sidecar(p) {
            Ok(sc) => sidecars.push(sc),
            Err(e) => return usage(&e),
        }
    }

    if update {
        let next = update_budgets(&budgets, &sidecars);
        if let Err(e) = std::fs::write(budget_path, next.to_json_pretty()) {
            return usage(&format!("cannot write {budget_path}: {e}"));
        }
        println!(
            "pvtm-trace check: recorded budgets for {} figure(s) in {budget_path}",
            sidecars.len()
        );
        return ExitCode::SUCCESS;
    }

    let out = check(&budgets, &sidecars);
    print!("{}", out.text);
    if out.failed() {
        eprintln!("pvtm-trace check: FAIL — {} violation(s)", out.violations);
        ExitCode::from(EXIT_GATE)
    } else {
        println!(
            "pvtm-trace check: OK — {} figure(s) within budget{}",
            sidecars.len(),
            if out.slack_notes > 0 {
                " (slack available; see notes)"
            } else {
                ""
            }
        );
        ExitCode::SUCCESS
    }
}

fn cmd_health(args: &[String]) -> ExitCode {
    let mut update = false;
    let mut paths = Vec::new();
    for a in args {
        if a == "--update-budgets" {
            update = true;
        } else {
            paths.push(a.clone());
        }
    }
    let [budget_path, sidecar_paths @ ..] = paths.as_slice() else {
        return usage("health needs a budgets file");
    };
    if sidecar_paths.is_empty() {
        return usage("health needs at least one sidecar");
    }
    let budgets = match std::fs::read_to_string(budget_path) {
        Ok(text) => match HealthBudgets::parse(&text) {
            Ok(b) => b,
            Err(e) => return usage(&format!("{budget_path}: {e}")),
        },
        Err(e) if update => {
            eprintln!("pvtm-trace health: starting fresh budgets ({budget_path}: {e})");
            HealthBudgets::default()
        }
        Err(e) => return usage(&format!("cannot read {budget_path}: {e}")),
    };
    let mut sidecars = Vec::new();
    for p in sidecar_paths {
        match read_sidecar(p) {
            Ok(sc) => sidecars.push(sc),
            Err(e) => return usage(&e),
        }
    }

    if update {
        let next = update_health_budgets(&budgets, &sidecars);
        if let Err(e) = std::fs::write(budget_path, next.to_json_pretty()) {
            return usage(&format!("cannot write {budget_path}: {e}"));
        }
        println!(
            "pvtm-trace health: recorded thresholds for {} figure(s) in {budget_path}",
            sidecars.len()
        );
        return ExitCode::SUCCESS;
    }

    let out = health_check(&budgets, &sidecars);
    print!("{}", out.text);
    if out.failed() {
        eprintln!("pvtm-trace health: FAIL — {} violation(s)", out.violations);
        ExitCode::from(EXIT_GATE)
    } else {
        println!(
            "pvtm-trace health: OK — {} figure(s) within confidence thresholds",
            sidecars.len()
        );
        ExitCode::SUCCESS
    }
}

fn cmd_tail(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut follow = false;
    let mut json_out = false;
    let mut interval = 2.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--follow" => follow = true,
            "--json" => json_out = true,
            "--interval" => match it.next().map(|s| s.parse()) {
                Some(Ok(s)) if s > 0.0 => interval = s,
                _ => return usage("--interval needs a positive number of seconds"),
            },
            _ if path.is_none() => path = Some(a.clone()),
            _ => return usage("tail takes one journal"),
        }
    }
    if json_out && follow {
        return usage("--json is one-shot; it cannot be combined with --follow");
    }
    let Some(path) = path else {
        return usage("tail needs an events.jsonl path");
    };

    let read = |strict: bool| -> Result<pvtm_trace::Snapshot, String> {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        match Journal::parse(&text) {
            Ok(j) => Ok(snapshot(&j)),
            // While following, a mid-rewrite read can be transiently
            // malformed; report it and try again next tick.
            Err(e) if !strict => Err(format!("{path}: {e} (retrying)")),
            Err(e) => Err(format!("{path}: {e}")),
        }
    };

    if !follow {
        // One-shot mode is also the CI schema validator: a contract
        // violation is a gate failure, not a usage error.
        return match read(true) {
            Ok(s) => {
                if json_out {
                    print!("{}", s.to_json());
                } else {
                    print!("{}", s.render());
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("pvtm-trace tail: FAIL — {e}");
                ExitCode::from(EXIT_GATE)
            }
        };
    }

    // The telemetry stopwatch honours PVTM_TELEMETRY_CLOCK=off by reading
    // 0.0, which simply suppresses the (inherently wall-clock) ETA line.
    let watch = pvtm_telemetry::clock::Stopwatch::started();
    let mut last: Option<String> = None;
    loop {
        match read(false) {
            Ok(s) => {
                let mut text = s.render();
                let (done, total) = s.work();
                let elapsed = watch.elapsed_secs();
                if !s.finalized && done > 0 && total > done && elapsed > 0.0 {
                    // Work-based ETA: chunks are equal-sized by
                    // construction, so elapsed/done extrapolates.
                    let eta = elapsed * (total - done) as f64 / done as f64;
                    text.push_str(&format!("  eta: ~{eta:.0} s\n"));
                }
                if last.as_deref() != Some(text.as_str()) {
                    print!("{text}");
                    last = Some(text);
                }
                if s.finalized {
                    return ExitCode::SUCCESS;
                }
            }
            Err(e) => eprintln!("pvtm-trace tail: {e}"),
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(interval));
    }
}

fn cmd_top(args: &[String]) -> ExitCode {
    let mut target = None;
    let mut interval = 2.0f64;
    let mut once = false;
    let mut top = 10usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--once" => once = true,
            "--interval" => match it.next().map(|s| s.parse()) {
                Some(Ok(s)) if s > 0.0 => interval = s,
                _ => return usage("--interval needs a positive number of seconds"),
            },
            "--top" => match it.next().map(|s| s.parse()) {
                Some(Ok(n)) => top = n,
                _ => return usage("--top needs an integer"),
            },
            _ if target.is_none() => target = Some(a.clone()),
            _ => return usage("top takes one metrics address or journal"),
        }
    }
    let Some(target) = target else {
        return usage("top needs a metrics address or an events.jsonl path");
    };
    let source = parse_source(&target);

    // Journal-mode ETA falls back to a local stopwatch (a journal carries
    // no elapsed time); live frames bring their own `elapsed_secs`.
    let watch = pvtm_telemetry::clock::Stopwatch::started();
    let mut frames = 0u64;
    loop {
        // (rendered dashboard, run finished) per tick.
        let outcome: Result<(String, bool), String> = match &source {
            Source::Addr(addr) => fetch_live(*addr).map(|f| (render_live(&f, top), false)),
            Source::Journal(path) => std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))
                .and_then(|text| Journal::parse(&text).map_err(|e| format!("{path}: {e}")))
                .map(|j| {
                    let s = snapshot(&j);
                    let finalized = s.finalized;
                    (render_journal(&s, watch.elapsed_secs()), finalized)
                }),
        };
        match outcome {
            Ok((text, finished)) => {
                frames += 1;
                if once {
                    // One validated frame: this is the CI schema check.
                    print!("{text}");
                    return ExitCode::SUCCESS;
                }
                print!("\x1b[2J\x1b[H{text}");
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
                if finished {
                    return ExitCode::SUCCESS;
                }
            }
            Err(e) => {
                if once {
                    eprintln!("pvtm-trace top: FAIL — {e}");
                    return ExitCode::from(EXIT_GATE);
                }
                if frames > 0 && matches!(source, Source::Addr(_)) {
                    // The endpoint served frames and then went away: the
                    // run finalized and shut its server down. Clean exit.
                    println!("pvtm-trace top: run finished ({e})");
                    return ExitCode::SUCCESS;
                }
                eprintln!("pvtm-trace top: {e} (retrying)");
            }
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(interval));
    }
}
