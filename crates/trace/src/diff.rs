//! `pvtm-trace diff` — compare two sidecars of the same figure.
//!
//! Two very different kinds of signal come out of a sidecar, and the diff
//! treats them accordingly:
//!
//! - **Work counters** (solves, Newton iterations, LU factorizations,
//!   named event counters) are deterministic with a fixed seed, so any
//!   change is a real algorithmic change — reported exactly, and an
//!   *increase* fails the diff.
//! - **Wall-clock** is noisy on shared machines, so span-time changes are
//!   advisory: flagged only beyond a relative tolerance, never fatal.

use std::collections::BTreeSet;

use crate::sidecar::Sidecar;

/// Result of diffing two sidecars.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffOutcome {
    /// Human-readable diff, one finding per line.
    pub text: String,
    /// Work-counter deltas found (exact; any entry means the runs did
    /// different work).
    pub counter_changes: usize,
    /// Work-counter *increases* — the regressions that fail the diff.
    pub regressions: usize,
    /// Advisory wall-clock findings beyond the tolerance.
    pub time_flags: usize,
}

impl DiffOutcome {
    /// Whether the diff should fail a gate (some work counter increased).
    pub fn failed(&self) -> bool {
        self.regressions > 0
    }
}

fn fmt_delta(out: &mut DiffOutcome, name: &str, old: u64, new: u64) {
    if new == old {
        return;
    }
    out.counter_changes += 1;
    if new > old {
        out.regressions += 1;
        out.text.push_str(&format!(
            "  REGRESSION {name}: {old} -> {new} (+{})\n",
            new - old
        ));
    } else {
        out.text.push_str(&format!(
            "  improvement {name}: {old} -> {new} (-{})\n",
            old - new
        ));
    }
}

/// Diffs `old` against `new` with the given relative wall-clock
/// tolerance (e.g. `0.2` flags spans that got ≥20 % slower).
pub fn diff(old: &Sidecar, new: &Sidecar, time_tolerance: f64) -> DiffOutcome {
    let mut out = DiffOutcome {
        text: String::new(),
        counter_changes: 0,
        regressions: 0,
        time_flags: 0,
    };
    out.text
        .push_str(&format!("diff {} (old) vs {} (new)\n", old.id, new.id));
    if old.schema_version != new.schema_version {
        out.text.push_str(&format!(
            "  note: schema v{} vs v{} — attribution fields may default on the older side\n",
            old.schema_version, new.schema_version
        ));
    }

    out.text.push_str("work counters (exact):\n");
    let solver_keys: BTreeSet<&String> = old.solver.keys().chain(new.solver.keys()).collect();
    for k in solver_keys {
        fmt_delta(
            &mut out,
            &format!("solver.{k}"),
            old.solver_counter(k),
            new.solver_counter(k),
        );
    }
    let counter_keys: BTreeSet<&String> = old.counters.keys().chain(new.counters.keys()).collect();
    for k in counter_keys {
        fmt_delta(
            &mut out,
            &format!("counter.{k}"),
            old.counters.get(k).copied().unwrap_or(0),
            new.counters.get(k).copied().unwrap_or(0),
        );
    }
    // Per-span solver attribution: where the extra work landed.
    let span_paths: BTreeSet<&String> = old
        .spans
        .iter()
        .map(|s| &s.path)
        .chain(new.spans.iter().map(|s| &s.path))
        .collect();
    for path in &span_paths {
        let o = old.spans.iter().find(|s| &&s.path == path);
        let n = new.spans.iter().find(|s| &&s.path == path);
        let get = |s: Option<&&crate::sidecar::Span>, f: fn(&crate::sidecar::Span) -> u64| {
            s.map(|s| f(s)).unwrap_or(0)
        };
        fmt_delta(
            &mut out,
            &format!("span[{path}].newton_iterations"),
            get(o.as_ref(), |s| s.newton_iterations),
            get(n.as_ref(), |s| s.newton_iterations),
        );
        fmt_delta(
            &mut out,
            &format!("span[{path}].solves"),
            get(o.as_ref(), |s| s.solves),
            get(n.as_ref(), |s| s.solves),
        );
    }
    if out.counter_changes == 0 {
        out.text.push_str("  (identical)\n");
    }

    out.text.push_str(&format!(
        "wall-clock (advisory, ±{:.0}% tolerance):\n",
        100.0 * time_tolerance
    ));
    if !old.clock || !new.clock {
        out.text
            .push_str("  (skipped — at least one run had the clock gated off)\n");
        return out;
    }
    let mut flagged = false;
    for path in &span_paths {
        let o_ns = old
            .spans
            .iter()
            .find(|s| &&s.path == path)
            .map(|s| s.total_ns)
            .unwrap_or(0);
        let n_ns = new
            .spans
            .iter()
            .find(|s| &&s.path == path)
            .map(|s| s.total_ns)
            .unwrap_or(0);
        if o_ns == 0 {
            continue;
        }
        let ratio = n_ns as f64 / o_ns as f64;
        if ratio > 1.0 + time_tolerance || ratio < 1.0 - time_tolerance {
            flagged = true;
            out.time_flags += 1;
            let dir = if ratio > 1.0 { "slower" } else { "faster" };
            out.text.push_str(&format!(
                "  span[{path}]: {:.3} ms -> {:.3} ms ({:+.0}% {dir})\n",
                o_ns as f64 / 1e6,
                n_ns as f64 / 1e6,
                100.0 * (ratio - 1.0),
            ));
        }
    }
    if !flagged {
        out.text.push_str("  (within tolerance)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sidecar::Span;
    use std::collections::BTreeMap;

    fn base() -> Sidecar {
        Sidecar {
            id: "fig".into(),
            mode: "full".into(),
            clock: true,
            schema_version: 2,
            solver: BTreeMap::from([("solves".to_string(), 100), ("cold_solves".to_string(), 4)]),
            counters: BTreeMap::from([("mc.samples".to_string(), 4096)]),
            gauges: BTreeMap::new(),
            histograms: Vec::new(),
            spans: vec![Span {
                path: "fig".into(),
                count: 1,
                total_ns: 1_000_000,
                self_ns: 1_000_000,
                solves: 100,
                newton_iterations: 300,
                lu_factorizations: 300,
                cold_solves: 4,
                rescue_attempts: 0,
                rescue_hits: 0,
            }],
            traces: Vec::new(),
        }
    }

    #[test]
    fn identical_runs_pass() {
        let a = base();
        let out = diff(&a, &a, 0.2);
        assert!(!out.failed());
        assert_eq!(out.counter_changes, 0);
        assert!(out.text.contains("(identical)"));
        assert!(out.text.contains("(within tolerance)"));
    }

    #[test]
    fn counter_increase_is_a_regression() {
        let a = base();
        let mut b = base();
        b.solver.insert("solves".into(), 120);
        let out = diff(&a, &b, 0.2);
        assert!(out.failed());
        assert!(out.text.contains("REGRESSION solver.solves: 100 -> 120"));
    }

    #[test]
    fn counter_decrease_is_an_improvement_not_a_failure() {
        let a = base();
        let mut b = base();
        b.solver.insert("cold_solves".into(), 1);
        let out = diff(&a, &b, 0.2);
        assert!(!out.failed());
        assert_eq!(out.counter_changes, 1);
        assert!(out.text.contains("improvement solver.cold_solves"));
    }

    #[test]
    fn slow_span_is_advisory_only() {
        let a = base();
        let mut b = base();
        b.spans[0].total_ns = 2_000_000;
        let out = diff(&a, &b, 0.2);
        assert!(!out.failed(), "wall-clock never fails the diff");
        assert_eq!(out.time_flags, 1);
        assert!(out.text.contains("slower"));
    }

    #[test]
    fn clock_off_skips_wall_clock_section() {
        let mut a = base();
        a.clock = false;
        let out = diff(&a, &a, 0.2);
        assert!(out.text.contains("clock gated off"));
        assert_eq!(out.time_flags, 0);
    }
}
