//! DC operating-point solver: damped Newton–Raphson with Gmin continuation
//! and source-stepping fallback.

use crate::linalg::Matrix;
use crate::netlist::{CircuitError, Element, Netlist, NodeId};
use pvtm_device::Bias;

/// Options controlling the Newton iteration.
#[derive(Debug, Clone)]
pub struct DcOptions {
    /// Maximum Newton iterations per continuation stage.
    pub max_iterations: usize,
    /// KCL residual tolerance \[A\].
    pub current_tol: f64,
    /// Largest node-voltage update applied per iteration \[V\] (damping).
    pub max_step: f64,
    /// Starting Gmin for the continuation \[S\].
    pub gmin_start: f64,
    /// Final (residual) Gmin left in place \[S\]; keeps floating nodes pinned.
    pub gmin_final: f64,
    /// Initial node-voltage guesses; unspecified nodes start at 0 V.
    pub initial: Vec<(NodeId, f64)>,
}

impl Default for DcOptions {
    fn default() -> Self {
        Self {
            max_iterations: 120,
            current_tol: 1e-10,
            max_step: 0.3,
            gmin_start: 1e-3,
            gmin_final: 1e-12,
            initial: Vec::new(),
        }
    }
}

impl DcOptions {
    /// Adds an initial guess for one node.
    pub fn guess(mut self, node: NodeId, volts: f64) -> Self {
        self.initial.push((node, volts));
        self
    }
}

/// A converged DC operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    pub(crate) state: Vec<f64>,
    pub(crate) num_free_nodes: usize,
    branch_names: Vec<String>,
}

impl DcSolution {
    /// Voltage of a node \[V\]. Ground reads 0.
    pub fn voltage(&self, node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.state[node.index() - 1]
        }
    }

    /// Branch current of a named voltage source \[A\], positive when the
    /// source delivers current out of its positive terminal.
    pub fn branch_current(&self, source_name: &str) -> Option<f64> {
        self.branch_names
            .iter()
            .position(|n| n == source_name)
            .map(|i| self.state[self.num_free_nodes + i])
    }

    /// Full solver state (node voltages then branch currents), usable as a
    /// warm start for [`solve_from`] or a transient initial condition.
    pub fn state(&self) -> &[f64] {
        &self.state
    }
}

/// Shared equation assembler for DC and transient analyses.
pub(crate) struct System<'a> {
    netlist: &'a Netlist,
    pub(crate) num_free_nodes: usize,
    pub(crate) num_unknowns: usize,
    vsource_rows: Vec<usize>,
}

/// Backward-Euler companion data for transient steps.
pub(crate) struct Companion<'a> {
    /// Time step \[s\].
    pub dt: f64,
    /// Solver state at the previous time point.
    pub prev: &'a [f64],
}

impl<'a> System<'a> {
    pub(crate) fn new(netlist: &'a Netlist) -> Self {
        let num_free_nodes = netlist.num_nodes() - 1;
        let num_vsources = netlist
            .elements()
            .iter()
            .filter(|(_, e)| matches!(e, Element::Vsource { .. }))
            .count();
        let mut vsource_rows = Vec::with_capacity(num_vsources);
        let mut row = num_free_nodes;
        for (_, e) in netlist.elements() {
            if matches!(e, Element::Vsource { .. }) {
                vsource_rows.push(row);
                row += 1;
            }
        }
        Self {
            netlist,
            num_free_nodes,
            num_unknowns: num_free_nodes + num_vsources,
            vsource_rows,
        }
    }

    pub(crate) fn branch_names(&self) -> Vec<String> {
        self.netlist
            .elements()
            .iter()
            .filter(|(_, e)| matches!(e, Element::Vsource { .. }))
            .map(|(n, _)| n.clone())
            .collect()
    }

    #[inline]
    fn v(&self, x: &[f64], node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            x[node.index() - 1]
        }
    }

    /// Adds `current` flowing *into* `node` to the residual.
    #[inline]
    fn kcl(res: &mut [f64], node: NodeId, current: f64) {
        if !node.is_ground() {
            res[node.index() - 1] += current;
        }
    }

    #[inline]
    fn jac_add(jac: &mut Matrix, row_node: NodeId, col: usize, v: f64) {
        if !row_node.is_ground() {
            jac.add(row_node.index() - 1, col, v);
        }
    }

    /// Assembles the residual `f(x)` and Jacobian `df/dx` at state `x`.
    ///
    /// `gmin` adds a conductance from every free node to ground. When
    /// `companion` is provided, capacitors are stamped with their
    /// backward-Euler companion model; otherwise they are open circuits.
    pub(crate) fn assemble(
        &self,
        x: &[f64],
        gmin: f64,
        companion: Option<&Companion<'_>>,
        jac: &mut Matrix,
        res: &mut [f64],
    ) {
        debug_assert_eq!(x.len(), self.num_unknowns);
        jac.clear();
        res.fill(0.0);
        let temp = self.netlist.temperature();

        // Gmin to ground on every free node.
        for i in 0..self.num_free_nodes {
            res[i] += -gmin * x[i];
            jac.add(i, i, -gmin);
        }

        let mut vsrc_idx = 0usize;
        for (_, el) in self.netlist.elements() {
            match el {
                Element::Resistor { a, b, ohms } => {
                    let g = 1.0 / ohms;
                    let i_ab = (self.v(x, *a) - self.v(x, *b)) * g;
                    Self::kcl(res, *a, -i_ab);
                    Self::kcl(res, *b, i_ab);
                    self.stamp_conductance(jac, *a, *b, g);
                }
                Element::Capacitor { a, b, farads } => {
                    if let Some(c) = companion {
                        // i = C/dt · (v_ab - v_ab_prev), flowing a → b.
                        let g = farads / c.dt;
                        let vab = self.v(x, *a) - self.v(x, *b);
                        let vab_prev = self.v(c.prev, *a) - self.v(c.prev, *b);
                        let i_ab = g * (vab - vab_prev);
                        Self::kcl(res, *a, -i_ab);
                        Self::kcl(res, *b, i_ab);
                        self.stamp_conductance(jac, *a, *b, g);
                    }
                }
                Element::Vsource { pos, neg, volts } => {
                    let row = self.vsource_rows[vsrc_idx];
                    let i_branch = x[row];
                    vsrc_idx += 1;
                    // The source delivers i_branch into `pos`.
                    Self::kcl(res, *pos, i_branch);
                    Self::kcl(res, *neg, -i_branch);
                    Self::jac_add(jac, *pos, row, 1.0);
                    Self::jac_add(jac, *neg, row, -1.0);
                    // Constraint: v(pos) - v(neg) - V = 0.
                    res[row] = self.v(x, *pos) - self.v(x, *neg) - volts;
                    if !pos.is_ground() {
                        jac.add(row, pos.index() - 1, 1.0);
                    }
                    if !neg.is_ground() {
                        jac.add(row, neg.index() - 1, -1.0);
                    }
                }
                Element::Isource { from, to, amps } => {
                    Self::kcl(res, *from, -amps);
                    Self::kcl(res, *to, *amps);
                }
                Element::Mosfet { d, g, s, b, device } => {
                    let bias = Bias::new(
                        self.v(x, *g),
                        self.v(x, *d),
                        self.v(x, *s),
                        self.v(x, *b),
                    );
                    let id = device.ids(bias, temp);
                    // The channel draws `id` out of the drain node and
                    // returns it at the source node.
                    Self::kcl(res, *d, -id);
                    Self::kcl(res, *s, id);

                    // Numeric partial derivatives wrt each terminal.
                    const DV: f64 = 1e-6;
                    let terminals = [(*g, 0), (*d, 1), (*s, 2), (*b, 3)];
                    for (node, which) in terminals {
                        if node.is_ground() {
                            continue;
                        }
                        let mut pb = bias;
                        match which {
                            0 => pb.vg += DV,
                            1 => pb.vd += DV,
                            2 => pb.vs += DV,
                            _ => pb.vb += DV,
                        }
                        let did = (device.ids(pb, temp) - id) / DV;
                        let col = node.index() - 1;
                        Self::jac_add(jac, *d, col, -did);
                        Self::jac_add(jac, *s, col, did);
                    }
                }
            }
        }
    }

    /// Stamps a linear conductance between `a` and `b` into the Jacobian
    /// (contribution of current flowing a → b to the KCL rows).
    fn stamp_conductance(&self, jac: &mut Matrix, a: NodeId, b: NodeId, g: f64) {
        if !a.is_ground() {
            let ia = a.index() - 1;
            jac.add(ia, ia, -g);
            if !b.is_ground() {
                jac.add(ia, b.index() - 1, g);
            }
        }
        if !b.is_ground() {
            let ib = b.index() - 1;
            jac.add(ib, ib, -g);
            if !a.is_ground() {
                jac.add(ib, a.index() - 1, g);
            }
        }
    }

    /// Infinity norm of the KCL rows of the residual (the convergence
    /// metric; constraint rows are driven to machine precision anyway).
    pub(crate) fn kcl_norm(&self, res: &[f64]) -> f64 {
        res.iter().fold(0.0f64, |m, r| m.max(r.abs()))
    }

    /// Runs damped Newton at a fixed Gmin from the given state.
    ///
    /// Returns the residual norm achieved; the state is updated in place.
    pub(crate) fn newton(
        &self,
        x: &mut [f64],
        gmin: f64,
        companion: Option<&Companion<'_>>,
        opts: &DcOptions,
    ) -> Result<f64, CircuitError> {
        let n = self.num_unknowns;
        let mut jac = Matrix::zeros(n);
        let mut res = vec![0.0; n];
        let mut rhs = vec![0.0; n];

        self.assemble(x, gmin, companion, &mut jac, &mut res);
        let mut norm = self.kcl_norm(&res);

        for iter in 0..opts.max_iterations {
            if norm < opts.current_tol {
                return Ok(norm);
            }
            // Solve J Δx = -f.
            for i in 0..n {
                rhs[i] = -res[i];
            }
            jac.solve_in_place(&mut rhs)
                .map_err(|e| CircuitError::SingularMatrix { column: e.column })?;

            // Damp node-voltage updates.
            let mut scale = 1.0f64;
            for (i, dv) in rhs.iter().enumerate().take(self.num_free_nodes) {
                if dv.abs() * scale > opts.max_step {
                    scale = opts.max_step / dv.abs();
                }
                let _ = i;
            }

            // Line search: halve the step until the residual improves (or
            // accept the last halving).
            let mut step = scale;
            let mut accepted = false;
            let x_old: Vec<f64> = x.to_vec();
            for _ in 0..8 {
                for i in 0..n {
                    x[i] = x_old[i] + step * rhs[i];
                }
                // Keep node voltages in a physical window.
                for xi in x.iter_mut().take(self.num_free_nodes) {
                    *xi = xi.clamp(-10.0, 10.0);
                }
                self.assemble(x, gmin, companion, &mut jac, &mut res);
                let new_norm = self.kcl_norm(&res);
                if new_norm < norm || new_norm < opts.current_tol {
                    norm = new_norm;
                    accepted = true;
                    break;
                }
                step *= 0.5;
            }
            if !accepted {
                // Accept the smallest step anyway; Newton often recovers.
                norm = self.kcl_norm(&res);
            }
            let _ = iter;
        }
        if norm < opts.current_tol {
            Ok(norm)
        } else {
            Err(CircuitError::NoConvergence {
                residual: norm,
                iterations: opts.max_iterations,
            })
        }
    }
}

/// Solves the DC operating point of a netlist.
///
/// Strategy: Gmin continuation from `gmin_start` down to `gmin_final`
/// (factor-100 steps), warm-starting each stage. If that fails, a source
/// ramp (25 % → 100 % of every voltage source) is attempted on top.
///
/// # Errors
///
/// [`CircuitError::EmptyCircuit`] for a netlist with no unknowns;
/// [`CircuitError::NoConvergence`] / [`CircuitError::SingularMatrix`] when
/// both strategies fail.
pub fn solve(netlist: &Netlist, opts: &DcOptions) -> Result<DcSolution, CircuitError> {
    let sys = System::new(netlist);
    if sys.num_unknowns == 0 {
        return Err(CircuitError::EmptyCircuit);
    }
    let mut x = initial_state(&sys, opts);

    if gmin_continuation(&sys, &mut x, opts).is_err() {
        // Heavily damped retry: small steps ride out fold regions where
        // full Newton oscillates (e.g. a cell losing bistability).
        let damped = DcOptions {
            max_step: 0.05,
            max_iterations: 400,
            ..opts.clone()
        };
        x = initial_state(&sys, opts);
        if gmin_continuation(&sys, &mut x, &damped).is_err() {
            // Source-stepping fallback.
            x = initial_state(&sys, opts);
            source_ramp(netlist, &sys, &mut x, &damped)?;
        }
    }

    Ok(DcSolution {
        state: x,
        num_free_nodes: sys.num_free_nodes,
        branch_names: sys.branch_names(),
    })
}

/// Solves starting from a previous solution's state (warm start).
///
/// # Errors
///
/// Same failure modes as [`solve`].
///
/// # Panics
///
/// Panics if `state` has the wrong length for this netlist.
pub fn solve_from(
    netlist: &Netlist,
    opts: &DcOptions,
    state: &[f64],
) -> Result<DcSolution, CircuitError> {
    let sys = System::new(netlist);
    assert_eq!(state.len(), sys.num_unknowns, "warm-start state length");
    let mut x = state.to_vec();
    match sys.newton(&mut x, opts.gmin_final, None, opts) {
        Ok(_) => Ok(DcSolution {
            state: x,
            num_free_nodes: sys.num_free_nodes,
            branch_names: sys.branch_names(),
        }),
        // Warm start failed: fall back to the full strategy.
        Err(_) => solve(netlist, opts),
    }
}

/// Sweeps a named voltage source over `values`, warm-starting each point.
///
/// # Errors
///
/// Fails on the first value whose operating point cannot be found, or if
/// the source name is unknown.
pub fn sweep_vsource(
    netlist: &mut Netlist,
    source: &str,
    values: &[f64],
    opts: &DcOptions,
) -> Result<Vec<DcSolution>, CircuitError> {
    let mut out = Vec::with_capacity(values.len());
    let mut prev_state: Option<Vec<f64>> = None;
    for &v in values {
        netlist.set_vsource(source, v)?;
        let sol = match &prev_state {
            Some(s) => solve_from(netlist, opts, s)?,
            None => solve(netlist, opts)?,
        };
        prev_state = Some(sol.state.clone());
        out.push(sol);
    }
    Ok(out)
}

/// Per-element currents at a converged operating point \[A\] — the
/// operating-point report of a classic SPICE `.op` card.
///
/// Conventions: resistors report the current flowing `a → b`; voltage
/// sources report their branch current (positive = delivering out of the
/// positive terminal); current sources report their programmed value;
/// MOSFETs report the drain current; capacitors carry no DC current.
pub fn operating_point(netlist: &Netlist, sol: &DcSolution) -> Vec<(String, f64)> {
    let v = |n: NodeId| sol.voltage(n);
    netlist
        .elements()
        .iter()
        .map(|(name, el)| {
            let i = match el {
                Element::Resistor { a, b, ohms } => (v(*a) - v(*b)) / ohms,
                Element::Capacitor { .. } => 0.0,
                Element::Vsource { .. } => sol.branch_current(name).unwrap_or(0.0),
                Element::Isource { amps, .. } => *amps,
                Element::Mosfet { d, g, s, b, device } => device.ids(
                    Bias::new(v(*g), v(*d), v(*s), v(*b)),
                    netlist.temperature(),
                ),
            };
            (name.clone(), i)
        })
        .collect()
}

fn initial_state(sys: &System<'_>, opts: &DcOptions) -> Vec<f64> {
    let mut x = vec![0.0; sys.num_unknowns];
    for &(node, v) in &opts.initial {
        if !node.is_ground() {
            x[node.index() - 1] = v;
        }
    }
    x
}

fn gmin_continuation(
    sys: &System<'_>,
    x: &mut [f64],
    opts: &DcOptions,
) -> Result<(), CircuitError> {
    let mut gmin = opts.gmin_start;
    loop {
        sys.newton(x, gmin, None, opts)?;
        if gmin <= opts.gmin_final {
            return Ok(());
        }
        gmin = (gmin * 1e-2).max(opts.gmin_final);
    }
}

fn source_ramp(
    netlist: &Netlist,
    sys: &System<'_>,
    x: &mut [f64],
    opts: &DcOptions,
) -> Result<(), CircuitError> {
    // Work on a scaled copy of the netlist.
    let mut scaled = netlist.clone();
    let originals: Vec<(usize, f64)> = netlist
        .elements()
        .iter()
        .enumerate()
        .filter_map(|(i, (_, e))| match e {
            Element::Vsource { volts, .. } => Some((i, *volts)),
            _ => None,
        })
        .collect();
    for &alpha in &[0.25, 0.5, 0.75, 1.0] {
        for &(idx, v) in &originals {
            let name = scaled.elements()[idx].0.clone();
            scaled.set_vsource(&name, v * alpha)?;
        }
        let sys_scaled = System::new(&scaled);
        debug_assert_eq!(sys_scaled.num_unknowns, sys.num_unknowns);
        gmin_continuation(&sys_scaled, x, opts)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvtm_device::{Mosfet, Technology};

    #[test]
    fn resistive_divider() {
        let mut ckt = Netlist::new();
        let top = ckt.node("top");
        let mid = ckt.node("mid");
        ckt.vsource("V1", top, Netlist::GROUND, 2.0);
        ckt.resistor("R1", top, mid, 3e3);
        ckt.resistor("R2", mid, Netlist::GROUND, 1e3);
        let sol = ckt.solve_dc().unwrap();
        assert!((sol.voltage(mid) - 0.5).abs() < 1e-8);
        assert!((sol.voltage(top) - 2.0).abs() < 1e-12);
        // Source delivers 0.5 mA.
        let i = sol.branch_current("V1").unwrap();
        assert!((i - 0.5e-3).abs() < 1e-9, "i = {i}");
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = Netlist::new();
        let a = ckt.node("a");
        ckt.isource("I1", Netlist::GROUND, a, 1e-3);
        ckt.resistor("R1", a, Netlist::GROUND, 2e3);
        let sol = ckt.solve_dc().unwrap();
        assert!((sol.voltage(a) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn stacked_voltage_sources() {
        let mut ckt = Netlist::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Netlist::GROUND, 1.0);
        ckt.vsource("V2", b, a, 0.5);
        ckt.resistor("R", b, Netlist::GROUND, 1e3);
        let sol = ckt.solve_dc().unwrap();
        assert!((sol.voltage(b) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn nmos_inverter_vtc_endpoints() {
        let tech = Technology::predictive_70nm();
        let mut ckt = Netlist::new();
        let vdd = ckt.node("vdd");
        let input = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Netlist::GROUND, 1.0);
        ckt.vsource("VIN", input, Netlist::GROUND, 0.0);
        ckt.mosfet(
            "MP",
            out,
            input,
            vdd,
            vdd,
            Mosfet::pmos(&tech, 200e-9, tech.lmin()),
        );
        ckt.mosfet(
            "MN",
            out,
            input,
            Netlist::GROUND,
            Netlist::GROUND,
            Mosfet::nmos(&tech, 140e-9, tech.lmin()),
        );
        // Input low → output high.
        let sol = ckt.solve_dc().unwrap();
        assert!(sol.voltage(out) > 0.95, "out = {}", sol.voltage(out));
        // Input high → output low.
        ckt.set_vsource("VIN", 1.0).unwrap();
        let sol = ckt.solve_dc().unwrap();
        assert!(sol.voltage(out) < 0.05, "out = {}", sol.voltage(out));
    }

    #[test]
    fn inverter_vtc_is_monotone_under_sweep() {
        let tech = Technology::predictive_70nm();
        let mut ckt = Netlist::new();
        let vdd = ckt.node("vdd");
        let input = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Netlist::GROUND, 1.0);
        ckt.vsource("VIN", input, Netlist::GROUND, 0.0);
        ckt.mosfet(
            "MP",
            out,
            input,
            vdd,
            vdd,
            Mosfet::pmos(&tech, 200e-9, tech.lmin()),
        );
        ckt.mosfet(
            "MN",
            out,
            input,
            Netlist::GROUND,
            Netlist::GROUND,
            Mosfet::nmos(&tech, 140e-9, tech.lmin()),
        );
        let vin: Vec<f64> = (0..=20).map(|i| i as f64 * 0.05).collect();
        let sols = sweep_vsource(&mut ckt, "VIN", &vin, &DcOptions::default()).unwrap();
        let vout: Vec<f64> = sols.iter().map(|s| s.voltage(out)).collect();
        for w in vout.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "VTC must fall monotonically: {vout:?}");
        }
        assert!(vout[0] > 0.95 && vout[20] < 0.05);
    }

    #[test]
    fn kcl_residual_property_at_solution() {
        // At any converged solution, the assembled residual must be tiny.
        let tech = Technology::predictive_70nm();
        let mut ckt = Netlist::new();
        let vdd = ckt.node("vdd");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Netlist::GROUND, 1.0);
        ckt.resistor("RL", vdd, out, 50e3);
        ckt.mosfet(
            "MN",
            out,
            vdd,
            Netlist::GROUND,
            Netlist::GROUND,
            Mosfet::nmos(&tech, 200e-9, tech.lmin()),
        );
        let opts = DcOptions::default();
        let sol = solve(&ckt, &opts).unwrap();
        let sys = System::new(&ckt);
        let mut jac = Matrix::zeros(sys.num_unknowns);
        let mut res = vec![0.0; sys.num_unknowns];
        sys.assemble(sol.state(), opts.gmin_final, None, &mut jac, &mut res);
        assert!(sys.kcl_norm(&res) < 1e-9);
    }

    #[test]
    fn empty_circuit_is_an_error() {
        let ckt = Netlist::new();
        assert_eq!(ckt.solve_dc().unwrap_err(), CircuitError::EmptyCircuit);
    }

    #[test]
    fn floating_node_pinned_by_gmin() {
        // A node connected only through a capacitor is floating in DC;
        // Gmin must keep the matrix solvable and park it at 0.
        let mut ckt = Netlist::new();
        let a = ckt.node("a");
        let f = ckt.node("float");
        ckt.vsource("V1", a, Netlist::GROUND, 1.0);
        ckt.capacitor("C1", a, f, 1e-15);
        let sol = ckt.solve_dc().unwrap();
        assert!(sol.voltage(f).abs() < 1e-6);
    }

    #[test]
    fn operating_point_satisfies_kcl_per_element() {
        let mut ckt = Netlist::new();
        let top = ckt.node("top");
        let mid = ckt.node("mid");
        ckt.vsource("V1", top, Netlist::GROUND, 2.0);
        ckt.resistor("R1", top, mid, 3e3);
        ckt.resistor("R2", mid, Netlist::GROUND, 1e3);
        let sol = ckt.solve_dc().unwrap();
        let op = operating_point(&ckt, &sol);
        let get = |n: &str| op.iter().find(|(name, _)| name == n).unwrap().1;
        // Series chain: all three elements carry 0.5 mA.
        assert!((get("V1") - 0.5e-3).abs() < 1e-8);
        assert!((get("R1") - 0.5e-3).abs() < 1e-8);
        assert!((get("R2") - 0.5e-3).abs() < 1e-8);
    }

    #[test]
    fn warm_start_matches_cold_start() {
        let mut ckt = Netlist::new();
        let top = ckt.node("top");
        let mid = ckt.node("mid");
        ckt.vsource("V1", top, Netlist::GROUND, 1.0);
        ckt.resistor("R1", top, mid, 1e3);
        ckt.resistor("R2", mid, Netlist::GROUND, 1e3);
        let opts = DcOptions::default();
        let cold = solve(&ckt, &opts).unwrap();
        let warm = solve_from(&ckt, &opts, cold.state()).unwrap();
        assert!((warm.voltage(mid) - cold.voltage(mid)).abs() < 1e-12);
    }
}
