//! DC operating-point solver: damped Newton–Raphson with Gmin continuation
//! and source-stepping fallback.
//!
//! The solver comes in two flavours. The plain [`solve`]/[`solve_from`]
//! entry points allocate their scratch buffers per call — fine for one-off
//! solves. Hot paths (Monte-Carlo loops, sweeps) should hold a
//! [`DcWorkspace`] and call [`solve_with`]/[`solve_from_with`], which reuse
//! the Jacobian, residual and state buffers across solves and accumulate
//! [`SolverStats`]. See also [`crate::template::CircuitTemplate`], which
//! additionally keeps the netlist itself alive across solves and
//! warm-starts Newton from the previous solution.

use std::sync::Arc;

use crate::linalg::Matrix;
use crate::netlist::{CircuitError, Element, Netlist, NodeId};
use pvtm_device::Bias;

/// Options controlling the Newton iteration.
#[derive(Debug, Clone)]
pub struct DcOptions {
    /// Maximum Newton iterations per continuation stage.
    pub max_iterations: usize,
    /// KCL residual tolerance \[A\].
    pub current_tol: f64,
    /// Largest node-voltage update applied per iteration \[V\] (damping).
    pub max_step: f64,
    /// Starting Gmin for the continuation \[S\].
    pub gmin_start: f64,
    /// Final (residual) Gmin left in place \[S\]; keeps floating nodes pinned.
    pub gmin_final: f64,
    /// Initial node-voltage guesses; unspecified nodes start at 0 V.
    pub initial: Vec<(NodeId, f64)>,
}

impl Default for DcOptions {
    fn default() -> Self {
        Self {
            max_iterations: 120,
            current_tol: 1e-10,
            max_step: 0.3,
            gmin_start: 1e-3,
            gmin_final: 1e-12,
            initial: Vec::new(),
        }
    }
}

impl DcOptions {
    /// Adds an initial guess for one node.
    pub fn guess(mut self, node: NodeId, volts: f64) -> Self {
        self.initial.push((node, volts));
        self
    }

    /// Overwrites the guess for `node` in place (adds it if absent) —
    /// the allocation-free counterpart of [`DcOptions::guess`] for
    /// templates that update guesses every solve.
    pub fn set_guess(&mut self, node: NodeId, volts: f64) {
        for (n, v) in &mut self.initial {
            if *n == node {
                *v = volts;
                return;
            }
        }
        self.initial.push((node, volts));
    }
}

/// Counters accumulated by a [`DcWorkspace`] across solves.
///
/// `warm_hits / warm_attempts` is the warm-start hit rate; `fallbacks`
/// counts solves that needed the damped retry or the source ramp on top of
/// plain Gmin continuation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Completed solves (converged operating points).
    pub solves: u64,
    /// Total Newton iterations, across all continuation stages and solves.
    pub newton_iterations: u64,
    /// Warm-start Newton attempts (seeded from a previous solution).
    pub warm_attempts: u64,
    /// Warm-start attempts that converged without a cold restart.
    pub warm_hits: u64,
    /// Cold solves (Gmin continuation from the initial guess).
    pub cold_solves: u64,
    /// Cold solves that needed the heavily damped retry.
    pub damped_retries: u64,
    /// Cold solves that fell through to the source-stepping ramp.
    pub source_ramps: u64,
    /// LU factorizations (one per Newton linear solve).
    pub lu_factorizations: u64,
    /// Gmin-continuation stages run (each is one Newton solve at a fixed
    /// Gmin).
    pub gmin_steps: u64,
    /// Source-ramp steps run (each is a full Gmin continuation at one
    /// source scale).
    pub ramp_steps: u64,
    /// Solves that exhausted the standard cold ladder and entered the
    /// rescue ladder ([`crate::rescue`]).
    pub rescue_attempts: u64,
    /// Rescue-ladder entries that ultimately converged.
    pub rescue_hits: u64,
    /// Individual rescue rungs run (≤ 3 per attempt).
    pub rescue_rungs: u64,
}

impl SolverStats {
    /// Warm-start hit rate in `[0, 1]`; 1.0 when no warm start was tried.
    pub fn warm_hit_rate(&self) -> f64 {
        if self.warm_attempts == 0 {
            1.0
        } else {
            self.warm_hits as f64 / self.warm_attempts as f64
        }
    }

    /// Merges another set of counters into this one (for per-thread stats).
    pub fn merge(&mut self, other: &SolverStats) {
        self.solves += other.solves;
        self.newton_iterations += other.newton_iterations;
        self.warm_attempts += other.warm_attempts;
        self.warm_hits += other.warm_hits;
        self.cold_solves += other.cold_solves;
        self.damped_retries += other.damped_retries;
        self.source_ramps += other.source_ramps;
        self.lu_factorizations += other.lu_factorizations;
        self.gmin_steps += other.gmin_steps;
        self.ramp_steps += other.ramp_steps;
        self.rescue_attempts += other.rescue_attempts;
        self.rescue_hits += other.rescue_hits;
        self.rescue_rungs += other.rescue_rungs;
    }

    /// The increments accumulated between a `before` snapshot and `self`,
    /// as a telemetry delta (the per-solve record of
    /// [`CircuitTemplate::solve`](crate::template::CircuitTemplate::solve)).
    ///
    /// # Panics
    ///
    /// Debug-asserts that `before` is an earlier snapshot of the same
    /// counters (every field monotonically non-decreasing).
    pub fn delta_since(&self, before: &SolverStats) -> pvtm_telemetry::SolverDelta {
        debug_assert!(self.solves >= before.solves, "stats went backwards");
        pvtm_telemetry::SolverDelta {
            solves: self.solves - before.solves,
            newton_iterations: self.newton_iterations - before.newton_iterations,
            lu_factorizations: self.lu_factorizations - before.lu_factorizations,
            warm_attempts: self.warm_attempts - before.warm_attempts,
            warm_hits: self.warm_hits - before.warm_hits,
            cold_solves: self.cold_solves - before.cold_solves,
            damped_retries: self.damped_retries - before.damped_retries,
            source_ramps: self.source_ramps - before.source_ramps,
            gmin_steps: self.gmin_steps - before.gmin_steps,
            ramp_steps: self.ramp_steps - before.ramp_steps,
            rescue_attempts: self.rescue_attempts - before.rescue_attempts,
            rescue_hits: self.rescue_hits - before.rescue_hits,
            rescue_rungs: self.rescue_rungs - before.rescue_rungs,
        }
    }
}

/// Reusable scratch buffers for Newton iterations.
///
/// Holding one of these across solves removes every per-solve heap
/// allocation from the Newton loop: the Jacobian, residual, update and
/// line-search backup vectors are sized once and reused. Not thread-safe —
/// use one workspace per thread.
#[derive(Debug, Clone, Default)]
pub struct DcWorkspace {
    jac: Matrix,
    res: Vec<f64>,
    rhs: Vec<f64>,
    x_old: Vec<f64>,
    /// Counters accumulated by every solve run through this workspace.
    pub stats: SolverStats,
}

impl DcWorkspace {
    /// Creates an empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resizes the scratch buffers for a system of `n` unknowns.
    fn ensure(&mut self, n: usize) {
        if self.jac.n() != n {
            self.jac = Matrix::zeros(n);
            self.res = vec![0.0; n];
            self.rhs = vec![0.0; n];
            self.x_old = vec![0.0; n];
        }
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = SolverStats::default();
    }
}

/// A converged DC operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    pub(crate) state: Vec<f64>,
    pub(crate) num_free_nodes: usize,
    branch_names: Arc<[String]>,
}

impl DcSolution {
    pub(crate) fn new(state: Vec<f64>, num_free_nodes: usize, branch_names: Arc<[String]>) -> Self {
        Self {
            state,
            num_free_nodes,
            branch_names,
        }
    }

    /// Voltage of a node \[V\]. Ground reads 0.
    pub fn voltage(&self, node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.state[node.index() - 1]
        }
    }

    /// Branch current of a named voltage source \[A\], positive when the
    /// source delivers current out of its positive terminal.
    pub fn branch_current(&self, source_name: &str) -> Option<f64> {
        self.branch_names
            .iter()
            .position(|n| n == source_name)
            .map(|i| self.state[self.num_free_nodes + i])
    }

    /// Full solver state (node voltages then branch currents), usable as a
    /// warm start for [`solve_from`] or a transient initial condition.
    pub fn state(&self) -> &[f64] {
        &self.state
    }
}

/// Shared equation assembler for DC and transient analyses.
///
/// Construction is allocation-free: voltage-source branch rows are laid out
/// sequentially after the free nodes, so only a count is needed.
pub(crate) struct System<'a> {
    netlist: &'a Netlist,
    pub(crate) num_free_nodes: usize,
    pub(crate) num_unknowns: usize,
}

/// Backward-Euler companion data for transient steps.
pub(crate) struct Companion<'a> {
    /// Time step \[s\].
    pub dt: f64,
    /// Solver state at the previous time point.
    pub prev: &'a [f64],
}

impl<'a> System<'a> {
    pub(crate) fn new(netlist: &'a Netlist) -> Self {
        let num_free_nodes = netlist.num_nodes() - 1;
        let num_vsources = netlist
            .elements()
            .iter()
            .filter(|(_, e)| matches!(e, Element::Vsource { .. }))
            .count();
        Self {
            netlist,
            num_free_nodes,
            num_unknowns: num_free_nodes + num_vsources,
        }
    }

    pub(crate) fn branch_names(&self) -> Arc<[String]> {
        self.netlist
            .elements()
            .iter()
            .filter(|(_, e)| matches!(e, Element::Vsource { .. }))
            .map(|(n, _)| n.clone())
            .collect()
    }

    #[inline]
    fn v(&self, x: &[f64], node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            x[node.index() - 1]
        }
    }

    /// Adds `current` flowing *into* `node` to the residual.
    #[inline]
    fn kcl(res: &mut [f64], node: NodeId, current: f64) {
        if !node.is_ground() {
            res[node.index() - 1] += current;
        }
    }

    #[inline]
    fn jac_add(jac: &mut Matrix, row_node: NodeId, col: usize, v: f64) {
        if !row_node.is_ground() {
            jac.add(row_node.index() - 1, col, v);
        }
    }

    /// Assembles the residual `f(x)` and Jacobian `df/dx` at state `x`.
    ///
    /// `gmin` adds a conductance from every free node to ground.
    /// `vsource_scale` multiplies every voltage-source value (the
    /// source-stepping knob; 1.0 for a normal solve). When `companion` is
    /// provided, capacitors are stamped with their backward-Euler companion
    /// model; otherwise they are open circuits.
    pub(crate) fn assemble(
        &self,
        x: &[f64],
        gmin: f64,
        vsource_scale: f64,
        companion: Option<&Companion<'_>>,
        jac: &mut Matrix,
        res: &mut [f64],
    ) {
        debug_assert_eq!(x.len(), self.num_unknowns);
        jac.clear();
        res.fill(0.0);
        let temp = self.netlist.temperature();

        // Gmin to ground on every free node.
        for i in 0..self.num_free_nodes {
            res[i] += -gmin * x[i];
            jac.add(i, i, -gmin);
        }

        let mut vsrc_idx = 0usize;
        for (_, el) in self.netlist.elements() {
            match el {
                Element::Resistor { a, b, ohms } => {
                    let g = 1.0 / ohms;
                    let i_ab = (self.v(x, *a) - self.v(x, *b)) * g;
                    Self::kcl(res, *a, -i_ab);
                    Self::kcl(res, *b, i_ab);
                    self.stamp_conductance(jac, *a, *b, g);
                }
                Element::Capacitor { a, b, farads } => {
                    if let Some(c) = companion {
                        // i = C/dt · (v_ab - v_ab_prev), flowing a → b.
                        let g = farads / c.dt;
                        let vab = self.v(x, *a) - self.v(x, *b);
                        let vab_prev = self.v(c.prev, *a) - self.v(c.prev, *b);
                        let i_ab = g * (vab - vab_prev);
                        Self::kcl(res, *a, -i_ab);
                        Self::kcl(res, *b, i_ab);
                        self.stamp_conductance(jac, *a, *b, g);
                    }
                }
                Element::Vsource { pos, neg, volts } => {
                    // Branch rows are laid out sequentially after the free
                    // nodes, in element order.
                    let row = self.num_free_nodes + vsrc_idx;
                    let i_branch = x[row];
                    vsrc_idx += 1;
                    // The source delivers i_branch into `pos`.
                    Self::kcl(res, *pos, i_branch);
                    Self::kcl(res, *neg, -i_branch);
                    Self::jac_add(jac, *pos, row, 1.0);
                    Self::jac_add(jac, *neg, row, -1.0);
                    // Constraint: v(pos) - v(neg) - scale·V = 0.
                    res[row] = self.v(x, *pos) - self.v(x, *neg) - volts * vsource_scale;
                    if !pos.is_ground() {
                        jac.add(row, pos.index() - 1, 1.0);
                    }
                    if !neg.is_ground() {
                        jac.add(row, neg.index() - 1, -1.0);
                    }
                }
                Element::Isource { from, to, amps } => {
                    Self::kcl(res, *from, -amps);
                    Self::kcl(res, *to, *amps);
                }
                Element::Mosfet { d, g, s, b, device } => {
                    let bias =
                        Bias::new(self.v(x, *g), self.v(x, *d), self.v(x, *s), self.v(x, *b));
                    let id = device.ids(bias, temp);
                    // The channel draws `id` out of the drain node and
                    // returns it at the source node.
                    Self::kcl(res, *d, -id);
                    Self::kcl(res, *s, id);

                    // Numeric partial derivatives wrt each terminal.
                    const DV: f64 = 1e-6;
                    let terminals = [(*g, 0), (*d, 1), (*s, 2), (*b, 3)];
                    for (node, which) in terminals {
                        if node.is_ground() {
                            continue;
                        }
                        let mut pb = bias;
                        match which {
                            0 => pb.vg += DV,
                            1 => pb.vd += DV,
                            2 => pb.vs += DV,
                            _ => pb.vb += DV,
                        }
                        let did = (device.ids(pb, temp) - id) / DV;
                        let col = node.index() - 1;
                        Self::jac_add(jac, *d, col, -did);
                        Self::jac_add(jac, *s, col, did);
                    }
                }
            }
        }
    }

    /// Stamps a linear conductance between `a` and `b` into the Jacobian
    /// (contribution of current flowing a → b to the KCL rows).
    fn stamp_conductance(&self, jac: &mut Matrix, a: NodeId, b: NodeId, g: f64) {
        if !a.is_ground() {
            let ia = a.index() - 1;
            jac.add(ia, ia, -g);
            if !b.is_ground() {
                jac.add(ia, b.index() - 1, g);
            }
        }
        if !b.is_ground() {
            let ib = b.index() - 1;
            jac.add(ib, ib, -g);
            if !a.is_ground() {
                jac.add(ib, a.index() - 1, g);
            }
        }
    }

    /// Infinity norm of the KCL rows of the residual (the convergence
    /// metric; constraint rows are driven to machine precision anyway).
    pub(crate) fn kcl_norm(&self, res: &[f64]) -> f64 {
        res.iter().fold(0.0f64, |m, r| m.max(r.abs()))
    }

    /// Runs damped Newton at a fixed Gmin from the given state, using the
    /// workspace's scratch buffers.
    ///
    /// Returns the residual norm achieved; the state is updated in place.
    pub(crate) fn newton(
        &self,
        x: &mut [f64],
        gmin: f64,
        vsource_scale: f64,
        companion: Option<&Companion<'_>>,
        opts: &DcOptions,
        ws: &mut DcWorkspace,
    ) -> Result<f64, CircuitError> {
        let n = self.num_unknowns;
        ws.ensure(n);
        let DcWorkspace {
            jac,
            res,
            rhs,
            x_old,
            stats,
        } = ws;

        self.assemble(x, gmin, vsource_scale, companion, jac, res);
        let mut norm = self.kcl_norm(res);
        debug_assert!(
            norm.is_finite(),
            "non-finite initial residual norm {norm}: a device stamp produced NaN/Inf"
        );

        for iter in 0..opts.max_iterations {
            if norm < opts.current_tol {
                return Ok(norm);
            }
            stats.newton_iterations += 1;
            stats.lu_factorizations += 1;
            // Solve J Δx = -f.
            for i in 0..n {
                rhs[i] = -res[i];
            }
            jac.solve_in_place(rhs)
                .map_err(|e| CircuitError::SingularMatrix { column: e.column })?;
            debug_assert!(
                rhs.iter().all(|dv| dv.is_finite()),
                "non-finite Newton update at iteration {iter}: the Jacobian solve returned \
                 NaN/Inf instead of converging to garbage silently"
            );

            // Damp node-voltage updates.
            let mut scale = 1.0f64;
            for dv in rhs.iter().take(self.num_free_nodes) {
                if dv.abs() * scale > opts.max_step {
                    scale = opts.max_step / dv.abs();
                }
            }

            // Line search: halve the step until the residual improves (or
            // accept the last halving).
            let mut step = scale;
            let mut accepted = false;
            x_old.copy_from_slice(x);
            for _ in 0..8 {
                for i in 0..n {
                    x[i] = x_old[i] + step * rhs[i];
                }
                // Keep node voltages in a physical window.
                for xi in x.iter_mut().take(self.num_free_nodes) {
                    *xi = xi.clamp(-10.0, 10.0);
                }
                self.assemble(x, gmin, vsource_scale, companion, jac, res);
                let new_norm = self.kcl_norm(res);
                if new_norm < norm || new_norm < opts.current_tol {
                    norm = new_norm;
                    accepted = true;
                    break;
                }
                step *= 0.5;
            }
            if !accepted {
                // Accept the smallest step anyway; Newton often recovers.
                norm = self.kcl_norm(res);
            }
            let _ = iter;
        }
        if norm < opts.current_tol {
            Ok(norm)
        } else {
            Err(CircuitError::NoConvergence {
                residual: norm,
                iterations: opts.max_iterations,
            })
        }
    }
}

/// Solves the DC operating point of a netlist.
///
/// Strategy: Gmin continuation from `gmin_start` down to `gmin_final`
/// (factor-100 steps), warm-starting each stage. If that fails, a source
/// ramp (25 % → 100 % of every voltage source) is attempted on top.
///
/// Allocates a fresh [`DcWorkspace`] per call; hot loops should hold one
/// and use [`solve_with`] instead.
///
/// # Errors
///
/// [`CircuitError::EmptyCircuit`] for a netlist with no unknowns;
/// [`CircuitError::NoConvergence`] / [`CircuitError::SingularMatrix`] when
/// both strategies fail.
pub fn solve(netlist: &Netlist, opts: &DcOptions) -> Result<DcSolution, CircuitError> {
    solve_with(netlist, opts, &mut DcWorkspace::new())
}

/// [`solve`] with caller-provided scratch buffers (no per-solve
/// allocations beyond the returned solution).
///
/// # Errors
///
/// Same failure modes as [`solve`].
pub fn solve_with(
    netlist: &Netlist,
    opts: &DcOptions,
    ws: &mut DcWorkspace,
) -> Result<DcSolution, CircuitError> {
    pvtm_telemetry::fault::next_solve();
    solve_with_unarmed(netlist, opts, ws)
}

/// [`solve_with`] without marking a new logical solve for fault injection
/// — the warm-start fallback path re-enters here so one logical solve is
/// armed exactly once.
fn solve_with_unarmed(
    netlist: &Netlist,
    opts: &DcOptions,
    ws: &mut DcWorkspace,
) -> Result<DcSolution, CircuitError> {
    let sys = System::new(netlist);
    if sys.num_unknowns == 0 {
        return Err(CircuitError::EmptyCircuit);
    }
    let mut x = vec![0.0; sys.num_unknowns];
    init_state(&mut x, opts);
    cold_solve(&sys, &mut x, opts, ws)?;
    ws.stats.solves += 1;
    Ok(DcSolution::new(x, sys.num_free_nodes, sys.branch_names()))
}

/// The failure an injected strategy reports in place of running (the
/// infinite residual marks it as synthetic in error messages).
pub(crate) fn injected_failure() -> CircuitError {
    CircuitError::NoConvergence {
        residual: f64::INFINITY,
        iterations: 0,
    }
}

/// The full cold-start strategy on a pre-initialized state: Gmin
/// continuation, then a heavily damped retry, then a source ramp, and —
/// only once all three have failed — the [`crate::rescue`] ladder.
pub(crate) fn cold_solve(
    sys: &System<'_>,
    x: &mut [f64],
    opts: &DcOptions,
    ws: &mut DcWorkspace,
) -> Result<(), CircuitError> {
    use pvtm_telemetry::fault;
    ws.stats.cold_solves += 1;
    if !fault::trip() && gmin_continuation(sys, x, opts, 1.0, ws).is_ok() {
        return Ok(());
    }
    // Heavily damped retry: small steps ride out fold regions where
    // full Newton oscillates (e.g. a cell losing bistability).
    ws.stats.damped_retries += 1;
    let damped = DcOptions {
        max_step: 0.05,
        max_iterations: 400,
        ..opts.clone()
    };
    init_state(x, opts);
    if !fault::trip() && gmin_continuation(sys, x, &damped, 1.0, ws).is_ok() {
        return Ok(());
    }
    // Source-stepping fallback.
    ws.stats.source_ramps += 1;
    init_state(x, opts);
    if !fault::trip() && source_ramp(sys, x, &damped, ws).is_ok() {
        return Ok(());
    }
    // Everything the standard ladder has failed: escalate to the rescue
    // ladder before declaring the sample unsolvable.
    crate::rescue::rescue(sys, x, opts, ws)
}

/// Solves starting from a previous solution's state (warm start).
///
/// # Errors
///
/// Same failure modes as [`solve`].
///
/// # Panics
///
/// Panics if `state` has the wrong length for this netlist.
pub fn solve_from(
    netlist: &Netlist,
    opts: &DcOptions,
    state: &[f64],
) -> Result<DcSolution, CircuitError> {
    solve_from_with(netlist, opts, state, &mut DcWorkspace::new())
}

/// [`solve_from`] with caller-provided scratch buffers.
///
/// # Errors
///
/// Same failure modes as [`solve`].
///
/// # Panics
///
/// Panics if `state` has the wrong length for this netlist.
pub fn solve_from_with(
    netlist: &Netlist,
    opts: &DcOptions,
    state: &[f64],
    ws: &mut DcWorkspace,
) -> Result<DcSolution, CircuitError> {
    let sys = System::new(netlist);
    assert_eq!(state.len(), sys.num_unknowns, "warm-start state length");
    pvtm_telemetry::fault::next_solve();
    let mut x = state.to_vec();
    ws.stats.warm_attempts += 1;
    let warm = if pvtm_telemetry::fault::trip() {
        Err(injected_failure())
    } else {
        sys.newton(&mut x, opts.gmin_final, 1.0, None, opts, ws)
            .map(|_| ())
    };
    match warm {
        Ok(()) => {
            ws.stats.warm_hits += 1;
            ws.stats.solves += 1;
            Ok(DcSolution::new(x, sys.num_free_nodes, sys.branch_names()))
        }
        // Warm start failed: fall back to the full strategy.
        Err(_) => solve_with_unarmed(netlist, opts, ws),
    }
}

/// Sweeps a named voltage source over `values`, warm-starting each point.
///
/// # Errors
///
/// Fails on the first value whose operating point cannot be found, or if
/// the source name is unknown.
pub fn sweep_vsource(
    netlist: &mut Netlist,
    source: &str,
    values: &[f64],
    opts: &DcOptions,
) -> Result<Vec<DcSolution>, CircuitError> {
    let mut ws = DcWorkspace::new();
    let mut out: Vec<DcSolution> = Vec::with_capacity(values.len());
    for &v in values {
        netlist.set_vsource(source, v)?;
        let sol = match out.last() {
            Some(prev) => solve_from_with(netlist, opts, prev.state(), &mut ws)?,
            None => solve_with(netlist, opts, &mut ws)?,
        };
        out.push(sol);
    }
    Ok(out)
}

/// Per-element currents at a converged operating point \[A\] — the
/// operating-point report of a classic SPICE `.op` card.
///
/// Element names are borrowed from the netlist (nothing is cloned).
///
/// Conventions: resistors report the current flowing `a → b`; voltage
/// sources report their branch current (positive = delivering out of the
/// positive terminal); current sources report their programmed value;
/// MOSFETs report the drain current; capacitors carry no DC current.
pub fn operating_point<'a>(netlist: &'a Netlist, sol: &DcSolution) -> Vec<(&'a str, f64)> {
    let v = |n: NodeId| sol.voltage(n);
    netlist
        .elements()
        .iter()
        .map(|(name, el)| {
            let i = match el {
                Element::Resistor { a, b, ohms } => (v(*a) - v(*b)) / ohms,
                Element::Capacitor { .. } => 0.0,
                Element::Vsource { .. } => sol.branch_current(name).unwrap_or(0.0),
                Element::Isource { amps, .. } => *amps,
                Element::Mosfet { d, g, s, b, device } => {
                    device.ids(Bias::new(v(*g), v(*d), v(*s), v(*b)), netlist.temperature())
                }
            };
            (name.as_str(), i)
        })
        .collect()
}

/// Zeroes the state and applies the initial guesses from the options.
pub(crate) fn init_state(x: &mut [f64], opts: &DcOptions) {
    x.fill(0.0);
    for &(node, v) in &opts.initial {
        if !node.is_ground() {
            x[node.index() - 1] = v;
        }
    }
}

pub(crate) fn gmin_continuation(
    sys: &System<'_>,
    x: &mut [f64],
    opts: &DcOptions,
    vsource_scale: f64,
    ws: &mut DcWorkspace,
) -> Result<(), CircuitError> {
    let mut gmin = opts.gmin_start;
    loop {
        ws.stats.gmin_steps += 1;
        sys.newton(x, gmin, vsource_scale, None, opts, ws)?;
        if gmin <= opts.gmin_final {
            return Ok(());
        }
        gmin = (gmin * 1e-2).max(opts.gmin_final);
    }
}

/// Source stepping via the assembler's `vsource_scale` knob: every source
/// is ramped 25 % → 100 % without cloning or editing the netlist.
fn source_ramp(
    sys: &System<'_>,
    x: &mut [f64],
    opts: &DcOptions,
    ws: &mut DcWorkspace,
) -> Result<(), CircuitError> {
    for &alpha in &[0.25, 0.5, 0.75, 1.0] {
        ws.stats.ramp_steps += 1;
        gmin_continuation(sys, x, opts, alpha, ws)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvtm_device::{Mosfet, Technology};

    #[test]
    fn resistive_divider() {
        let mut ckt = Netlist::new();
        let top = ckt.node("top");
        let mid = ckt.node("mid");
        ckt.vsource("V1", top, Netlist::GROUND, 2.0);
        ckt.resistor("R1", top, mid, 3e3);
        ckt.resistor("R2", mid, Netlist::GROUND, 1e3);
        let sol = ckt.solve_dc().unwrap();
        assert!((sol.voltage(mid) - 0.5).abs() < 1e-8);
        assert!((sol.voltage(top) - 2.0).abs() < 1e-12);
        // Source delivers 0.5 mA.
        let i = sol.branch_current("V1").unwrap();
        assert!((i - 0.5e-3).abs() < 1e-9, "i = {i}");
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = Netlist::new();
        let a = ckt.node("a");
        ckt.isource("I1", Netlist::GROUND, a, 1e-3);
        ckt.resistor("R1", a, Netlist::GROUND, 2e3);
        let sol = ckt.solve_dc().unwrap();
        assert!((sol.voltage(a) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn stacked_voltage_sources() {
        let mut ckt = Netlist::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Netlist::GROUND, 1.0);
        ckt.vsource("V2", b, a, 0.5);
        ckt.resistor("R", b, Netlist::GROUND, 1e3);
        let sol = ckt.solve_dc().unwrap();
        assert!((sol.voltage(b) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn nmos_inverter_vtc_endpoints() {
        let tech = Technology::predictive_70nm();
        let mut ckt = Netlist::new();
        let vdd = ckt.node("vdd");
        let input = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Netlist::GROUND, 1.0);
        ckt.vsource("VIN", input, Netlist::GROUND, 0.0);
        ckt.mosfet(
            "MP",
            out,
            input,
            vdd,
            vdd,
            Mosfet::pmos(&tech, 200e-9, tech.lmin()),
        );
        ckt.mosfet(
            "MN",
            out,
            input,
            Netlist::GROUND,
            Netlist::GROUND,
            Mosfet::nmos(&tech, 140e-9, tech.lmin()),
        );
        // Input low → output high.
        let sol = ckt.solve_dc().unwrap();
        assert!(sol.voltage(out) > 0.95, "out = {}", sol.voltage(out));
        // Input high → output low.
        ckt.set_vsource("VIN", 1.0).unwrap();
        let sol = ckt.solve_dc().unwrap();
        assert!(sol.voltage(out) < 0.05, "out = {}", sol.voltage(out));
    }

    #[test]
    fn inverter_vtc_is_monotone_under_sweep() {
        let tech = Technology::predictive_70nm();
        let mut ckt = Netlist::new();
        let vdd = ckt.node("vdd");
        let input = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Netlist::GROUND, 1.0);
        ckt.vsource("VIN", input, Netlist::GROUND, 0.0);
        ckt.mosfet(
            "MP",
            out,
            input,
            vdd,
            vdd,
            Mosfet::pmos(&tech, 200e-9, tech.lmin()),
        );
        ckt.mosfet(
            "MN",
            out,
            input,
            Netlist::GROUND,
            Netlist::GROUND,
            Mosfet::nmos(&tech, 140e-9, tech.lmin()),
        );
        let vin: Vec<f64> = (0..=20).map(|i| i as f64 * 0.05).collect();
        let sols = sweep_vsource(&mut ckt, "VIN", &vin, &DcOptions::default()).unwrap();
        let vout: Vec<f64> = sols.iter().map(|s| s.voltage(out)).collect();
        for w in vout.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "VTC must fall monotonically: {vout:?}");
        }
        assert!(vout[0] > 0.95 && vout[20] < 0.05);
    }

    #[test]
    fn kcl_residual_property_at_solution() {
        // At any converged solution, the assembled residual must be tiny.
        let tech = Technology::predictive_70nm();
        let mut ckt = Netlist::new();
        let vdd = ckt.node("vdd");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Netlist::GROUND, 1.0);
        ckt.resistor("RL", vdd, out, 50e3);
        ckt.mosfet(
            "MN",
            out,
            vdd,
            Netlist::GROUND,
            Netlist::GROUND,
            Mosfet::nmos(&tech, 200e-9, tech.lmin()),
        );
        let opts = DcOptions::default();
        let sol = solve(&ckt, &opts).unwrap();
        let sys = System::new(&ckt);
        let mut jac = Matrix::zeros(sys.num_unknowns);
        let mut res = vec![0.0; sys.num_unknowns];
        sys.assemble(sol.state(), opts.gmin_final, 1.0, None, &mut jac, &mut res);
        assert!(sys.kcl_norm(&res) < 1e-9);
    }

    #[test]
    fn empty_circuit_is_an_error() {
        let ckt = Netlist::new();
        assert_eq!(ckt.solve_dc().unwrap_err(), CircuitError::EmptyCircuit);
    }

    #[test]
    fn floating_node_pinned_by_gmin() {
        // A node connected only through a capacitor is floating in DC;
        // Gmin must keep the matrix solvable and park it at 0.
        let mut ckt = Netlist::new();
        let a = ckt.node("a");
        let f = ckt.node("float");
        ckt.vsource("V1", a, Netlist::GROUND, 1.0);
        ckt.capacitor("C1", a, f, 1e-15);
        let sol = ckt.solve_dc().unwrap();
        assert!(sol.voltage(f).abs() < 1e-6);
    }

    #[test]
    fn operating_point_satisfies_kcl_per_element() {
        let mut ckt = Netlist::new();
        let top = ckt.node("top");
        let mid = ckt.node("mid");
        ckt.vsource("V1", top, Netlist::GROUND, 2.0);
        ckt.resistor("R1", top, mid, 3e3);
        ckt.resistor("R2", mid, Netlist::GROUND, 1e3);
        let sol = ckt.solve_dc().unwrap();
        let op = operating_point(&ckt, &sol);
        let get = |n: &str| op.iter().find(|(name, _)| *name == n).unwrap().1;
        // Series chain: all three elements carry 0.5 mA.
        assert!((get("V1") - 0.5e-3).abs() < 1e-8);
        assert!((get("R1") - 0.5e-3).abs() < 1e-8);
        assert!((get("R2") - 0.5e-3).abs() < 1e-8);
    }

    #[test]
    fn warm_start_matches_cold_start() {
        let mut ckt = Netlist::new();
        let top = ckt.node("top");
        let mid = ckt.node("mid");
        ckt.vsource("V1", top, Netlist::GROUND, 1.0);
        ckt.resistor("R1", top, mid, 1e3);
        ckt.resistor("R2", mid, Netlist::GROUND, 1e3);
        let opts = DcOptions::default();
        let cold = solve(&ckt, &opts).unwrap();
        let warm = solve_from(&ckt, &opts, cold.state()).unwrap();
        assert!((warm.voltage(mid) - cold.voltage(mid)).abs() < 1e-12);
    }

    #[test]
    fn workspace_reuse_matches_fresh_solves() {
        // The same circuit solved through one workspace twice must agree
        // with independent fresh solves, and the stats must add up.
        let tech = Technology::predictive_70nm();
        let mut ckt = Netlist::new();
        let vdd = ckt.node("vdd");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Netlist::GROUND, 1.0);
        ckt.resistor("RL", vdd, out, 50e3);
        ckt.mosfet(
            "MN",
            out,
            vdd,
            Netlist::GROUND,
            Netlist::GROUND,
            Mosfet::nmos(&tech, 200e-9, tech.lmin()),
        );
        let opts = DcOptions::default();
        let fresh = solve(&ckt, &opts).unwrap();
        let mut ws = DcWorkspace::new();
        let a = solve_with(&ckt, &opts, &mut ws).unwrap();
        let b = solve_with(&ckt, &opts, &mut ws).unwrap();
        assert_eq!(a.voltage(out), fresh.voltage(out));
        assert_eq!(b.voltage(out), fresh.voltage(out));
        assert_eq!(ws.stats.solves, 2);
        assert_eq!(ws.stats.cold_solves, 2);
        assert!(ws.stats.newton_iterations > 0);
    }

    #[test]
    fn source_ramp_scaling_matches_explicit_netlist() {
        // Assembling with vsource_scale = α must equal assembling a netlist
        // whose sources were explicitly scaled by α.
        let mut ckt = Netlist::new();
        let top = ckt.node("top");
        let mid = ckt.node("mid");
        ckt.vsource("V1", top, Netlist::GROUND, 2.0);
        ckt.resistor("R1", top, mid, 3e3);
        ckt.resistor("R2", mid, Netlist::GROUND, 1e3);
        let mut scaled = ckt.clone();
        scaled.set_vsource("V1", 2.0 * 0.25).unwrap();

        let sys = System::new(&ckt);
        let sys_scaled = System::new(&scaled);
        let x = vec![0.3, 0.1, 0.0];
        let n = sys.num_unknowns;
        let (mut ja, mut jb) = (Matrix::zeros(n), Matrix::zeros(n));
        let (mut ra, mut rb) = (vec![0.0; n], vec![0.0; n]);
        sys.assemble(&x, 1e-12, 0.25, None, &mut ja, &mut ra);
        sys_scaled.assemble(&x, 1e-12, 1.0, None, &mut jb, &mut rb);
        assert_eq!(ra, rb);
        assert_eq!(ja, jb);
    }

    #[test]
    fn stats_track_warm_starts() {
        let mut ckt = Netlist::new();
        let top = ckt.node("top");
        ckt.vsource("V1", top, Netlist::GROUND, 1.0);
        ckt.resistor("R1", top, Netlist::GROUND, 1e3);
        let opts = DcOptions::default();
        let mut ws = DcWorkspace::new();
        let cold = solve_with(&ckt, &opts, &mut ws).unwrap();
        let _warm = solve_from_with(&ckt, &opts, cold.state(), &mut ws).unwrap();
        assert_eq!(ws.stats.warm_attempts, 1);
        assert_eq!(ws.stats.warm_hits, 1);
        assert!((ws.stats.warm_hit_rate() - 1.0).abs() < 1e-15);
        let mut total = SolverStats::default();
        total.merge(&ws.stats);
        assert_eq!(total, ws.stats);
    }
}
