//! Compiled circuit templates: build a topology once, patch parameters and
//! re-solve without strings, netlist clones, or heap allocation.
//!
//! Monte-Carlo analyses solve the *same* circuit thousands of times with
//! slightly different parameters (per-transistor ΔVt, source values,
//! temperature). Rebuilding the netlist per sample — interning node names,
//! pushing elements, allocating Newton scratch — dominates the runtime of
//! small circuits. A [`CircuitTemplate`] is the compiled form of one
//! topology:
//!
//! - node ids and the MNA layout (free nodes, then one branch row per
//!   voltage source in element order) are resolved at compile time;
//! - parameters are patched through typed slots ([`VsourceSlot`],
//!   [`MosfetSlot`]) — plain indices, no name lookups;
//! - the Newton scratch buffers live in an embedded [`DcWorkspace`] and are
//!   reused across solves;
//! - each solve is seeded from the previous solution (warm start) and only
//!   falls back to Gmin continuation / source stepping on non-convergence,
//!   with hit rates tracked in [`SolverStats`](crate::dc::SolverStats).
//!
//! # Example
//!
//! ```
//! use pvtm_circuit::{CircuitTemplate, DcOptions, Netlist};
//!
//! let mut ckt = Netlist::new();
//! let top = ckt.node("top");
//! let mid = ckt.node("mid");
//! ckt.vsource("V1", top, Netlist::GROUND, 2.0);
//! ckt.resistor("R1", top, mid, 1e3);
//! ckt.resistor("R2", mid, Netlist::GROUND, 1e3);
//!
//! let mut tpl = CircuitTemplate::compile(ckt, DcOptions::default())?;
//! let v1 = tpl.vsource_slot("V1").unwrap();
//! for vin in [2.0, 1.5, 1.0] {
//!     tpl.set_vsource(v1, vin)?;
//!     tpl.solve()?;
//!     assert!((tpl.voltage(mid) - vin / 2.0).abs() < 1e-8);
//! }
//! assert!(tpl.stats().warm_hits >= 1);
//! # Ok::<(), pvtm_circuit::CircuitError>(())
//! ```

use std::sync::Arc;

use crate::dc::{self, DcOptions, DcSolution, DcWorkspace, SolverStats, System};
use crate::netlist::{CircuitError, Element, Netlist, NodeId};
use pvtm_device::Mosfet;

/// Typed handle to a voltage source inside a [`CircuitTemplate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VsourceSlot {
    /// Element index in the netlist.
    elem: usize,
    /// Row of this source's branch current in the solver state.
    row: usize,
}

/// Typed handle to a MOSFET inside a [`CircuitTemplate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MosfetSlot {
    /// Element index in the netlist.
    elem: usize,
}

/// A compiled circuit: fixed topology, patchable parameters, reusable
/// solver state. See the [module documentation](self) for the rationale.
#[derive(Debug, Clone)]
pub struct CircuitTemplate {
    netlist: Netlist,
    opts: DcOptions,
    num_free_nodes: usize,
    num_unknowns: usize,
    branch_names: Arc<[String]>,
    ws: DcWorkspace,
    /// Solver state of the last successful solve (also the warm seed).
    state: Vec<f64>,
    /// Whether `state` holds a converged solution usable as a warm seed.
    have_warm: bool,
    /// Whether warm starting is enabled at all (on by default).
    warm_start: bool,
}

impl CircuitTemplate {
    /// Compiles a netlist into a template. The netlist's topology (nodes
    /// and element kinds) is frozen; values remain patchable through slots.
    ///
    /// # Errors
    ///
    /// [`CircuitError::EmptyCircuit`] if the netlist has no unknowns.
    pub fn compile(netlist: Netlist, opts: DcOptions) -> Result<Self, CircuitError> {
        let sys = System::new(&netlist);
        if sys.num_unknowns == 0 {
            return Err(CircuitError::EmptyCircuit);
        }
        let num_free_nodes = sys.num_free_nodes;
        let num_unknowns = sys.num_unknowns;
        let branch_names = sys.branch_names();
        let state = vec![0.0; num_unknowns];
        Ok(Self {
            netlist,
            opts,
            num_free_nodes,
            num_unknowns,
            branch_names,
            ws: DcWorkspace::new(),
            state,
            have_warm: false,
            warm_start: true,
        })
    }

    /// The compiled netlist (read-only; parameters are patched via slots).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Looks up a node of the compiled topology by name.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.netlist.find_node(name)
    }

    /// Resolves a voltage source by instance name to its typed slot.
    pub fn vsource_slot(&self, name: &str) -> Option<VsourceSlot> {
        let mut row = self.num_free_nodes;
        for (i, (n, e)) in self.netlist.elements().iter().enumerate() {
            if let Element::Vsource { .. } = e {
                if n == name {
                    return Some(VsourceSlot { elem: i, row });
                }
                row += 1;
            }
        }
        None
    }

    /// Resolves a MOSFET by instance name to its typed slot.
    pub fn mosfet_slot(&self, name: &str) -> Option<MosfetSlot> {
        self.netlist
            .elements()
            .iter()
            .position(|(n, e)| matches!(e, Element::Mosfet { .. }) && n == name)
            .map(|elem| MosfetSlot { elem })
    }

    /// Patches a voltage source's value \[V\]. No-op on the topology; the
    /// next [`Self::solve`] picks it up.
    ///
    /// # Errors
    ///
    /// [`CircuitError::SlotMismatch`] when the slot was minted by a
    /// template of a different shape.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite value (caller contract: sampled voltages are
    /// clamped finite upstream).
    pub fn set_vsource(&mut self, slot: VsourceSlot, volts: f64) -> Result<(), CircuitError> {
        assert!(volts.is_finite(), "invalid source voltage {volts}");
        match self.netlist.element_mut(slot.elem) {
            Element::Vsource { volts: v, .. } => {
                *v = volts;
                Ok(())
            }
            _ => Err(CircuitError::SlotMismatch {
                expected: "vsource",
                elem: slot.elem,
            }),
        }
    }

    /// Current value of a voltage source \[V\].
    ///
    /// # Errors
    ///
    /// [`CircuitError::SlotMismatch`] when the slot was minted by a
    /// template of a different shape.
    pub fn vsource_value(&self, slot: VsourceSlot) -> Result<f64, CircuitError> {
        match &self.netlist.elements()[slot.elem].1 {
            Element::Vsource { volts, .. } => Ok(*volts),
            _ => Err(CircuitError::SlotMismatch {
                expected: "vsource",
                elem: slot.elem,
            }),
        }
    }

    /// Patches a MOSFET's threshold deviation \[V\] in place.
    ///
    /// # Errors
    ///
    /// [`CircuitError::SlotMismatch`] when the slot was minted by a
    /// template of a different shape.
    pub fn set_delta_vt(&mut self, slot: MosfetSlot, delta_vt: f64) -> Result<(), CircuitError> {
        match self.netlist.element_mut(slot.elem) {
            Element::Mosfet { device, .. } => {
                device.set_delta_vt(delta_vt);
                Ok(())
            }
            _ => Err(CircuitError::SlotMismatch {
                expected: "mosfet",
                elem: slot.elem,
            }),
        }
    }

    /// Replaces a MOSFET's device instance (geometry, card, ΔVt) wholesale.
    ///
    /// # Errors
    ///
    /// [`CircuitError::SlotMismatch`] when the slot was minted by a
    /// template of a different shape.
    pub fn set_device(&mut self, slot: MosfetSlot, device: Mosfet) -> Result<(), CircuitError> {
        match self.netlist.element_mut(slot.elem) {
            Element::Mosfet { device: d, .. } => {
                *d = device;
                Ok(())
            }
            _ => Err(CircuitError::SlotMismatch {
                expected: "mosfet",
                elem: slot.elem,
            }),
        }
    }

    /// Sets the simulation temperature \[K\].
    pub fn set_temperature(&mut self, temp_k: f64) {
        self.netlist.set_temperature(temp_k);
    }

    /// Mutable access to the solver options — e.g. to update the initial
    /// guesses ([`DcOptions::set_guess`]) used by cold starts.
    pub fn options_mut(&mut self) -> &mut DcOptions {
        &mut self.opts
    }

    /// Enables or disables warm starting (enabled by default). With warm
    /// starts off every solve runs the full cold strategy — bit-identical
    /// to [`dc::solve`] on an equivalent netlist.
    pub fn set_warm_start(&mut self, enabled: bool) {
        self.warm_start = enabled;
    }

    /// Drops the warm seed; the next solve runs cold. Useful after patching
    /// parameters far from the previous solve's neighbourhood.
    pub fn invalidate_warm(&mut self) {
        self.have_warm = false;
    }

    /// Solves the DC operating point with the current parameter values.
    ///
    /// Seeds Newton from the previous solution when available; falls back
    /// to the full cold strategy (Gmin continuation → damped retry → source
    /// ramp) on non-convergence. Results are read back through
    /// [`Self::voltage`] / [`Self::branch_current`] without allocating.
    ///
    /// # Errors
    ///
    /// [`CircuitError::NoConvergence`] / [`CircuitError::SingularMatrix`]
    /// when every strategy fails; the warm seed is dropped so the next
    /// solve starts cold.
    pub fn solve(&mut self) -> Result<(), CircuitError> {
        let _span = pvtm_telemetry::span("dc.solve");
        let before = self.ws.stats;
        let result = self.solve_inner();
        if pvtm_telemetry::is_enabled() {
            pvtm_telemetry::record_solver(&self.ws.stats.delta_since(&before));
        }
        result
    }

    fn solve_inner(&mut self) -> Result<(), CircuitError> {
        let sys = System::new(&self.netlist);
        debug_assert_eq!(sys.num_unknowns, self.num_unknowns);
        pvtm_telemetry::fault::next_solve();
        if self.warm_start && self.have_warm {
            self.ws.stats.warm_attempts += 1;
            if !pvtm_telemetry::fault::trip()
                && sys
                    .newton(
                        &mut self.state,
                        self.opts.gmin_final,
                        1.0,
                        None,
                        &self.opts,
                        &mut self.ws,
                    )
                    .is_ok()
            {
                self.ws.stats.warm_hits += 1;
                self.ws.stats.solves += 1;
                return Ok(());
            }
        }
        dc::init_state(&mut self.state, &self.opts);
        match dc::cold_solve(&sys, &mut self.state, &self.opts, &mut self.ws) {
            Ok(()) => {
                self.ws.stats.solves += 1;
                self.have_warm = true;
                Ok(())
            }
            Err(e) => {
                self.have_warm = false;
                Err(e)
            }
        }
    }

    /// Voltage of a node at the last solution \[V\]. Ground reads 0.
    pub fn voltage(&self, node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.state[node.index() - 1]
        }
    }

    /// Branch current of a voltage source at the last solution \[A\],
    /// positive when the source delivers current out of its positive
    /// terminal.
    pub fn branch_current(&self, slot: VsourceSlot) -> f64 {
        self.state[slot.row]
    }

    /// The last solution's raw state (node voltages then branch currents).
    pub fn state(&self) -> &[f64] {
        &self.state
    }

    /// Packages the last solution as an owned [`DcSolution`] (branch names
    /// are shared, not recloned).
    pub fn solution(&self) -> DcSolution {
        DcSolution::new(
            self.state.clone(),
            self.num_free_nodes,
            Arc::clone(&self.branch_names),
        )
    }

    /// Solver statistics accumulated since compile (or the last reset).
    pub fn stats(&self) -> &SolverStats {
        &self.ws.stats
    }

    /// Resets the solver statistics.
    pub fn reset_stats(&mut self) {
        self.ws.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvtm_device::Technology;

    fn divider() -> Netlist {
        let mut ckt = Netlist::new();
        let top = ckt.node("top");
        let mid = ckt.node("mid");
        ckt.vsource("V1", top, Netlist::GROUND, 2.0);
        ckt.resistor("R1", top, mid, 1e3);
        ckt.resistor("R2", mid, Netlist::GROUND, 1e3);
        ckt
    }

    fn inverter() -> Netlist {
        let tech = Technology::predictive_70nm();
        let mut ckt = Netlist::new();
        let vdd = ckt.node("vdd");
        let input = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Netlist::GROUND, 1.0);
        ckt.vsource("VIN", input, Netlist::GROUND, 0.0);
        ckt.mosfet(
            "MP",
            out,
            input,
            vdd,
            vdd,
            Mosfet::pmos(&tech, 200e-9, tech.lmin()),
        );
        ckt.mosfet(
            "MN",
            out,
            input,
            Netlist::GROUND,
            Netlist::GROUND,
            Mosfet::nmos(&tech, 140e-9, tech.lmin()),
        );
        ckt
    }

    #[test]
    fn template_matches_plain_solve() {
        let ckt = divider();
        let plain = ckt.solve_dc().unwrap();
        let mut tpl = CircuitTemplate::compile(ckt, DcOptions::default()).unwrap();
        let mid = tpl.node("mid").unwrap();
        tpl.solve().unwrap();
        assert_eq!(tpl.voltage(mid), plain.voltage(mid));
        let v1 = tpl.vsource_slot("V1").unwrap();
        assert_eq!(tpl.branch_current(v1), plain.branch_current("V1").unwrap());
    }

    #[test]
    fn patched_vsource_changes_solution() {
        let mut tpl = CircuitTemplate::compile(divider(), DcOptions::default()).unwrap();
        let mid = tpl.node("mid").unwrap();
        let v1 = tpl.vsource_slot("V1").unwrap();
        tpl.solve().unwrap();
        assert!((tpl.voltage(mid) - 1.0).abs() < 1e-8);
        tpl.set_vsource(v1, 1.0).unwrap();
        assert_eq!(tpl.vsource_value(v1).unwrap(), 1.0);
        tpl.solve().unwrap();
        assert!((tpl.voltage(mid) - 0.5).abs() < 1e-8);
        // The second solve must have been a warm hit.
        assert_eq!(tpl.stats().warm_attempts, 1);
        assert_eq!(tpl.stats().warm_hits, 1);
        assert_eq!(tpl.stats().solves, 2);
    }

    #[test]
    fn warm_sweep_tracks_cold_solutions() {
        let opts = DcOptions::default();
        let mut tpl = CircuitTemplate::compile(inverter(), opts.clone()).unwrap();
        let out = tpl.node("out").unwrap();
        let vin = tpl.vsource_slot("VIN").unwrap();
        for i in 0..=20 {
            let v = i as f64 * 0.05;
            tpl.set_vsource(vin, v).unwrap();
            tpl.solve().unwrap();
            // Reference: fresh cold solve of an equivalent netlist.
            let mut cold = inverter();
            cold.set_vsource("VIN", v).unwrap();
            let sol = dc::solve(&cold, &opts).unwrap();
            assert!(
                (tpl.voltage(out) - sol.voltage(out)).abs() < 1e-6,
                "vin={v}: warm {} vs cold {}",
                tpl.voltage(out),
                sol.voltage(out)
            );
        }
        assert!(tpl.stats().warm_hit_rate() > 0.9);
    }

    #[test]
    fn delta_vt_patch_shifts_trip() {
        let mut tpl = CircuitTemplate::compile(inverter(), DcOptions::default()).unwrap();
        let out = tpl.node("out").unwrap();
        let vin = tpl.vsource_slot("VIN").unwrap();
        let mn = tpl.mosfet_slot("MN").unwrap();
        tpl.set_vsource(vin, 0.45).unwrap();
        tpl.solve().unwrap();
        let base = tpl.voltage(out);
        // A stronger (lower-Vt) NMOS pulls the output lower at the same vin.
        tpl.set_delta_vt(mn, -0.05).unwrap();
        tpl.solve().unwrap();
        assert!(tpl.voltage(out) < base, "{} !< {base}", tpl.voltage(out));
        tpl.set_delta_vt(mn, 0.0).unwrap();
        tpl.solve().unwrap();
        assert!((tpl.voltage(out) - base).abs() < 1e-6);
    }

    #[test]
    fn disabled_warm_start_counts_cold() {
        let mut tpl = CircuitTemplate::compile(divider(), DcOptions::default()).unwrap();
        tpl.set_warm_start(false);
        tpl.solve().unwrap();
        tpl.solve().unwrap();
        assert_eq!(tpl.stats().warm_attempts, 0);
        assert_eq!(tpl.stats().cold_solves, 2);
    }

    #[test]
    fn solution_exports_branch_names() {
        let mut tpl = CircuitTemplate::compile(divider(), DcOptions::default()).unwrap();
        tpl.solve().unwrap();
        let sol = tpl.solution();
        assert!(sol.branch_current("V1").is_some());
        assert_eq!(sol.voltage(tpl.node("mid").unwrap()), {
            let mid = tpl.node("mid").unwrap();
            tpl.voltage(mid)
        });
    }

    #[test]
    fn empty_netlist_rejected() {
        let err = CircuitTemplate::compile(Netlist::new(), DcOptions::default()).unwrap_err();
        assert_eq!(err, CircuitError::EmptyCircuit);
    }

    #[test]
    fn unknown_slots_are_none() {
        let tpl = CircuitTemplate::compile(divider(), DcOptions::default()).unwrap();
        assert!(tpl.vsource_slot("nope").is_none());
        assert!(tpl.mosfet_slot("R1").is_none());
        assert!(tpl.vsource_slot("R1").is_none());
    }
}
