//! Dense linear algebra: LU factorization with partial pivoting.
//!
//! Circuits in this workspace have at most a few dozen unknowns, where a
//! dense solver beats any sparse machinery. Implemented in-repo to keep the
//! workspace free of numerical dependencies.

/// A dense row-major matrix.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Reads entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Writes entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Adds `v` to entry `(i, j)` — the natural operation for MNA stamps.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] += v;
    }

    /// Resets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Solves `A x = b` in place via LU with partial pivoting; `b` becomes
    /// the solution. The matrix is destroyed.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrix`] when a pivot collapses below 1e-300
    /// (structurally singular or hopelessly ill-conditioned system).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    #[allow(clippy::needless_range_loop)] // index loops mirror the LU algebra
    pub fn solve_in_place(&mut self, b: &mut [f64]) -> Result<(), SingularMatrix> {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Decompose with partial pivoting, applying row swaps to b as we go.
        for k in 0..n {
            // Pivot search.
            let mut p = k;
            let mut max = self.get(k, k).abs();
            for i in (k + 1)..n {
                let v = self.get(i, k).abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < 1e-300 {
                return Err(SingularMatrix { column: k });
            }
            debug_assert!(
                max.is_finite(),
                "non-finite pivot {max} in column {k}: the stamped matrix is corrupt"
            );
            if p != k {
                for j in 0..n {
                    let a = self.get(k, j);
                    let c = self.get(p, j);
                    self.set(k, j, c);
                    self.set(p, j, a);
                }
                b.swap(k, p);
            }
            let pivot = self.get(k, k);
            for i in (k + 1)..n {
                let factor = self.get(i, k) / pivot;
                // pvtm-lint: allow(no-float-eq) exact structural zero skips a no-op elimination row; rounding residue must still be eliminated
                if factor == 0.0 {
                    continue;
                }
                self.set(i, k, 0.0);
                for j in (k + 1)..n {
                    let v = self.get(i, j) - factor * self.get(k, j);
                    self.set(i, j, v);
                }
                b[i] -= factor * b[k];
            }
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut sum = b[i];
            for j in (i + 1)..n {
                sum -= self.get(i, j) * b[j];
            }
            b[i] = sum / self.get(i, i);
            debug_assert!(
                b[i].is_finite(),
                "non-finite solution component {} at row {i}: NaN/Inf leaked through the \
                 factorization",
                b[i]
            );
        }
        Ok(())
    }
}

/// Error: the system matrix is singular to working precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrix {
    /// Column at which elimination found no usable pivot.
    pub column: usize,
}

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "singular system matrix at column {}", self.column)
    }
}

impl std::error::Error for SingularMatrix {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut m = Matrix::zeros(3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        let mut b = vec![1.0, 2.0, 3.0];
        m.solve_in_place(&mut b).unwrap();
        assert_eq!(b, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_known_system() {
        // [2 1; 1 3] x = [3; 5]  =>  x = [4/5, 7/5]
        let mut m = Matrix::zeros(2);
        m.set(0, 0, 2.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 3.0);
        let mut b = vec![3.0, 5.0];
        m.solve_in_place(&mut b).unwrap();
        assert!((b[0] - 0.8).abs() < 1e-12);
        assert!((b[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0] x = [2; 3] => x = [3, 2]
        let mut m = Matrix::zeros(2);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        let mut b = vec![2.0, 3.0];
        m.solve_in_place(&mut b).unwrap();
        assert!((b[0] - 3.0).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singularity() {
        let mut m = Matrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 0, 2.0);
        m.set(1, 1, 4.0);
        let mut b = vec![1.0, 2.0];
        assert!(m.solve_in_place(&mut b).is_err());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn random_system_residual_is_tiny() {
        // Deterministic pseudo-random fill; verify A·x ≈ b.
        let n = 12;
        let mut m = Matrix::zeros(n);
        let mut state = 0x1234_5678_u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let mut a = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                let v = rnd() + if i == j { 4.0 } else { 0.0 };
                m.set(i, j, v);
                a.set(i, j, v);
            }
        }
        let b: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let mut x = b.clone();
        m.solve_in_place(&mut x).unwrap();
        for i in 0..n {
            let mut dot = 0.0;
            for j in 0..n {
                dot += a.get(i, j) * x[j];
            }
            assert!((dot - b[i]).abs() < 1e-10, "row {i} residual");
        }
    }

    #[test]
    fn clear_keeps_dimension() {
        let mut m = Matrix::zeros(4);
        m.set(2, 2, 5.0);
        m.clear();
        assert_eq!(m.n(), 4);
        assert_eq!(m.get(2, 2), 0.0);
    }
}
