//! Last-resort solver rescue ladder.
//!
//! The standard cold strategy in [`crate::dc`] — Gmin continuation, a
//! heavily damped retry, then a four-step source ramp — converges
//! everything the reproduced figures normally throw at it. But Monte-Carlo
//! tails sample cells near the edge of bistability, where the retention
//! point is a near-fold of the DC equations and all three strategies can
//! fail on the same sample. Before such a sample is declared unsolvable
//! (and quarantined by the estimators), the solver escalates through a
//! fixed three-rung ladder:
//!
//! 1. **Tighter Gmin stepping** — the continuation re-runs with factor-10
//!    Gmin decades instead of factor-100, halving the parameter jump each
//!    Newton stage has to absorb.
//! 2. **Wide source ramp** — eight source-scale steps (12.5 % → 100 %)
//!    instead of four, each a full tight-Gmin continuation under the
//!    damped options.
//! 3. **Deep-damped Newton** — the step clamp is cut to 10 mV with an
//!    8× iteration allowance, again under tight Gmin stepping: slow, but
//!    monotone enough to creep along a fold.
//!
//! Every entry, rung and success is counted in
//! [`SolverStats`](crate::dc::SolverStats) (`rescue_attempts`,
//! `rescue_rungs`, `rescue_hits`), so telemetry sidecars and `pvtm-trace`
//! budgets see rescue work like any other solver work. The ladder is also
//! a fault-injection target: each rung checks
//! [`pvtm_telemetry::fault::trip`] so the deterministic harness can force
//! failure at any chosen depth.

use crate::dc::{gmin_continuation, init_state, injected_failure, DcOptions, DcWorkspace, System};
use crate::netlist::CircuitError;
use pvtm_telemetry::fault;
use pvtm_telemetry::json::Value;

/// Escalates through the rescue ladder on a state that the standard cold
/// strategies already failed. Counts one attempt, one rung per ladder
/// stage entered, and one hit on success.
///
/// # Errors
///
/// The last rung's [`CircuitError`] when every rung fails — the sample is
/// then genuinely unsolvable and the caller should quarantine it.
pub(crate) fn rescue(
    sys: &System<'_>,
    x: &mut [f64],
    opts: &DcOptions,
    ws: &mut DcWorkspace,
) -> Result<(), CircuitError> {
    ws.stats.rescue_attempts += 1;
    let rungs_before = ws.stats.rescue_rungs;
    let result = ladder(sys, x, opts, ws);
    if result.is_ok() {
        ws.stats.rescue_hits += 1;
    }
    // Journal the escalation. The armed fault/quarantine stream is the
    // sample's replay key; outside an estimator (no stream armed) a
    // sentinel keeps the event keyed deterministically.
    let stream = fault::current_stream();
    pvtm_telemetry::events::emit(
        "solver.rescue",
        stream.unwrap_or(u64::MAX),
        ws.stats.rescue_rungs - rungs_before,
        vec![
            (
                "stream",
                match stream {
                    Some(s) => Value::Num(s as f64),
                    None => Value::Null,
                },
            ),
            (
                "rungs",
                Value::Num((ws.stats.rescue_rungs - rungs_before) as f64),
            ),
            ("hit", Value::Bool(result.is_ok())),
        ],
    );
    result
}

/// The three rungs themselves; counts rungs but leaves attempt/hit
/// accounting to [`rescue`].
fn ladder(
    sys: &System<'_>,
    x: &mut [f64],
    opts: &DcOptions,
    ws: &mut DcWorkspace,
) -> Result<(), CircuitError> {
    // Rung 1: tighter Gmin stepping at the caller's damping.
    ws.stats.rescue_rungs += 1;
    init_state(x, opts);
    if !fault::trip() && fine_gmin(sys, x, opts, 1.0, ws).is_ok() {
        return Ok(());
    }

    // Rung 2: wide source ramp under heavy damping.
    ws.stats.rescue_rungs += 1;
    let damped = DcOptions {
        max_step: 0.05,
        max_iterations: 400,
        ..opts.clone()
    };
    init_state(x, opts);
    if !fault::trip() && wide_ramp(sys, x, &damped, ws).is_ok() {
        return Ok(());
    }

    // Rung 3: deep-damped Newton with a reduced step clamp.
    ws.stats.rescue_rungs += 1;
    let deep = DcOptions {
        max_step: 0.01,
        max_iterations: 1_000,
        ..opts.clone()
    };
    init_state(x, opts);
    if fault::trip() {
        Err(injected_failure())
    } else {
        fine_gmin(sys, x, &deep, 1.0, ws)
    }
}

/// Gmin continuation with factor-10 steps (the standard ladder uses
/// factor-100), so each stage's warm start is twice as close.
fn fine_gmin(
    sys: &System<'_>,
    x: &mut [f64],
    opts: &DcOptions,
    vsource_scale: f64,
    ws: &mut DcWorkspace,
) -> Result<(), CircuitError> {
    let mut gmin = opts.gmin_start;
    loop {
        ws.stats.gmin_steps += 1;
        sys.newton(x, gmin, vsource_scale, None, opts, ws)?;
        if gmin <= opts.gmin_final {
            return Ok(());
        }
        gmin = (gmin * 1e-1).max(opts.gmin_final);
    }
}

/// Source stepping over eight scales (the standard ramp uses four), each
/// a full coarse Gmin continuation — the first step starts at only 12.5 %
/// of the source values, where almost any circuit is solvable.
fn wide_ramp(
    sys: &System<'_>,
    x: &mut [f64],
    opts: &DcOptions,
    ws: &mut DcWorkspace,
) -> Result<(), CircuitError> {
    for i in 1..=8u32 {
        let alpha = f64::from(i) / 8.0;
        ws.stats.ramp_steps += 1;
        gmin_continuation(sys, x, opts, alpha, ws)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::dc::{self, DcOptions, DcWorkspace};
    use crate::netlist::Netlist;
    use pvtm_device::{Mosfet, Technology};
    use std::sync::Mutex;

    /// Fault arming is process-global (the `STATE` atomic); tests that
    /// force a depth serialize so a concurrent test can't disable it
    /// mid-solve.
    static FAULT_LOCK: Mutex<()> = Mutex::new(());

    fn inverter() -> (Netlist, crate::netlist::NodeId) {
        let tech = Technology::predictive_70nm();
        let mut ckt = Netlist::new();
        let vdd = ckt.node("vdd");
        let input = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Netlist::GROUND, 1.0);
        ckt.vsource("VIN", input, Netlist::GROUND, 0.0);
        ckt.mosfet(
            "MP",
            out,
            input,
            vdd,
            vdd,
            Mosfet::pmos(&tech, 200e-9, tech.lmin()),
        );
        ckt.mosfet(
            "MN",
            out,
            input,
            Netlist::GROUND,
            Netlist::GROUND,
            Mosfet::nmos(&tech, 140e-9, tech.lmin()),
        );
        (ckt, out)
    }

    #[test]
    fn injected_standard_ladder_failure_is_rescued() {
        let _l = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Depth 3 kills the three standard cold strategies (a cold
        // `solve_with` has no warm slot); the first rescue rung then runs
        // for real and must converge this ordinary circuit.
        let _g = pvtm_telemetry::fault::force_depth(3);
        let (ckt, out) = inverter();
        let mut ws = DcWorkspace::new();
        let sol = dc::solve_with(&ckt, &DcOptions::default(), &mut ws)
            .expect("rescue rung 1 converges the inverter");
        assert!(sol.voltage(out) > 0.95, "out = {}", sol.voltage(out));
        assert_eq!(ws.stats.rescue_attempts, 1);
        assert_eq!(ws.stats.rescue_hits, 1);
        assert_eq!(ws.stats.rescue_rungs, 1);
    }

    #[test]
    fn injection_past_the_last_rung_fails_the_solve() {
        let _l = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Depth 6 exhausts the 3 standard cold strategies + 3 rescue
        // rungs; depth 7 leaves one unused kill on top.
        let _g = pvtm_telemetry::fault::force_depth(7);
        let (ckt, _) = inverter();
        let mut ws = DcWorkspace::new();
        let sol = dc::solve_with(&ckt, &DcOptions::default(), &mut ws);
        assert!(sol.is_err(), "all strategies injected to fail");
        assert_eq!(ws.stats.rescue_attempts, 1);
        assert_eq!(ws.stats.rescue_hits, 0);
        assert_eq!(ws.stats.rescue_rungs, 3);
    }

    #[test]
    fn every_rescue_depth_between_ladders_converges() {
        let _l = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Depths 3..=5 land on rescue rungs 1..=3 for a cold solve;
        // every rung must converge the inverter on its own.
        for depth in 3..=5u32 {
            let _g = pvtm_telemetry::fault::force_depth(depth);
            let (ckt, out) = inverter();
            let mut ws = DcWorkspace::new();
            let sol = dc::solve_with(&ckt, &DcOptions::default(), &mut ws)
                .unwrap_or_else(|e| panic!("depth {depth}: {e}"));
            assert!(sol.voltage(out) > 0.95);
            assert_eq!(ws.stats.rescue_hits, 1, "depth {depth}");
            assert_eq!(ws.stats.rescue_rungs, u64::from(depth) - 2, "depth {depth}");
        }
    }

    #[test]
    fn rescue_is_never_entered_on_healthy_solves() {
        let (ckt, _) = inverter();
        let mut ws = DcWorkspace::new();
        dc::solve_with(&ckt, &DcOptions::default(), &mut ws).expect("healthy solve");
        assert_eq!(ws.stats.rescue_attempts, 0);
        assert_eq!(ws.stats.rescue_rungs, 0);
    }
}
