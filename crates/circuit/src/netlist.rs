//! Netlist representation: named nodes and circuit elements.

use pvtm_device::Mosfet;

/// Identifier of a circuit node. Node 0 is always ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Index of this node in the netlist's node table.
    pub fn index(self) -> usize {
        self.0
    }

    /// True for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// A circuit element. Constructed through the [`Netlist`] builder methods.
#[derive(Debug, Clone)]
pub enum Element {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance \[Ω\].
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b` (open-circuit in DC).
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance \[F\].
        farads: f64,
    },
    /// Ideal DC voltage source forcing `v(pos) - v(neg) = volts`.
    Vsource {
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Source voltage \[V\].
        volts: f64,
    },
    /// Ideal DC current source pushing `amps` out of `from` into `to`.
    Isource {
        /// Terminal the current leaves.
        from: NodeId,
        /// Terminal the current enters.
        to: NodeId,
        /// Source current \[A\].
        amps: f64,
    },
    /// Four-terminal MOSFET using the compact model from `pvtm-device`.
    Mosfet {
        /// Drain terminal.
        d: NodeId,
        /// Gate terminal.
        g: NodeId,
        /// Source terminal.
        s: NodeId,
        /// Body terminal.
        b: NodeId,
        /// Device instance (geometry, card, ΔVt).
        device: Mosfet,
    },
}

/// Errors produced by the solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// The system matrix became singular (floating subcircuit, or a loop of
    /// ideal voltage sources).
    SingularMatrix {
        /// Elimination column at which the pivot vanished.
        column: usize,
    },
    /// Newton iteration failed to reach the residual tolerance.
    NoConvergence {
        /// Best KCL residual achieved \[A\].
        residual: f64,
        /// Iterations spent.
        iterations: usize,
    },
    /// A named source was not found by `set_vsource`.
    UnknownSource(String),
    /// The netlist has no unknowns to solve for.
    EmptyCircuit,
    /// A Monte-Carlo estimator quarantined more samples than the
    /// documented `PVTM_MAX_QUARANTINE` threshold allows — the estimate's
    /// bias bounds are too wide to stand in for a converged result.
    QuarantineExceeded {
        /// Unresolved (quarantined) samples.
        quarantined: u64,
        /// Total samples drawn.
        total: u64,
    },
    /// A typed template slot was applied to a template of a different
    /// shape: the element it indexes is not of the expected kind. Slots
    /// are minted by `CircuitTemplate` accessors, so this means a slot
    /// from one compiled topology was used against another.
    SlotMismatch {
        /// Element kind the slot promises (`"vsource"`, `"mosfet"`).
        expected: &'static str,
        /// Element index the slot points at.
        elem: usize,
    },
}

impl CircuitError {
    /// Stable machine-readable tag for this error, used to label
    /// quarantined Monte-Carlo samples in the telemetry sidecar.
    pub fn kind(&self) -> &'static str {
        match self {
            CircuitError::SingularMatrix { .. } => "singular_matrix",
            CircuitError::NoConvergence { .. } => "no_convergence",
            CircuitError::UnknownSource(_) => "unknown_source",
            CircuitError::EmptyCircuit => "empty_circuit",
            CircuitError::QuarantineExceeded { .. } => "quarantine_exceeded",
            CircuitError::SlotMismatch { .. } => "slot_mismatch",
        }
    }
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::SingularMatrix { column } => {
                write!(f, "singular system matrix at column {column}")
            }
            CircuitError::NoConvergence {
                residual,
                iterations,
            } => write!(
                f,
                "newton iteration did not converge after {iterations} iterations (residual {residual:.3e} A)"
            ),
            CircuitError::UnknownSource(name) => write!(f, "unknown voltage source `{name}`"),
            CircuitError::EmptyCircuit => write!(f, "circuit has no unknowns"),
            CircuitError::QuarantineExceeded { quarantined, total } => write!(
                f,
                "{quarantined} of {total} Monte-Carlo samples quarantined, above the \
                 PVTM_MAX_QUARANTINE threshold"
            ),
            CircuitError::SlotMismatch { expected, elem } => write!(
                f,
                "{expected} slot points at element {elem} of a different kind; the slot \
                 was minted by another template shape"
            ),
        }
    }
}

impl std::error::Error for CircuitError {}

/// A circuit under construction: interned nodes plus a list of elements.
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    node_names: Vec<String>,
    elements: Vec<(String, Element)>,
    temp_k: f64,
}

impl Netlist {
    /// The ground node, always present.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty netlist at the default temperature of 300 K.
    pub fn new() -> Self {
        Self {
            node_names: vec!["0".to_string()],
            elements: Vec::new(),
            temp_k: 300.0,
        }
    }

    /// Sets the simulation temperature \[K\].
    ///
    /// # Panics
    ///
    /// Panics if the temperature is non-positive or non-finite.
    pub fn set_temperature(&mut self, temp_k: f64) {
        assert!(
            temp_k > 0.0 && temp_k.is_finite(),
            "invalid temperature {temp_k} K"
        );
        self.temp_k = temp_k;
    }

    /// Simulation temperature \[K\].
    pub fn temperature(&self) -> f64 {
        self.temp_k
    }

    /// Interns a node by name, creating it on first use. The name `"0"`
    /// (or `"gnd"`) maps to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Self::GROUND;
        }
        if let Some(idx) = self.node_names.iter().position(|n| n == name) {
            NodeId(idx)
        } else {
            self.node_names.push(name.to_string());
            NodeId(self.node_names.len() - 1)
        }
    }

    /// Looks up an existing node without creating it.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Some(Self::GROUND);
        }
        self.node_names.iter().position(|n| n == name).map(NodeId)
    }

    /// Name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Total number of nodes including ground.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// All elements with their instance names.
    pub fn elements(&self) -> &[(String, Element)] {
        &self.elements
    }

    /// Mutable access to one element by its index in [`Self::elements`] —
    /// the string-free patch path used by compiled circuit templates.
    pub(crate) fn element_mut(&mut self, idx: usize) -> &mut Element {
        &mut self.elements[idx].1
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not positive and finite.
    pub fn resistor(&mut self, name: &str, a: NodeId, b: NodeId, ohms: f64) -> &mut Self {
        assert!(ohms > 0.0 && ohms.is_finite(), "invalid resistance {ohms}");
        self.elements
            .push((name.to_string(), Element::Resistor { a, b, ohms }));
        self
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not positive and finite.
    pub fn capacitor(&mut self, name: &str, a: NodeId, b: NodeId, farads: f64) -> &mut Self {
        assert!(
            farads > 0.0 && farads.is_finite(),
            "invalid capacitance {farads}"
        );
        self.elements
            .push((name.to_string(), Element::Capacitor { a, b, farads }));
        self
    }

    /// Adds an ideal voltage source `v(pos) - v(neg) = volts`.
    pub fn vsource(&mut self, name: &str, pos: NodeId, neg: NodeId, volts: f64) -> &mut Self {
        assert!(volts.is_finite(), "invalid source voltage {volts}");
        self.elements
            .push((name.to_string(), Element::Vsource { pos, neg, volts }));
        self
    }

    /// Adds an ideal current source pushing `amps` from `from` into `to`.
    pub fn isource(&mut self, name: &str, from: NodeId, to: NodeId, amps: f64) -> &mut Self {
        assert!(amps.is_finite(), "invalid source current {amps}");
        self.elements
            .push((name.to_string(), Element::Isource { from, to, amps }));
        self
    }

    /// Adds a MOSFET.
    pub fn mosfet(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        device: Mosfet,
    ) -> &mut Self {
        self.elements
            .push((name.to_string(), Element::Mosfet { d, g, s, b, device }));
        self
    }

    /// Re-points a named voltage source at a new value (for sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownSource`] if no voltage source has the
    /// given instance name.
    pub fn set_vsource(&mut self, name: &str, volts: f64) -> Result<(), CircuitError> {
        assert!(volts.is_finite(), "invalid source voltage {volts}");
        for (n, el) in &mut self.elements {
            if n == name {
                if let Element::Vsource { volts: v, .. } = el {
                    *v = volts;
                    return Ok(());
                }
            }
        }
        Err(CircuitError::UnknownSource(name.to_string()))
    }

    /// Convenience wrapper: solve the DC operating point with default
    /// options.
    ///
    /// # Errors
    ///
    /// Propagates solver failures; see [`CircuitError`].
    pub fn solve_dc(&self) -> Result<crate::dc::DcSolution, CircuitError> {
        crate::dc::solve(self, &crate::dc::DcOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_aliases() {
        let mut n = Netlist::new();
        assert_eq!(n.node("0"), Netlist::GROUND);
        assert_eq!(n.node("gnd"), Netlist::GROUND);
        assert_eq!(n.node("GND"), Netlist::GROUND);
    }

    #[test]
    fn node_interning_is_stable() {
        let mut n = Netlist::new();
        let a = n.node("a");
        let b = n.node("b");
        assert_ne!(a, b);
        assert_eq!(n.node("a"), a);
        assert_eq!(n.find_node("b"), Some(b));
        assert_eq!(n.find_node("zzz"), None);
        assert_eq!(n.node_name(a), "a");
        assert_eq!(n.num_nodes(), 3);
    }

    #[test]
    fn set_vsource_updates_value() {
        let mut n = Netlist::new();
        let a = n.node("a");
        n.vsource("V1", a, Netlist::GROUND, 1.0);
        n.set_vsource("V1", 0.5).unwrap();
        match &n.elements()[0].1 {
            Element::Vsource { volts, .. } => assert_eq!(*volts, 0.5),
            other => panic!("unexpected element {other:?}"),
        }
    }

    #[test]
    fn set_vsource_unknown_name_errors() {
        let mut n = Netlist::new();
        let err = n.set_vsource("nope", 1.0).unwrap_err();
        assert_eq!(err, CircuitError::UnknownSource("nope".into()));
    }

    #[test]
    #[should_panic(expected = "invalid resistance")]
    fn rejects_zero_resistance() {
        let mut n = Netlist::new();
        let a = n.node("a");
        n.resistor("R", a, Netlist::GROUND, 0.0);
    }

    #[test]
    fn error_display_messages() {
        let e = CircuitError::NoConvergence {
            residual: 1e-3,
            iterations: 50,
        };
        assert!(e.to_string().contains("did not converge"));
        assert!(CircuitError::EmptyCircuit
            .to_string()
            .contains("no unknowns"));
    }
}
