//! A SPICE-like netlist deck parser.
//!
//! Lets circuits be described as text — handy for tests, examples and
//! ad-hoc exploration without writing builder code:
//!
//! ```text
//! * resistive divider with an NMOS load
//! V1 vdd 0 1.0
//! R1 vdd mid 10k
//! R2 mid 0 10k
//! MN1 mid vdd 0 0 nmos w=200n l=70n
//! .temp 300
//! ```
//!
//! Supported cards: `R` (resistor), `C` (capacitor), `V` (DC voltage
//! source), `I` (DC current source), `M` (MOSFET, `nmos`/`pmos` with
//! `w=`, `l=` and optional `dvt=`), `.temp`, `*`/`;` comments. Values
//! accept the usual engineering suffixes (`f p n u m k meg g t`).

use crate::netlist::Netlist;
use pvtm_device::{Mosfet, Technology};

/// A netlist parse error, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending card.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "netlist line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses an engineering-notation value such as `10k`, `1.5meg`, `200n`,
/// `3.3`.
///
/// # Errors
///
/// Returns a description when the token is not a valid value.
pub fn parse_value(token: &str) -> Result<f64, String> {
    let lower = token.to_ascii_lowercase();
    let (num_part, mult) = if let Some(stripped) = lower.strip_suffix("meg") {
        (stripped, 1e6)
    } else if let Some(stripped) = lower.strip_suffix('t') {
        (stripped, 1e12)
    } else if let Some(stripped) = lower.strip_suffix('g') {
        (stripped, 1e9)
    } else if let Some(stripped) = lower.strip_suffix('k') {
        (stripped, 1e3)
    } else if let Some(stripped) = lower.strip_suffix('m') {
        (stripped, 1e-3)
    } else if let Some(stripped) = lower.strip_suffix('u') {
        (stripped, 1e-6)
    } else if let Some(stripped) = lower.strip_suffix('n') {
        (stripped, 1e-9)
    } else if let Some(stripped) = lower.strip_suffix('p') {
        (stripped, 1e-12)
    } else if let Some(stripped) = lower.strip_suffix('f') {
        (stripped, 1e-15)
    } else {
        (lower.as_str(), 1.0)
    };
    num_part
        .parse::<f64>()
        .map(|v| v * mult)
        .map_err(|_| format!("invalid value `{token}`"))
}

/// Parses a netlist deck against a technology (for MOSFET cards).
///
/// # Errors
///
/// Returns the first offending line with an explanation.
///
/// # Example
///
/// ```
/// use pvtm_circuit::parser::parse_netlist;
/// use pvtm_device::Technology;
///
/// let deck = "\
/// * divider
/// V1 top 0 1.0
/// R1 top mid 1k
/// R2 mid 0 1k
/// ";
/// let tech = Technology::predictive_70nm();
/// let ckt = parse_netlist(deck, &tech)?;
/// let sol = ckt.solve_dc()?;
/// let mid = ckt.find_node("mid").expect("node exists");
/// assert!((sol.voltage(mid) - 0.5).abs() < 1e-6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse_netlist(deck: &str, tech: &Technology) -> Result<Netlist, ParseError> {
    let mut ckt = Netlist::new();
    for (idx, raw) in deck.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('*') || line.starts_with(';') {
            continue;
        }
        let err = |message: String| ParseError {
            line: line_no,
            message,
        };
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let card = tokens[0];
        let kind = card
            .chars()
            .next()
            .expect("token text is non-empty by the split above")
            .to_ascii_uppercase();
        match kind {
            '.' => {
                let directive = card.to_ascii_lowercase();
                match directive.as_str() {
                    ".temp" => {
                        let t = tokens
                            .get(1)
                            .ok_or_else(|| err(".temp needs a value".into()))
                            .and_then(|tok| parse_value(tok).map_err(err))?;
                        ckt.set_temperature(t);
                    }
                    ".end" => break,
                    other => return Err(err(format!("unknown directive `{other}`"))),
                }
            }
            'R' | 'C' | 'V' | 'I' => {
                if tokens.len() != 4 {
                    return Err(err(format!(
                        "{card}: expected `name node node value`, got {} tokens",
                        tokens.len()
                    )));
                }
                let a = ckt.node(tokens[1]);
                let b = ckt.node(tokens[2]);
                let value = parse_value(tokens[3]).map_err(err)?;
                match kind {
                    'R' => {
                        if value <= 0.0 {
                            return Err(err(format!("{card}: resistance must be positive")));
                        }
                        ckt.resistor(card, a, b, value);
                    }
                    'C' => {
                        if value <= 0.0 {
                            return Err(err(format!("{card}: capacitance must be positive")));
                        }
                        ckt.capacitor(card, a, b, value);
                    }
                    'V' => {
                        ckt.vsource(card, a, b, value);
                    }
                    _ => {
                        ckt.isource(card, a, b, value);
                    }
                }
            }
            'M' => {
                // Mname d g s b flavour w=.. l=.. [dvt=..]
                if tokens.len() < 8 {
                    return Err(err(format!(
                        "{card}: expected `name d g s b nmos|pmos w=.. l=..`"
                    )));
                }
                let d = ckt.node(tokens[1]);
                let g = ckt.node(tokens[2]);
                let s = ckt.node(tokens[3]);
                let b = ckt.node(tokens[4]);
                let flavour = tokens[5].to_ascii_lowercase();
                let mut w = None;
                let mut l = None;
                let mut dvt = 0.0;
                for tok in &tokens[6..] {
                    let (key, val) = tok
                        .split_once('=')
                        .ok_or_else(|| err(format!("expected key=value, got `{tok}`")))?;
                    let value = parse_value(val).map_err(err)?;
                    match key.to_ascii_lowercase().as_str() {
                        "w" => w = Some(value),
                        "l" => l = Some(value),
                        "dvt" => dvt = value,
                        other => return Err(err(format!("unknown parameter `{other}`"))),
                    }
                }
                let w = w.ok_or_else(|| err(format!("{card}: missing w=")))?;
                let l = l.ok_or_else(|| err(format!("{card}: missing l=")))?;
                let device = match flavour.as_str() {
                    "nmos" => Mosfet::nmos(tech, w, l),
                    "pmos" => Mosfet::pmos(tech, w, l),
                    other => return Err(err(format!("unknown flavour `{other}`"))),
                }
                .with_delta_vt(dvt);
                ckt.mosfet(card, d, g, s, b, device);
            }
            other => return Err(err(format!("unknown card type `{other}`"))),
        }
    }
    Ok(ckt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::predictive_70nm()
    }

    #[test]
    fn value_suffixes() {
        assert_eq!(parse_value("10k").unwrap(), 10e3);
        assert_eq!(parse_value("1.5meg").unwrap(), 1.5e6);
        assert!((parse_value("200n").unwrap() / 200e-9 - 1.0).abs() < 1e-12);
        assert!((parse_value("3f").unwrap() / 3e-15 - 1.0).abs() < 1e-12);
        assert_eq!(parse_value("2.5").unwrap(), 2.5);
        assert_eq!(parse_value("-0.4").unwrap(), -0.4);
        assert_eq!(parse_value("1g").unwrap(), 1e9);
        assert!(parse_value("abc").is_err());
    }

    #[test]
    fn parses_and_solves_divider() {
        let deck = "V1 top 0 2.0\nR1 top mid 3k\nR2 mid 0 1k\n";
        let ckt = parse_netlist(deck, &tech()).unwrap();
        let sol = ckt.solve_dc().unwrap();
        let mid = ckt.find_node("mid").unwrap();
        assert!((sol.voltage(mid) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn parses_inverter_with_mosfets() {
        let deck = "\
* CMOS inverter
V1 vdd 0 1.0
V2 in 0 0.0
MP1 out in vdd vdd pmos w=200n l=70n
MN1 out in 0 0 nmos w=140n l=70n
";
        let ckt = parse_netlist(deck, &tech()).unwrap();
        let sol = ckt.solve_dc().unwrap();
        let out = ckt.find_node("out").unwrap();
        assert!(sol.voltage(out) > 0.95);
    }

    #[test]
    fn temp_directive_and_end() {
        let deck = ".temp 350\nV1 a 0 1.0\nR1 a 0 1k\n.end\nR2 a 0 gibberish\n";
        let ckt = parse_netlist(deck, &tech()).unwrap();
        assert_eq!(ckt.temperature(), 350.0);
        // .end stopped the parse before the broken line.
        assert_eq!(ckt.elements().len(), 2);
    }

    #[test]
    fn dvt_parameter_applies() {
        let deck = "V1 d 0 1.0\nMN1 d d 0 0 nmos w=200n l=70n dvt=0.05\n";
        let ckt = parse_netlist(deck, &tech()).unwrap();
        let found = ckt.elements().iter().any(|(name, e)| {
            name == "MN1"
                && matches!(e, crate::netlist::Element::Mosfet { device, .. }
                    if (device.delta_vt() - 0.05).abs() < 1e-12)
        });
        assert!(found, "dvt must reach the device");
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let deck = "\n* comment\n; another\nV1 a 0 1.0\nR1 a 0 1k\n";
        let ckt = parse_netlist(deck, &tech()).unwrap();
        assert_eq!(ckt.elements().len(), 2);
    }

    #[test]
    fn error_reports_line_numbers() {
        let deck = "V1 a 0 1.0\nR1 a 0 notanumber\n";
        let e = parse_netlist(deck, &tech()).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn unknown_card_is_rejected() {
        let e = parse_netlist("Q1 a b c 1k\n", &tech()).unwrap_err();
        assert!(e.message.contains("unknown card"));
    }

    #[test]
    fn mosfet_requires_geometry() {
        let e = parse_netlist(
            "MN1 d g s b nmos w=100n l=70n\nMN2 d g s b nmos w=100n q=1\n",
            &tech(),
        )
        .unwrap_err();
        assert!(e.message.contains("unknown parameter"), "{}", e.message);
        let e2 = parse_netlist("MN1 d g s b nmos w=100n dvt=0\n", &tech()).unwrap_err();
        assert!(e2.message.contains("missing l="), "{}", e2.message);
    }
}
